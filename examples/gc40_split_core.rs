//! Case study §V-B: the GC40 BOOM core — too large to build
//! monolithically on a Xilinx Alveo U250 — split across two FPGAs with
//! exact-mode, booting its workload at ~0.2 MHz.
//!
//! Run with: `cargo run --release -p fireaxe --example gc40_split_core`

use fireaxe::prelude::*;
use fireaxe::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== GC40 BOOM split-core case study (paper §V-B) ==\n");

    // Table I.
    println!(
        "{:<22}{:>12}{:>12}{:>12}",
        "", "Large BOOM", "GC40 BOOM", "GC Xeon"
    );
    type Row = (&'static str, fn(&BoomConfig) -> u64);
    let rows: [Row; 7] = [
        ("Issue width", |c| c.issue_width.into()),
        ("ROB entries", |c| c.rob_entries.into()),
        ("I-Phys Regs", |c| c.int_phys_regs.into()),
        ("F-Phys Regs", |c| c.fp_phys_regs.into()),
        ("Ld queue entries", |c| c.ldq_entries.into()),
        ("St queue entries", |c| c.stq_entries.into()),
        ("Fetch buffer entries", |c| c.fetch_buf_entries.into()),
    ];
    let configs = [
        BoomConfig::large(),
        BoomConfig::gc40(),
        BoomConfig::golden_cove_xeon(),
    ];
    for (name, f) in rows {
        println!(
            "{:<22}{:>12}{:>12}{:>12}",
            name,
            f(&configs[0]),
            f(&configs[1]),
            f(&configs[2])
        );
    }
    println!(
        "{:<22}{:>12}{:>12}{:>12}\n",
        "Area (mm^2, 16nm)",
        configs[0].area_mm2(),
        configs[1].area_mm2(),
        configs[2].area_mm2()
    );

    let gc40 = BoomConfig::gc40();
    let circuit = fireaxe::soc::boom::core_circuit(&gc40);
    let u250 = FpgaSpec::alveo_u250();

    // 1. Monolithic build fails.
    let mono = fit(&circuit, &u250);
    println!("monolithic on {u250}: {mono}");
    assert!(!mono.routable);

    // 2. Split: backend + LSU on one FPGA, frontend + memory on the other.
    let spec = PartitionSpec::exact(vec![PartitionGroup::instances(
        "backend_fpga",
        vec!["backend".into(), "lsu".into()],
    )]);
    let (design, mut sim) = fireaxe::FireAxe::new(circuit, spec)
        .platform(Platform::OnPremQsfp)
        .clock_mhz(10.0) // the paper builds GC40 bitstreams at 10 MHz
        .check_fit()
        .build()?;
    println!(
        "partitioned: {} links, boundary {} bits (paper: >7000)",
        design.links.len(),
        design.report.total_boundary_width()
    );
    for p in &design.partitions {
        for t in &p.threads {
            let report = fit(&t.circuit, &u250);
            println!("  {:14} {}", t.name, report);
        }
    }

    let m = sim.run_target_cycles(20_000)?;
    let backend = design.node_index(0, 0);
    println!(
        "\nsimulated {} cycles at {:.3} MHz (paper: 0.2 MHz); {} instructions committed",
        m.target_cycles,
        m.target_mhz(),
        sim.target(backend).peek("backend_commits").to_u64()
    );
    Ok(())
}
