//! Distributed NoC SoC simulation (DESIGN.md §7, "Distributed
//! backend").
//!
//! The 6-tile ring SoC is cut along NoC router boundaries into four
//! partitions, and each partition is run in its **own OS process**: the
//! example binary re-execs itself four times as workers, discovers
//! their ephemeral listen addresses from the `listening on <addr>`
//! advertisement, then drives them as the coordinator over localhost
//! TCP. No manual orchestration — `cargo run --example distributed_noc`
//! does the whole flow.
//!
//! The cluster run is repeated at every wire batching depth
//! (`batch_cycles` ∈ {1, 8, 64} — unbatched, default, a full credit
//! window), with a fresh set of worker processes each time, and every
//! run is compared against the in-process DES golden model: the
//! sampled `(cycle, state_digest)` rows and the rendered VCD must be
//! byte-identical (the LI-BDN argument — target state depends only on
//! token values in per-channel order — holds across process
//! boundaries, real sockets, and any wire framing of the same token
//! stream).
//!
//! Writes `distributed_noc.trace.json` into the working directory: the
//! merged Chrome trace with the coordinator and each worker as separate
//! process tracks (load it in Perfetto or `chrome://tracing`).

use fireaxe::prelude::*;
use fireaxe_net::spawn::LISTENING_PREFIX;
use fireaxe_net::{run_cluster, serve, NetListener, SpawnedWorker, WireSettings};
use std::process::Command;

const CYCLES: u64 = 1_000;
const SAMPLE_EVERY: u64 = 100;

/// The re-exec marker: `example-binary --worker` serves one partition
/// instead of coordinating.
const WORKER_FLAG: &str = "--worker";

/// The 6-tile ring SoC cut into 4 partitions (3 router groups + rest).
fn design() -> (Circuit, PartitionSpec) {
    let soc = ring_soc(&RingSocConfig {
        tiles: 6,
        tile_period: 4,
        ..Default::default()
    });
    let groups: Vec<PartitionGroup> = (0..3)
        .map(|g| PartitionGroup {
            name: format!("fpga{g}"),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![2 * g, 2 * g + 1],
            },
            fame5: false,
        })
        .collect();
    (soc.circuit, PartitionSpec::exact(groups))
}

/// Every process — workers, coordinator, DES reference — binds the
/// same extern behaviors, or the digests would not be comparable.
fn setup(b: SimBuilder<'_>) -> SimBuilder<'_> {
    let mut registry = BehaviorRegistry::new();
    fireaxe::register_soc_behaviors(&mut registry);
    b.behaviors(registry)
}

/// Wire batching depths swept by the parity loop: unbatched, the
/// default, and a full credit window.
const BATCHES: [u64; 3] = [1, 8, 64];

fn settings(batch_cycles: u64) -> WireSettings {
    WireSettings {
        sample_interval: SAMPLE_EVERY,
        vcd: true,
        batch_cycles,
        ..Default::default()
    }
}

/// Worker mode: bind an ephemeral port, advertise it on stdout (the
/// parent parses this line), serve one coordinator session, exit.
fn worker_main() -> ! {
    let listener = NetListener::bind("127.0.0.1:0").expect("worker bind");
    println!("{LISTENING_PREFIX}{}", listener.local_addr_string());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match serve(&listener, &setup) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker: {e}");
            std::process::exit(1);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == WORKER_FLAG) {
        worker_main();
    }

    let (circuit, spec) = design();
    let n = compile(&circuit, &spec)?.partitions.len();
    let exe = std::env::current_exe()?;

    // The in-process DES golden model, same design and settings; every
    // cluster run below must reproduce it bit for bit.
    let (_, mut des) = FireAxe::new(circuit.clone(), spec.clone())
        .backend(Backend::Des)
        .observe(ObsSpec {
            sample_interval: SAMPLE_EVERY,
            vcd: true,
            signals: Vec::new(),
        })
        .build()?;
    let des_metrics = des.run_target_cycles(CYCLES)?;
    let des_report = des.obs_report();

    let mut trace = String::new();
    for batch in BATCHES {
        // Re-exec this binary once per partition; `SpawnedWorker` reads
        // each child's advertised address, and kills it on drop, so a
        // failed run cannot leak processes. Workers serve exactly one
        // coordinator session, so each batch depth gets a fresh fleet.
        let workers: Vec<SpawnedWorker> = (0..n)
            .map(|_| {
                let mut cmd = Command::new(&exe);
                cmd.arg(WORKER_FLAG);
                SpawnedWorker::launch(cmd).expect("spawn worker")
            })
            .collect();
        let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
        println!(
            "batch_cycles={batch}: spawned {n} worker processes on {}",
            addrs.join(", ")
        );

        let net = run_cluster(
            &circuit,
            &spec,
            CYCLES,
            &addrs,
            &settings(batch),
            10_000,
            &setup,
        )?;
        println!(
            "batch_cycles={batch}: simulated {} target cycles over {} cross-partition links",
            net.metrics.target_cycles,
            net.metrics.link_tokens.len()
        );

        // Clean shutdown: every worker process must exit zero.
        for w in workers {
            assert!(w.wait()?, "worker exited with failure");
        }

        // Bit-exactness across process boundaries, at every wire
        // batching depth: sampled digests, the waveform, and the
        // per-link token totals all match the DES run.
        assert_eq!(net.series.nodes.len(), des_report.metrics.nodes.len());
        for (a, b) in net.series.nodes.iter().zip(&des_report.metrics.nodes) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.samples.len(), b.samples.len(), "node {}", a.node);
            for (sa, sb) in a.samples.iter().zip(&b.samples) {
                assert_eq!((sa.cycle, sa.state_digest), (sb.cycle, sb.state_digest));
            }
        }
        assert_eq!(
            net.vcd, des_report.vcd,
            "waveforms diverged at batch_cycles={batch}"
        );
        assert_eq!(net.metrics.link_tokens, des_metrics.link_tokens);
        trace = net.chrome_trace;
    }
    println!(
        "4 processes and the DES golden model agree on (cycle, state_digest) at every \
         batch depth {BATCHES:?}; waveforms are byte-identical"
    );

    std::fs::write("distributed_noc.trace.json", &trace)?;
    println!(
        "wrote distributed_noc.trace.json ({} bytes): coordinator + {} worker process tracks",
        trace.len(),
        n
    );
    Ok(())
}
