//! Fault-injected NoC SoC simulation, configured entirely from a JSON
//! run config (DESIGN.md §4, "Surviving the wire").
//!
//! A 4-tile ring SoC is cut along NoC router boundaries into two
//! partitions, then run under a hostile link schedule: 10% of physical
//! transmit attempts drop, 5% arrive with a flipped bit, 5% duplicate,
//! and link 0 goes hard-down for attempts 8..24 — long enough to
//! exhaust the retry budget and force checkpoint/rollback recovery.
//! Every knob comes from the `fault` / `reliability` /
//! `checkpoint_interval` / `max_rollbacks` fields of the JSON config,
//! exactly as the `fireaxe` CLI would consume them.
//!
//! The point of the exercise: the reliability protocol plus rollback
//! recovery is *transparent* — both backends, under faults, must end
//! bit-identical to a fault-free DES run.

use fireaxe::prelude::*;
use fireaxe::RunConfig;

const CYCLES: u64 = 200;

fn config_json(backend: &str, routers: &[String]) -> String {
    let router_list = routers
        .iter()
        .map(|r| format!("\"{r}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        r#"{{
        "mode": "exact",
        "platform": "onprem-qsfp",
        "backend": "{backend}",
        "routers": [{router_list}],
        "groups": [
            {{ "name": "fpga0", "router_indices": [0, 1] }},
            {{ "name": "fpga1", "router_indices": [2, 3] }}
        ],
        "fault": {{
            "seed": 7,
            "drop_per_mille": 100,
            "corrupt_per_mille": 50,
            "duplicate_per_mille": 50,
            "down": [[8, 24]],
            "down_link": 0
        }},
        "reliability": {{ "max_retries": 3, "timeout_cycles": 8 }},
        "checkpoint_interval": 16,
        "max_rollbacks": 16
    }}"#
    )
}

fn fingerprint(sim: &DistributedSim) -> Vec<(usize, String, u64, u64)> {
    let mut fp = Vec::new();
    for ni in 0..sim.node_names().len() {
        let cycles = sim.node_target_cycles(ni);
        let t = sim.target(ni);
        for (port, _) in t.output_ports() {
            fp.push((ni, port.clone(), t.peek(&port).to_u64(), cycles));
        }
    }
    fp
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = ring_soc(&RingSocConfig {
        tiles: 4,
        tile_period: 4,
        ..Default::default()
    });

    // Fault-free golden run: plain DES, no reliability layer.
    let spec = PartitionSpec::exact(vec![
        PartitionGroup {
            name: "fpga0".into(),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![0, 1],
            },
            fame5: false,
        },
        PartitionGroup {
            name: "fpga1".into(),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![2, 3],
            },
            fame5: false,
        },
    ]);
    let (_, mut golden_sim) = FireAxe::new(soc.circuit.clone(), spec).build()?;
    golden_sim.run_target_cycles(CYCLES)?;
    let golden = fingerprint(&golden_sim);

    println!("fault-free golden: {CYCLES} cycles on Backend::Des\n");
    for backend in ["des", "threads"] {
        let json = config_json(backend, &soc.router_paths);
        let cfg = RunConfig::from_json(&json)?;
        let flow = cfg.to_flow(soc.circuit.clone())?;
        let (design, mut sim) = flow.build()?;
        assert_eq!(design.partitions.len(), 3); // two router groups + remainder
        sim.run_target_cycles_recovering(CYCLES)?;
        let faulted = fingerprint(&sim);
        println!(
            "backend \"{backend}\": survived the schedule with {} rollback(s); \
             final state {} the golden run",
            sim.rollbacks_taken(),
            if faulted == golden {
                "bit-identical to"
            } else {
                "DIVERGED from"
            }
        );
        assert_eq!(faulted, golden, "recovery must preserve bit-exactness");
    }
    Ok(())
}
