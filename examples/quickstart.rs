//! Quickstart: build a small SoC, partition a tile onto its own FPGA,
//! and measure the simulation rate on each platform.
//!
//! Run with: `cargo run --release -p fireaxe --example quickstart`

use fireaxe::prelude::*;
use fireaxe::Platform;

fn build_soc() -> Circuit {
    // A tile with a combinational response path (the interesting case for
    // exact-mode: two link crossings per cycle) behind an SoC hub.
    let mut tile = ModuleBuilder::new("Tile");
    let req = tile.input("req", 64);
    let rsp = tile.output("rsp", 64);
    let acc = tile.reg("acc", 64, 0);
    tile.connect_sig(&acc, &acc.add(&req));
    tile.connect_sig(&rsp, &acc.add(&req));

    let mut top = ModuleBuilder::new("Soc");
    let i = top.input("i", 64);
    let o = top.output("o", 64);
    top.inst("tile0", "Tile");
    let hub = top.reg("hub", 64, 1);
    top.connect_inst("tile0", "req", &hub);
    let rsp = top.inst_port("tile0", "rsp");
    top.connect_sig(&hub, &rsp.xor(&i));
    top.connect_sig(&o, &hub);
    Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== FireAxe quickstart ==\n");
    let circuit = build_soc();

    for (label, mode) in [
        ("exact-mode", PartitionMode::Exact),
        ("fast-mode ", PartitionMode::Fast),
    ] {
        for platform in [
            Platform::OnPremQsfp,
            Platform::CloudF1,
            Platform::HostManaged,
        ] {
            let spec = PartitionSpec {
                mode,
                channel_policy: ChannelPolicy::Separated,
                groups: vec![PartitionGroup::instances("tile", vec!["tile0".into()])],
            };
            let (design, mut sim) = fireaxe::FireAxe::new(circuit.clone(), spec)
                .platform(platform)
                .clock_mhz(30.0)
                .build()?;
            let cycles = match platform {
                Platform::HostManaged => 50,
                _ => 2_000,
            };
            let m = sim.run_target_cycles(cycles)?;
            println!(
                "{label} on {:24} boundary {:4} bits  ->  {:8.3} MHz  ({} links)",
                format!("{platform:?}:"),
                design.report.total_boundary_width(),
                m.target_mhz(),
                design.links.len(),
            );
        }
    }
    println!("\npaper reference: ~1.6 MHz QSFP, ~1.0 MHz p2p PCIe, 26.4 kHz host-managed");
    Ok(())
}
