//! Case study §V-D (Fig. 10): Golang garbage-collection latency spikes on
//! a 4-core SoC — GOMAXPROCS and CPU-affinity sweep.
//!
//! Run with: `cargo run --release -p fireaxe --example golang_gc`

use fireaxe::workloads::golang_gc::{fig10_sweep, Affinity};

fn main() {
    println!("== Go GC tail latency (paper §V-D, Fig. 10) ==\n");
    println!(
        "{:>11} {:>10}  {:>12} {:>12}",
        "GOMAXPROCS", "affinity", "p95 (us)", "p99 (us)"
    );
    for (g, aff, r) in fig10_sweep() {
        let a = match aff {
            Affinity::OneCore => "1 core",
            Affinity::Spread => "spread",
        };
        println!("{g:>11} {a:>10}  {:>12.0} {:>12.0}", r.p95_us, r.p99_us);
    }
    println!(
        "\npaper shape: GOMAXPROCS=1 shows a huge p99 (GC serializes with the main\n\
         goroutine); pinning threads to one core beats spreading them (cache\n\
         coherence on a weak memory subsystem)."
    );
}
