//! Case study §V-C (Fig. 9): the leaky-DMA effect — NIC DDIO traffic
//! thrashing the LLC's IO ways as more cores forward packets, under
//! crossbar vs ring bus topologies.
//!
//! Run with: `cargo run --release -p fireaxe --example leaky_dma`

use fireaxe::workloads::leaky_dma::{fig9_sweep, BusTopology};

fn main() {
    println!("== Leaky-DMA study (paper §V-C, Fig. 9) ==\n");
    println!(
        "{:>5} {:>6}  {:>12} {:>12} {:>10}",
        "cores", "bus", "Rd Lat (cyc)", "Wr Lat (cyc)", "TX hit %"
    );
    for (cores, topo, r) in fig9_sweep(12) {
        let bus = match topo {
            BusTopology::Xbar => "XBar",
            BusTopology::Ring => "Ring",
        };
        println!(
            "{cores:>5} {bus:>6}  {:>12.1} {:>12.1} {:>9.1}%",
            r.nic_read_avg,
            r.nic_write_avg,
            r.tx_read_hit_rate * 100.0
        );
    }
    println!(
        "\npaper shape: latencies rise with forwarding cores (DDIO contention);\n\
         XBar write latency grows faster than Ring past ~6 cores."
    );
}
