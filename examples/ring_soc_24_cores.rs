//! Case study §V-A: a 24-core SoC on a ring NoC, split across five FPGAs
//! with NoC-partition-mode, hunting the RTL bug that only manifests with
//! larger binaries — and disappears when BOOM is swapped for in-order
//! cores.
//!
//! Run with: `cargo run --release -p fireaxe --example ring_soc_24_cores`
//! (Scale note: we simulate fewer cycles than the paper's 3-billion-cycle
//! run; the bug threshold is scaled accordingly.)

use fireaxe::prelude::*;
use fireaxe::Platform;

fn run(kind: TileKind, heavy: bool, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let tiles = 24;
    let fpgas = 5; // 4 x 6 tiles + SoC subsystem
    let soc = ring_soc(&RingSocConfig {
        tiles,
        tile_kind: kind,
        tile_period: 4,
        subsystem_latency: 8,
        heavy_workload: heavy,
        bug_after: 150, // scaled from "3 billion cycles in"
        ..Default::default()
    });
    let per = tiles / (fpgas - 1);
    let groups: Vec<PartitionGroup> = (0..fpgas - 1)
        .map(|g| PartitionGroup {
            name: format!("fpga{g}"),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: (g * per..(g + 1) * per).collect(),
            },
            fame5: false,
        })
        .collect();
    let (design, mut sim) = fireaxe::FireAxe::new(soc.circuit, PartitionSpec::exact(groups))
        .platform(Platform::OnPremQsfp)
        .build()?;
    let m = sim.run_target_cycles(20_000)?;
    let rest = design.node_index(fpgas - 1, 0);
    let serviced = sim.target(rest).peek("subsys.serviced").to_u64();
    let traps = sim.target(rest).peek("subsys.traps").to_u64();
    println!(
        "{label:<34} {:>2} FPGAs  {:>8} cycles  {:.3} MHz  serviced {:>6}  traps {}",
        design.partitions.len(),
        m.target_cycles,
        m.target_mhz(),
        serviced,
        traps,
    );
    if traps > 0 {
        println!("  -> RTL bug reproduced: SBI trap reported by a BOOM tile");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 24-core ring SoC on 5 FPGAs (paper §V-A, Fig. 6) ==\n");
    run(
        TileKind::Boom(BoomConfig::large()),
        false,
        "BOOM, small binaries:",
    )?;
    run(
        TileKind::Boom(BoomConfig::large()),
        true,
        "BOOM, larger binaries (overlay):",
    )?;
    run(TileKind::InOrder, true, "in-order swap, larger binaries:")?;
    println!(
        "\npaper: bug found 3e9 cycles in at 0.58 MHz; 460x faster than the 1.26 kHz\n\
         commercial software RTL simulator. Swapping in in-order cores isolated the\n\
         bug to the BOOM RTL."
    );
    Ok(())
}
