//! Fully-observed NoC SoC simulation (DESIGN.md §5, "Observability").
//!
//! A 4-tile ring SoC is cut along NoC router boundaries into two
//! partitions and run with every observability surface armed: the
//! always-on event tracer (Chrome `trace_event` export), interval
//! metric sampling (FMR, stall attribution, settle-loop statistics,
//! link reliability activity), and VCD waveform capture of every
//! partition boundary port. The same run is repeated on both backends
//! to show the deterministic columns — target cycle, state digest, and
//! the VCD change set — are identical no matter how the host schedules
//! the partitions.
//!
//! Writes `traced_noc.trace.json` (load it in Perfetto or
//! `chrome://tracing`), `traced_noc.vcd`, and `traced_noc.metrics.csv`
//! into the working directory.

use fireaxe::obs::{to_chrome_json, trace};
use fireaxe::prelude::*;

const CYCLES: u64 = 200;
const SAMPLE_EVERY: u64 = 25;

fn build(backend: Backend, soc: &RingSoc) -> Result<DistributedSim, FlowError> {
    let spec = PartitionSpec::exact(vec![
        PartitionGroup {
            name: "fpga0".into(),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![0, 1],
            },
            fame5: false,
        },
        PartitionGroup {
            name: "fpga1".into(),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![2, 3],
            },
            fame5: false,
        },
    ]);
    let (_, sim) = FireAxe::new(soc.circuit.clone(), spec)
        .backend(backend)
        .observe(ObsSpec {
            sample_interval: SAMPLE_EVERY,
            vcd: true,
            signals: Vec::new(), // every node's boundary ports
        })
        .build()?;
    Ok(sim)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = ring_soc(&RingSocConfig {
        tiles: 4,
        tile_period: 4,
        ..Default::default()
    });

    trace::set_enabled(true);
    let mut des = build(Backend::Des, &soc)?;
    let metrics = des.run_target_cycles(CYCLES)?;
    let des_report = des.obs_report();
    print!("{metrics}");

    let mut thr = build(Backend::Threads(2), &soc)?;
    thr.run_target_cycles(CYCLES)?;
    let thr_report = thr.obs_report();
    trace::set_enabled(false);

    // The deterministic columns agree across backends...
    for (a, b) in des_report
        .metrics
        .nodes
        .iter()
        .zip(&thr_report.metrics.nodes)
    {
        assert_eq!(a.samples.len(), b.samples.len());
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!((sa.cycle, sa.state_digest), (sb.cycle, sb.state_digest));
        }
    }
    // ...and so does the rendered waveform, byte for byte.
    assert_eq!(des_report.vcd, thr_report.vcd);
    println!(
        "\nDES and threaded metric series agree on (cycle, state_digest); \
         waveforms are byte-identical"
    );

    let events = trace::take_events();
    std::fs::write("traced_noc.trace.json", to_chrome_json(&events))?;
    std::fs::write(
        "traced_noc.vcd",
        des_report.vcd.as_deref().unwrap_or_default(),
    )?;
    std::fs::write("traced_noc.metrics.csv", des_report.metrics.to_csv())?;
    println!(
        "wrote traced_noc.trace.json ({} events), traced_noc.vcd, traced_noc.metrics.csv",
        events.len()
    );
    Ok(())
}
