//! Automated partitioning (paper §VIII-B future work): FireRipper
//! estimates per-instance resources, decides what must leave the
//! remainder FPGA, and packs the rest — then the suggestion compiles and
//! runs like any hand-written spec.
//!
//! Run with: `cargo run --release -p fireaxe --example auto_partition`

use fireaxe::prelude::*;
use fireaxe::ripper::{suggest_partitions, AutoPartitionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Automated partitioning (paper §VIII-B) ==\n");

    // An SoC of eight Large-BOOM tiles on a crossbar: ~5.1 MLUTs total,
    // far beyond one U250.
    let soc = xbar_soc(&XbarSocConfig {
        tiles: 8,
        tile_kind: TileKind::Boom(BoomConfig::large()),
        ..Default::default()
    });
    let total = estimate(&soc.circuit);
    let u250 = FpgaSpec::alveo_u250();
    println!(
        "design: {} kLUT total on a {} kLUT FPGA -> cannot fit monolithically\n",
        total.luts / 1000,
        u250.luts / 1000
    );

    let suggestion =
        suggest_partitions(&soc.circuit, &AutoPartitionConfig::for_fpga(u250.clone()))?;
    println!(
        "suggestion: {} extra FPGA(s); remainder at {:.1}% LUT",
        suggestion.groups.len(),
        suggestion.remainder_utilization * 100.0
    );
    for (g, util) in suggestion.groups.iter().zip(&suggestion.group_utilization) {
        println!(
            "  group `{}`: {} instances at {:.1}% LUT{}",
            g.name,
            g.selection_len(),
            util * 100.0,
            if g.fame5 { "  (FAME-5 threadable)" } else { "" }
        );
    }

    // The suggestion is a normal spec: compile and simulate it.
    let spec = PartitionSpec::fast(suggestion.groups);
    let (design, mut sim) = fireaxe::FireAxe::new(soc.circuit, spec).build()?;
    let m = sim.run_target_cycles(1_000)?;
    println!(
        "\ncompiled to {} partitions over {} links; simulated at {:.3} MHz",
        design.partitions.len(),
        design.links.len(),
        m.target_mhz()
    );
    Ok(())
}
