//! Cycle-level out-of-order core performance model with TIP-style CPI
//! attribution.
//!
//! Stands in for running Embench binaries on simulated BOOM RTL (paper
//! §V-B, Figs. 7–8): a deterministic interval-style model that advances
//! cycle by cycle, committing up to the configured issue width subject to
//! frontend supply, ILP, memory stalls, and branch mispredictions — and
//! attributes every *commit slot* to the mechanism that wasted it, which
//! is exactly what the TIP profiler integrated into FireAxe reports.
//!
//! No randomness: event pacing uses fractional accumulators, so two runs
//! of the same (config, profile) pair are identical.

use fireaxe_soc::BoomConfig;

/// Statistical character of one benchmark (derived from its instruction
/// mix; see `embench` for the suite).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: String,
    /// Dynamic instruction count (scaled down from real Embench runs).
    pub instructions: u64,
    /// Average exploitable instruction-level parallelism (independent
    /// instructions per cycle the dataflow permits).
    pub ilp: f64,
    /// Average basic-block length in instructions (fetch breaks at taken
    /// branches, so this caps per-fetch supply).
    pub basic_block: f64,
    /// Branches per instruction.
    pub branch_rate: f64,
    /// Mispredictions per branch.
    pub mispredict_rate: f64,
    /// Memory operations per instruction.
    pub mem_rate: f64,
    /// L1D misses per memory operation.
    pub l1d_miss_rate: f64,
    /// L1I misses per instruction (front-end pressure).
    pub l1i_miss_rate: f64,
}

/// Where commit slots went (the Fig. 8 CPI stack categories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpiStack {
    /// Slots that committed instructions ("base"/committing).
    pub committing: f64,
    /// Slots lost to instruction supply (fetch bandwidth, L1I misses).
    pub frontend: f64,
    /// Slots lost to squashed work after mispredictions.
    pub bad_speculation: f64,
    /// Slots lost to dataflow/execution-unit hazards.
    pub exec_hazard: f64,
    /// Slots lost waiting on data memory.
    pub memory: f64,
}

impl CpiStack {
    /// Total accounted slots.
    pub fn total(&self) -> f64 {
        self.committing + self.frontend + self.bad_speculation + self.exec_hazard + self.memory
    }

    /// Normalizes to fractions of all slots.
    pub fn normalized(&self) -> CpiStack {
        let t = self.total().max(1e-9);
        CpiStack {
            committing: self.committing / t,
            frontend: self.frontend / t,
            bad_speculation: self.bad_speculation / t,
            exec_hazard: self.exec_hazard / t,
            memory: self.memory / t,
        }
    }
}

/// Result of one modeled run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Total cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Commit-slot attribution.
    pub stack: CpiStack,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Wall-clock runtime at a target frequency.
    pub fn runtime_ms(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e9) * 1e3
    }
}

/// Core parameters the model consumes, derived from a [`BoomConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreParams {
    /// Commit/issue width.
    pub issue_width: u32,
    /// Fetch bandwidth in instructions per cycle (2× issue in BOOM).
    pub fetch_width: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Load-queue entries (outstanding memory window).
    pub ldq: u32,
    /// Fetch-buffer entries (decouples fetch from issue).
    pub fetch_buffer: u32,
    /// Misprediction pipeline flush penalty, cycles.
    pub mispredict_penalty: u32,
    /// L1I miss penalty, cycles.
    pub l1i_miss_penalty: u32,
    /// L1D miss penalty (to L2), cycles.
    pub l1d_miss_penalty: u32,
}

impl From<&BoomConfig> for CoreParams {
    fn from(c: &BoomConfig) -> Self {
        CoreParams {
            issue_width: c.issue_width,
            fetch_width: 2 * c.issue_width,
            rob: c.rob_entries,
            ldq: c.ldq_entries,
            fetch_buffer: c.fetch_buf_entries,
            mispredict_penalty: 11,
            l1i_miss_penalty: 14,
            l1d_miss_penalty: 22,
        }
    }
}

/// Runs `profile` on a core with `params`; deterministic.
pub fn run(params: &CoreParams, profile: &WorkloadProfile) -> RunResult {
    let issue = f64::from(params.issue_width);
    let mut committed = 0.0f64;
    let mut cycles = 0u64;
    let mut stack = CpiStack::default();

    // Fractional event accumulators.
    let mut mispredict_acc = 0.0; // counts down committed insts to next flush
    let mut l1i_acc = 0.0;
    let mut l1d_acc = 0.0;
    // Decoupling buffer occupancy (instructions ready to issue).
    let mut fetch_buffer = 0.0;
    let fetch_cap = f64::from(params.fetch_buffer);
    // Outstanding long-latency events steal cycles.
    let mut stall_memory = 0.0f64;
    let mut stall_frontend = 0.0f64;
    let mut stall_flush = 0.0f64;

    let total = profile.instructions as f64;
    while committed < total {
        cycles += 1;
        // Long-latency stalls consume whole cycles first. Memory stalls
        // overlap with the OoO window: only the portion not hidden by the
        // ROB is exposed.
        if stall_flush >= 1.0 {
            stall_flush -= 1.0;
            stack.bad_speculation += issue;
            continue;
        }
        if stall_memory >= 1.0 {
            stall_memory -= 1.0;
            stack.memory += issue;
            continue;
        }
        if stall_frontend >= 1.0 {
            stall_frontend -= 1.0;
            stack.frontend += issue;
            continue;
        }

        // Fetch: limited by fetch width and taken-branch breaks.
        let supply = f64::from(params.fetch_width).min(profile.basic_block * 1.4);
        fetch_buffer = (fetch_buffer + supply).min(fetch_cap);

        // Commit: limited by width, dataflow ILP, and buffered supply.
        let width_limit = issue;
        let ilp_limit = profile.ilp;
        let supply_limit = fetch_buffer;
        let commit_now = width_limit.min(ilp_limit).min(supply_limit).max(0.0);
        fetch_buffer -= commit_now;
        committed += commit_now;

        // Attribute this cycle's slots.
        stack.committing += commit_now;
        let lost = issue - commit_now;
        if lost > 0.0 {
            if supply_limit < width_limit.min(ilp_limit) {
                stack.frontend += lost;
            } else if ilp_limit < width_limit {
                stack.exec_hazard += lost;
            } else {
                stack.committing += 0.0; // width-bound: no loss
            }
        }

        // Schedule future stall events from committed work.
        let c = commit_now;
        mispredict_acc += c * profile.branch_rate * profile.mispredict_rate;
        if mispredict_acc >= 1.0 {
            mispredict_acc -= 1.0;
            stall_flush += f64::from(params.mispredict_penalty);
        }
        l1i_acc += c * profile.l1i_miss_rate;
        if l1i_acc >= 1.0 {
            l1i_acc -= 1.0;
            stall_frontend += f64::from(params.l1i_miss_penalty);
            fetch_buffer = 0.0; // fetch bubble drains the buffer
        }
        l1d_acc += c * profile.mem_rate * profile.l1d_miss_rate;
        if l1d_acc >= 1.0 {
            l1d_acc -= 1.0;
            // The OoO window hides part of the miss: larger ROB/LDQ hide
            // more. Exposure shrinks with window size.
            let window = f64::from(params.rob).min(8.0 * f64::from(params.ldq));
            let hidden = (window / 32.0).min(0.9);
            stall_memory += f64::from(params.l1d_miss_penalty) * (1.0 - hidden);
        }
    }

    RunResult {
        cycles,
        instructions: committed.round() as u64,
        stack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ilp: f64, bb: f64) -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            instructions: 100_000,
            ilp,
            basic_block: bb,
            branch_rate: 0.15,
            mispredict_rate: 0.03,
            mem_rate: 0.25,
            l1d_miss_rate: 0.02,
            l1i_miss_rate: 0.002,
        }
    }

    fn params(issue: u32) -> CoreParams {
        CoreParams {
            issue_width: issue,
            fetch_width: 2 * issue,
            rob: 32 * issue,
            ldq: 8 * issue,
            fetch_buffer: 8 * issue,
            mispredict_penalty: 11,
            l1i_miss_penalty: 14,
            l1d_miss_penalty: 22,
        }
    }

    #[test]
    fn deterministic() {
        let p = profile(6.0, 9.0);
        let a = run(&params(3), &p);
        let b = run(&params(3), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        let p = profile(100.0, 100.0);
        let r = run(&params(3), &p);
        assert!(r.ipc() <= 3.0 + 1e-9);
        assert!(r.ipc() > 2.0, "high-ILP code should approach width");
    }

    #[test]
    fn wider_core_helps_high_ilp_code_only() {
        let high = profile(10.0, 16.0);
        let low = profile(1.6, 16.0);
        let gain_high = run(&params(3), &high).ipc() / run(&params(6), &high).ipc();
        let gain_low = run(&params(3), &low).ipc() / run(&params(6), &low).ipc();
        // Expressed as slowdown of the narrow core: large for high ILP.
        assert!(gain_high < 0.7, "high-ILP gain {gain_high}");
        assert!(gain_low > 0.9, "low-ILP should see little gain {gain_low}");
    }

    #[test]
    fn cpi_stack_accounts_all_slots() {
        let p = profile(4.0, 6.0);
        let r = run(&params(3), &p);
        let slots = r.cycles as f64 * 3.0;
        let accounted = r.stack.total();
        let ratio = accounted / slots;
        assert!((0.9..=1.1).contains(&ratio), "accounted {ratio}");
        let n = r.stack.normalized();
        assert!((n.total() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn low_ilp_shows_exec_hazard_bound() {
        let p = profile(1.5, 16.0);
        let r = run(&params(6), &p);
        let n = r.stack.normalized();
        assert!(
            n.exec_hazard > n.frontend && n.exec_hazard > n.memory,
            "exec hazards should dominate: {n:?}"
        );
    }

    #[test]
    fn misses_hurt() {
        let clean = profile(6.0, 12.0);
        let mut missy = clean.clone();
        missy.l1d_miss_rate = 0.2;
        let a = run(&params(3), &clean);
        let b = run(&params(3), &missy);
        assert!(b.cycles > a.cycles);
        assert!(b.stack.memory > a.stack.memory);
    }

    #[test]
    fn boom_config_conversion() {
        let c = BoomConfig::gc40();
        let p = CoreParams::from(&c);
        assert_eq!(p.issue_width, 6);
        assert_eq!(p.fetch_width, 12);
        assert_eq!(p.rob, 216);
    }
}
