//! Embench™ benchmark profiles (paper Figs. 7–8).
//!
//! Per-benchmark instruction-mix characteristics used by
//! [`crate::core_model`]. Instruction counts are scaled-down but the
//! *mix* parameters are chosen to reproduce the paper's qualitative
//! findings: GC40 BOOM gains ~15.8% average IPC over Large BOOM, with
//! `nettle-aes` (wide, independent rounds — frontend/width-bound on the
//! 3-wide core) gaining ~56% and `nbody` (long dependent FP chains —
//! execution-bound) gaining only ~2%.

use crate::core_model::{run, CoreParams, RunResult, WorkloadProfile};

/// The Embench subset evaluated in Fig. 7.
pub const BENCHMARKS: &[&str] = &[
    "aha-mont64",
    "crc32",
    "cubic",
    "edn",
    "huffbench",
    "matmult-int",
    "md5sum",
    "minver",
    "nbody",
    "nettle-aes",
    "nettle-sha256",
    "nsichneu",
    "picojpeg",
    "primecount",
    "qrduino",
    "slre",
    "statemate",
    "ud",
];

/// The subset shown in the Fig. 8 CPI stacks (chosen in the paper to span
/// a wide range of performance changes).
pub const CPI_STACK_BENCHMARKS: &[&str] = &[
    "nettle-aes",
    "nettle-sha256",
    "matmult-int",
    "huffbench",
    "nbody",
    "cubic",
    "nsichneu",
    "statemate",
];

/// Returns the profile for a benchmark.
///
/// # Panics
///
/// Panics on unknown benchmark names (the suite is fixed).
pub fn profile(name: &str) -> WorkloadProfile {
    // (insts, ilp, basic_block, branch, mispred, mem, l1d_miss, l1i_miss)
    let p: (u64, f64, f64, f64, f64, f64, f64, f64) = match name {
        // Crypto kernels: long unrolled blocks, high ILP -> width-bound.
        "nettle-aes" => (220_000, 4.8, 34.0, 0.04, 0.010, 0.30, 0.004, 0.0015),
        "nettle-sha256" => (200_000, 4.4, 28.0, 0.05, 0.012, 0.22, 0.003, 0.0010),
        "md5sum" => (160_000, 4.0, 22.0, 0.07, 0.015, 0.24, 0.004, 0.0008),
        // Dense linear algebra: good ILP, some memory.
        "matmult-int" => (240_000, 3.9, 18.0, 0.08, 0.008, 0.34, 0.030, 0.0003),
        "ud" => (150_000, 3.5, 14.0, 0.10, 0.015, 0.30, 0.012, 0.0004),
        "minver" => (140_000, 3.4, 12.0, 0.11, 0.018, 0.28, 0.010, 0.0006),
        // FP chains: ILP-starved -> execution-bound.
        "nbody" => (260_000, 1.9, 20.0, 0.06, 0.010, 0.26, 0.006, 0.0003),
        "cubic" => (180_000, 2.2, 16.0, 0.07, 0.012, 0.22, 0.005, 0.0004),
        // Branchy state machines: frontend/speculation-bound.
        "nsichneu" => (170_000, 3.2, 2.6, 0.38, 0.060, 0.18, 0.006, 0.0120),
        "statemate" => (150_000, 3.0, 3.0, 0.34, 0.055, 0.20, 0.005, 0.0100),
        "slre" => (160_000, 3.4, 4.2, 0.28, 0.050, 0.24, 0.008, 0.0060),
        // Mixed integer codes.
        "aha-mont64" => (190_000, 4.0, 10.0, 0.12, 0.020, 0.20, 0.005, 0.0008),
        "crc32" => (200_000, 3.3, 8.0, 0.14, 0.010, 0.30, 0.002, 0.0002),
        "edn" => (210_000, 3.8, 15.0, 0.09, 0.012, 0.32, 0.015, 0.0005),
        "huffbench" => (180_000, 3.6, 5.5, 0.22, 0.045, 0.28, 0.020, 0.0030),
        "picojpeg" => (230_000, 3.5, 7.0, 0.17, 0.030, 0.26, 0.018, 0.0040),
        "primecount" => (190_000, 3.8, 5.0, 0.25, 0.020, 0.08, 0.002, 0.0002),
        "qrduino" => (170_000, 3.6, 9.0, 0.15, 0.025, 0.25, 0.012, 0.0020),
        other => panic!("unknown Embench benchmark `{other}`"),
    };
    WorkloadProfile {
        name: name.to_string(),
        instructions: p.0,
        ilp: p.1,
        basic_block: p.2,
        branch_rate: p.3,
        mispredict_rate: p.4,
        mem_rate: p.5,
        l1d_miss_rate: p.6,
        l1i_miss_rate: p.7,
    }
}

/// Runs the whole suite on a core; returns `(benchmark, result)` pairs.
pub fn run_suite(params: &CoreParams) -> Vec<(String, RunResult)> {
    BENCHMARKS
        .iter()
        .map(|b| (b.to_string(), run(params, &profile(b))))
        .collect()
}

/// Geometric-mean IPC uplift of `new` over `base` across the suite.
pub fn mean_ipc_uplift(base: &CoreParams, new: &CoreParams) -> f64 {
    let mut log_sum = 0.0;
    for b in BENCHMARKS {
        let p = profile(b);
        let r0 = run(base, &p).ipc();
        let r1 = run(new, &p).ipc();
        log_sum += (r1 / r0).ln();
    }
    (log_sum / BENCHMARKS.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_soc::BoomConfig;

    fn large() -> CoreParams {
        CoreParams::from(&BoomConfig::large())
    }

    fn gc40() -> CoreParams {
        CoreParams::from(&BoomConfig::gc40())
    }

    #[test]
    fn all_benchmarks_have_profiles() {
        for b in BENCHMARKS {
            let p = profile(b);
            assert!(p.instructions > 0);
            assert!(p.ilp >= 1.0);
        }
        for b in CPI_STACK_BENCHMARKS {
            assert!(BENCHMARKS.contains(b), "{b} missing from suite");
        }
    }

    #[test]
    #[should_panic(expected = "unknown Embench benchmark")]
    fn unknown_benchmark_panics() {
        profile("quake3");
    }

    #[test]
    fn gc40_average_uplift_matches_paper() {
        // Paper: "GC40 BOOM consistently does well compared to Large BOOM
        // with a 15.8% increase in average IPC."
        let uplift = mean_ipc_uplift(&large(), &gc40());
        assert!(
            (0.10..=0.25).contains(&uplift),
            "average uplift {:.1}% (paper: 15.8%)",
            uplift * 100.0
        );
    }

    #[test]
    fn nettle_aes_gains_most_nbody_least() {
        // Paper: +56% for nettle-aes, +2% for nbody.
        let aes = profile("nettle-aes");
        let nb = profile("nbody");
        let aes_gain = run(&gc40(), &aes).ipc() / run(&large(), &aes).ipc() - 1.0;
        let nbody_gain = run(&gc40(), &nb).ipc() / run(&large(), &nb).ipc() - 1.0;
        assert!(
            (0.35..=0.85).contains(&aes_gain),
            "nettle-aes gain {:.1}% (paper: 56%)",
            aes_gain * 100.0
        );
        assert!(
            (-0.02..=0.10).contains(&nbody_gain),
            "nbody gain {:.1}% (paper: 2%)",
            nbody_gain * 100.0
        );
        assert!(aes_gain > 4.0 * nbody_gain.max(0.01));
    }

    #[test]
    fn cpi_stacks_reflect_bottlenecks() {
        // nettle-aes commits most slots on GC40 ("spends most of its
        // cycles committing"); nbody stalls on hazards.
        let aes = crate::core_model::run(&gc40(), &profile("nettle-aes"));
        let nb = crate::core_model::run(&gc40(), &profile("nbody"));
        let aes_n = aes.stack.normalized();
        let nb_n = nb.stack.normalized();
        assert!(aes_n.committing > 0.5, "aes committing {:?}", aes_n);
        assert!(
            nb_n.exec_hazard > nb_n.committing,
            "nbody should be hazard-bound: {nb_n:?}"
        );
    }

    #[test]
    fn runtime_is_cycles_over_frequency() {
        let p = profile("crc32");
        let r = crate::core_model::run(&large(), &p);
        let ms = r.runtime_ms(3.4);
        assert!((ms - r.cycles as f64 / 3.4e9 * 1e3).abs() < 1e-12);
        // Higher frequency, shorter runtime.
        assert!(r.runtime_ms(5.0) < ms);
    }

    #[test]
    fn suite_runner_covers_every_benchmark() {
        let rows = run_suite(&gc40());
        assert_eq!(rows.len(), BENCHMARKS.len());
        for (name, r) in rows {
            assert!(r.cycles > 0, "{name} ran no cycles");
            assert!(r.ipc() > 0.2 && r.ipc() <= 6.0, "{name} ipc {}", r.ipc());
        }
    }

    #[test]
    fn xeon_beats_both_booms() {
        let xeon = CoreParams::from(&BoomConfig::golden_cove_xeon());
        let mut better = 0;
        for b in BENCHMARKS {
            let p = profile(b);
            if run(&xeon, &p).ipc() >= run(&gc40(), &p).ipc() {
                better += 1;
            }
        }
        assert!(better as f64 >= 0.8 * BENCHMARKS.len() as f64);
    }
}
