//! # fireaxe-workloads — system-level workload models
//!
//! The full-stack studies the paper runs on FireAxe, reimplemented as
//! deterministic performance models driven by the same mechanisms:
//!
//! * [`core_model`] + [`embench`] — an interval-style OoO core model with
//!   TIP-style CPI attribution and Embench instruction-mix profiles
//!   (Figs. 7–8: Large BOOM vs GC40 BOOM vs Xeon);
//! * [`golang_gc`] — the golang/go#18534 GC tail-latency replication
//!   (Fig. 10: GOMAXPROCS and CPU-affinity sweep);
//! * [`leaky_dma`] — the DDIO leaky-DMA study with a DDIO-sliced LLC,
//!   per-core NIC queues, and crossbar-vs-ring buses (Fig. 9).

#![warn(missing_docs)]

pub mod core_model;
pub mod embench;
pub mod golang_gc;
pub mod leaky_dma;

pub use core_model::{run, CoreParams, CpiStack, RunResult, WorkloadProfile};
pub use embench::{mean_ipc_uplift, profile, run_suite, BENCHMARKS, CPI_STACK_BENCHMARKS};
pub use golang_gc::{fig10_sweep, run_study, Affinity, GcStudyConfig, GcStudyResult};
pub use leaky_dma::{fig9_sweep, run_leaky_dma, BusTopology, LeakyDmaConfig, LeakyDmaResult};
