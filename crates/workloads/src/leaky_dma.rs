//! The leaky-DMA effect (paper §V-C, Fig. 9).
//!
//! Models the server-SoC study: a NIC with per-core TX/RX queues doing
//! DDIO — injecting received packets directly into a slice of the LLC (2
//! ways of a 128 kB L2) and fetching transmit packets from it — while a
//! varying number of cores forward packets. When the aggregate packet
//! buffer footprint exceeds the DDIO slice, incoming packets evict
//! not-yet-processed ones and cache lines ping-pong between LLC, DRAM and
//! the cores: the *leaky DMA* problem. We measure, like the paper's NIC
//! hardware counters, the average request→response latency of NIC reads
//! (TX fetch) and NIC writes (RX inject), under two bus topologies —
//! a crossbar (low base latency, one shared server: queueing explodes
//! under load) and a ring NoC (higher per-hop base cost, distributed
//! servers: scales better past ~6 cores).

/// Bus topology under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusTopology {
    /// Central crossbar: single arbitration point.
    Xbar,
    /// Bidirectional ring NoC with shortest-path routing.
    Ring,
}

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakyDmaConfig {
    /// Cores actively forwarding packets (the Fig. 9 x-axis, 1..=12).
    pub forwarding_cores: usize,
    /// Total cores in the SoC (fixes the ring size).
    pub total_cores: usize,
    /// Bus topology.
    pub topology: BusTopology,
    /// LLC (L2) capacity in kB (paper: resized to 128 kB).
    pub llc_kb: u32,
    /// LLC associativity.
    pub llc_ways: u32,
    /// Ways reserved for DDIO (paper: 2).
    pub ddio_ways: u32,
    /// Packet size in bytes (paper: 1500 B).
    pub packet_bytes: u32,
    /// Descriptor-queue depth per core (paper: 128).
    pub descriptors: u32,
    /// Packets forwarded per core in the measurement.
    pub packets_per_core: u32,
    /// Cycles between packet arrivals per core.
    pub packet_interval: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// LLC hit latency in cycles.
    pub llc_latency: u64,
}

impl Default for LeakyDmaConfig {
    fn default() -> Self {
        LeakyDmaConfig {
            forwarding_cores: 1,
            total_cores: 12,
            topology: BusTopology::Xbar,
            llc_kb: 128,
            llc_ways: 8,
            ddio_ways: 2,
            packet_bytes: 1500,
            descriptors: 128,
            packets_per_core: 150,
            packet_interval: 2_600,
            dram_latency: 70,
            llc_latency: 14,
        }
    }
}

/// Measured latencies (the Fig. 9 y-axis).
#[derive(Debug, Clone, PartialEq)]
pub struct LeakyDmaResult {
    /// Average NIC→LLC write (RX inject) latency, cycles.
    pub nic_write_avg: f64,
    /// Average NIC←LLC read (TX fetch) latency, cycles.
    pub nic_read_avg: f64,
    /// LLC hit rate of NIC TX reads.
    pub tx_read_hit_rate: f64,
    /// Total bus transactions.
    pub transactions: u64,
}

const LINE_BYTES: u64 = 64;

#[derive(Debug, Clone, Copy, Default)]
struct LlcEntry {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

struct Llc {
    sets: Vec<Vec<LlcEntry>>,
    ways: usize,
    ddio_ways: usize,
    set_mask: u64,
}

impl Llc {
    fn new(kb: u32, ways: u32, ddio_ways: u32) -> Self {
        let lines = u64::from(kb) * 1024 / LINE_BYTES;
        let sets = (lines / u64::from(ways)).max(1) as usize;
        assert!(
            sets.is_power_of_two(),
            "LLC set count must be a power of two"
        );
        Llc {
            sets: vec![vec![LlcEntry::default(); ways as usize]; sets],
            ways: ways as usize,
            ddio_ways: ddio_ways as usize,
            set_mask: sets as u64 - 1,
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / LINE_BYTES;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    fn lookup(&mut self, addr: u64, now: u64) -> bool {
        let (si, tag) = self.index(addr);
        for e in &mut self.sets[si] {
            if e.valid && e.tag == tag {
                e.last_use = now;
                return true;
            }
        }
        false
    }

    /// Allocates `addr`, restricted to the DDIO slice when `io` is true.
    /// Returns `true` if the evicted victim was dirty (writeback needed).
    fn allocate(&mut self, addr: u64, io: bool, dirty: bool, now: u64) -> bool {
        let (si, tag) = self.index(addr);
        // Already present: update.
        for e in &mut self.sets[si] {
            if e.valid && e.tag == tag {
                e.last_use = now;
                e.dirty |= dirty;
                return false;
            }
        }
        let range = if io { 0..self.ddio_ways } else { 0..self.ways };
        let set = &mut self.sets[si];
        let mut victim = range.start;
        for w in range {
            if !set[w].valid {
                victim = w;
                break;
            }
            if set[w].last_use < set[victim].last_use {
                victim = w;
            }
        }
        let was_dirty = set[victim].valid && set[victim].dirty;
        set[victim] = LlcEntry {
            tag,
            valid: true,
            dirty,
            last_use: now,
        };
        was_dirty
    }
}

/// Bus servers: a single arbiter for the crossbar, one injection server
/// per node for the ring.
struct Bus {
    topology: BusTopology,
    xbar_free: u64,
    node_free: Vec<u64>,
    nodes: usize,
    transactions: u64,
}

impl Bus {
    fn new(topology: BusTopology, nodes: usize) -> Self {
        Bus {
            topology,
            xbar_free: 0,
            node_free: vec![0; nodes],
            nodes,
            transactions: 0,
        }
    }

    /// Issues one line transaction from `src` at time `t`; returns
    /// `(completion_time_of_bus_phase, bus_latency)`.
    fn access(&mut self, src: usize, t: u64) -> (u64, u64) {
        self.transactions += 1;
        match self.topology {
            BusTopology::Xbar => {
                // Central arbiter: base 10 cycles, 2-cycle occupancy.
                let start = t.max(self.xbar_free);
                self.xbar_free = start + 2;
                let done = start + 10;
                (done, done - t)
            }
            BusTopology::Ring => {
                // Injection server per node; shortest-path hops to the
                // LLC home node (node 0) at 3 cycles per hop.
                let hops = {
                    let d = src % self.nodes;
                    d.min(self.nodes - d).max(2) as u64
                };
                let start = t.max(self.node_free[src % self.nodes]);
                self.node_free[src % self.nodes] = start + 2;
                let done = start + 4 + 4 * hops;
                (done, done - t)
            }
        }
    }
}

/// Runs the study for one `(forwarding_cores, topology)` point.
///
/// The simulation interleaves packet phases across cores in event order
/// (RX inject → core forward → NIC TX fetch), so evictions between a
/// packet's injection and its processing — the leaky-DMA mechanism —
/// happen exactly as they would on hardware. The NIC serializes TX
/// fetches at link rate, so transmit backlogs grow with offered load.
pub fn run_leaky_dma(cfg: &LeakyDmaConfig) -> LeakyDmaResult {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut llc = Llc::new(cfg.llc_kb, cfg.llc_ways, cfg.ddio_ways);
    let mut bus = Bus::new(cfg.topology, cfg.total_cores + 2); // + NIC + mem
    let lines_per_packet = u64::from(cfg.packet_bytes).div_ceil(LINE_BYTES);
    let nic_node = cfg.total_cores;

    let ring_bytes = u64::from(cfg.descriptors) * u64::from(cfg.packet_bytes);
    let rx_base = |core: u64| core * 2 * ring_bytes;
    let tx_base = |core: u64| core * 2 * ring_bytes + ring_bytes;

    let mut write_lat_sum = 0.0;
    let mut write_cnt = 0u64;
    let mut read_lat_sum = 0.0;
    let mut read_cnt = 0u64;
    let mut read_hits = 0u64;

    let mut core_free = vec![0u64; cfg.forwarding_cores];
    let mut nic_tx_free = 0u64;
    // NIC link-rate serialization of transmissions, cycles per packet.
    let tx_serialize = 150u64;

    #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
    enum Phase {
        Rx,
        Core,
        Tx,
    }
    // (time, seq for determinism, phase, core, pkt)
    type Event = (u64, u64, Phase, usize, u32);
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for c in 0..cfg.forwarding_cores {
        for k in 0..cfg.packets_per_core {
            let jitter = (c as u64 * 191) % cfg.packet_interval;
            seq += 1;
            heap.push(Reverse((
                u64::from(k) * cfg.packet_interval + jitter,
                seq,
                Phase::Rx,
                c,
                k,
            )));
        }
    }

    while let Some(Reverse((at, _, phase, core, pkt))) = heap.pop() {
        let c = core as u64;
        let desc = u64::from(pkt % cfg.descriptors);
        let rx_addr = rx_base(c) + desc * u64::from(cfg.packet_bytes);
        let tx_addr = tx_base(c) + desc * u64::from(cfg.packet_bytes);
        match phase {
            Phase::Rx => {
                // NIC RX inject: DDIO writes into the LLC IO ways.
                let mut t = at;
                for l in 0..lines_per_packet {
                    let addr = rx_addr + l * LINE_BYTES;
                    let (done, bus_lat) = bus.access(nic_node, t);
                    let dirty_evict = llc.allocate(addr, true, true, done);
                    let lat = bus_lat
                        + cfg.llc_latency
                        + if dirty_evict { cfg.dram_latency / 2 } else { 0 };
                    write_lat_sum += lat as f64;
                    write_cnt += 1;
                    t = done;
                }
                seq += 1;
                heap.push(Reverse((t, seq, Phase::Core, core, pkt)));
            }
            Phase::Core => {
                // Not the core's turn yet: requeue at its free time so bus
                // accesses always happen near the current event time.
                if core_free[core] > at {
                    seq += 1;
                    heap.push(Reverse((core_free[core], seq, Phase::Core, core, pkt)));
                    continue;
                }
                // The core forwards: read RX lines, process, write TX.
                let mut tc = at;
                for l in 0..lines_per_packet {
                    let addr = rx_addr + l * LINE_BYTES;
                    let (done, _bus) = bus.access(core, tc);
                    let hit = llc.lookup(addr, done);
                    tc = done
                        + if hit {
                            cfg.llc_latency
                        } else {
                            cfg.dram_latency
                        };
                }
                tc += 180; // header rewrite / forwarding work
                for l in 0..lines_per_packet {
                    let addr = tx_addr + l * LINE_BYTES;
                    let (done, _bus) = bus.access(core, tc);
                    llc.allocate(addr, false, true, done);
                    tc = done + cfg.llc_latency / 2;
                }
                core_free[core] = tc;
                seq += 1;
                heap.push(Reverse((tc, seq, Phase::Tx, core, pkt)));
            }
            Phase::Tx => {
                // NIC transmits at link rate: wait for the TX port.
                if nic_tx_free > at {
                    seq += 1;
                    heap.push(Reverse((nic_tx_free, seq, Phase::Tx, core, pkt)));
                    continue;
                }
                // NIC TX fetch.
                let mut tn = at;
                for l in 0..lines_per_packet {
                    let addr = tx_addr + l * LINE_BYTES;
                    let (done, bus_lat) = bus.access(nic_node, tn);
                    let hit = llc.lookup(addr, done);
                    let lat = bus_lat
                        + if hit {
                            cfg.llc_latency
                        } else {
                            cfg.dram_latency
                        };
                    if hit {
                        read_hits += 1;
                    }
                    read_lat_sum += lat as f64;
                    read_cnt += 1;
                    tn = done;
                }
                nic_tx_free = tn.max(nic_tx_free) + tx_serialize;
            }
        }
    }

    LeakyDmaResult {
        nic_write_avg: write_lat_sum / write_cnt.max(1) as f64,
        nic_read_avg: read_lat_sum / read_cnt.max(1) as f64,
        tx_read_hit_rate: read_hits as f64 / read_cnt.max(1) as f64,
        transactions: bus.transactions,
    }
}

/// The Fig. 9 sweep: `(cores, topology) -> result` for 1..=max cores.
pub fn fig9_sweep(max_cores: usize) -> Vec<(usize, BusTopology, LeakyDmaResult)> {
    let mut out = Vec::new();
    for topology in [BusTopology::Xbar, BusTopology::Ring] {
        for cores in 1..=max_cores {
            let cfg = LeakyDmaConfig {
                forwarding_cores: cores,
                topology,
                ..Default::default()
            };
            out.push((cores, topology, run_leaky_dma(&cfg)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(cores: usize, topo: BusTopology) -> LeakyDmaResult {
        run_leaky_dma(&LeakyDmaConfig {
            forwarding_cores: cores,
            topology: topo,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic() {
        assert_eq!(at(4, BusTopology::Xbar), at(4, BusTopology::Xbar));
    }

    #[test]
    fn latency_rises_with_core_count() {
        // Paper: "the read and write latencies increase as the number of
        // cores forwarding packets increases" — cache contention on the
        // limited DDIO ways.
        for topo in [BusTopology::Xbar, BusTopology::Ring] {
            let low = at(1, topo);
            let high = at(12, topo);
            assert!(
                high.nic_read_avg > 1.3 * low.nic_read_avg,
                "{topo:?} read: {} -> {}",
                low.nic_read_avg,
                high.nic_read_avg
            );
            assert!(
                high.nic_write_avg > low.nic_write_avg,
                "{topo:?} write: {} -> {}",
                low.nic_write_avg,
                high.nic_write_avg
            );
        }
    }

    #[test]
    fn hit_rate_collapses_with_cores() {
        let low = at(1, BusTopology::Ring);
        let high = at(12, BusTopology::Ring);
        assert!(low.tx_read_hit_rate > high.tx_read_hit_rate + 0.15);
    }

    #[test]
    fn ring_has_higher_overhead_under_low_load() {
        // Paper: "a NoC has a higher per bus transaction overhead compared
        // to a cross-bar under low load".
        let xbar = at(1, BusTopology::Xbar);
        let ring = at(1, BusTopology::Ring);
        assert!(ring.nic_write_avg > xbar.nic_write_avg);
    }

    #[test]
    fn xbar_write_latency_overtakes_ring_at_scale() {
        // Paper: "the write latency of the cross bar bus increases much
        // more quickly than the Ring bus topology, resulting in a longer
        // latency when scaling up to more than 6 cores".
        let x12 = at(12, BusTopology::Xbar);
        let r12 = at(12, BusTopology::Ring);
        assert!(
            x12.nic_write_avg > r12.nic_write_avg,
            "xbar {} vs ring {} at 12 cores",
            x12.nic_write_avg,
            r12.nic_write_avg
        );
        // Growth rate comparison.
        let x1 = at(1, BusTopology::Xbar);
        let r1 = at(1, BusTopology::Ring);
        let x_growth = x12.nic_write_avg / x1.nic_write_avg;
        let r_growth = r12.nic_write_avg / r1.nic_write_avg;
        assert!(x_growth > r_growth, "xbar {x_growth} vs ring {r_growth}");
    }

    #[test]
    fn sweep_has_both_topologies() {
        let s = fig9_sweep(4);
        assert_eq!(s.len(), 8);
    }
}
