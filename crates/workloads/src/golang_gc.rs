//! Golang garbage-collection tail-latency study (paper §V-D, Fig. 10).
//!
//! Models the golang/go#18534 scenario the paper replicates on a 4-core
//! BOOM SoC: a main goroutine woken by a 10 µs periodic tick that
//! allocates aggressively, stressing the garbage collector. We model the
//! Go runtime scheduler (GOMAXPROCS OS threads multiplexing goroutines),
//! a CFS-like OS scheduler time-sharing threads over the allowed CPU
//! affinity set, GC mark work with cooperative preemption, and
//! stop-the-world pauses whose cost grows with the number of
//! participating cores — the cache-coherence mechanism the paper
//! hypothesizes makes *spreading* the threads worse than *pinning* them
//! to one core on a weak memory subsystem.
//!
//! The simulation is deterministic event-driven time in microseconds.

/// CPU affinity policy (the paper's two configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affinity {
    /// All OS threads pinned to a single core.
    OneCore,
    /// Threads spread over GOMAXPROCS cores.
    Spread,
}

/// Study configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GcStudyConfig {
    /// GOMAXPROCS: OS threads available to the Go runtime.
    pub gomaxprocs: u32,
    /// Affinity policy.
    pub affinity: Affinity,
    /// Tick period of the main goroutine, µs.
    pub tick_us: f64,
    /// CPU time per tick handler, µs.
    pub tick_work_us: f64,
    /// Simulated duration, µs.
    pub duration_us: f64,
    /// Execution time between GC cycles, µs.
    pub gc_period_us: f64,
    /// Total GC mark work per cycle, µs of CPU time.
    pub gc_work_us: f64,
    /// Cooperative preemption granularity of GC work when it shares a
    /// thread with the application (GOMAXPROCS=1), µs. Go's mark assists
    /// run long between safepoints.
    pub gc_chunk_us: f64,
    /// OS scheduler timeslice when threads share a core, µs.
    pub timeslice_us: f64,
    /// Work inflation factor when a goroutine's data is shared across
    /// cores (cache-coherence cost on a weak memory subsystem).
    pub coherence_penalty: f64,
    /// Stop-the-world pause base cost, µs.
    pub stw_base_us: f64,
    /// Additional stop-the-world cost per participating core, µs.
    pub stw_per_core_us: f64,
}

impl GcStudyConfig {
    /// The paper's setup: 10 µs tick on a 4-core SoC.
    pub fn paper(gomaxprocs: u32, affinity: Affinity) -> Self {
        GcStudyConfig {
            gomaxprocs,
            affinity,
            tick_us: 10.0,
            tick_work_us: 3.0,
            duration_us: 2_000_000.0,
            gc_period_us: 40_000.0,
            gc_work_us: 9_000.0,
            gc_chunk_us: 3_500.0,
            timeslice_us: 700.0,
            coherence_penalty: 0.55,
            stw_base_us: 120.0,
            stw_per_core_us: 260.0,
        }
    }
}

/// Tail-latency result of one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GcStudyResult {
    /// 95th-percentile tick delay, µs.
    pub p95_us: f64,
    /// 99th-percentile tick delay, µs.
    pub p99_us: f64,
    /// Mean tick delay, µs.
    pub mean_us: f64,
    /// Number of ticks measured.
    pub ticks: usize,
    /// Number of GC cycles that ran.
    pub gc_cycles: u64,
}

/// Runs the study for one configuration.
///
/// The model walks time in `tick_us` steps. State tracks whether a GC
/// cycle is active, how much mark work remains, and — per configuration —
/// how long the main goroutine must wait before its handler runs:
///
/// * `GOMAXPROCS = 1`: GC mark work shares the only thread; the handler
///   waits for the current non-preemptible chunk (up to `gc_chunk_us`)
///   plus queued chunks of the active cycle.
/// * `GOMAXPROCS > 1`, pinned: GC runs on another thread but the same
///   core; the OS scheduler preempts it after at most one timeslice.
/// * `GOMAXPROCS > 1`, spread: the handler has its own core (no queueing)
///   but its work is inflated by the coherence penalty and stop-the-world
///   pauses are longer (more cores to synchronize).
pub fn run_study(cfg: &GcStudyConfig) -> GcStudyResult {
    let cores = match cfg.affinity {
        Affinity::OneCore => 1,
        Affinity::Spread => cfg.gomaxprocs,
    };
    let mut delays: Vec<f64> = Vec::new();
    let mut gc_cycles = 0u64;

    let mut time = 0.0f64;
    let mut exec_since_gc = 0.0f64;
    let mut gc_remaining = 0.0f64; // mark work left in the active cycle
    let mut stw_until = 0.0f64; // absolute time until which the world is stopped
                                // Deterministic phase jitter so ticks sample all GC phases.
    let mut phase = 0.0f64;

    let stw_cost = cfg.stw_base_us + cfg.stw_per_core_us * f64::from(cores.saturating_sub(1));
    // Allocation-proportional mark-assist work the main goroutine must do
    // while a GC cycle is active (the go#18534 mechanism).
    let assist_us = 420.0;
    let spread_mult = 1.0 + cfg.coherence_penalty;

    while time < cfg.duration_us {
        time += cfg.tick_us;
        phase = (phase + 0.618_033_988_749_895 * cfg.tick_us) % 1.0;

        // Handler work, inflated by coherence when threads are spread
        // across cores sharing heap data with the collector.
        let work = if cores > 1 {
            cfg.tick_work_us * spread_mult
        } else {
            cfg.tick_work_us
        };
        exec_since_gc += work;

        // Trigger a GC cycle when enough execution has accumulated.
        if exec_since_gc >= cfg.gc_period_us && gc_remaining <= 0.0 {
            exec_since_gc = 0.0;
            gc_remaining = cfg.gc_work_us;
            gc_cycles += 1;
            stw_until = time + stw_cost; // initial mark pause
        }

        let mut delay = work;
        if time < stw_until {
            delay += stw_until - time; // world stopped: nobody runs
        }
        if gc_remaining > 0.0 {
            if cfg.gomaxprocs == 1 {
                // One thread: GC chunks and the handler serialize. The
                // handler waits for the rest of the current chunk plus any
                // backlog (cooperative preemption only at safepoints).
                let chunk_left = cfg.gc_chunk_us * phase;
                let backlog = gc_remaining.min(cfg.gc_chunk_us);
                delay += chunk_left + backlog;
                // The thread splits wall time between mutator and marker.
                gc_remaining -= (cfg.tick_us - cfg.tick_work_us).max(1.0);
            } else {
                match cfg.affinity {
                    Affinity::OneCore => {
                        // GC thread shares the core; OS preempts it within
                        // a timeslice, after which the handler runs. Mark
                        // assists add allocation-proportional work.
                        delay += cfg.timeslice_us * phase * 0.6 + assist_us * 0.55;
                        gc_remaining -= cfg.tick_us * 0.5;
                    }
                    Affinity::Spread => {
                        // Own core, but assists touch the shared heap the
                        // collector is scanning: coherence-inflated. GC
                        // parallelism is limited by heap contention, so
                        // the mark phase does not shrink with core count.
                        delay += assist_us * spread_mult;
                        gc_remaining -= cfg.tick_us * 0.8;
                        if gc_remaining <= 0.0 {
                            stw_until = time + stw_cost; // mark termination
                        }
                    }
                }
                if cfg.affinity == Affinity::OneCore && gc_remaining <= 0.0 {
                    stw_until = time + stw_cost;
                }
            }
        }
        delays.push(delay);
    }

    delays.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pct = |p: f64| -> f64 {
        if delays.is_empty() {
            return 0.0;
        }
        let idx = ((delays.len() as f64 - 1.0) * p).round() as usize;
        delays[idx]
    };
    GcStudyResult {
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
        ticks: delays.len(),
        gc_cycles,
    }
}

/// Runs the full Fig. 10 sweep: GOMAXPROCS ∈ {1, 2, 4} × affinity.
/// Returns `(gomaxprocs, affinity, result)` rows.
pub fn fig10_sweep() -> Vec<(u32, Affinity, GcStudyResult)> {
    let mut rows = Vec::new();
    for g in [1u32, 2, 4] {
        for aff in [Affinity::OneCore, Affinity::Spread] {
            if g == 1 && aff == Affinity::Spread {
                continue; // one thread cannot spread
            }
            rows.push((g, aff, run_study(&GcStudyConfig::paper(g, aff))));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = GcStudyConfig::paper(2, Affinity::OneCore);
        assert_eq!(run_study(&cfg), run_study(&cfg));
    }

    #[test]
    fn gomaxprocs_one_has_huge_tail() {
        // Paper: "the 99% tail latency is very high when GOMAXPROCS is set
        // to one" — the GC goroutine serializes with the main goroutine.
        let single = run_study(&GcStudyConfig::paper(1, Affinity::OneCore));
        let multi = run_study(&GcStudyConfig::paper(2, Affinity::OneCore));
        assert!(
            single.p99_us > 4.0 * multi.p99_us,
            "single {} vs multi {}",
            single.p99_us,
            multi.p99_us
        );
        assert!(
            single.p99_us > 1_000.0,
            "p99 {} should be ms-scale",
            single.p99_us
        );
    }

    #[test]
    fn pinning_beats_spreading() {
        // Paper's surprising result: pinning all threads to one core gives
        // lower tail latency than spreading them, because of cache
        // coherence overheads on the weak memory subsystem.
        for g in [2u32, 4] {
            let pinned = run_study(&GcStudyConfig::paper(g, Affinity::OneCore));
            let spread = run_study(&GcStudyConfig::paper(g, Affinity::Spread));
            assert!(
                spread.p99_us > pinned.p99_us,
                "GOMAXPROCS={g}: spread {} <= pinned {}",
                spread.p99_us,
                pinned.p99_us
            );
        }
    }

    #[test]
    fn p95_below_p99() {
        for (_, _, r) in fig10_sweep() {
            assert!(r.p95_us <= r.p99_us);
            assert!(r.ticks > 100_000);
            assert!(r.gc_cycles > 10);
        }
    }

    #[test]
    fn sweep_covers_five_bars() {
        assert_eq!(fig10_sweep().len(), 5);
    }
}
