//! Differential proptest: the compiled tape engine must be bit-identical
//! to the tree-walking reference evaluator on randomized circuits.
//!
//! Each case generates a random netlist (mixed narrow/wide signals,
//! registers, memories, optionally a stateful extern behavioral model),
//! runs the same workload through both engines, and compares every
//! elaborated signal after every settle, plus memory contents, port
//! traces, snapshot/restore round-trips, mid-run engine switches, and
//! dirty-skipping on/off.

use fireaxe_ir::build::{ModuleBuilder, Sig};
use fireaxe_ir::interp::BehaviorSnapshot;
use fireaxe_ir::{
    BinOp, Bits, Circuit, CombPath, ExecEngine, Expr, ExternBehavior, ExternInfo, Interpreter,
    Module, Port, ResourceHints, UnOp,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// splitmix64: deterministic per-seed stream for circuit + workload
/// generation, independent of the proptest shim's own PRNG details.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn coin(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// Stateful extern model: comb output mixes input with internal state
/// (so it must never be dirty-skipped), source output publishes state.
#[derive(Debug, Clone, Default)]
struct XorAcc {
    state: u64,
}

impl ExternBehavior for XorAcc {
    fn reset(&mut self) {
        self.state = 0;
    }
    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("s".into(), Bits::from_u64(self.state, 16));
        m
    }
    fn comb_outputs(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        let x = inputs["x"].to_u64();
        let mut m = BTreeMap::new();
        m.insert(
            "y".into(),
            Bits::from_u64(x.rotate_left(3) ^ self.state ^ 0x9E37, 16),
        );
        m
    }
    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        self.state = self
            .state
            .wrapping_mul(3)
            .wrapping_add(inputs["x"].to_u64());
    }
    fn snapshot(&self) -> Option<BehaviorSnapshot> {
        Some(Box::new(self.clone()))
    }
    fn restore(&mut self, snap: &BehaviorSnapshot) -> bool {
        match snap.downcast_ref::<Self>() {
            Some(s) => {
                *self = s.clone();
                true
            }
            None => false,
        }
    }
}

fn xacc_module() -> Module {
    let mut e = Module::new("XAcc");
    e.ports.push(Port::input("x", 16));
    e.ports.push(Port::output("y", 16));
    e.ports.push(Port::output("s", 16));
    e.extern_info = Some(ExternInfo {
        behavior: "xacc".into(),
        comb_paths: vec![CombPath {
            input: "x".into(),
            output: "y".into(),
        }],
        resources: ResourceHints::default(),
    });
    e
}

const WIDTHS: &[u32] = &[1, 2, 5, 8, 13, 16, 31, 32, 33, 63, 64, 65, 80, 100, 128];

fn pick_width(rng: &mut Rng) -> u32 {
    WIDTHS[rng.below(WIDTHS.len() as u64) as usize]
}

/// A mostly-interesting random value of the given width.
fn rand_bits(rng: &mut Rng, w: u32) -> Bits {
    match rng.below(5) {
        0 => Bits::zero(w),
        1 => Bits::ones(w),
        2 => Bits::from_u64(rng.below(4), w),
        _ => Bits::from_words(&[rng.next(), rng.next()], w),
    }
}

struct GenCircuit {
    circuit: Circuit,
    input_widths: Vec<(String, u32)>,
    has_extern: bool,
}

fn gen_circuit(rng: &mut Rng) -> GenCircuit {
    let mut mb = ModuleBuilder::new("T");
    // pool of (signal, static width)
    let mut pool: Vec<(Sig, u32)> = Vec::new();

    let n_inputs = 3 + rng.below(3);
    let mut input_widths = Vec::new();
    for k in 0..n_inputs {
        let w = pick_width(rng);
        let name = format!("i{k}");
        pool.push((mb.input(&name, w), w));
        input_widths.push((name, w));
    }
    for _ in 0..2 {
        let w = pick_width(rng);
        pool.push((Sig::lit(rng.next(), w), w));
    }

    let n_regs = 1 + rng.below(3);
    let mut regs = Vec::new();
    for k in 0..n_regs {
        let w = pick_width(rng);
        let r = mb.reg(format!("r{k}"), w, rng.below(16));
        pool.push((r.clone(), w));
        regs.push(r);
    }

    let has_extern = rng.coin(3);
    // Signals up to this point (inputs, consts, regs) cannot depend on the
    // extern's comb output, so wiring one to its input can't form a cycle.
    let ext_safe_len = pool.len();
    if has_extern {
        mb.inst("xa", "XAcc");
        let y = mb.inst_port("xa", "y");
        let s = mb.inst_port("xa", "s");
        pool.push((y, 16));
        pool.push((s, 16));
    }

    let has_mem = rng.coin(2);
    let mut mem_data_width = 0;
    if has_mem {
        mem_data_width = [8u32, 16, 33, 64, 80][rng.below(5) as usize];
        let depth = 4 + rng.below(12) as u32;
        let m = mb.mem("m0", mem_data_width, depth);
        let pick = rng.below(pool.len() as u64) as usize;
        // Resize the address so reads regularly land in range.
        let raddr = pool[pick].0.resize(4);
        let rd = mb.mem_read("mrd", &m, &raddr);
        pool.push((rd, mem_data_width));
        // Write-port wiring is finished after node generation below.
    }

    let n_nodes = 8 + rng.below(18);
    for k in 0..n_nodes {
        let (a, wa) = pool[rng.below(pool.len() as u64) as usize].clone();
        let (b, wb) = pool[rng.below(pool.len() as u64) as usize].clone();
        let (sig, w) = match rng.below(12) {
            0 => match rng.below(6) {
                0 => (a.add(&b), wa.max(wb)),
                1 => (a.sub(&b), wa.max(wb)),
                2 => (a.mul(&b), wa.max(wb)),
                3 => (a.and(&b), wa.max(wb)),
                4 => (a.or(&b), wa.max(wb)),
                _ => (a.xor(&b), wa.max(wb)),
            },
            1 if wa <= 64 && wb <= 64 => {
                let op = if rng.coin(2) { BinOp::Div } else { BinOp::Rem };
                let e = Expr::Binary(op, Box::new(a.expr().clone()), Box::new(b.expr().clone()));
                (Sig::from_expr(e), wa.max(wb))
            }
            2 => {
                let op = [
                    BinOp::Eq,
                    BinOp::Neq,
                    BinOp::Lt,
                    BinOp::Leq,
                    BinOp::Gt,
                    BinOp::Geq,
                ][rng.below(6) as usize];
                let e = Expr::Binary(op, Box::new(a.expr().clone()), Box::new(b.expr().clone()));
                (Sig::from_expr(e), 1)
            }
            3 => (a.not(), wa),
            4 => {
                let op = [UnOp::OrReduce, UnOp::AndReduce, UnOp::XorReduce][rng.below(3) as usize];
                (
                    Sig::from_expr(Expr::Unary(op, Box::new(a.expr().clone()))),
                    1,
                )
            }
            5 => {
                // Equal-width mux; the mismatched-arm fallback has its own
                // dedicated test below.
                let c = pool[rng.below(pool.len() as u64) as usize].0.clone();
                let f = if wa == wb { b.clone() } else { b.resize(wa) };
                (c.mux(&a, &f), wa)
            }
            6 if wa + wb <= 200 => (a.cat(&b), wa + wb),
            7 => {
                let lo = rng.below(wa as u64) as u32;
                let hi = lo + rng.below((wa - lo) as u64) as u32;
                (a.bits(hi, lo), hi - lo + 1)
            }
            8 => {
                let w = pick_width(rng);
                (a.resize(w), w)
            }
            9 => {
                let n = rng.below(wa as u64 + 2) as u32;
                (a.shl(n), wa)
            }
            10 => {
                let n = rng.below(wa as u64 + 2) as u32;
                (a.shr(n), wa)
            }
            _ => (a.add(&b), wa.max(wb)),
        };
        let node = mb.node(format!("n{k}"), &sig);
        pool.push((node, w));
    }

    if has_extern {
        let (x, _) = pool[rng.below(ext_safe_len as u64) as usize].clone();
        mb.connect_inst("xa", "x", &x);
    }
    if has_mem {
        let waddr = pool[rng.below(pool.len() as u64) as usize].0.resize(4);
        let (wdata, _) = pool[rng.below(pool.len() as u64) as usize].clone();
        let wen = pool[rng.below(pool.len() as u64) as usize].0.resize(1);
        mb.mem_write("m0", &waddr, &wdata, &wen);
        let _ = mem_data_width;
    }
    for r in &regs {
        let (nx, _) = pool[rng.below(pool.len() as u64) as usize].clone();
        mb.connect_sig(r, &nx);
    }
    let n_outs = 2 + rng.below(3);
    for k in 0..n_outs {
        let w = pick_width(rng);
        let o = mb.output(format!("o{k}"), w);
        let (src, _) = pool[rng.below(pool.len() as u64) as usize].clone();
        mb.connect_sig(&o, &src);
    }

    let mut modules = vec![mb.finish()];
    if has_extern {
        modules.push(xacc_module());
    }
    GenCircuit {
        circuit: Circuit::from_modules("T", modules, "T"),
        input_widths,
        has_extern,
    }
}

fn compare_all(seed: u64, at: &str, paths: &[String], gold: &Interpreter, fast: &Interpreter) {
    assert_eq!(
        gold.cycle(),
        fast.cycle(),
        "cycle counters diverged at {at} (seed {seed})"
    );
    for p in paths {
        assert_eq!(
            gold.peek(p),
            fast.peek(p),
            "signal `{p}` diverged at {at} (seed {seed})"
        );
    }
}

fn compare_mems(seed: u64, at: &str, gold: &Interpreter, fast: &Interpreter) {
    for mp in gold.mem_paths() {
        let depth = gold.mem_depth(&mp).unwrap();
        for i in 0..depth {
            assert_eq!(
                gold.peek_mem(&mp, i),
                fast.peek_mem(&mp, i),
                "mem `{mp}`[{i}] diverged at {at} (seed {seed})"
            );
        }
    }
}

fn run_case(seed: u64) {
    let mut rng = Rng(seed);
    let g = gen_circuit(&mut rng);
    let mut gold = Interpreter::with_engine(&g.circuit, ExecEngine::Reference)
        .unwrap_or_else(|e| panic!("reference elaboration failed (seed {seed}): {e}"));
    let mut fast = Interpreter::with_engine(&g.circuit, ExecEngine::Compiled)
        .unwrap_or_else(|e| panic!("compiled elaboration failed (seed {seed}): {e}"));
    assert_eq!(gold.engine(), ExecEngine::Reference);
    assert_eq!(fast.engine(), ExecEngine::Compiled);
    if g.has_extern {
        gold.bind_behavior("xa", Box::new(XorAcc::default()))
            .unwrap();
        fast.bind_behavior("xa", Box::new(XorAcc::default()))
            .unwrap();
        gold.reset();
        fast.reset();
    }
    if rng.coin(4) {
        fast.set_dirty_skipping(false);
    }
    let paths = gold.signal_paths();
    assert_eq!(paths, fast.signal_paths(), "seed {seed}");

    let cycles = 15 + rng.below(25) as usize;
    let mid = cycles / 2;
    let switch_engines = rng.coin(4);
    // Pre-generate the workload so the post-restore replay is identical.
    let mut pokes: Vec<Vec<(String, Bits)>> = Vec::new();
    for _ in 0..cycles {
        let mut v = Vec::new();
        for (name, w) in &g.input_widths {
            // Sometimes leave an input untouched to exercise skipping.
            if !rng.coin(3) {
                v.push((name.clone(), rand_bits(&mut rng, *w)));
            }
        }
        pokes.push(v);
    }

    let mut snap_fast = None;
    for (c, cycle_pokes) in pokes.iter().enumerate() {
        for (n, v) in cycle_pokes {
            gold.poke(n, v.clone());
            fast.poke(n, v.clone());
        }
        gold.eval().unwrap();
        fast.eval().unwrap();
        if rng.coin(4) {
            // Double settle: must be idempotent on both engines.
            gold.eval().unwrap();
            fast.eval().unwrap();
        }
        compare_all(seed, &format!("cycle {c}"), &paths, &gold, &fast);
        if c == mid {
            snap_fast = fast.snapshot();
            assert_eq!(
                snap_fast.is_some(),
                gold.snapshot().is_some(),
                "seed {seed}"
            );
        }
        if switch_engines && c == mid + 1 {
            fast.set_engine(ExecEngine::Reference);
        }
        if switch_engines && c == mid + 3 {
            fast.set_engine(ExecEngine::Compiled);
        }
        gold.tick();
        fast.tick();
    }
    gold.eval().unwrap();
    fast.eval().unwrap();
    compare_all(seed, "final", &paths, &gold, &fast);
    compare_mems(seed, "final", &gold, &fast);

    // Snapshot/restore round trip: replay the recorded tail on the
    // compiled sim and it must land exactly on the reference's final state.
    if let Some(snap) = snap_fast {
        assert!(fast.restore_snapshot(&snap), "seed {seed}");
        assert_eq!(fast.cycle(), mid as u64, "seed {seed}");
        for cycle_pokes in &pokes[mid..] {
            for (n, v) in cycle_pokes {
                fast.poke(n, v.clone());
            }
            fast.eval().unwrap();
            fast.tick();
        }
        fast.eval().unwrap();
        compare_all(seed, "after restore+replay", &paths, &gold, &fast);
        compare_mems(seed, "after restore+replay", &gold, &fast);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn compiled_engine_matches_reference(seed in any::<u64>()) {
        run_case(seed);
    }
}

/// A mux whose arms have different widths has a *dynamic* runtime width
/// in the reference evaluator; the compiled engine must fall back to the
/// tree walker for that definition and still match bit for bit.
#[test]
fn mismatched_mux_arms_match_reference() {
    let mut mb = ModuleBuilder::new("M");
    let c = mb.input("c", 1);
    let a = mb.input("a", 8);
    let b = mb.input("b", 16);
    let o = mb.output("o", 16);
    let m = Sig::from_expr(Expr::Mux(
        Box::new(c.expr().clone()),
        Box::new(a.expr().clone()),
        Box::new(b.expr().clone()),
    ));
    let n = mb.node("m", &m);
    mb.connect_sig(&o, &n);
    let circuit = Circuit::from_modules("M", vec![mb.finish()], "M");
    let mut gold = Interpreter::with_engine(&circuit, ExecEngine::Reference).unwrap();
    let mut fast = Interpreter::with_engine(&circuit, ExecEngine::Compiled).unwrap();
    for (cv, av, bv) in [(0u64, 0xABu64, 0xF00Du64), (1, 0xAB, 0xF00D), (1, 0, 1)] {
        for sim in [&mut gold, &mut fast] {
            sim.poke_u64("c", cv);
            sim.poke_u64("a", av);
            sim.poke_u64("b", bv);
            sim.eval().unwrap();
        }
        assert_eq!(gold.peek("o"), fast.peek("o"), "c={cv} a={av} b={bv}");
    }
}

/// `poke_u64` and `poke` must agree.
#[test]
fn poke_u64_matches_poke() {
    let mut mb = ModuleBuilder::new("P");
    let i = mb.input("i", 12);
    let o = mb.output("o", 12);
    mb.connect_sig(&o, &i);
    let circuit = Circuit::from_modules("P", vec![mb.finish()], "P");
    let mut s1 = Interpreter::new(&circuit).unwrap();
    let mut s2 = Interpreter::new(&circuit).unwrap();
    for v in [0u64, 1, 0xFFF, 0xFFFF, u64::MAX] {
        s1.poke("i", Bits::from_u64(v, 12));
        s2.poke_u64("i", v);
        s1.eval().unwrap();
        s2.eval().unwrap();
        assert_eq!(s1.peek("o"), s2.peek("o"), "v={v:#x}");
    }
}
