//! Combinational dependency analysis.
//!
//! FireRipper (§III-A1 of the FireAxe paper) must know, for every module,
//! which output ports are combinationally dependent on which input ports:
//! *sink* ports (combinationally coupled across the boundary) get their own
//! LI-BDN channels, separate from *source* ports, so a partitioned
//! simulation can make forward progress without deadlocking.
//!
//! The analysis walks modules bottom-up in hierarchy ([`Circuit::topo_order`])
//! so each instance contributes its child's already-computed input→output
//! paths, exactly as the paper describes ("first it topologically sorts the
//! modules ... then it traverses the FIRRTL AST of each module identifying
//! statements that are combinationally dependent on each other").

use crate::ast::*;
use crate::error::{IrError, Result};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Per-module analysis result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleCombInfo {
    /// For each output port: the set of input ports it combinationally
    /// depends on. Outputs with an empty set are *source* ports.
    pub output_deps: BTreeMap<String, BTreeSet<String>>,
}

impl ModuleCombInfo {
    /// Returns `true` if `output` combinationally depends on `input`.
    pub fn depends(&self, output: &str, input: &str) -> bool {
        self.output_deps
            .get(output)
            .is_some_and(|s| s.contains(input))
    }

    /// Output ports with at least one combinational input dependency
    /// (*sink outputs* in the paper's terminology).
    pub fn sink_outputs(&self) -> impl Iterator<Item = &str> {
        self.output_deps
            .iter()
            .filter(|(_, deps)| !deps.is_empty())
            .map(|(o, _)| o.as_str())
    }

    /// Output ports with no combinational input dependency (*source
    /// outputs*): safe to emit a token for before any input arrives.
    pub fn source_outputs(&self) -> impl Iterator<Item = &str> {
        self.output_deps
            .iter()
            .filter(|(_, deps)| deps.is_empty())
            .map(|(o, _)| o.as_str())
    }

    /// Input ports that feed combinational logic reaching some output
    /// (*sink inputs*).
    pub fn sink_inputs(&self) -> BTreeSet<String> {
        self.output_deps
            .values()
            .flat_map(|deps| deps.iter().cloned())
            .collect()
    }

    /// As [`CombPath`] records (used when wrapping modules as externs).
    pub fn to_comb_paths(&self) -> Vec<CombPath> {
        let mut out = Vec::new();
        for (output, deps) in &self.output_deps {
            for input in deps {
                out.push(CombPath {
                    input: input.clone(),
                    output: output.clone(),
                });
            }
        }
        out
    }
}

/// Whole-circuit combinational analysis.
#[derive(Debug, Clone, Default)]
pub struct CombAnalysis {
    per_module: HashMap<String, ModuleCombInfo>,
}

impl CombAnalysis {
    /// Runs the analysis over every module in the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::CombCycle`] if a module contains a combinational
    /// loop (possibly through child instances), or propagates resolution
    /// errors from malformed references.
    pub fn run(circuit: &Circuit) -> Result<Self> {
        let mut per_module = HashMap::new();
        for name in circuit.topo_order() {
            let module = circuit.module(&name).ok_or_else(|| IrError::Malformed {
                message: format!("module `{name}` missing during analysis"),
            })?;
            let info = analyze_module(circuit, module, &per_module)?;
            per_module.insert(name, info);
        }
        Ok(CombAnalysis { per_module })
    }

    /// Analysis result for one module.
    pub fn module(&self, name: &str) -> Option<&ModuleCombInfo> {
        self.per_module.get(name)
    }

    /// Convenience: does `module.output` combinationally depend on
    /// `module.input`?
    pub fn depends(&self, module: &str, output: &str, input: &str) -> bool {
        self.per_module
            .get(module)
            .is_some_and(|m| m.depends(output, input))
    }
}

/// A signal vertex in a module's combinational graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Vertex {
    Local(String),
    InstPort(String, String),
}

impl Vertex {
    fn of_ref(r: &Ref) -> Vertex {
        match &r.instance {
            Some(i) => Vertex::InstPort(i.clone(), r.name.clone()),
            None => Vertex::Local(r.name.clone()),
        }
    }

    fn display(&self) -> String {
        match self {
            Vertex::Local(n) => n.clone(),
            Vertex::InstPort(i, p) => format!("{i}.{p}"),
        }
    }
}

fn analyze_module(
    _circuit: &Circuit,
    module: &Module,
    done: &HashMap<String, ModuleCombInfo>,
) -> Result<ModuleCombInfo> {
    // Extern modules declare their comb paths directly.
    if let Some(info) = &module.extern_info {
        let mut output_deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for p in module.ports_in(Direction::Output) {
            output_deps.entry(p.name.clone()).or_default();
        }
        for cp in &info.comb_paths {
            output_deps
                .entry(cp.output.clone())
                .or_default()
                .insert(cp.input.clone());
        }
        return Ok(ModuleCombInfo { output_deps });
    }

    // Build edge list: `to` combinationally depends on `from`.
    let mut edges: HashMap<Vertex, BTreeSet<Vertex>> = HashMap::new();
    let mut add_edge = |to: Vertex, from: Vertex| {
        edges.entry(to).or_default().insert(from);
    };
    let regs: BTreeSet<&str> = module
        .body
        .iter()
        .filter_map(|s| match s {
            Stmt::Reg { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();

    for stmt in &module.body {
        match stmt {
            Stmt::Node { name, expr } => {
                let mut refs = Vec::new();
                expr.collect_refs(&mut refs);
                for r in refs {
                    add_edge(Vertex::Local(name.clone()), Vertex::of_ref(r));
                }
            }
            Stmt::MemRead { name, addr, .. } => {
                // Combinational read: output depends on the address.
                let mut refs = Vec::new();
                addr.collect_refs(&mut refs);
                for r in refs {
                    add_edge(Vertex::Local(name.clone()), Vertex::of_ref(r));
                }
            }
            Stmt::Connect { lhs, rhs } => {
                // A connect to a register sets its *next* value: no comb edge.
                if lhs.is_local() && regs.contains(lhs.name.as_str()) {
                    continue;
                }
                let mut refs = Vec::new();
                rhs.collect_refs(&mut refs);
                for r in refs {
                    add_edge(Vertex::of_ref(lhs), Vertex::of_ref(r));
                }
            }
            Stmt::Inst { name, module: m } => {
                // Child comb paths: inst.out depends on inst.in.
                let child_info = done.get(m).ok_or_else(|| IrError::Malformed {
                    message: format!("child `{m}` analyzed out of order"),
                })?;
                for (out, deps) in &child_info.output_deps {
                    for dep in deps {
                        add_edge(
                            Vertex::InstPort(name.clone(), out.clone()),
                            Vertex::InstPort(name.clone(), dep.clone()),
                        );
                    }
                }
            }
            Stmt::Wire { .. } | Stmt::Reg { .. } | Stmt::Mem { .. } | Stmt::MemWrite { .. } => {}
        }
    }

    // Detect combinational cycles (registers already excluded above).
    detect_cycle(&edges, &module.name)?;

    // For every output port, find reachable input ports.
    let inputs: BTreeSet<&str> = module
        .ports_in(Direction::Input)
        .map(|p| p.name.as_str())
        .collect();
    let mut output_deps = BTreeMap::new();
    for out in module.ports_in(Direction::Output) {
        let mut reach: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![Vertex::Local(out.name.clone())];
        let mut seen: BTreeSet<Vertex> = BTreeSet::new();
        while let Some(v) = stack.pop() {
            if !seen.insert(v.clone()) {
                continue;
            }
            if let Vertex::Local(n) = &v {
                if inputs.contains(n.as_str()) {
                    reach.insert(n.clone());
                }
            }
            if let Some(preds) = edges.get(&v) {
                stack.extend(preds.iter().cloned());
            }
        }
        output_deps.insert(out.name.clone(), reach);
    }
    Ok(ModuleCombInfo { output_deps })
}

fn detect_cycle(edges: &HashMap<Vertex, BTreeSet<Vertex>>, module: &str) -> Result<()> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<&Vertex, Mark> = HashMap::new();
    // Iterative DFS with an explicit stack to avoid recursion limits on
    // large generated modules.
    for start in edges.keys() {
        if marks.contains_key(start) {
            continue;
        }
        let mut stack: Vec<(&Vertex, usize)> = vec![(start, 0)];
        let mut path: Vec<&Vertex> = Vec::new();
        while let Some((v, child_idx)) = stack.pop() {
            if child_idx == 0 {
                match marks.get(v) {
                    Some(Mark::Done) => continue,
                    Some(Mark::Visiting) => continue,
                    None => {
                        marks.insert(v, Mark::Visiting);
                        path.push(v);
                    }
                }
            }
            let children: Vec<&Vertex> =
                edges.get(v).map(|s| s.iter().collect()).unwrap_or_default();
            if child_idx < children.len() {
                stack.push((v, child_idx + 1));
                let c = children[child_idx];
                match marks.get(c) {
                    Some(Mark::Visiting) => {
                        let mut cycle: Vec<String> = path
                            .iter()
                            .map(|v| format!("{module}.{}", v.display()))
                            .collect();
                        cycle.push(format!("{module}.{}", c.display()));
                        return Err(IrError::CombCycle { cycle });
                    }
                    Some(Mark::Done) => {}
                    None => stack.push((c, 0)),
                }
            } else {
                marks.insert(v, Mark::Done);
                path.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{Bits, Width};

    /// Builds the paper's Fig. 2 module: an adder between input and output
    /// (comb path) plus a register-driven output (source path).
    fn fig2_module(name: &str) -> Module {
        let mut m = Module::new(name);
        m.ports.push(Port::input("sink_in", 8));
        m.ports.push(Port::output("sink_out", 8));
        m.ports.push(Port::output("source_out", 8));
        m.body.push(Stmt::Reg {
            name: "x".into(),
            width: Width::new(8),
            init: Bits::from_u64(1, 8),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("sink_out"),
            rhs: Expr::Binary(
                BinOp::Add,
                Box::new(Expr::reference("sink_in")),
                Box::new(Expr::reference("x")),
            ),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("source_out"),
            rhs: Expr::reference("x"),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("x"),
            rhs: Expr::reference("sink_in"),
        });
        m
    }

    #[test]
    fn classifies_source_and_sink_ports() {
        let c = Circuit::from_modules("T", vec![fig2_module("T")], "T");
        let a = CombAnalysis::run(&c).unwrap();
        let info = a.module("T").unwrap();
        assert!(info.depends("sink_out", "sink_in"));
        assert!(!info.depends("source_out", "sink_in"));
        assert_eq!(info.sink_outputs().collect::<Vec<_>>(), vec!["sink_out"]);
        assert_eq!(
            info.source_outputs().collect::<Vec<_>>(),
            vec!["source_out"]
        );
        assert_eq!(
            info.sink_inputs().into_iter().collect::<Vec<_>>(),
            vec!["sink_in".to_string()]
        );
    }

    #[test]
    fn register_breaks_comb_path() {
        // out <- reg <- in : no combinational dependency.
        let mut m = Module::new("R");
        m.ports.push(Port::input("a", 4));
        m.ports.push(Port::output("y", 4));
        m.body.push(Stmt::Reg {
            name: "r".into(),
            width: Width::new(4),
            init: Bits::zero(4),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("r"),
            rhs: Expr::reference("a"),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("y"),
            rhs: Expr::reference("r"),
        });
        let c = Circuit::from_modules("R", vec![m], "R");
        let a = CombAnalysis::run(&c).unwrap();
        assert!(!a.depends("R", "y", "a"));
    }

    #[test]
    fn paths_compose_through_instances() {
        // Parent wires its input through a child's comb path to its output.
        let child = fig2_module("Child");
        let mut parent = Module::new("Parent");
        parent.ports.push(Port::input("pin", 8));
        parent.ports.push(Port::output("pout", 8));
        parent.ports.push(Port::output("psrc", 8));
        parent.body.push(Stmt::Inst {
            name: "u".into(),
            module: "Child".into(),
        });
        parent.body.push(Stmt::Connect {
            lhs: Ref::instance_port("u", "sink_in"),
            rhs: Expr::reference("pin"),
        });
        parent.body.push(Stmt::Connect {
            lhs: Ref::local("pout"),
            rhs: Expr::Ref(Ref::instance_port("u", "sink_out")),
        });
        parent.body.push(Stmt::Connect {
            lhs: Ref::local("psrc"),
            rhs: Expr::Ref(Ref::instance_port("u", "source_out")),
        });
        let c = Circuit::from_modules("Parent", vec![parent, child], "Parent");
        let a = CombAnalysis::run(&c).unwrap();
        assert!(a.depends("Parent", "pout", "pin"));
        assert!(!a.depends("Parent", "psrc", "pin"));
    }

    #[test]
    fn mem_read_is_combinational() {
        let mut m = Module::new("M");
        m.ports.push(Port::input("addr", 4));
        m.ports.push(Port::output("data", 8));
        m.body.push(Stmt::Mem {
            name: "mem".into(),
            width: Width::new(8),
            depth: 16,
        });
        m.body.push(Stmt::MemRead {
            name: "rd".into(),
            mem: "mem".into(),
            addr: Expr::reference("addr"),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("data"),
            rhs: Expr::reference("rd"),
        });
        let c = Circuit::from_modules("M", vec![m], "M");
        let a = CombAnalysis::run(&c).unwrap();
        assert!(a.depends("M", "data", "addr"));
    }

    #[test]
    fn detects_comb_cycle() {
        let mut m = Module::new("Loop");
        m.ports.push(Port::output("y", 1));
        m.body.push(Stmt::Wire {
            name: "w".into(),
            width: Width::new(1),
        });
        m.body.push(Stmt::Node {
            name: "n".into(),
            expr: Expr::Unary(UnOp::Not, Box::new(Expr::reference("w"))),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("w"),
            rhs: Expr::reference("n"),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("y"),
            rhs: Expr::reference("w"),
        });
        let c = Circuit::from_modules("Loop", vec![m], "Loop");
        assert!(matches!(
            CombAnalysis::run(&c),
            Err(IrError::CombCycle { .. })
        ));
    }

    #[test]
    fn extern_comb_paths_respected() {
        let mut m = Module::new("E");
        m.ports.push(Port::input("req_ready", 1));
        m.ports.push(Port::output("req_valid", 1));
        m.ports.push(Port::output("state", 4));
        m.extern_info = Some(ExternInfo {
            behavior: "model".into(),
            comb_paths: vec![CombPath {
                input: "req_ready".into(),
                output: "req_valid".into(),
            }],
            resources: ResourceHints::default(),
        });
        let c = Circuit::from_modules("E", vec![m], "E");
        let a = CombAnalysis::run(&c).unwrap();
        assert!(a.depends("E", "req_valid", "req_ready"));
        assert!(!a.depends("E", "state", "req_ready"));
    }
}
