//! Pretty-printing circuits to the FireAxe textual IR format.
//!
//! The format is FIRRTL-flavoured and round-trips through
//! [`crate::parser::parse_circuit`]. It exists so partitioned artifacts can
//! be dumped, diffed, and checked into test fixtures.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole circuit.
pub fn print_circuit(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit {} :", circuit.name);
    let _ = writeln!(out, "  top {}", circuit.top);
    for m in &circuit.modules {
        out.push_str(&print_module(m));
    }
    out
}

/// Renders one module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let kw = if module.is_extern() {
        "extern module"
    } else {
        "module"
    };
    let _ = writeln!(out, "  {kw} {} :", module.name);
    for p in &module.ports {
        let _ = writeln!(out, "    {} {} : UInt<{}>", p.direction, p.name, p.width);
    }
    if let Some(info) = &module.extern_info {
        let _ = writeln!(out, "    behavior \"{}\"", info.behavior);
        for cp in &info.comb_paths {
            let _ = writeln!(out, "    comb {} -> {}", cp.input, cp.output);
        }
        let r = &info.resources;
        let _ = writeln!(
            out,
            "    resources luts={} regs={} brams={} dsps={}",
            r.luts, r.regs, r.brams, r.dsps
        );
    }
    for s in &module.body {
        let _ = writeln!(out, "    {}", print_stmt(s));
    }
    out
}

fn print_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Wire { name, width } => format!("wire {name} : UInt<{width}>"),
        Stmt::Node { name, expr } => format!("node {name} = {}", print_expr(expr)),
        Stmt::Reg { name, width, init } => {
            format!("reg {name} : UInt<{width}>, init {}", init.to_u64())
        }
        Stmt::Mem { name, width, depth } => format!("mem {name} : UInt<{width}>[{depth}]"),
        Stmt::MemRead { name, mem, addr } => {
            format!("read {name} = {mem}[{}]", print_expr(addr))
        }
        Stmt::MemWrite {
            mem,
            addr,
            data,
            en,
        } => format!(
            "write {mem}[{}] <= {} when {}",
            print_expr(addr),
            print_expr(data),
            print_expr(en)
        ),
        Stmt::Inst { name, module } => format!("inst {name} of {module}"),
        Stmt::Connect { lhs, rhs } => format!("{lhs} <= {}", print_expr(rhs)),
    }
}

/// Renders one expression in prefix-function syntax.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Lit(b) => format!("UInt<{}>({})", b.width(), b.to_u64()),
        Expr::Ref(r) => r.to_string(),
        Expr::Unary(op, a) => format!("{op}({})", print_expr(a)),
        Expr::Binary(op, a, b) => format!("{op}({}, {})", print_expr(a), print_expr(b)),
        Expr::Mux(c, t, f) => format!(
            "mux({}, {}, {})",
            print_expr(c),
            print_expr(t),
            print_expr(f)
        ),
        Expr::Cat(parts) => {
            let inner: Vec<String> = parts.iter().map(print_expr).collect();
            format!("cat({})", inner.join(", "))
        }
        Expr::Extract(a, hi, lo) => format!("bits({}, {hi}, {lo})", print_expr(a)),
        Expr::Resize(a, w) => format!("resize({}, {w})", print_expr(a)),
        Expr::Shl(a, n) => format!("shl({}, {n})", print_expr(a)),
        Expr::Shr(a, n) => format!("shr({}, {n})", print_expr(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{Bits, Width};

    #[test]
    fn prints_expected_shape() {
        let mut m = Module::new("M");
        m.ports.push(Port::input("a", 4));
        m.ports.push(Port::output("y", 4));
        m.body.push(Stmt::Reg {
            name: "r".into(),
            width: Width::new(4),
            init: Bits::from_u64(2, 4),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("y"),
            rhs: Expr::Binary(
                BinOp::Add,
                Box::new(Expr::reference("a")),
                Box::new(Expr::reference("r")),
            ),
        });
        let c = Circuit::from_modules("M", vec![m], "M");
        let text = print_circuit(&c);
        assert!(text.contains("circuit M :"));
        assert!(text.contains("input a : UInt<4>"));
        assert!(text.contains("reg r : UInt<4>, init 2"));
        assert!(text.contains("y <= add(a, r)"));
    }

    #[test]
    fn prints_extern_metadata() {
        let mut m = Module::new("E");
        m.ports.push(Port::input("x", 8));
        m.ports.push(Port::output("y", 8));
        m.extern_info = Some(ExternInfo {
            behavior: "core".into(),
            comb_paths: vec![CombPath {
                input: "x".into(),
                output: "y".into(),
            }],
            resources: ResourceHints {
                luts: 10,
                regs: 20,
                brams: 1,
                dsps: 0,
            },
        });
        let text = print_module(&m);
        assert!(text.contains("extern module E :"));
        assert!(text.contains("behavior \"core\""));
        assert!(text.contains("comb x -> y"));
        assert!(text.contains("resources luts=10 regs=20 brams=1 dsps=0"));
    }

    #[test]
    fn prints_nested_expressions() {
        let e = Expr::Mux(
            Box::new(Expr::reference("sel")),
            Box::new(Expr::Cat(vec![Expr::lit(1, 2), Expr::reference("a")])),
            Box::new(Expr::Extract(Box::new(Expr::reference("b")), 3, 1)),
        );
        assert_eq!(
            print_expr(&e),
            "mux(sel, cat(UInt<2>(1), a), bits(b, 3, 1))"
        );
    }
}
