//! Ergonomic construction of IR modules.
//!
//! [`ModuleBuilder`] removes the boilerplate of assembling [`Stmt`] lists by
//! hand and [`Sig`] provides method-chaining expression construction:
//!
//! ```
//! use fireaxe_ir::build::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("Counter");
//! let en = mb.input("en", 1);
//! let count = mb.reg("count", 8, 0);
//! let next = en.mux(&count.add(&Sig::lit(1, 8)), &count);
//! mb.connect_sig(&count, &next);
//! let out = mb.output("out", 8);
//! mb.connect_sig(&out, &count);
//! let module = mb.finish();
//! assert_eq!(module.ports.len(), 2);
//! # use fireaxe_ir::build::Sig;
//! ```

use crate::ast::*;
use crate::bits::{Bits, Width};

/// A signal handle: an expression plus convenience combinators.
///
/// `Sig` values are cheap to clone and compose into larger expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Sig(Expr);

impl Sig {
    /// Wraps an arbitrary expression.
    pub fn from_expr(expr: Expr) -> Self {
        Sig(expr)
    }

    /// A literal signal.
    pub fn lit(value: u64, width: impl Into<Width>) -> Self {
        Sig(Expr::lit(value, width))
    }

    /// A literal from a [`Bits`] value.
    pub fn lit_bits(bits: Bits) -> Self {
        Sig(Expr::Lit(bits))
    }

    /// The underlying expression.
    pub fn expr(&self) -> &Expr {
        &self.0
    }

    /// Consumes the handle, returning the expression.
    pub fn into_expr(self) -> Expr {
        self.0
    }

    fn bin(&self, op: BinOp, rhs: &Sig) -> Sig {
        Sig(Expr::Binary(
            op,
            Box::new(self.0.clone()),
            Box::new(rhs.0.clone()),
        ))
    }

    /// Wrapping addition.
    pub fn add(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Add, rhs)
    }

    /// Wrapping subtraction.
    pub fn sub(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Sub, rhs)
    }

    /// Wrapping multiplication.
    pub fn mul(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Mul, rhs)
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::And, rhs)
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Or, rhs)
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Xor, rhs)
    }

    /// Equality comparison (1-bit result).
    pub fn eq(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Eq, rhs)
    }

    /// Inequality comparison (1-bit result).
    pub fn neq(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Neq, rhs)
    }

    /// Unsigned less-than (1-bit result).
    pub fn lt(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Lt, rhs)
    }

    /// Unsigned greater-or-equal (1-bit result).
    pub fn geq(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Geq, rhs)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Sig {
        Sig(Expr::Unary(UnOp::Not, Box::new(self.0.clone())))
    }

    /// OR-reduce to 1 bit.
    pub fn or_reduce(&self) -> Sig {
        Sig(Expr::Unary(UnOp::OrReduce, Box::new(self.0.clone())))
    }

    /// `self ? on_true : on_false` (self must be 1 bit).
    pub fn mux(&self, on_true: &Sig, on_false: &Sig) -> Sig {
        Sig(Expr::Mux(
            Box::new(self.0.clone()),
            Box::new(on_true.0.clone()),
            Box::new(on_false.0.clone()),
        ))
    }

    /// Concatenation with `self` as the high bits.
    pub fn cat(&self, low: &Sig) -> Sig {
        Sig(Expr::Cat(vec![self.0.clone(), low.0.clone()]))
    }

    /// Bit extraction `self[hi:lo]` (inclusive).
    pub fn bits(&self, hi: u32, lo: u32) -> Sig {
        Sig(Expr::Extract(Box::new(self.0.clone()), hi, lo))
    }

    /// Zero-extend or truncate.
    pub fn resize(&self, width: impl Into<Width>) -> Sig {
        Sig(Expr::Resize(Box::new(self.0.clone()), width.into()))
    }

    /// Constant left shift (width preserved).
    pub fn shl(&self, n: u32) -> Sig {
        Sig(Expr::Shl(Box::new(self.0.clone()), n))
    }

    /// Constant right shift (width preserved).
    pub fn shr(&self, n: u32) -> Sig {
        Sig(Expr::Shr(Box::new(self.0.clone()), n))
    }
}

/// Incrementally builds a [`Module`].
///
/// Declaration methods return [`Sig`] handles referencing the declared
/// signal, so the calling code reads like netlist construction in Chisel.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts building a module called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declares an input port and returns a handle to it.
    pub fn input(&mut self, name: impl Into<String>, width: impl Into<Width>) -> Sig {
        let name = name.into();
        self.module.ports.push(Port::input(name.clone(), width));
        Sig(Expr::reference(name))
    }

    /// Declares an output port (to be driven later via [`Self::connect`]).
    pub fn output(&mut self, name: impl Into<String>, width: impl Into<Width>) -> Sig {
        let name = name.into();
        self.module.ports.push(Port::output(name.clone(), width));
        Sig(Expr::reference(name))
    }

    /// Declares an output port and drives it with `expr` in one step.
    pub fn output_expr(&mut self, name: impl Into<String>, expr: Expr) -> Sig {
        let name = name.into();
        // Width of the port is inferred lazily by validation; we store an
        // explicit width when the expression is a literal, else default to
        // a resize-free connect. To keep ports explicit, require callers to
        // state the width via `output` when it cannot be derived; here we
        // derive from literals or fall back to 64 bits.
        let width = match &expr {
            Expr::Lit(b) => b.width(),
            Expr::Resize(_, w) => *w,
            _ => Width::new(0),
        };
        if width.get() > 0 {
            self.module.ports.push(Port::output(name.clone(), width));
        } else {
            panic!("output_expr(`{name}`): width not derivable; use output() + connect() instead");
        }
        self.module.body.push(Stmt::Connect {
            lhs: Ref::local(name.clone()),
            rhs: expr,
        });
        Sig(Expr::reference(name))
    }

    /// Declares a wire.
    pub fn wire(&mut self, name: impl Into<String>, width: impl Into<Width>) -> Sig {
        let name = name.into();
        self.module.body.push(Stmt::Wire {
            name: name.clone(),
            width: width.into(),
        });
        Sig(Expr::reference(name))
    }

    /// Declares a named node defined by `expr`.
    pub fn node(&mut self, name: impl Into<String>, expr: &Sig) -> Sig {
        let name = name.into();
        self.module.body.push(Stmt::Node {
            name: name.clone(),
            expr: expr.0.clone(),
        });
        Sig(Expr::reference(name))
    }

    /// Declares a register with a reset value.
    pub fn reg(&mut self, name: impl Into<String>, width: impl Into<Width>, init: u64) -> Sig {
        let name = name.into();
        let width = width.into();
        self.module.body.push(Stmt::Reg {
            name: name.clone(),
            width,
            init: Bits::from_u64(init, width),
        });
        Sig(Expr::reference(name))
    }

    /// Declares a memory; returns its name for use with
    /// [`Self::mem_read`]/[`Self::mem_write`].
    pub fn mem(&mut self, name: impl Into<String>, width: impl Into<Width>, depth: u32) -> String {
        let name = name.into();
        self.module.body.push(Stmt::Mem {
            name: name.clone(),
            width: width.into(),
            depth,
        });
        name
    }

    /// Adds a combinational read port named `name` reading `mem[addr]`.
    pub fn mem_read(&mut self, name: impl Into<String>, mem: &str, addr: &Sig) -> Sig {
        let name = name.into();
        self.module.body.push(Stmt::MemRead {
            name: name.clone(),
            mem: mem.to_string(),
            addr: addr.0.clone(),
        });
        Sig(Expr::reference(name))
    }

    /// Adds a synchronous write port.
    pub fn mem_write(&mut self, mem: &str, addr: &Sig, data: &Sig, en: &Sig) {
        self.module.body.push(Stmt::MemWrite {
            mem: mem.to_string(),
            addr: addr.0.clone(),
            data: data.0.clone(),
            en: en.0.clone(),
        });
    }

    /// Instantiates a child module; returns the instance name.
    pub fn inst(&mut self, name: impl Into<String>, module: impl Into<String>) -> String {
        let name = name.into();
        self.module.body.push(Stmt::Inst {
            name: name.clone(),
            module: module.into(),
        });
        name
    }

    /// A handle to a child instance port (for reading outputs).
    pub fn inst_port(&self, inst: &str, port: &str) -> Sig {
        Sig(Expr::Ref(Ref::instance_port(inst, port)))
    }

    /// Drives a local signal by name.
    pub fn connect(&mut self, name: &str, rhs: &Sig) {
        self.module.body.push(Stmt::Connect {
            lhs: Ref::local(name),
            rhs: rhs.0.clone(),
        });
    }

    /// Drives the signal a [`Sig`] handle refers to.
    ///
    /// # Panics
    ///
    /// Panics if the handle is not a plain reference (e.g. a composite
    /// expression, which is not a drivable location).
    pub fn connect_sig(&mut self, target: &Sig, rhs: &Sig) {
        match &target.0 {
            Expr::Ref(r) => self.module.body.push(Stmt::Connect {
                lhs: r.clone(),
                rhs: rhs.0.clone(),
            }),
            other => panic!("connect_sig target must be a reference, got {other:?}"),
        }
    }

    /// Drives a child instance's input port.
    pub fn connect_inst(&mut self, inst: &str, port: &str, rhs: &Sig) {
        self.module.body.push(Stmt::Connect {
            lhs: Ref::instance_port(inst, port),
            rhs: rhs.0.clone(),
        });
    }

    /// Finishes, returning the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::validate;

    #[test]
    fn builds_validating_counter() {
        let mut mb = ModuleBuilder::new("Counter");
        let en = mb.input("en", 1);
        let out = mb.output("out", 8);
        let count = mb.reg("count", 8, 0);
        let next = en.mux(&count.add(&Sig::lit(1, 8)), &count);
        mb.connect_sig(&count, &next);
        mb.connect_sig(&out, &count);
        let c = Circuit::from_modules("Counter", vec![mb.finish()], "Counter");
        validate(&c).unwrap();
    }

    #[test]
    fn builds_hierarchy() {
        let mut leaf = ModuleBuilder::new("Inv");
        let a = leaf.input("a", 1);
        let y = leaf.output("y", 1);
        leaf.connect_sig(&y, &a.not());
        let leaf = leaf.finish();

        let mut top = ModuleBuilder::new("Top");
        let i = top.input("i", 1);
        let o = top.output("o", 1);
        let u = top.inst("u0", "Inv");
        top.connect_inst(&u, "a", &i);
        let uy = top.inst_port(&u, "y");
        top.connect_sig(&o, &uy);
        let c = Circuit::from_modules("Top", vec![top.finish(), leaf], "Top");
        validate(&c).unwrap();
    }

    #[test]
    fn builds_memory() {
        let mut mb = ModuleBuilder::new("RegFile");
        let waddr = mb.input("waddr", 4);
        let wdata = mb.input("wdata", 8);
        let wen = mb.input("wen", 1);
        let raddr = mb.input("raddr", 4);
        let rdata = mb.output("rdata", 8);
        let mem = mb.mem("mem", 8, 16);
        mb.mem_write(&mem, &waddr, &wdata, &wen);
        let rd = mb.mem_read("rd", &mem, &raddr);
        mb.connect_sig(&rdata, &rd);
        let c = Circuit::from_modules("RegFile", vec![mb.finish()], "RegFile");
        validate(&c).unwrap();
    }

    #[test]
    #[should_panic(expected = "must be a reference")]
    fn connect_sig_rejects_expressions() {
        let mut mb = ModuleBuilder::new("Bad");
        let a = mb.input("a", 1);
        let e = a.not();
        mb.connect_sig(&e, &a);
    }

    #[test]
    fn sig_combinators_shape() {
        let a = Sig::lit(3, 4);
        let b = Sig::lit(1, 4);
        assert!(matches!(a.add(&b).expr(), Expr::Binary(BinOp::Add, _, _)));
        assert!(matches!(a.bits(2, 0).expr(), Expr::Extract(_, 2, 0)));
        assert!(matches!(a.cat(&b).expr(), Expr::Cat(v) if v.len() == 2));
        assert!(matches!(a.resize(9).expr(), Expr::Resize(_, w) if w.get() == 9));
    }
}
