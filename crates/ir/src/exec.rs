//! Compiled levelized execution engine.
//!
//! This module lowers an elaborated [`Interpreter`] netlist into a flat
//! instruction **tape**: one program per scheduled definition, laid out in
//! topological (levelized) order so a settle pass is a single linear sweep
//! with no recursion and no per-node heap traffic.
//!
//! Three ideas carry the speedup:
//!
//! * **Word packing** — every definition whose operands and result all fit
//!   in 64 bits compiles to straight-line [`NOp`]s over a dense `u64`
//!   temporary arena. Results are written back into the canonical
//!   [`Bits`] slots in place ([`Bits::set_from_u64`]), so the fast path
//!   performs zero heap allocations once warm. Anything wider — or any
//!   construct whose runtime width is dynamic (width-mismatched mux
//!   arms) — falls back to the tree-walking [`CExpr`] evaluator for that
//!   one definition, preserving exact reference semantics including its
//!   documented panics.
//! * **Slot-indexed extern bindings** — extern behavioral models keep a
//!   persistent, name-sorted input buffer that is refreshed by zipping
//!   slot indices against the buffer entries; the per-call
//!   `BTreeMap<String, Bits>` construction is gone.
//! * **Dirty-set skipping** — elaboration-time fanout lists (slot →
//!   reading tape positions) let the sweep skip definitions whose inputs
//!   did not change. Externally written slots (top inputs, registers,
//!   extern source outputs) are *roots* diffed against shadows at the
//!   start of each settle; memory writes mark their readers at commit.
//!   Extern combinational programs are never skipped (models may be
//!   stateful), and multi-writer slots force their writers to always run,
//!   so call counts and settle order match the reference engine exactly.
//!
//! The tree-walking evaluator remains the golden model: the compiled
//! engine is validated bit-for-bit against it by differential proptests.

use crate::ast::BinOp;
use crate::bits::Bits;
use crate::error::Result;
use crate::interp::{run_extern_comb, DefKind, Interpreter};

/// Selects how an [`Interpreter`] settles and latches each target cycle.
///
/// Both engines maintain the same canonical architectural state (value
/// slots, memories, extern models), so they can be switched at any cycle
/// boundary and produce bit-identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Flat levelized instruction tape with a word-packed `u64` fast path
    /// and dirty-set skipping — the default.
    #[default]
    Compiled,
    /// The original tree-walking evaluator, kept as the differential
    /// golden reference.
    Reference,
}

impl ExecEngine {
    /// Engine selected by the `FIREAXE_ENGINE` environment variable
    /// (`reference`/`tree` pick the tree-walker; anything else, including
    /// unset, picks [`ExecEngine::Compiled`]).
    pub fn from_env() -> Self {
        match std::env::var("FIREAXE_ENGINE").ok().as_deref() {
            Some("reference") | Some("tree") => ExecEngine::Reference,
            _ => ExecEngine::Compiled,
        }
    }
}

/// Cumulative settle-loop statistics, kept by both engines and read via
/// `Interpreter::exec_stats`. All counters are since elaboration (they
/// survive `reset`), so consumers sample them over time and difference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Combinational settle passes (`eval` calls).
    pub settle_passes: u64,
    /// Definitions executed across all settle passes.
    pub defs_run: u64,
    /// Definitions the dirty-set scheduler skipped (compiled engine
    /// only; always 0 on the reference engine, which sweeps the full
    /// schedule).
    pub defs_skipped: u64,
}

impl ExecStats {
    /// Fraction of definitions skipped by dirty-set scheduling, in
    /// `[0, 1]` (0 before anything ran).
    pub fn dirty_skip_rate(&self) -> f64 {
        let total = self.defs_run + self.defs_skipped;
        if total == 0 {
            return 0.0;
        }
        self.defs_skipped as f64 / total as f64
    }
}

/// Operand of a narrow (word-packed) instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NSrc {
    /// Read the low word of a canonical value slot (width ≤ 64 by
    /// construction, so the low word is the whole value).
    Slot(u32),
    /// Read a `u64` temporary written earlier in the same program.
    Tmp(u32),
    /// An inline constant.
    Const(u64),
}

/// One word-packed instruction. Every instruction writes the `u64`
/// temporary `dst`; masks are precomputed at compile time so execution is
/// branch-light integer arithmetic.
#[derive(Debug, Clone)]
pub(crate) enum NOp {
    /// Binary op at `max(width)` bits; `mask` truncates the result.
    Bin {
        op: BinOp,
        a: NSrc,
        b: NSrc,
        mask: u64,
        dst: u32,
    },
    /// Bitwise NOT at the operand's width.
    Not { a: NSrc, mask: u64, dst: u32 },
    /// OR-reduction to one bit.
    RedOr { a: NSrc, dst: u32 },
    /// AND-reduction: `a == full` where `full` is the operand's all-ones.
    RedAnd { a: NSrc, full: u64, dst: u32 },
    /// XOR-reduction (parity).
    RedXor { a: NSrc, dst: u32 },
    /// `if c != 0 { t } else { f }`; arms have equal widths.
    Mux { c: NSrc, t: NSrc, f: NSrc, dst: u32 },
    /// `(hi << shift) | lo`; total width ≤ 64 so no mask is needed.
    Cat {
        hi: NSrc,
        lo: NSrc,
        shift: u32,
        dst: u32,
    },
    /// `(a >> lo) & mask`.
    Extract {
        a: NSrc,
        lo: u32,
        mask: u64,
        dst: u32,
    },
    /// Truncate or zero-extend to a new width: `a & mask`.
    Resize { a: NSrc, mask: u64, dst: u32 },
    /// Left shift keeping the operand width.
    Shl {
        a: NSrc,
        n: u32,
        mask: u64,
        dst: u32,
    },
    /// Right shift keeping the operand width.
    Shr { a: NSrc, n: u32, dst: u32 },
}

/// The compiled form of one scheduled definition.
#[derive(Debug)]
pub(crate) enum Program {
    /// Word-packed expression: run `ops`, read `out`, store into `slot`.
    Narrow { ops: Vec<NOp>, out: NSrc, slot: u32 },
    /// Word-packed memory read: run `ops` for the address, index `mem`.
    NarrowMem {
        ops: Vec<NOp>,
        addr: NSrc,
        mem: u32,
        slot: u32,
    },
    /// Fall back to the tree-walking evaluator for definition `di`.
    Tree { di: u32 },
    /// Extern combinational model call for definition `di` (always run).
    Extern { di: u32 },
}

/// Compiled register next-value computation, run at `tick`.
#[derive(Debug)]
pub(crate) enum RegExec {
    /// Word-packed: result already masked to the register's width.
    Narrow { ops: Vec<NOp>, out: NSrc, slot: u32 },
    /// Tree-walk `regs[ri].next` like the reference engine.
    Tree { ri: u32 },
}

/// Compiled memory write port, run at `tick`.
#[derive(Debug)]
pub(crate) enum MemWExec {
    /// All of enable/address/data word-packed and the memory ≤ 64 bits
    /// wide; `dmask` truncates the data to the memory width.
    Narrow {
        mi: u32,
        ops: Vec<NOp>,
        en: NSrc,
        addr: NSrc,
        data: NSrc,
        dmask: u64,
    },
    /// Tree-walk port `port` of memory `mi`.
    Tree { mi: u32, port: u32 },
}

/// Pending register value awaiting commit (kept in register order).
#[derive(Debug)]
enum RegPend {
    N(u32, u64),
    W(u32, Bits),
}

/// Pending memory write value awaiting commit (kept in port order).
#[derive(Debug)]
enum PendVal {
    N(u64),
    W(Bits),
}

/// An externally written slot diffed against a shadow at settle start.
#[derive(Debug)]
enum Root {
    Narrow { slot: u32, shadow: u64 },
    Wide { slot: u32, shadow: Bits },
}

/// The compiled execution state attached to an [`Interpreter`].
///
/// Everything in here is derived from the interpreter's architectural
/// state: snapshots never capture the tape, and any external state change
/// (reset, snapshot restore, engine switch) simply sets [`Tape::force_all`].
#[derive(Debug)]
pub(crate) struct Tape {
    /// One program per schedule position, in schedule order.
    programs: Vec<Program>,
    /// Positions to run this settle pass.
    dirty: Vec<bool>,
    /// Positions that must run every pass (externs, multi-writer slots,
    /// writers of externally written slots).
    always_dirty: Vec<bool>,
    /// slot → tape positions reading it.
    fanout: Vec<Vec<u32>>,
    /// memory → tape positions reading it.
    mem_users: Vec<Vec<u32>>,
    /// Externally written slots and their shadows.
    roots: Vec<Root>,
    reg_exec: Vec<RegExec>,
    memw_exec: Vec<MemWExec>,
    pending_regs: Vec<RegPend>,
    pending_mems: Vec<(u32, u32, PendVal)>,
    /// Memories written since the last settle pass.
    mem_dirty: Vec<bool>,
    /// Shared `u64` temporary arena, sized for the largest program.
    tmps: Vec<u64>,
    /// Run everything next pass and refresh all shadows.
    pub(crate) force_all: bool,
    /// Dirty-set skipping enabled (otherwise every pass runs everything).
    pub(crate) skip: bool,
}

#[inline]
fn mask(w: u32) -> u64 {
    match w {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << w) - 1,
    }
}

#[inline(always)]
fn nread(src: NSrc, tmps: &[u64], slots: &[Bits]) -> u64 {
    match src {
        NSrc::Slot(i) => slots[i as usize].to_u64(),
        NSrc::Tmp(i) => tmps[i as usize],
        NSrc::Const(c) => c,
    }
}

fn run_nops(ops: &[NOp], tmps: &mut [u64], slots: &[Bits]) {
    for op in ops {
        match *op {
            NOp::Bin {
                op,
                a,
                b,
                mask,
                dst,
            } => {
                let a = nread(a, tmps, slots);
                let b = nread(b, tmps, slots);
                tmps[dst as usize] = match op {
                    BinOp::Add => a.wrapping_add(b) & mask,
                    BinOp::Sub => a.wrapping_sub(b) & mask,
                    BinOp::Mul => a.wrapping_mul(b) & mask,
                    BinOp::Div => a.checked_div(b).unwrap_or(0),
                    BinOp::Rem => a.checked_rem(b).unwrap_or(0),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Eq => u64::from(a == b),
                    BinOp::Neq => u64::from(a != b),
                    BinOp::Lt => u64::from(a < b),
                    BinOp::Leq => u64::from(a <= b),
                    BinOp::Gt => u64::from(a > b),
                    BinOp::Geq => u64::from(a >= b),
                };
            }
            NOp::Not { a, mask, dst } => {
                tmps[dst as usize] = !nread(a, tmps, slots) & mask;
            }
            NOp::RedOr { a, dst } => {
                tmps[dst as usize] = u64::from(nread(a, tmps, slots) != 0);
            }
            NOp::RedAnd { a, full, dst } => {
                tmps[dst as usize] = u64::from(nread(a, tmps, slots) == full);
            }
            NOp::RedXor { a, dst } => {
                tmps[dst as usize] = u64::from(nread(a, tmps, slots).count_ones() % 2 == 1);
            }
            NOp::Mux { c, t, f, dst } => {
                tmps[dst as usize] = if nread(c, tmps, slots) != 0 {
                    nread(t, tmps, slots)
                } else {
                    nread(f, tmps, slots)
                };
            }
            NOp::Cat { hi, lo, shift, dst } => {
                let l = nread(lo, tmps, slots);
                tmps[dst as usize] = if shift >= 64 {
                    l
                } else {
                    (nread(hi, tmps, slots) << shift) | l
                };
            }
            NOp::Extract { a, lo, mask, dst } => {
                tmps[dst as usize] = (nread(a, tmps, slots) >> lo) & mask;
            }
            NOp::Resize { a, mask, dst } => {
                tmps[dst as usize] = nread(a, tmps, slots) & mask;
            }
            NOp::Shl { a, n, mask, dst } => {
                let v = nread(a, tmps, slots);
                tmps[dst as usize] = if n >= 64 { 0 } else { (v << n) & mask };
            }
            NOp::Shr { a, n, dst } => {
                let v = nread(a, tmps, slots);
                tmps[dst as usize] = if n >= 64 { 0 } else { v >> n };
            }
        }
    }
}

/// Word-packing compiler: lowers a [`CExpr`] to [`NOp`]s, or gives up
/// (returning `None`) when any intermediate exceeds 64 bits or has a
/// dynamic runtime width.
struct NCompiler<'a> {
    slots: &'a [Bits],
    ops: Vec<NOp>,
    ntmp: u32,
}

use crate::interp::CExpr;

impl<'a> NCompiler<'a> {
    fn new(slots: &'a [Bits]) -> Self {
        NCompiler {
            slots,
            ops: Vec::new(),
            ntmp: 0,
        }
    }

    fn tmp(&mut self) -> u32 {
        let t = self.ntmp;
        self.ntmp += 1;
        t
    }

    /// Compiles `e`; returns the value source and its static width.
    fn go(&mut self, e: &CExpr) -> Option<(NSrc, u32)> {
        match e {
            CExpr::Lit(b) => {
                let w = b.width().get();
                (w <= 64).then(|| (NSrc::Const(b.to_u64()), w))
            }
            CExpr::Slot(i) => {
                let w = self.slots[*i].width().get();
                (w <= 64).then_some((NSrc::Slot(*i as u32), w))
            }
            CExpr::Unary(op, a) => {
                let (a, wa) = self.go(a)?;
                use crate::ast::UnOp;
                let dst = self.tmp();
                let (op, w) = match op {
                    UnOp::Not => (
                        NOp::Not {
                            a,
                            mask: mask(wa),
                            dst,
                        },
                        wa,
                    ),
                    UnOp::OrReduce => (NOp::RedOr { a, dst }, 1),
                    UnOp::AndReduce => {
                        if wa == 0 {
                            // reduce_and of a zero-width value is defined
                            // as 0; encode it as a constant resize.
                            (NOp::Resize { a, mask: 0, dst }, 1)
                        } else {
                            (
                                NOp::RedAnd {
                                    a,
                                    full: mask(wa),
                                    dst,
                                },
                                1,
                            )
                        }
                    }
                    UnOp::XorReduce => (NOp::RedXor { a, dst }, 1),
                };
                self.ops.push(op);
                Some((NSrc::Tmp(dst), w))
            }
            CExpr::Binary(op, a, b) => {
                let (a, wa) = self.go(a)?;
                let (b, wb) = self.go(b)?;
                let w = wa.max(wb);
                let cmp = matches!(
                    op,
                    BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Leq | BinOp::Gt | BinOp::Geq
                );
                let dst = self.tmp();
                self.ops.push(NOp::Bin {
                    op: *op,
                    a,
                    b,
                    mask: mask(w),
                    dst,
                });
                Some((NSrc::Tmp(dst), if cmp { 1 } else { w }))
            }
            CExpr::Mux(c, t, f) => {
                let (c, _) = self.go(c)?;
                let (t, wt) = self.go(t)?;
                let (f, wf) = self.go(f)?;
                if wt != wf {
                    // The reference evaluator returns the taken arm at its
                    // own width, making the result width dynamic.
                    return None;
                }
                let dst = self.tmp();
                self.ops.push(NOp::Mux { c, t, f, dst });
                Some((NSrc::Tmp(dst), wt))
            }
            CExpr::Cat(parts) => {
                let mut it = parts.iter();
                let Some(first) = it.next() else {
                    return Some((NSrc::Const(0), 0));
                };
                let (mut acc, mut wacc) = self.go(first)?;
                for p in it {
                    let (lo, wlo) = self.go(p)?;
                    if wacc + wlo > 64 {
                        return None;
                    }
                    let dst = self.tmp();
                    self.ops.push(NOp::Cat {
                        hi: acc,
                        lo,
                        shift: wlo,
                        dst,
                    });
                    acc = NSrc::Tmp(dst);
                    wacc += wlo;
                }
                Some((acc, wacc))
            }
            CExpr::Extract(a, hi, lo) => {
                let (a, wa) = self.go(a)?;
                if *hi >= wa {
                    // The reference evaluator panics here; keep that
                    // behavior by falling back to the tree walker.
                    return None;
                }
                let w = hi - lo + 1;
                let dst = self.tmp();
                self.ops.push(NOp::Extract {
                    a,
                    lo: *lo,
                    mask: mask(w),
                    dst,
                });
                Some((NSrc::Tmp(dst), w))
            }
            CExpr::Resize(a, w) => {
                let wn = w.get();
                if wn > 64 {
                    return None;
                }
                let (a, _) = self.go(a)?;
                let dst = self.tmp();
                self.ops.push(NOp::Resize {
                    a,
                    mask: mask(wn),
                    dst,
                });
                Some((NSrc::Tmp(dst), wn))
            }
            CExpr::Shl(a, n) => {
                let (a, wa) = self.go(a)?;
                let dst = self.tmp();
                self.ops.push(NOp::Shl {
                    a,
                    n: *n,
                    mask: mask(wa),
                    dst,
                });
                Some((NSrc::Tmp(dst), wa))
            }
            CExpr::Shr(a, n) => {
                let (a, wa) = self.go(a)?;
                let dst = self.tmp();
                self.ops.push(NOp::Shr { a, n: *n, dst });
                Some((NSrc::Tmp(dst), wa))
            }
        }
    }
}

impl Tape {
    /// Lowers the elaborated netlist into a tape. Pure function of the
    /// interpreter's structure; the first settle pass runs everything.
    pub(crate) fn build(interp: &Interpreter) -> Tape {
        let n_slots = interp.slots.len();
        let n_pos = interp.schedule.len();

        // Writer counts identify multi-writer slots (their writers must
        // always run so last-writer-wins settle order is preserved).
        let mut writer_count = vec![0u32; n_slots];
        for d in &interp.defs {
            for &w in &d.writes {
                writer_count[w] += 1;
            }
        }

        // Externally written slots: top inputs (poke), register slots
        // (tick commit), extern source outputs (publish). These are the
        // dirt roots; if any of them *also* has a writer definition, that
        // definition must always run or a poke could stick where the
        // reference engine would overwrite it.
        let mut ext_written = vec![false; n_slots];
        for (_, s) in &interp.top_inputs {
            ext_written[*s] = true;
        }
        for r in &interp.regs {
            ext_written[r.slot] = true;
        }
        for e in &interp.externs {
            for (_, s) in &e.source_output_slots {
                ext_written[*s] = true;
            }
        }

        let mut programs = Vec::with_capacity(n_pos);
        let mut always_dirty = vec![false; n_pos];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n_slots];
        let mut mem_users: Vec<Vec<u32>> = vec![Vec::new(); interp.mems.len()];
        let mut max_tmp = 0u32;

        for (pos, &di) in interp.schedule.iter().enumerate() {
            let def = &interp.defs[di];
            let forced = def
                .writes
                .iter()
                .any(|&w| writer_count[w] > 1 || ext_written[w]);
            let program = match &def.kind {
                DefKind::ExternComb { .. } => {
                    // Models may be stateful: never skip.
                    always_dirty[pos] = true;
                    Program::Extern { di: di as u32 }
                }
                DefKind::Expr(e) => {
                    let slot = def.writes[0];
                    let slot_w = interp.slots[slot].width().get();
                    let mut nc = NCompiler::new(&interp.slots);
                    match nc.go(e) {
                        Some((out, w)) if !forced && w == slot_w => {
                            max_tmp = max_tmp.max(nc.ntmp);
                            Program::Narrow {
                                ops: nc.ops,
                                out,
                                slot: slot as u32,
                            }
                        }
                        _ => {
                            always_dirty[pos] |= forced;
                            Program::Tree { di: di as u32 }
                        }
                    }
                }
                DefKind::MemRead { mem, addr } => {
                    mem_users[*mem].push(pos as u32);
                    let slot = def.writes[0];
                    let mem_w = interp.mems[*mem].width.get();
                    let mut nc = NCompiler::new(&interp.slots);
                    match nc.go(addr) {
                        Some((out, _)) if !forced && mem_w <= 64 => {
                            max_tmp = max_tmp.max(nc.ntmp);
                            Program::NarrowMem {
                                ops: nc.ops,
                                addr: out,
                                mem: *mem as u32,
                                slot: slot as u32,
                            }
                        }
                        _ => {
                            always_dirty[pos] |= forced;
                            Program::Tree { di: di as u32 }
                        }
                    }
                }
            };
            let mut reads = def.reads.clone();
            reads.sort_unstable();
            reads.dedup();
            for r in reads {
                fanout[r].push(pos as u32);
            }
            programs.push(program);
        }

        // Roots: slots with no writer definition plus every externally
        // written slot, each shadowed for change detection.
        let mut roots = Vec::new();
        for (s, b) in interp.slots.iter().enumerate() {
            if writer_count[s] == 0 || ext_written[s] {
                roots.push(if b.width().get() <= 64 {
                    Root::Narrow {
                        slot: s as u32,
                        shadow: b.to_u64(),
                    }
                } else {
                    Root::Wide {
                        slot: s as u32,
                        shadow: b.clone(),
                    }
                });
            }
        }

        let mut reg_exec = Vec::new();
        for (ri, r) in interp.regs.iter().enumerate() {
            let Some(next) = &r.next else { continue };
            let w = interp.slots[r.slot].width().get();
            let mut nc = NCompiler::new(&interp.slots);
            let compiled = nc.go(next).map(|(src, _)| {
                // Mirror the reference engine's final `.resize(w)`.
                let dst = nc.tmp();
                nc.ops.push(NOp::Resize {
                    a: src,
                    mask: mask(w),
                    dst,
                });
                NSrc::Tmp(dst)
            });
            reg_exec.push(match compiled {
                Some(out) if w <= 64 => {
                    max_tmp = max_tmp.max(nc.ntmp);
                    RegExec::Narrow {
                        ops: nc.ops,
                        out,
                        slot: r.slot as u32,
                    }
                }
                _ => RegExec::Tree { ri: ri as u32 },
            });
        }

        let mut memw_exec = Vec::new();
        for (mi, m) in interp.mems.iter().enumerate() {
            let mem_w = m.width.get();
            for (port, (addr, data, en)) in m.writes.iter().enumerate() {
                let mut nc = NCompiler::new(&interp.slots);
                let triple = (|| {
                    let (en, _) = nc.go(en)?;
                    let (addr, _) = nc.go(addr)?;
                    let (data, _) = nc.go(data)?;
                    Some((en, addr, data))
                })();
                memw_exec.push(match triple {
                    Some((en, addr, data)) if mem_w <= 64 => {
                        max_tmp = max_tmp.max(nc.ntmp);
                        MemWExec::Narrow {
                            mi: mi as u32,
                            ops: nc.ops,
                            en,
                            addr,
                            data,
                            dmask: mask(mem_w),
                        }
                    }
                    _ => MemWExec::Tree {
                        mi: mi as u32,
                        port: port as u32,
                    },
                });
            }
        }

        Tape {
            programs,
            dirty: vec![false; n_pos],
            always_dirty,
            fanout,
            mem_users,
            roots,
            reg_exec,
            memw_exec,
            pending_regs: Vec::new(),
            pending_mems: Vec::new(),
            mem_dirty: vec![false; interp.mems.len()],
            tmps: vec![0; max_tmp as usize],
            force_all: true,
            skip: true,
        }
    }

    /// Settles combinational logic: the compiled counterpart of the
    /// reference engine's schedule sweep.
    pub(crate) fn eval(&mut self, interp: &mut Interpreter) -> Result<()> {
        let Tape {
            programs,
            dirty,
            always_dirty,
            fanout,
            mem_users,
            roots,
            mem_dirty,
            tmps,
            force_all,
            skip,
            ..
        } = self;
        let slots = &mut interp.slots;

        if *force_all || !*skip {
            dirty.iter_mut().for_each(|d| *d = true);
            for r in roots.iter_mut() {
                match r {
                    Root::Narrow { slot, shadow } => *shadow = slots[*slot as usize].to_u64(),
                    Root::Wide { slot, shadow } => shadow.clone_from(&slots[*slot as usize]),
                }
            }
            mem_dirty.iter_mut().for_each(|d| *d = false);
            *force_all = false;
        } else {
            for r in roots.iter_mut() {
                match r {
                    Root::Narrow { slot, shadow } => {
                        let cur = slots[*slot as usize].to_u64();
                        if cur != *shadow {
                            *shadow = cur;
                            for &p in &fanout[*slot as usize] {
                                dirty[p as usize] = true;
                            }
                        }
                    }
                    Root::Wide { slot, shadow } => {
                        let cur = &slots[*slot as usize];
                        if cur != &*shadow {
                            shadow.clone_from(cur);
                            for &p in &fanout[*slot as usize] {
                                dirty[p as usize] = true;
                            }
                        }
                    }
                }
            }
            for (mi, d) in mem_dirty.iter_mut().enumerate() {
                if *d {
                    *d = false;
                    for &p in &mem_users[mi] {
                        dirty[p as usize] = true;
                    }
                }
            }
        }

        let mut defs_run: u64 = 0;
        let mut defs_skipped: u64 = 0;
        for pos in 0..programs.len() {
            if !dirty[pos] {
                defs_skipped += 1;
                continue;
            }
            defs_run += 1;
            dirty[pos] = always_dirty[pos];
            match &programs[pos] {
                Program::Narrow { ops, out, slot } => {
                    run_nops(ops, tmps, slots);
                    let v = nread(*out, tmps, slots);
                    let s = *slot as usize;
                    if slots[s].to_u64() != v {
                        slots[s].set_from_u64(v);
                        for &p in &fanout[s] {
                            dirty[p as usize] = true;
                        }
                    }
                }
                Program::NarrowMem {
                    ops,
                    addr,
                    mem,
                    slot,
                } => {
                    run_nops(ops, tmps, slots);
                    let a = nread(*addr, tmps, slots) as usize;
                    let v = interp.mems[*mem as usize]
                        .data
                        .get(a)
                        .map_or(0, Bits::to_u64);
                    let s = *slot as usize;
                    if slots[s].to_u64() != v {
                        slots[s].set_from_u64(v);
                        for &p in &fanout[s] {
                            dirty[p as usize] = true;
                        }
                    }
                }
                Program::Tree { di } => {
                    let def = &interp.defs[*di as usize];
                    match &def.kind {
                        DefKind::Expr(e) => {
                            let v = e.eval(slots);
                            let s = def.writes[0];
                            if slots[s] != v {
                                slots[s] = v;
                                for &p in &fanout[s] {
                                    dirty[p as usize] = true;
                                }
                            }
                        }
                        DefKind::MemRead { mem, addr } => {
                            let a = addr.eval(slots).to_u64() as usize;
                            let m = &interp.mems[*mem];
                            let v = m
                                .data
                                .get(a)
                                .cloned()
                                .unwrap_or_else(|| Bits::zero(m.width));
                            let s = def.writes[0];
                            if slots[s] != v {
                                slots[s] = v;
                                for &p in &fanout[s] {
                                    dirty[p as usize] = true;
                                }
                            }
                        }
                        DefKind::ExternComb { .. } => {
                            unreachable!("extern defs use Program::Extern")
                        }
                    }
                }
                Program::Extern { di } => {
                    let def = &interp.defs[*di as usize];
                    let DefKind::ExternComb { ext } = &def.kind else {
                        unreachable!("Program::Extern wraps an extern def")
                    };
                    let e = &mut interp.externs[*ext];
                    run_extern_comb(slots, e, |s, changed| {
                        if changed {
                            for &p in &fanout[s] {
                                dirty[p as usize] = true;
                            }
                        }
                    })?;
                }
            }
        }
        interp.stats.settle_passes += 1;
        interp.stats.defs_run += defs_run;
        interp.stats.defs_skipped += defs_skipped;
        Ok(())
    }

    /// Latches registers, applies memory writes, ticks extern models, and
    /// publishes source outputs — the compiled counterpart of the
    /// reference engine's `tick`, in the same commit order.
    pub(crate) fn tick(&mut self, interp: &mut Interpreter) {
        let Tape {
            reg_exec,
            memw_exec,
            pending_regs,
            pending_mems,
            mem_dirty,
            tmps,
            ..
        } = self;
        let slots = &mut interp.slots;

        pending_regs.clear();
        for rx in reg_exec.iter() {
            match rx {
                RegExec::Narrow { ops, out, slot } => {
                    run_nops(ops, tmps, slots);
                    pending_regs.push(RegPend::N(*slot, nread(*out, tmps, slots)));
                }
                RegExec::Tree { ri } => {
                    let r = &interp.regs[*ri as usize];
                    let e = r.next.as_ref().expect("Tree reg has a next expression");
                    let w = slots[r.slot].width();
                    pending_regs.push(RegPend::W(r.slot as u32, e.eval(slots).resize(w)));
                }
            }
        }

        pending_mems.clear();
        for mx in memw_exec.iter() {
            match mx {
                MemWExec::Narrow {
                    mi,
                    ops,
                    en,
                    addr,
                    data,
                    dmask,
                } => {
                    run_nops(ops, tmps, slots);
                    if nread(*en, tmps, slots) != 0 {
                        let a = nread(*addr, tmps, slots);
                        if (a as usize) < interp.mems[*mi as usize].data.len() {
                            let v = nread(*data, tmps, slots) & dmask;
                            pending_mems.push((*mi, a as u32, PendVal::N(v)));
                        }
                    }
                }
                MemWExec::Tree { mi, port } => {
                    let m = &interp.mems[*mi as usize];
                    let (addr, data, en) = &m.writes[*port as usize];
                    if !en.eval(slots).is_zero() {
                        let a = addr.eval(slots).to_u64() as usize;
                        if a < m.data.len() {
                            let v = data.eval(slots).resize(m.width);
                            pending_mems.push((*mi, a as u32, PendVal::W(v)));
                        }
                    }
                }
            }
        }

        for e in interp.externs.iter_mut() {
            crate::interp::sync_extern_inputs(slots, e);
            if let Some(model) = &mut e.model {
                model.tick(&e.inputs_buf);
            }
        }

        for p in pending_regs.drain(..) {
            match p {
                RegPend::N(s, v) => slots[s as usize].set_from_u64(v),
                RegPend::W(s, b) => slots[s as usize] = b,
            }
        }
        for (mi, a, v) in pending_mems.drain(..) {
            let cell = &mut interp.mems[mi as usize].data[a as usize];
            match v {
                PendVal::N(x) => cell.set_from_u64(x),
                PendVal::W(b) => *cell = b,
            }
            mem_dirty[mi as usize] = true;
        }

        crate::interp::publish_sources(slots, &mut interp.externs);
        interp.cycle += 1;
    }
}
