//! Circuit elaboration and cycle-accurate interpretation.
//!
//! The interpreter is FireAxe-rs's *source of truth*: monolithic
//! interpretation of a circuit defines the reference cycle counts and port
//! traces that exact-mode partitioned simulation must reproduce bit for
//! bit (paper §VI-C, Table II).
//!
//! Elaboration flattens the module hierarchy into a slot-addressed netlist,
//! topologically sorts the combinational definitions, and then each target
//! cycle is: drive inputs → settle combinational logic in schedule order →
//! latch registers and memory writes.
//!
//! Extern behavioral modules participate through the [`ExternBehavior`]
//! trait: their register-driven (*source*) outputs are published at the
//! start of the cycle and their combinational (*sink*) outputs are computed
//! in schedule order once the declared combinational inputs have settled.

use crate::ast::*;
use crate::bits::{Bits, Width};
use crate::error::{IrError, Result};
use crate::exec::ExecEngine;
use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Opaque captured state of an [`ExternBehavior`] model, produced by
/// [`ExternBehavior::snapshot`]. Each implementation downcasts it back
/// to its own concrete type in [`ExternBehavior::restore`].
pub type BehaviorSnapshot = Box<dyn Any + Send>;

/// Cycle-level model bound to an extern behavioral module instance.
///
/// Implementations must compute [`ExternBehavior::comb_outputs`] using only
/// the inputs named in the module's declared combinational paths; other
/// inputs may hold values from the previous settling step when the method
/// is invoked.
pub trait ExternBehavior: std::fmt::Debug + Send {
    /// Returns the model to its post-reset state.
    fn reset(&mut self);

    /// Output values that depend only on internal state (register-driven
    /// *source* outputs), published at the start of each cycle.
    fn source_outputs(&mut self) -> BTreeMap<String, Bits>;

    /// Combinationally derived (*sink*) output values given the settled
    /// input values.
    fn comb_outputs(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits>;

    /// Advances internal state by one target cycle using the final settled
    /// input values.
    fn tick(&mut self, inputs: &BTreeMap<String, Bits>);

    /// Captures the model's private state for checkpoint/rollback.
    ///
    /// `None` (the default) marks the model non-checkpointable, which
    /// disables [`Interpreter::snapshot`] for any design containing it.
    /// Plain-data models typically return a boxed clone of themselves.
    fn snapshot(&self) -> Option<BehaviorSnapshot> {
        None
    }

    /// Restores state captured by [`ExternBehavior::snapshot`]; returns
    /// `false` when the snapshot is not this model's (leaving state
    /// untouched).
    fn restore(&mut self, _snap: &BehaviorSnapshot) -> bool {
        false
    }
}

/// A compiled expression over value slots.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Lit(Bits),
    Slot(usize),
    Unary(UnOp, Box<CExpr>),
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    Mux(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    Cat(Vec<CExpr>),
    Extract(Box<CExpr>, u32, u32),
    Resize(Box<CExpr>, Width),
    Shl(Box<CExpr>, u32),
    Shr(Box<CExpr>, u32),
}

impl CExpr {
    pub(crate) fn eval(&self, slots: &[Bits]) -> Bits {
        match self {
            CExpr::Lit(b) => b.clone(),
            CExpr::Slot(i) => slots[*i].clone(),
            CExpr::Unary(op, a) => {
                let v = a.eval(slots);
                match op {
                    UnOp::Not => v.not(),
                    UnOp::OrReduce => v.reduce_or(),
                    UnOp::AndReduce => v.reduce_and(),
                    UnOp::XorReduce => v.reduce_xor(),
                }
            }
            CExpr::Binary(op, a, b) => {
                let va = a.eval(slots);
                let vb = b.eval(slots);
                use std::cmp::Ordering::*;
                match op {
                    BinOp::Add => va.add(&vb),
                    BinOp::Sub => va.sub(&vb),
                    BinOp::Mul => va.mul(&vb),
                    BinOp::Div => va.udiv(&vb),
                    BinOp::Rem => va.urem(&vb),
                    BinOp::And => va.and(&vb),
                    BinOp::Or => va.or(&vb),
                    BinOp::Xor => va.xor(&vb),
                    BinOp::Eq => (va.ucmp(&vb) == Equal).into(),
                    BinOp::Neq => (va.ucmp(&vb) != Equal).into(),
                    BinOp::Lt => (va.ucmp(&vb) == Less).into(),
                    BinOp::Leq => (va.ucmp(&vb) != Greater).into(),
                    BinOp::Gt => (va.ucmp(&vb) == Greater).into(),
                    BinOp::Geq => (va.ucmp(&vb) != Less).into(),
                }
            }
            CExpr::Mux(c, t, f) => {
                if c.eval(slots).is_zero() {
                    f.eval(slots)
                } else {
                    t.eval(slots)
                }
            }
            CExpr::Cat(parts) => {
                let mut acc: Option<Bits> = None;
                for p in parts {
                    let v = p.eval(slots);
                    acc = Some(match acc {
                        None => v,
                        Some(hi) => hi.cat(&v),
                    });
                }
                acc.unwrap_or_default()
            }
            CExpr::Extract(a, hi, lo) => a.eval(slots).extract(*hi, *lo),
            CExpr::Resize(a, w) => a.eval(slots).resize(*w),
            CExpr::Shl(a, n) => a.eval(slots).shl(*n),
            CExpr::Shr(a, n) => a.eval(slots).shr(*n),
        }
    }

    fn reads(&self, out: &mut Vec<usize>) {
        match self {
            CExpr::Lit(_) => {}
            CExpr::Slot(i) => out.push(*i),
            CExpr::Unary(_, a)
            | CExpr::Extract(a, _, _)
            | CExpr::Resize(a, _)
            | CExpr::Shl(a, _)
            | CExpr::Shr(a, _) => a.reads(out),
            CExpr::Binary(_, a, b) => {
                a.reads(out);
                b.reads(out);
            }
            CExpr::Mux(c, a, b) => {
                c.reads(out);
                a.reads(out);
                b.reads(out);
            }
            CExpr::Cat(parts) => {
                for p in parts {
                    p.reads(out);
                }
            }
        }
    }
}

#[derive(Debug)]
pub(crate) enum DefKind {
    Expr(CExpr),
    MemRead { mem: usize, addr: CExpr },
    ExternComb { ext: usize },
}

#[derive(Debug)]
pub(crate) struct Def {
    pub(crate) kind: DefKind,
    pub(crate) writes: Vec<usize>,
    pub(crate) reads: Vec<usize>,
}

#[derive(Debug)]
pub(crate) struct RegState {
    pub(crate) slot: usize,
    pub(crate) init: Bits,
    pub(crate) next: Option<CExpr>,
}

#[derive(Debug)]
pub(crate) struct MemState {
    pub(crate) width: Width,
    pub(crate) data: Vec<Bits>,
    pub(crate) writes: Vec<(CExpr, CExpr, CExpr)>, // (addr, data, en)
}

#[derive(Debug)]
pub(crate) struct ExternInst {
    pub(crate) path: String,
    pub(crate) behavior_key: String,
    /// Input ports sorted by name so the zip against `inputs_buf` (a
    /// `BTreeMap`, iterated in key order) lines up entry for entry.
    pub(crate) input_slots: Vec<(String, usize)>,
    pub(crate) source_output_slots: Vec<(String, usize)>,
    pub(crate) sink_output_slots: Vec<(String, usize)>,
    pub(crate) model: Option<Box<dyn ExternBehavior>>,
    /// Persistent input map handed to the behavioral model; refreshed in
    /// place each call so no per-cycle map construction is needed.
    pub(crate) inputs_buf: BTreeMap<String, Bits>,
}

/// Refreshes `e.inputs_buf` from the current slot values without
/// allocating: `input_slots` is name-sorted, matching the map's iteration
/// order, so a single zip updates every entry in place.
pub(crate) fn sync_extern_inputs(slots: &[Bits], e: &mut ExternInst) {
    for ((_, si), (_, buf)) in e.input_slots.iter().zip(e.inputs_buf.iter_mut()) {
        buf.clone_from(&slots[*si]);
    }
}

/// Publishes every bound extern model's register-driven source outputs
/// into their slots (start-of-cycle values).
pub(crate) fn publish_sources(slots: &mut [Bits], externs: &mut [ExternInst]) {
    for e in externs {
        if let Some(model) = &mut e.model {
            let outs = model.source_outputs();
            for (name, slot) in &e.source_output_slots {
                if let Some(v) = outs.get(name) {
                    slots[*slot].assign_resized(v);
                }
            }
        }
    }
}

/// Runs one extern combinational settle: syncs inputs, calls the model,
/// and stores each produced sink output. `on_write(slot, changed)` is
/// invoked for every sink output the model produced, with `changed`
/// reporting whether the stored value differs from what the slot held —
/// the compiled engine uses this for dirty propagation.
pub(crate) fn run_extern_comb(
    slots: &mut [Bits],
    e: &mut ExternInst,
    mut on_write: impl FnMut(usize, bool),
) -> Result<()> {
    sync_extern_inputs(slots, e);
    let model = e
        .model
        .as_mut()
        .ok_or_else(|| IrError::ExternWithoutBehavior {
            module: e.path.clone(),
            behavior: e.behavior_key.clone(),
        })?;
    let outs = model.comb_outputs(&e.inputs_buf);
    for (name, slot) in &e.sink_output_slots {
        if let Some(v) = outs.get(name) {
            let changed = !slots[*slot].eq_resized(v);
            if changed {
                slots[*slot].assign_resized(v);
            }
            on_write(*slot, changed);
        }
    }
    Ok(())
}

/// A captured copy of an [`Interpreter`]'s architectural state: every
/// value slot, every memory's contents, the cycle counter, and the
/// private state of every extern behavioral model.
///
/// Produced by [`Interpreter::snapshot`] and consumed by
/// [`Interpreter::restore_snapshot`], this is the foundation of the
/// simulator's checkpoint/rollback recovery: restoring a snapshot and
/// replaying the same inputs reproduces the same trace bit for bit.
pub struct InterpSnapshot {
    slots: Vec<Bits>,
    mems: Vec<Vec<Bits>>,
    cycle: u64,
    externs: Vec<BehaviorSnapshot>,
}

impl std::fmt::Debug for InterpSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterpSnapshot")
            .field("slots", &self.slots.len())
            .field("mems", &self.mems.len())
            .field("cycle", &self.cycle)
            .field("externs", &self.externs.len())
            .finish_non_exhaustive()
    }
}

impl InterpSnapshot {
    /// Cycle count at capture time.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// A flattened, schedule-ordered netlist with live state: the interpreter.
#[derive(Debug)]
pub struct Interpreter {
    pub(crate) slots: Vec<Bits>,
    slot_names: HashMap<String, usize>,
    mem_names: HashMap<String, usize>,
    pub(crate) defs: Vec<Def>,
    pub(crate) schedule: Vec<usize>,
    pub(crate) regs: Vec<RegState>,
    pub(crate) mems: Vec<MemState>,
    pub(crate) externs: Vec<ExternInst>,
    pub(crate) top_inputs: Vec<(String, usize)>,
    top_outputs: Vec<(String, usize)>,
    pub(crate) cycle: u64,
    engine: ExecEngine,
    tape: Option<crate::exec::Tape>,
    pub(crate) stats: crate::exec::ExecStats,
}

impl Interpreter {
    /// Elaborates `circuit` into an executable netlist.
    ///
    /// The execution engine defaults to the compiled instruction tape;
    /// set the `FIREAXE_ENGINE` environment variable to `reference` to
    /// fall back to the tree-walking evaluator, or use
    /// [`Interpreter::with_engine`] / [`Interpreter::set_engine`].
    ///
    /// # Errors
    ///
    /// Propagates validation errors and returns [`IrError::CombCycle`] if
    /// the flattened combinational definitions cannot be scheduled.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        Self::with_engine(circuit, ExecEngine::from_env())
    }

    /// Elaborates `circuit` and selects the execution engine explicitly.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::new`].
    pub fn with_engine(circuit: &Circuit, engine: ExecEngine) -> Result<Self> {
        crate::typecheck::validate(circuit)?;
        let mut b = Builder {
            circuit,
            interp: Interpreter {
                slots: Vec::new(),
                slot_names: HashMap::new(),
                mem_names: HashMap::new(),
                defs: Vec::new(),
                schedule: Vec::new(),
                regs: Vec::new(),
                mems: Vec::new(),
                externs: Vec::new(),
                top_inputs: Vec::new(),
                top_outputs: Vec::new(),
                cycle: 0,
                engine,
                tape: None,
                stats: crate::exec::ExecStats::default(),
            },
        };
        b.elaborate("", &circuit.top)?;
        let mut interp = b.interp;
        let top = circuit.top_module();
        for p in &top.ports {
            let slot = interp.slot_names[&p.name];
            match p.direction {
                Direction::Input => interp.top_inputs.push((p.name.clone(), slot)),
                Direction::Output => interp.top_outputs.push((p.name.clone(), slot)),
            }
        }
        interp.schedule = schedule_defs(&interp.defs, interp.slots.len())?;
        interp.tape = Some(crate::exec::Tape::build(&interp));
        interp.reset();
        Ok(interp)
    }

    /// The execution engine currently in use.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Switches execution engine at a cycle boundary. Both engines share
    /// the same architectural state, so the trace is unaffected.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
        self.invalidate_tape();
    }

    /// Enables or disables the compiled engine's dirty-set scheduler.
    /// When off, every settle pass re-runs every definition (still on the
    /// word-packed tape). Has no effect on the reference engine.
    pub fn set_dirty_skipping(&mut self, on: bool) {
        if let Some(t) = &mut self.tape {
            t.skip = on;
            t.force_all = true;
        }
    }

    /// Marks all compiled-engine bookkeeping stale after an out-of-band
    /// architectural state change (reset, snapshot restore, rebinding).
    fn invalidate_tape(&mut self) {
        if let Some(t) = &mut self.tape {
            t.force_all = true;
        }
    }

    /// Binds a behavioral model to the extern instance at hierarchical
    /// `path` (instance names joined with `.`; empty string when the top
    /// module itself is extern).
    ///
    /// # Errors
    ///
    /// Returns an error if no extern instance exists at that path.
    pub fn bind_behavior(&mut self, path: &str, model: Box<dyn ExternBehavior>) -> Result<()> {
        let ext = self
            .externs
            .iter_mut()
            .find(|e| e.path == path)
            .ok_or_else(|| IrError::Malformed {
                message: format!("no extern instance at path `{path}`"),
            })?;
        ext.model = Some(model);
        self.invalidate_tape();
        Ok(())
    }

    /// Hierarchical paths of extern instances still awaiting a model.
    pub fn unbound_externs(&self) -> Vec<String> {
        self.externs
            .iter()
            .filter(|e| e.model.is_none())
            .map(|e| e.path.clone())
            .collect()
    }

    /// Every extern instance as `(path, behavior key, model bound)` —
    /// used by harnesses that bind models from a registry.
    pub fn extern_instances(&self) -> Vec<(String, String, bool)> {
        self.externs
            .iter()
            .map(|e| (e.path.clone(), e.behavior_key.clone(), e.model.is_some()))
            .collect()
    }

    /// Resets registers, memories and behaviors; cycle count returns to 0.
    pub fn reset(&mut self) {
        for r in &self.regs {
            self.slots[r.slot] = r.init.clone();
        }
        for m in &mut self.mems {
            for d in &mut m.data {
                *d = Bits::zero(m.width);
            }
        }
        for e in &mut self.externs {
            if let Some(m) = &mut e.model {
                m.reset();
            }
        }
        self.cycle = 0;
        self.invalidate_tape();
        self.publish_extern_sources();
    }

    /// Drives the top-level input port `name`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist (programming error in the harness).
    pub fn poke(&mut self, name: &str, value: Bits) {
        let slot = self.input_slot(name);
        self.slots[slot].assign_resized(&value);
    }

    /// Drives the top-level input port `name` from a `u64`, truncated to
    /// the port width. Unlike [`Interpreter::poke`] this never allocates,
    /// which keeps all-narrow harness loops allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist (programming error in the harness).
    pub fn poke_u64(&mut self, name: &str, value: u64) {
        let slot = self.input_slot(name);
        self.slots[slot].set_from_u64(value);
    }

    fn input_slot(&self, name: &str) -> usize {
        self.top_inputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no top input port `{name}`"))
            .1
    }

    /// Reads any signal by hierarchical path (top ports use their bare
    /// name).
    ///
    /// # Panics
    ///
    /// Panics if the path does not name a signal.
    pub fn peek(&self, path: &str) -> &Bits {
        let slot = *self
            .slot_names
            .get(path)
            .unwrap_or_else(|| panic!("no signal at path `{path}`"));
        &self.slots[slot]
    }

    /// Reads any signal by hierarchical path, or `None` when the path
    /// does not name a signal (the non-panicking [`Interpreter::peek`],
    /// for harnesses resolving user-supplied watch lists).
    pub fn peek_opt(&self, path: &str) -> Option<&Bits> {
        self.slot_names.get(path).map(|&slot| &self.slots[slot])
    }

    /// Cumulative settle-loop statistics since elaboration (settle
    /// passes, definitions run, definitions skipped by dirty-set
    /// scheduling) — the raw material for the observability layer's
    /// settle-iteration and dirty-skip-rate time series.
    pub fn exec_stats(&self) -> crate::exec::ExecStats {
        self.stats
    }

    /// Reads one entry of a memory by hierarchical path (e.g.
    /// `"mem.store"`) and index. Returns `None` if no such memory or the
    /// index is out of range.
    pub fn peek_mem(&self, path: &str, index: usize) -> Option<&Bits> {
        let mi = *self.mem_names.get(path)?;
        self.mems[mi].data.get(index)
    }

    /// Settles all combinational logic for the current input values.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ExternWithoutBehavior`] if an extern instance has
    /// no bound model.
    pub fn eval(&mut self) -> Result<()> {
        match self.engine {
            ExecEngine::Reference => {
                for i in 0..self.schedule.len() {
                    let di = self.schedule[i];
                    self.run_def(di)?;
                }
                self.stats.settle_passes += 1;
                self.stats.defs_run += self.schedule.len() as u64;
                Ok(())
            }
            ExecEngine::Compiled => {
                let mut tape = self.tape.take().expect("compiled tape present");
                let r = tape.eval(self);
                self.tape = Some(tape);
                r
            }
        }
    }

    fn run_def(&mut self, di: usize) -> Result<()> {
        let Self {
            defs,
            slots,
            mems,
            externs,
            ..
        } = self;
        let def = &defs[di];
        match &def.kind {
            DefKind::Expr(e) => {
                slots[def.writes[0]] = e.eval(slots);
            }
            DefKind::MemRead { mem, addr } => {
                let a = addr.eval(slots).to_u64() as usize;
                let m = &mems[*mem];
                slots[def.writes[0]] = m
                    .data
                    .get(a)
                    .cloned()
                    .unwrap_or_else(|| Bits::zero(m.width));
            }
            DefKind::ExternComb { ext } => {
                run_extern_comb(slots, &mut externs[*ext], |_, _| {})?;
            }
        }
        Ok(())
    }

    fn publish_extern_sources(&mut self) {
        publish_sources(&mut self.slots, &mut self.externs);
    }

    /// Latches registers, applies memory writes, ticks behaviors, and
    /// publishes the next cycle's extern source outputs. Must be preceded
    /// by [`Interpreter::eval`].
    pub fn tick(&mut self) {
        match self.engine {
            ExecEngine::Reference => self.tick_reference(),
            ExecEngine::Compiled => {
                let mut tape = self.tape.take().expect("compiled tape present");
                tape.tick(self);
                self.tape = Some(tape);
            }
        }
    }

    fn tick_reference(&mut self) {
        let Self {
            slots,
            mems,
            regs,
            externs,
            cycle,
            ..
        } = self;
        // Compute all register next-values before writing any of them.
        let mut next: Vec<(usize, Bits)> = Vec::new();
        for r in regs.iter() {
            if let Some(e) = &r.next {
                let w = slots[r.slot].width();
                next.push((r.slot, e.eval(slots).resize(w)));
            }
        }
        // Memory writes also read pre-edge values.
        let mut mem_writes: Vec<(usize, usize, Bits)> = Vec::new();
        for (mi, m) in mems.iter().enumerate() {
            for (addr, data, en) in &m.writes {
                if !en.eval(slots).is_zero() {
                    let a = addr.eval(slots).to_u64() as usize;
                    if a < m.data.len() {
                        mem_writes.push((mi, a, data.eval(slots).resize(m.width)));
                    }
                }
            }
        }
        for e in externs.iter_mut() {
            sync_extern_inputs(slots, e);
            if let Some(model) = &mut e.model {
                model.tick(&e.inputs_buf);
            }
        }
        for (slot, v) in next {
            slots[slot] = v;
        }
        for (mi, a, v) in mem_writes {
            mems[mi].data[a] = v;
        }
        publish_sources(slots, externs);
        *cycle += 1;
    }

    /// One full target cycle: settle then latch.
    ///
    /// # Errors
    ///
    /// See [`Interpreter::eval`].
    pub fn step(&mut self) -> Result<()> {
        self.eval()?;
        self.tick();
        Ok(())
    }

    /// Number of completed target cycles since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Captures the full architectural state (slots, memories, cycle,
    /// extern behavioral model state).
    ///
    /// Returns `None` when the netlist contains an extern behavioral
    /// instance whose model is unbound or does not implement
    /// [`ExternBehavior::snapshot`]: such state cannot be captured, so
    /// the design cannot be checkpointed.
    pub fn snapshot(&self) -> Option<InterpSnapshot> {
        let mut externs = Vec::with_capacity(self.externs.len());
        for e in &self.externs {
            externs.push(e.model.as_ref()?.snapshot()?);
        }
        Some(InterpSnapshot {
            slots: self.slots.clone(),
            mems: self.mems.iter().map(|m| m.data.clone()).collect(),
            cycle: self.cycle,
            externs,
        })
    }

    /// Restores state captured by [`Interpreter::snapshot`]. Returns
    /// `false` (leaving the interpreter untouched) when the snapshot's
    /// shape does not match this netlist. If an extern model rejects its
    /// sub-snapshot mid-restore — impossible for snapshots taken from
    /// the same design — architectural state may be partially restored.
    pub fn restore_snapshot(&mut self, snap: &InterpSnapshot) -> bool {
        if snap.slots.len() != self.slots.len()
            || snap.mems.len() != self.mems.len()
            || snap.externs.len() != self.externs.len()
            || snap
                .mems
                .iter()
                .zip(&self.mems)
                .any(|(s, m)| s.len() != m.data.len())
        {
            return false;
        }
        self.slots.clone_from(&snap.slots);
        for (m, s) in self.mems.iter_mut().zip(&snap.mems) {
            m.data.clone_from(s);
        }
        self.cycle = snap.cycle;
        self.invalidate_tape();
        for (e, s) in self.externs.iter_mut().zip(&snap.externs) {
            let restored = e.model.as_mut().is_some_and(|model| model.restore(s));
            if !restored {
                return false;
            }
        }
        true
    }

    /// Hierarchical paths of every elaborated signal, sorted. Stable for
    /// a given circuit, so two interpreters over the same design can be
    /// compared signal by signal (the differential engine tests do).
    pub fn signal_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.slot_names.keys().cloned().collect();
        v.sort();
        v
    }

    /// Hierarchical paths of every elaborated memory, sorted.
    pub fn mem_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.mem_names.keys().cloned().collect();
        v.sort();
        v
    }

    /// Depth (number of entries) of the memory at `path`, if any.
    pub fn mem_depth(&self, path: &str) -> Option<usize> {
        self.mem_names.get(path).map(|&mi| self.mems[mi].data.len())
    }

    /// Names and widths of the top-level input ports.
    pub fn input_ports(&self) -> Vec<(String, Width)> {
        self.top_inputs
            .iter()
            .map(|(n, s)| (n.clone(), self.slots[*s].width()))
            .collect()
    }

    /// Names and widths of the top-level output ports.
    pub fn output_ports(&self) -> Vec<(String, Width)> {
        self.top_outputs
            .iter()
            .map(|(n, s)| (n.clone(), self.slots[*s].width()))
            .collect()
    }
}

struct Builder<'a> {
    circuit: &'a Circuit,
    interp: Interpreter,
}

impl<'a> Builder<'a> {
    fn key(path: &str, name: &str) -> String {
        if path.is_empty() {
            name.to_string()
        } else {
            format!("{path}.{name}")
        }
    }

    fn alloc(&mut self, path: &str, name: &str, width: Width) -> usize {
        let key = Self::key(path, name);
        let id = self.interp.slots.len();
        self.interp.slots.push(Bits::zero(width));
        self.interp.slot_names.insert(key, id);
        id
    }

    fn slot(&self, path: &str, name: &str) -> usize {
        self.interp.slot_names[&Self::key(path, name)]
    }

    fn elaborate(&mut self, path: &str, module_name: &str) -> Result<()> {
        let module = self
            .circuit
            .module(module_name)
            .ok_or_else(|| IrError::Malformed {
                message: format!("module `{module_name}` not found"),
            })?
            .clone();

        // Allocate slots for ports.
        for p in &module.ports {
            self.alloc(path, &p.name, p.width);
        }

        if let Some(info) = &module.extern_info {
            let comb_outs: HashSet<&str> = info
                .comb_paths
                .iter()
                .map(|cp| cp.output.as_str())
                .collect();
            let mut ext = ExternInst {
                path: path.to_string(),
                behavior_key: info.behavior.clone(),
                input_slots: Vec::new(),
                source_output_slots: Vec::new(),
                sink_output_slots: Vec::new(),
                model: None,
                inputs_buf: BTreeMap::new(),
            };
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            for p in &module.ports {
                let slot = self.slot(path, &p.name);
                match p.direction {
                    Direction::Input => {
                        ext.input_slots.push((p.name.clone(), slot));
                        if info.comb_paths.iter().any(|cp| cp.input == p.name) {
                            reads.push(slot);
                        }
                    }
                    Direction::Output => {
                        if comb_outs.contains(p.name.as_str()) {
                            ext.sink_output_slots.push((p.name.clone(), slot));
                            writes.push(slot);
                        } else {
                            ext.source_output_slots.push((p.name.clone(), slot));
                        }
                    }
                }
            }
            // Name-sort the inputs and seed the persistent input buffer so
            // per-cycle refreshes are a straight zip with no lookups.
            ext.input_slots.sort_by(|a, b| a.0.cmp(&b.0));
            ext.inputs_buf = ext
                .input_slots
                .iter()
                .map(|(n, s)| (n.clone(), Bits::zero(self.interp.slots[*s].width())))
                .collect();
            let ext_id = self.interp.externs.len();
            self.interp.externs.push(ext);
            if !writes.is_empty() {
                self.interp.defs.push(Def {
                    kind: DefKind::ExternComb { ext: ext_id },
                    writes,
                    reads,
                });
            }
            return Ok(());
        }

        // First pass: declare local slots, recurse into instances.
        let mut local_mems: HashMap<String, usize> = HashMap::new();
        for stmt in &module.body {
            match stmt {
                Stmt::Wire { name, width } => {
                    self.alloc(path, name, *width);
                }
                Stmt::Node { name, expr } => {
                    let w = crate::typecheck::infer_width(self.circuit, &module, expr)?;
                    self.alloc(path, name, w);
                }
                Stmt::Reg { name, width, init } => {
                    let slot = self.alloc(path, name, *width);
                    self.interp.regs.push(RegState {
                        slot,
                        init: init.clone(),
                        next: None,
                    });
                }
                Stmt::Mem { name, width, depth } => {
                    let id = self.interp.mems.len();
                    self.interp.mems.push(MemState {
                        width: *width,
                        data: vec![Bits::zero(*width); *depth as usize],
                        writes: Vec::new(),
                    });
                    local_mems.insert(Self::key(path, name), id);
                    self.interp.mem_names.insert(Self::key(path, name), id);
                }
                Stmt::MemRead { name, mem, .. } => {
                    let mem_mod = match module.find_def(mem) {
                        Some(Stmt::Mem { width, .. }) => *width,
                        _ => unreachable!("validated"),
                    };
                    self.alloc(path, name, mem_mod);
                }
                Stmt::Inst { name, module: m } => {
                    let child_path = Self::key(path, name);
                    self.elaborate(&child_path, m)?;
                }
                Stmt::MemWrite { .. } | Stmt::Connect { .. } => {}
            }
        }

        // Second pass: compile defining statements.
        for stmt in &module.body {
            match stmt {
                Stmt::Node { name, expr } => {
                    let c = self.compile(path, &module, expr)?;
                    let slot = self.slot(path, name);
                    self.push_expr_def(slot, c);
                }
                Stmt::MemRead { name, mem, addr } => {
                    let mem_id = local_mems[&Self::key(path, mem)];
                    let addr_c = self.compile(path, &module, addr)?;
                    let slot = self.slot(path, name);
                    let mut reads = Vec::new();
                    addr_c.reads(&mut reads);
                    self.interp.defs.push(Def {
                        kind: DefKind::MemRead {
                            mem: mem_id,
                            addr: addr_c,
                        },
                        writes: vec![slot],
                        reads,
                    });
                }
                Stmt::MemWrite {
                    mem,
                    addr,
                    data,
                    en,
                } => {
                    let mem_id = local_mems[&Self::key(path, mem)];
                    let a = self.compile(path, &module, addr)?;
                    let d = self.compile(path, &module, data)?;
                    let e = self.compile(path, &module, en)?;
                    self.interp.mems[mem_id].writes.push((a, d, e));
                }
                Stmt::Connect { lhs, rhs } => {
                    let sink_slot = match &lhs.instance {
                        Some(inst) => self.slot(&Self::key(path, inst), &lhs.name),
                        None => self.slot(path, &lhs.name),
                    };
                    let w = self.interp.slots[sink_slot].width();
                    let c = CExpr::Resize(Box::new(self.compile(path, &module, rhs)?), w);
                    // A connect to a register sets its next value.
                    let is_reg = lhs.is_local()
                        && matches!(module.find_def(&lhs.name), Some(Stmt::Reg { .. }));
                    if is_reg {
                        let r = self
                            .interp
                            .regs
                            .iter_mut()
                            .find(|r| r.slot == sink_slot)
                            .expect("register slot exists");
                        r.next = Some(c);
                    } else {
                        self.push_expr_def(sink_slot, c);
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn push_expr_def(&mut self, slot: usize, c: CExpr) {
        let mut reads = Vec::new();
        c.reads(&mut reads);
        self.interp.defs.push(Def {
            kind: DefKind::Expr(c),
            writes: vec![slot],
            reads,
        });
    }

    #[allow(clippy::only_used_in_recursion)]
    fn compile(&self, path: &str, module: &Module, expr: &Expr) -> Result<CExpr> {
        Ok(match expr {
            Expr::Lit(b) => CExpr::Lit(b.clone()),
            Expr::Ref(r) => {
                let slot = match &r.instance {
                    Some(inst) => self.slot(&Self::key(path, inst), &r.name),
                    None => self.slot(path, &r.name),
                };
                CExpr::Slot(slot)
            }
            Expr::Unary(op, a) => CExpr::Unary(*op, Box::new(self.compile(path, module, a)?)),
            Expr::Binary(op, a, b) => CExpr::Binary(
                *op,
                Box::new(self.compile(path, module, a)?),
                Box::new(self.compile(path, module, b)?),
            ),
            Expr::Mux(c, t, f) => CExpr::Mux(
                Box::new(self.compile(path, module, c)?),
                Box::new(self.compile(path, module, t)?),
                Box::new(self.compile(path, module, f)?),
            ),
            Expr::Cat(parts) => CExpr::Cat(
                parts
                    .iter()
                    .map(|p| self.compile(path, module, p))
                    .collect::<Result<_>>()?,
            ),
            Expr::Extract(a, hi, lo) => {
                CExpr::Extract(Box::new(self.compile(path, module, a)?), *hi, *lo)
            }
            Expr::Resize(a, w) => CExpr::Resize(Box::new(self.compile(path, module, a)?), *w),
            Expr::Shl(a, n) => CExpr::Shl(Box::new(self.compile(path, module, a)?), *n),
            Expr::Shr(a, n) => CExpr::Shr(Box::new(self.compile(path, module, a)?), *n),
        })
    }
}

/// Kahn topological sort of defs by slot read/write dependencies.
fn schedule_defs(defs: &[Def], n_slots: usize) -> Result<Vec<usize>> {
    let mut writer_of: Vec<Option<usize>> = vec![None; n_slots];
    for (di, d) in defs.iter().enumerate() {
        for &w in &d.writes {
            writer_of[w] = Some(di);
        }
    }
    let mut indegree = vec![0usize; defs.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
    for (di, d) in defs.iter().enumerate() {
        let mut preds = HashSet::new();
        for &r in &d.reads {
            if let Some(p) = writer_of[r] {
                if p != di {
                    preds.insert(p);
                }
            }
        }
        indegree[di] = preds.len();
        for p in preds {
            dependents[p].push(di);
        }
    }
    let mut queue: VecDeque<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order = Vec::with_capacity(defs.len());
    while let Some(di) = queue.pop_front() {
        order.push(di);
        for &dep in &dependents[di] {
            indegree[dep] -= 1;
            if indegree[dep] == 0 {
                queue.push_back(dep);
            }
        }
    }
    if order.len() != defs.len() {
        let stuck: Vec<String> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, _)| format!("def#{i}"))
            .collect();
        return Err(IrError::CombCycle { cycle: stuck });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{ModuleBuilder, Sig};

    fn counter_circuit() -> Circuit {
        let mut mb = ModuleBuilder::new("Counter");
        let en = mb.input("en", 1);
        let out = mb.output("out", 8);
        let count = mb.reg("count", 8, 0);
        mb.connect_sig(&count, &en.mux(&count.add(&Sig::lit(1, 8)), &count));
        mb.connect_sig(&out, &count);
        Circuit::from_modules("Counter", vec![mb.finish()], "Counter")
    }

    #[test]
    fn counter_counts() {
        let mut sim = Interpreter::new(&counter_circuit()).unwrap();
        sim.poke("en", Bits::from_u64(1, 1));
        for _ in 0..5 {
            sim.step().unwrap();
        }
        sim.eval().unwrap();
        assert_eq!(sim.peek("out").to_u64(), 5);
        sim.poke("en", Bits::from_u64(0, 1));
        for _ in 0..3 {
            sim.step().unwrap();
        }
        sim.eval().unwrap();
        assert_eq!(sim.peek("out").to_u64(), 5);
        assert_eq!(sim.cycle(), 8);
    }

    #[test]
    fn reset_restores_init() {
        let mut sim = Interpreter::new(&counter_circuit()).unwrap();
        sim.poke("en", Bits::from_u64(1, 1));
        for _ in 0..4 {
            sim.step().unwrap();
        }
        sim.reset();
        sim.eval().unwrap();
        assert_eq!(sim.peek("out").to_u64(), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn hierarchy_flattens() {
        // Top wires two cascaded incrementers: out = in + 2 (combinational).
        let mut inc = ModuleBuilder::new("Inc");
        let a = inc.input("a", 8);
        let y = inc.output("y", 8);
        inc.connect_sig(&y, &a.add(&Sig::lit(1, 8)));
        let inc = inc.finish();

        let mut top = ModuleBuilder::new("Top");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("u0", "Inc");
        top.inst("u1", "Inc");
        top.connect_inst("u0", "a", &i);
        let u0y = top.inst_port("u0", "y");
        top.connect_inst("u1", "a", &u0y);
        let u1y = top.inst_port("u1", "y");
        top.connect_sig(&o, &u1y);
        let c = Circuit::from_modules("Top", vec![top.finish(), inc], "Top");

        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("i", Bits::from_u64(40, 8));
        sim.eval().unwrap();
        assert_eq!(sim.peek("o").to_u64(), 42);
        // Internal signals visible by path.
        assert_eq!(sim.peek("u0.y").to_u64(), 41);
    }

    #[test]
    fn memory_read_write() {
        let mut mb = ModuleBuilder::new("RegFile");
        let waddr = mb.input("waddr", 4);
        let wdata = mb.input("wdata", 8);
        let wen = mb.input("wen", 1);
        let raddr = mb.input("raddr", 4);
        let rdata = mb.output("rdata", 8);
        let mem = mb.mem("mem", 8, 16);
        mb.mem_write(&mem, &waddr, &wdata, &wen);
        let rd = mb.mem_read("rd", &mem, &raddr);
        mb.connect_sig(&rdata, &rd);
        let c = Circuit::from_modules("RegFile", vec![mb.finish()], "RegFile");

        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("waddr", Bits::from_u64(3, 4));
        sim.poke("wdata", Bits::from_u64(0xAB, 8));
        sim.poke("wen", Bits::from_u64(1, 1));
        sim.step().unwrap(); // write happens at the edge
        sim.poke("wen", Bits::from_u64(0, 1));
        sim.poke("raddr", Bits::from_u64(3, 4));
        sim.eval().unwrap();
        assert_eq!(sim.peek("rdata").to_u64(), 0xAB);
        sim.poke("raddr", Bits::from_u64(4, 4));
        sim.eval().unwrap();
        assert_eq!(sim.peek("rdata").to_u64(), 0);
    }

    /// A 2-entry extern FIFO-ish model used to test behavior binding.
    #[derive(Debug, Default)]
    struct Doubler {
        state: u64,
    }

    impl ExternBehavior for Doubler {
        fn reset(&mut self) {
            self.state = 0;
        }
        fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
            let mut m = BTreeMap::new();
            m.insert("acc".into(), Bits::from_u64(self.state, 16));
            m
        }
        fn comb_outputs(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
            let x = inputs["x"].to_u64();
            let mut m = BTreeMap::new();
            m.insert("twice".into(), Bits::from_u64(x * 2, 16));
            m
        }
        fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
            self.state = self.state.wrapping_add(inputs["x"].to_u64());
        }
    }

    fn extern_circuit() -> Circuit {
        let mut e = Module::new("Doubler");
        e.ports.push(Port::input("x", 16));
        e.ports.push(Port::output("twice", 16));
        e.ports.push(Port::output("acc", 16));
        e.extern_info = Some(ExternInfo {
            behavior: "doubler".into(),
            comb_paths: vec![CombPath {
                input: "x".into(),
                output: "twice".into(),
            }],
            resources: ResourceHints::default(),
        });

        let mut top = ModuleBuilder::new("Top");
        let i = top.input("i", 16);
        let t = top.output("t", 16);
        let a = top.output("a", 16);
        top.inst("d", "Doubler");
        top.connect_inst("d", "x", &i);
        let dt = top.inst_port("d", "twice");
        let da = top.inst_port("d", "acc");
        top.connect_sig(&t, &dt);
        top.connect_sig(&a, &da);
        Circuit::from_modules("Top", vec![top.finish(), e], "Top")
    }

    #[test]
    fn extern_behavior_runs() {
        let mut sim = Interpreter::new(&extern_circuit()).unwrap();
        assert_eq!(sim.unbound_externs(), vec!["d".to_string()]);
        sim.bind_behavior("d", Box::new(Doubler::default()))
            .unwrap();
        sim.reset();
        sim.poke("i", Bits::from_u64(21, 16));
        sim.eval().unwrap();
        assert_eq!(sim.peek("t").to_u64(), 42);
        assert_eq!(sim.peek("a").to_u64(), 0);
        sim.tick();
        sim.poke("i", Bits::from_u64(1, 16));
        sim.eval().unwrap();
        assert_eq!(sim.peek("t").to_u64(), 2);
        assert_eq!(sim.peek("a").to_u64(), 21); // accumulated last cycle
    }

    #[test]
    fn unbound_extern_eval_errors() {
        let mut sim = Interpreter::new(&extern_circuit()).unwrap();
        assert!(matches!(
            sim.eval(),
            Err(IrError::ExternWithoutBehavior { .. })
        ));
    }

    #[test]
    fn peek_mem_reads_memory_state() {
        let mut mb = ModuleBuilder::new("M");
        let waddr = mb.input("waddr", 3);
        let wdata = mb.input("wdata", 8);
        let wen = mb.input("wen", 1);
        let out = mb.output("out", 8);
        let mem = mb.mem("store", 8, 8);
        mb.mem_write(&mem, &waddr, &wdata, &wen);
        let rd = mb.mem_read("rd", &mem, &waddr);
        mb.connect_sig(&out, &rd);
        let c = Circuit::from_modules("M", vec![mb.finish()], "M");
        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("waddr", Bits::from_u64(5, 3));
        sim.poke("wdata", Bits::from_u64(0x5A, 8));
        sim.poke("wen", Bits::from_u64(1, 1));
        sim.step().unwrap();
        assert_eq!(sim.peek_mem("store", 5).unwrap().to_u64(), 0x5A);
        assert_eq!(sim.peek_mem("store", 0).unwrap().to_u64(), 0);
        assert!(sim.peek_mem("store", 99).is_none());
        assert!(sim.peek_mem("nothere", 0).is_none());
    }

    #[test]
    fn arithmetic_ops_through_circuits() {
        // A little ALU: covers div/rem/shifts/cat/extract/reductions in a
        // real elaborated circuit rather than on bare Bits.
        let mut mb = ModuleBuilder::new("Alu");
        let a = mb.input("a", 16);
        let b = mb.input("b", 16);
        let q = mb.output("q", 16);
        let r = mb.output("r", 16);
        let sh = mb.output("sh", 16);
        let cat_lo = mb.output("cat_lo", 8);
        let parity = mb.output("parity", 1);
        mb.connect_sig(&q, &Sig::from_expr(fireaxe_ir_div(&a, &b)));
        mb.connect_sig(&r, &Sig::from_expr(fireaxe_ir_rem(&a, &b)));
        mb.connect_sig(&sh, &a.shl(3).or(&b.shr(2)));
        mb.connect_sig(&cat_lo, &a.bits(3, 0).cat(&b.bits(3, 0)));
        mb.connect_sig(
            &parity,
            &Sig::from_expr(Expr::Unary(UnOp::XorReduce, Box::new(a.expr().clone()))),
        );
        fn fireaxe_ir_div(a: &Sig, b: &Sig) -> Expr {
            Expr::Binary(
                BinOp::Div,
                Box::new(a.expr().clone()),
                Box::new(b.expr().clone()),
            )
        }
        fn fireaxe_ir_rem(a: &Sig, b: &Sig) -> Expr {
            Expr::Binary(
                BinOp::Rem,
                Box::new(a.expr().clone()),
                Box::new(b.expr().clone()),
            )
        }
        let c = Circuit::from_modules("Alu", vec![mb.finish()], "Alu");
        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("a", Bits::from_u64(0b1010_1100, 16));
        sim.poke("b", Bits::from_u64(5, 16));
        sim.eval().unwrap();
        assert_eq!(sim.peek("q").to_u64(), 0b1010_1100 / 5);
        assert_eq!(sim.peek("r").to_u64(), 0b1010_1100 % 5);
        assert_eq!(
            sim.peek("sh").to_u64(),
            ((0b1010_1100u64 << 3) | (5 >> 2)) & 0xFFFF
        );
        assert_eq!(sim.peek("cat_lo").to_u64(), (0b1100 << 4) | 0b0101);
        assert_eq!(
            sim.peek("parity").to_u64(),
            (0b1010_1100u64.count_ones() % 2) as u64
        );
        // Division by zero reads as zero (documented determinism).
        sim.poke("b", Bits::from_u64(0, 16));
        sim.eval().unwrap();
        assert_eq!(sim.peek("q").to_u64(), 0);
        assert_eq!(sim.peek("r").to_u64(), 0);
    }

    #[test]
    fn snapshot_restores_slots_mems_and_cycle() {
        let mut mb = ModuleBuilder::new("SnapM");
        let waddr = mb.input("waddr", 3);
        let wdata = mb.input("wdata", 8);
        let wen = mb.input("wen", 1);
        let out = mb.output("out", 8);
        let count = mb.reg("count", 8, 0);
        mb.connect_sig(&count, &count.add(&Sig::lit(1, 8)));
        let mem = mb.mem("store", 8, 8);
        mb.mem_write(&mem, &waddr, &wdata, &wen);
        let rd = mb.mem_read("rd", &mem, &waddr);
        mb.connect_sig(&out, &rd.add(&count));
        let c = Circuit::from_modules("SnapM", vec![mb.finish()], "SnapM");

        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("waddr", Bits::from_u64(2, 3));
        sim.poke("wdata", Bits::from_u64(0x11, 8));
        sim.poke("wen", Bits::from_u64(1, 1));
        for _ in 0..3 {
            sim.step().unwrap();
        }
        let snap = sim.snapshot().unwrap();
        assert_eq!(snap.cycle(), 3);

        // Diverge: different writes, more cycles.
        sim.poke("wdata", Bits::from_u64(0xEE, 8));
        for _ in 0..5 {
            sim.step().unwrap();
        }
        sim.eval().unwrap();
        let diverged = sim.peek("out").clone();

        // Roll back and replay the original inputs: identical state.
        assert!(sim.restore_snapshot(&snap));
        assert_eq!(sim.cycle(), 3);
        sim.poke("wdata", Bits::from_u64(0x11, 8));
        sim.eval().unwrap();
        assert_eq!(sim.peek_mem("store", 2).unwrap().to_u64(), 0x11);
        assert_ne!(sim.peek("out"), &diverged);
        assert_eq!(sim.peek("out").to_u64(), 0x11 + 3);
    }

    #[test]
    fn snapshot_unsupported_with_externs() {
        let mut sim = Interpreter::new(&extern_circuit()).unwrap();
        sim.bind_behavior("d", Box::new(Doubler::default()))
            .unwrap();
        assert!(sim.snapshot().is_none());
    }

    #[test]
    fn flattened_comb_cycle_detected() {
        // Two passthrough instances wired into a loop; each module alone is
        // acyclic so only elaboration sees the cycle.
        let mut pass = ModuleBuilder::new("Pass");
        let a = pass.input("a", 1);
        let y = pass.output("y", 1);
        pass.connect_sig(&y, &a);
        let pass = pass.finish();

        let mut top = ModuleBuilder::new("Top");
        let o = top.output("o", 1);
        top.inst("u0", "Pass");
        top.inst("u1", "Pass");
        let u0y = top.inst_port("u0", "y");
        let u1y = top.inst_port("u1", "y");
        top.connect_inst("u1", "a", &u0y);
        top.connect_inst("u0", "a", &u1y);
        top.connect_sig(&o, &u0y);
        let c = Circuit::from_modules("Top", vec![top.finish(), pass], "Top");
        assert!(matches!(
            Interpreter::new(&c),
            Err(IrError::CombCycle { .. })
        ));
    }
}
