//! # fireaxe-ir — circuit intermediate representation
//!
//! The foundation of FireAxe-rs: a FIRRTL-like structural IR for digital
//! circuits, together with everything the rest of the stack needs to
//! analyze and execute it:
//!
//! * [`Bits`]/[`Width`] — arbitrary-width values ([`bits`]);
//! * [`Circuit`]/[`Module`]/[`Stmt`]/[`Expr`] — the AST ([`ast`]);
//! * [`build::ModuleBuilder`] — ergonomic netlist construction;
//! * [`parser`]/[`printer`] — a round-tripping textual format;
//! * [`typecheck`] — width inference and structural validation;
//! * [`comb::CombAnalysis`] — input→output combinational reachability,
//!   the analysis FireRipper's exact-mode channel splitting is built on;
//! * [`interp::Interpreter`] — a cycle-accurate reference interpreter,
//!   the golden model against which partitioned simulation is validated.
//!
//! ## Example
//!
//! ```
//! use fireaxe_ir::build::{ModuleBuilder, Sig};
//! use fireaxe_ir::{Bits, Circuit, Interpreter};
//!
//! # fn main() -> Result<(), fireaxe_ir::IrError> {
//! let mut mb = ModuleBuilder::new("Counter");
//! let en = mb.input("en", 1);
//! let out = mb.output("out", 8);
//! let count = mb.reg("count", 8, 0);
//! mb.connect_sig(&count, &en.mux(&count.add(&Sig::lit(1, 8)), &count));
//! mb.connect_sig(&out, &count);
//! let circuit = Circuit::from_modules("Counter", vec![mb.finish()], "Counter");
//!
//! let mut sim = Interpreter::new(&circuit)?;
//! sim.poke("en", Bits::from_u64(1, 1));
//! for _ in 0..41 {
//!     sim.step()?;
//! }
//! sim.eval()?;
//! assert_eq!(sim.peek("out").to_u64(), 41);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bits;
pub mod build;
pub mod comb;
pub mod error;
pub mod exec;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod typecheck;

pub use ast::{
    BinOp, Circuit, CombPath, Direction, Expr, ExternInfo, Module, Port, Ref, ResourceHints, Stmt,
    UnOp,
};
pub use bits::{Bits, Width};
pub use comb::{CombAnalysis, ModuleCombInfo};
pub use error::{IrError, Result};
pub use exec::{ExecEngine, ExecStats};
pub use interp::{BehaviorSnapshot, ExternBehavior, InterpSnapshot, Interpreter};
