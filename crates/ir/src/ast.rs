//! The FireAxe circuit IR.
//!
//! This IR is modeled after FIRRTL's structural subset: a [`Circuit`] is a
//! set of [`Module`]s, one of which is the *top*. Modules declare typed
//! ports, local wires, nodes (named expressions), registers, memories,
//! child instances, and connections. The FireRipper compiler
//! (`fireaxe-ripper`) performs all of its analyses and hierarchy surgery on
//! this representation, and `fireaxe_ir::interp` executes it cycle by cycle.
//!
//! Coarse-grained modules (e.g. a BOOM core's backend, whose full RTL we do
//! not model) are *extern behavioral modules*: they declare ports,
//! combinational paths, and resource hints, and name a behavioral model
//! that the simulator binds at run time. Everything the compiler needs —
//! port directions, widths, and input→output combinational reachability —
//! is present for both kinds of modules, so partitioning treats them
//! uniformly.

use crate::bits::{Bits, Width};
use std::collections::HashMap;
use std::fmt;

/// Direction of a module port, from the perspective of the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Driven from outside the module.
    Input,
    /// Driven by the module.
    Output,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Input => Direction::Output,
            Direction::Output => Direction::Input,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Input => write!(f, "input"),
            Direction::Output => write!(f, "output"),
        }
    }
}

/// A typed, directed module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique within the module.
    pub name: String,
    /// Direction as seen from the module.
    pub direction: Direction,
    /// Signal width.
    pub width: Width,
}

impl Port {
    /// Creates a port.
    pub fn new(name: impl Into<String>, direction: Direction, width: impl Into<Width>) -> Self {
        Port {
            name: name.into(),
            direction,
            width: width.into(),
        }
    }

    /// Convenience constructor for an input port.
    pub fn input(name: impl Into<String>, width: impl Into<Width>) -> Self {
        Port::new(name, Direction::Input, width)
    }

    /// Convenience constructor for an output port.
    pub fn output(name: impl Into<String>, width: impl Into<Width>) -> Self {
        Port::new(name, Direction::Output, width)
    }
}

/// A reference to a named signal: either a local entity (`name`) or a port
/// of a child instance (`inst.name`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ref {
    /// Child instance name, or `None` for a local signal.
    pub instance: Option<String>,
    /// Signal (port/wire/node/register) name.
    pub name: String,
}

impl Ref {
    /// Reference to a local signal.
    pub fn local(name: impl Into<String>) -> Self {
        Ref {
            instance: None,
            name: name.into(),
        }
    }

    /// Reference to a port on a child instance.
    pub fn instance_port(inst: impl Into<String>, port: impl Into<String>) -> Self {
        Ref {
            instance: Some(inst.into()),
            name: port.into(),
        }
    }

    /// Returns `true` for a local (non-instance) reference.
    pub fn is_local(&self) -> bool {
        self.instance.is_none()
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.instance {
            Some(i) => write!(f, "{i}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Binary primitive operations (FIRRTL primop subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (widths ≤ 64).
    Div,
    /// Unsigned remainder (widths ≤ 64).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Unsigned equality, 1-bit result.
    Eq,
    /// Unsigned inequality, 1-bit result.
    Neq,
    /// Unsigned less-than, 1-bit result.
    Lt,
    /// Unsigned less-or-equal, 1-bit result.
    Leq,
    /// Unsigned greater-than, 1-bit result.
    Gt,
    /// Unsigned greater-or-equal, 1-bit result.
    Geq,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Eq => "eq",
            BinOp::Neq => "neq",
            BinOp::Lt => "lt",
            BinOp::Leq => "leq",
            BinOp::Gt => "gt",
            BinOp::Geq => "geq",
        };
        write!(f, "{s}")
    }
}

/// Unary primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise NOT at the operand width.
    Not,
    /// OR-reduce to 1 bit.
    OrReduce,
    /// AND-reduce to 1 bit.
    AndReduce,
    /// XOR-reduce (parity) to 1 bit.
    XorReduce,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Not => "not",
            UnOp::OrReduce => "orr",
            UnOp::AndReduce => "andr",
            UnOp::XorReduce => "xorr",
        };
        write!(f, "{s}")
    }
}

/// A combinational expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Lit(Bits),
    /// A reference to a signal.
    Ref(Ref),
    /// A unary primop.
    Unary(UnOp, Box<Expr>),
    /// A binary primop.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// 2-way multiplexer: `Mux(sel, on_true, on_false)`.
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation; element 0 holds the most-significant bits.
    Cat(Vec<Expr>),
    /// Bit extraction `expr[hi:lo]`, inclusive.
    Extract(Box<Expr>, u32, u32),
    /// Zero-extend or truncate to a width.
    Resize(Box<Expr>, Width),
    /// Logical shift left by a constant, width preserved.
    Shl(Box<Expr>, u32),
    /// Logical shift right by a constant, width preserved.
    Shr(Box<Expr>, u32),
}

impl Expr {
    /// Literal helper.
    pub fn lit(value: u64, width: impl Into<Width>) -> Expr {
        Expr::Lit(Bits::from_u64(value, width))
    }

    /// Local-reference helper.
    pub fn reference(name: impl Into<String>) -> Expr {
        Expr::Ref(Ref::local(name))
    }

    /// Collects every [`Ref`] mentioned in the expression into `out`.
    pub fn collect_refs<'a>(&'a self, out: &mut Vec<&'a Ref>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Ref(r) => out.push(r),
            Expr::Unary(_, a) => a.collect_refs(out),
            Expr::Binary(_, a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Mux(c, a, b) => {
                c.collect_refs(out);
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Cat(parts) => {
                for p in parts {
                    p.collect_refs(out);
                }
            }
            Expr::Extract(a, _, _) | Expr::Resize(a, _) | Expr::Shl(a, _) | Expr::Shr(a, _) => {
                a.collect_refs(out)
            }
        }
    }

    /// Rewrites every [`Ref`] in place with `f`.
    pub fn rewrite_refs(&mut self, f: &mut impl FnMut(&mut Ref)) {
        match self {
            Expr::Lit(_) => {}
            Expr::Ref(r) => f(r),
            Expr::Unary(_, a) => a.rewrite_refs(f),
            Expr::Binary(_, a, b) => {
                a.rewrite_refs(f);
                b.rewrite_refs(f);
            }
            Expr::Mux(c, a, b) => {
                c.rewrite_refs(f);
                a.rewrite_refs(f);
                b.rewrite_refs(f);
            }
            Expr::Cat(parts) => {
                for p in parts {
                    p.rewrite_refs(f);
                }
            }
            Expr::Extract(a, _, _) | Expr::Resize(a, _) | Expr::Shl(a, _) | Expr::Shr(a, _) => {
                a.rewrite_refs(f)
            }
        }
    }
}

/// A statement in a module body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An undriven named signal; must be the target of exactly one
    /// [`Stmt::Connect`].
    Wire {
        /// Wire name.
        name: String,
        /// Wire width.
        width: Width,
    },
    /// A named combinational expression (single static assignment).
    Node {
        /// Node name.
        name: String,
        /// Defining expression.
        expr: Expr,
    },
    /// A positive-edge register on the module's implicit clock. Its next
    /// value is set by connecting to its name; if never connected it holds
    /// its value.
    Reg {
        /// Register name.
        name: String,
        /// Register width.
        width: Width,
        /// Reset value applied at time zero.
        init: Bits,
    },
    /// A memory with combinational read and synchronous write.
    Mem {
        /// Memory name.
        name: String,
        /// Data width.
        width: Width,
        /// Number of entries.
        depth: u32,
    },
    /// A combinational read port: defines signal `name` as `mem[addr]`.
    MemRead {
        /// Name of the signal defined by this read port.
        name: String,
        /// Memory being read.
        mem: String,
        /// Address expression.
        addr: Expr,
    },
    /// A synchronous write port: at the clock edge, if `en` is true,
    /// `mem[addr] <- data`.
    MemWrite {
        /// Memory being written.
        mem: String,
        /// Address expression.
        addr: Expr,
        /// Data expression.
        data: Expr,
        /// Enable expression (1 bit).
        en: Expr,
    },
    /// A child module instance.
    Inst {
        /// Instance name.
        name: String,
        /// Name of the instantiated module.
        module: String,
    },
    /// Drives `lhs` (a wire, register, output port, or instance input
    /// port) with `rhs`, resized to the sink width.
    Connect {
        /// The driven signal.
        lhs: Ref,
        /// The driving expression.
        rhs: Expr,
    },
}

impl Stmt {
    /// The name this statement defines, if it defines one.
    pub fn defined_name(&self) -> Option<&str> {
        match self {
            Stmt::Wire { name, .. }
            | Stmt::Node { name, .. }
            | Stmt::Reg { name, .. }
            | Stmt::Mem { name, .. }
            | Stmt::MemRead { name, .. }
            | Stmt::Inst { name, .. } => Some(name),
            Stmt::MemWrite { .. } | Stmt::Connect { .. } => None,
        }
    }
}

/// Resource consumption hints attached to extern behavioral modules, in
/// lieu of estimating from (absent) RTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceHints {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub regs: u64,
    /// Block RAM tiles (36 kb each).
    pub brams: u64,
    /// DSP slices.
    pub dsps: u64,
}

/// Declared combinational path of an extern behavioral module: the output
/// port combinationally depends on the input port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CombPath {
    /// Input port name.
    pub input: String,
    /// Output port name.
    pub output: String,
}

/// Extra metadata for modules whose internals are behavioral rather than
/// structural RTL.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExternInfo {
    /// Key under which the simulator looks up the behavioral model.
    pub behavior: String,
    /// Input→output combinational paths (the compiler trusts these the way
    /// Golden Gate trusts FIRRTL analysis results).
    pub comb_paths: Vec<CombPath>,
    /// FPGA resource hints.
    pub resources: ResourceHints,
}

/// A hardware module: ports plus either a structural body or extern
/// behavioral metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name, unique within the circuit.
    pub name: String,
    /// Port list.
    pub ports: Vec<Port>,
    /// Body statements (empty for extern modules).
    pub body: Vec<Stmt>,
    /// Present iff this is an extern behavioral module.
    pub extern_info: Option<ExternInfo>,
}

impl Module {
    /// Creates an empty structural module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ports: Vec::new(),
            body: Vec::new(),
            extern_info: None,
        }
    }

    /// Returns `true` if this module is an extern behavioral module.
    pub fn is_extern(&self) -> bool {
        self.extern_info.is_some()
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Iterates ports of one direction.
    pub fn ports_in(&self, direction: Direction) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(move |p| p.direction == direction)
    }

    /// Total boundary width (sum of all port widths), in bits.
    pub fn boundary_width(&self) -> u64 {
        self.ports.iter().map(|p| u64::from(p.width.get())).sum()
    }

    /// All child instances as `(instance_name, module_name)` pairs.
    pub fn instances(&self) -> impl Iterator<Item = (&str, &str)> {
        self.body.iter().filter_map(|s| match s {
            Stmt::Inst { name, module } => Some((name.as_str(), module.as_str())),
            _ => None,
        })
    }

    /// Finds the statement defining `name`.
    pub fn find_def(&self, name: &str) -> Option<&Stmt> {
        self.body.iter().find(|s| s.defined_name() == Some(name))
    }

    /// Width of a locally declared signal or port, if known.
    pub fn signal_width(&self, name: &str) -> Option<Width> {
        if let Some(p) = self.port(name) {
            return Some(p.width);
        }
        match self.find_def(name)? {
            Stmt::Wire { width, .. } | Stmt::Reg { width, .. } => Some(*width),
            Stmt::Mem { width, .. } => Some(*width),
            Stmt::MemRead { mem, .. } => match self.find_def(mem)? {
                Stmt::Mem { width, .. } => Some(*width),
                _ => None,
            },
            Stmt::Node { .. } => None, // requires expression width inference
            _ => None,
        }
    }
}

/// A complete design: a named set of modules with a designated top.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Circuit name (conventionally equals the top module name).
    pub name: String,
    /// All modules; order is not significant.
    pub modules: Vec<Module>,
    /// Name of the top module.
    pub top: String,
}

impl Circuit {
    /// Creates a circuit with a single empty top module.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Circuit {
            top: name.clone(),
            modules: vec![Module::new(name.clone())],
            name,
        }
    }

    /// Creates a circuit from parts.
    pub fn from_modules(
        name: impl Into<String>,
        modules: Vec<Module>,
        top: impl Into<String>,
    ) -> Self {
        Circuit {
            name: name.into(),
            modules,
            top: top.into(),
        }
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Looks up a module mutably by name.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// The top module.
    ///
    /// # Panics
    ///
    /// Panics if the declared top module is missing (an ill-formed circuit).
    pub fn top_module(&self) -> &Module {
        self.module(&self.top)
            .unwrap_or_else(|| panic!("top module `{}` not found", self.top))
    }

    /// Adds a module, replacing any module with the same name.
    pub fn add_module(&mut self, module: Module) {
        if let Some(existing) = self.module_mut(&module.name) {
            *existing = module;
        } else {
            self.modules.push(module);
        }
    }

    /// Removes a module by name, returning it if present.
    pub fn remove_module(&mut self, name: &str) -> Option<Module> {
        let idx = self.modules.iter().position(|m| m.name == name)?;
        Some(self.modules.remove(idx))
    }

    /// Module names in dependency (topological) order: leaves first, top
    /// last. Modules not reachable from the top are appended at the end.
    ///
    /// This is the "topologically sorts the modules according to their
    /// position in the module hierarchy" step of FireRipper (§III-A1).
    pub fn topo_order(&self) -> Vec<String> {
        let mut order = Vec::new();
        let mut state: HashMap<&str, u8> = HashMap::new(); // 0 = visiting, 1 = done
        fn visit<'a>(
            c: &'a Circuit,
            name: &'a str,
            state: &mut HashMap<&'a str, u8>,
            order: &mut Vec<String>,
        ) {
            if state.contains_key(name) {
                // Done, or currently visiting (recursion; checked elsewhere).
                return;
            }
            state.insert(name, 0);
            if let Some(m) = c.module(name) {
                for (_, child) in m.instances() {
                    visit(c, child, state, order);
                }
            }
            state.insert(name, 1);
            order.push(name.to_string());
        }
        visit(self, &self.top, &mut state, &mut order);
        for m in &self.modules {
            if !state.contains_key(m.name.as_str()) {
                visit(self, &m.name, &mut state, &mut order);
            }
        }
        order
    }

    /// Counts instances of each module reachable from the top (for FAME-5
    /// duplicate detection and resource estimation).
    pub fn instance_counts(&self) -> HashMap<String, u64> {
        let mut counts = HashMap::new();
        fn walk(c: &Circuit, name: &str, mult: u64, counts: &mut HashMap<String, u64>) {
            *counts.entry(name.to_string()).or_insert(0) += mult;
            if let Some(m) = c.module(name) {
                let mut per_child: HashMap<&str, u64> = HashMap::new();
                for (_, child) in m.instances() {
                    *per_child.entry(child).or_insert(0) += 1;
                }
                for (child, n) in per_child {
                    walk(c, child, mult * n, counts);
                }
            }
        }
        walk(self, &self.top, 1, &mut counts);
        counts
    }

    /// Removes modules not reachable from the top. Returns removed names.
    pub fn prune_unreachable(&mut self) -> Vec<String> {
        let reachable: std::collections::HashSet<String> =
            self.instance_counts().keys().cloned().collect();
        let (keep, drop): (Vec<Module>, Vec<Module>) = std::mem::take(&mut self.modules)
            .into_iter()
            .partition(|m| reachable.contains(&m.name));
        self.modules = keep;
        drop.into_iter().map(|m| m.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str) -> Module {
        let mut m = Module::new(name);
        m.ports.push(Port::input("a", 8));
        m.ports.push(Port::output("b", 8));
        m.body.push(Stmt::Connect {
            lhs: Ref::local("b"),
            rhs: Expr::reference("a"),
        });
        m
    }

    fn two_level() -> Circuit {
        let mut top = Module::new("Top");
        top.ports.push(Port::input("in", 8));
        top.ports.push(Port::output("out", 8));
        top.body.push(Stmt::Inst {
            name: "u0".into(),
            module: "Leaf".into(),
        });
        top.body.push(Stmt::Inst {
            name: "u1".into(),
            module: "Leaf".into(),
        });
        top.body.push(Stmt::Connect {
            lhs: Ref::instance_port("u0", "a"),
            rhs: Expr::reference("in"),
        });
        top.body.push(Stmt::Connect {
            lhs: Ref::instance_port("u1", "a"),
            rhs: Expr::Ref(Ref::instance_port("u0", "b")),
        });
        top.body.push(Stmt::Connect {
            lhs: Ref::local("out"),
            rhs: Expr::Ref(Ref::instance_port("u1", "b")),
        });
        Circuit::from_modules("Top", vec![top, leaf("Leaf")], "Top")
    }

    #[test]
    fn topo_order_leaves_first() {
        let c = two_level();
        let order = c.topo_order();
        assert_eq!(order, vec!["Leaf".to_string(), "Top".to_string()]);
    }

    #[test]
    fn instance_counts_multiplies() {
        let c = two_level();
        let counts = c.instance_counts();
        assert_eq!(counts["Top"], 1);
        assert_eq!(counts["Leaf"], 2);
    }

    #[test]
    fn prune_removes_unreachable() {
        let mut c = two_level();
        c.add_module(Module::new("Orphan"));
        let removed = c.prune_unreachable();
        assert_eq!(removed, vec!["Orphan".to_string()]);
        assert!(c.module("Leaf").is_some());
    }

    #[test]
    fn module_lookups() {
        let c = two_level();
        let top = c.top_module();
        assert_eq!(top.instances().count(), 2);
        assert_eq!(top.boundary_width(), 16);
        assert_eq!(top.port("in").unwrap().direction, Direction::Input);
        assert_eq!(top.signal_width("out"), Some(Width::new(8)));
    }

    #[test]
    fn expr_ref_collection_and_rewrite() {
        let mut e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::reference("x")),
            Box::new(Expr::Mux(
                Box::new(Expr::reference("sel")),
                Box::new(Expr::Ref(Ref::instance_port("u", "p"))),
                Box::new(Expr::lit(0, 4)),
            )),
        );
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        assert_eq!(refs.len(), 3);
        e.rewrite_refs(&mut |r| r.name = format!("{}_renamed", r.name));
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        assert!(refs.iter().all(|r| r.name.ends_with("_renamed")));
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Input.flip(), Direction::Output);
        assert_eq!(Direction::Output.flip(), Direction::Input);
    }

    #[test]
    fn add_module_replaces_same_name() {
        let mut c = two_level();
        let mut replacement = Module::new("Leaf");
        replacement.ports.push(Port::input("a", 16));
        c.add_module(replacement);
        assert_eq!(c.modules.len(), 2);
        assert_eq!(c.module("Leaf").unwrap().port("a").unwrap().width.get(), 16);
    }
}
