//! Arbitrary-width bit vectors.
//!
//! [`Bits`] is the value type flowing through every wire, register, and
//! LI-BDN token in FireAxe. Widths are explicit and all operations follow
//! FIRRTL-style semantics: results are truncated (or zero-extended) to the
//! width requested by the operation.

use std::fmt;

/// Width of a hardware signal in bits.
///
/// Zero-width signals are permitted (FIRRTL allows them); they carry no
/// information and compare equal to each other.
///
/// # Examples
///
/// ```
/// use fireaxe_ir::Width;
/// let w = Width::new(7);
/// assert_eq!(w.get(), 7);
/// assert_eq!(w.words(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Width(u32);

impl Width {
    /// Creates a width of `bits` bits.
    pub const fn new(bits: u32) -> Self {
        Width(bits)
    }

    /// Returns the width in bits.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Number of 64-bit words needed to store a value of this width.
    pub const fn words(self) -> usize {
        (self.0 as usize).div_ceil(64)
    }

    /// Returns `true` for a zero-bit width.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u32> for Width {
    fn from(bits: u32) -> Self {
        Width(bits)
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An unsigned bit vector of fixed [`Width`].
///
/// Values wider than 64 bits are stored little-endian across `u64` words.
/// All constructors and operations maintain the invariant that bits above
/// the declared width are zero.
///
/// # Examples
///
/// ```
/// use fireaxe_ir::Bits;
/// let a = Bits::from_u64(5, 8);
/// let b = Bits::from_u64(250, 8);
/// assert_eq!(a.add(&b).to_u64(), 255);
/// // Addition wraps at the result width (8 bits here):
/// assert_eq!(b.add(&b).to_u64(), (250u64 + 250) & 0xff);
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct Bits {
    words: Vec<u64>,
    width: Width,
}

impl Clone for Bits {
    fn clone(&self) -> Self {
        Bits {
            words: self.words.clone(),
            width: self.width,
        }
    }

    /// Reuses the existing word allocation — hot paths (the compiled
    /// execution engine, extern input refresh) rely on this being
    /// allocation-free once buffers are warm.
    fn clone_from(&mut self, source: &Self) {
        self.words.clone_from(&source.words);
        self.width = source.width;
    }
}

impl Bits {
    /// All-zero value of the given width.
    pub fn zero(width: impl Into<Width>) -> Self {
        let width = width.into();
        Bits {
            words: vec![0; width.words()],
            width,
        }
    }

    /// All-ones value of the given width.
    pub fn ones(width: impl Into<Width>) -> Self {
        let width = width.into();
        let mut b = Bits {
            words: vec![u64::MAX; width.words()],
            width,
        };
        b.mask_top();
        b
    }

    /// Builds a value from the low 64 bits of `value`, truncated to `width`.
    pub fn from_u64(value: u64, width: impl Into<Width>) -> Self {
        let width = width.into();
        let mut b = Bits::zero(width);
        if !b.words.is_empty() {
            b.words[0] = value;
        }
        b.mask_top();
        b
    }

    /// Builds a value from little-endian 64-bit words, truncated to `width`.
    pub fn from_words(words: &[u64], width: impl Into<Width>) -> Self {
        let width = width.into();
        let mut w = words.to_vec();
        w.resize(width.words(), 0);
        w.truncate(width.words());
        let mut b = Bits { words: w, width };
        b.mask_top();
        b
    }

    /// Parses a binary string such as `"1010"`; width equals string length.
    ///
    /// Returns `None` when the string contains characters other than `0`/`1`
    /// or is empty.
    pub fn from_binary_str(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b == b'0' || b == b'1') {
            return None;
        }
        let width = Width::new(s.len() as u32);
        let mut b = Bits::zero(width);
        for (i, ch) in s.bytes().rev().enumerate() {
            if ch == b'1' {
                b.set_bit(i as u32, true);
            }
        }
        Some(b)
    }

    /// The width of this value.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The value as a `u64`, truncating anything above bit 63.
    pub fn to_u64(&self) -> u64 {
        self.words.first().copied().unwrap_or(0)
    }

    /// The backing little-endian words.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites the value in place from the low 64 bits of `value`,
    /// keeping the current width and heap allocation. Bits above the
    /// width are masked off; words above the first are zeroed.
    ///
    /// This is the zero-allocation store used by the compiled execution
    /// engine's word-packed fast path.
    pub fn set_from_u64(&mut self, value: u64) {
        for w in &mut self.words {
            *w = 0;
        }
        if let Some(w0) = self.words.first_mut() {
            *w0 = value;
        }
        self.mask_top();
    }

    /// In-place equivalent of `*self = src.resize(self.width())`: copies
    /// `src`'s words (truncating or zero-extending) while keeping this
    /// value's width and allocation. Never allocates.
    pub fn assign_resized(&mut self, src: &Bits) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w = src.words.get(i).copied().unwrap_or(0);
        }
        self.mask_top();
    }

    /// `self == src.resize(self.width())`, computed without allocating.
    pub fn eq_resized(&self, src: &Bits) -> bool {
        let n = self.words.len();
        let rem = self.width.get() % 64;
        for (i, w) in self.words.iter().enumerate() {
            let mut want = src.words.get(i).copied().unwrap_or(0);
            if i + 1 == n && rem != 0 {
                want &= (1u64 << rem) - 1;
            }
            if *w != want {
                return false;
            }
        }
        true
    }

    /// Returns `true` when every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Value of bit `i` (counting from the LSB). Bits at or above the width
    /// read as `false`.
    pub fn bit(&self, i: u32) -> bool {
        if i >= self.width.get() {
            return false;
        }
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the width.
    pub fn set_bit(&mut self, i: u32, v: bool) {
        assert!(
            i < self.width.get(),
            "bit index {i} out of width {}",
            self.width
        );
        let w = (i / 64) as usize;
        let m = 1u64 << (i % 64);
        if v {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    fn mask_top(&mut self) {
        let bits = self.width.get();
        if bits == 0 {
            self.words.clear();
            return;
        }
        let rem = bits % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// Reinterprets the value at a new width (truncating or zero-extending).
    pub fn resize(&self, width: impl Into<Width>) -> Self {
        let width = width.into();
        Bits::from_words(&self.words, width)
    }

    /// Concatenation: `self` becomes the high bits, `low` the low bits,
    /// matching FIRRTL's `cat(hi, lo)`.
    pub fn cat(&self, low: &Bits) -> Self {
        let lw = low.width.get();
        let width = Width::new(lw + self.width.get());
        let mut out = Bits::zero(width);
        for i in 0..lw {
            if low.bit(i) {
                out.set_bit(i, true);
            }
        }
        for i in 0..self.width.get() {
            if self.bit(i) {
                out.set_bit(lw + i, true);
            }
        }
        out
    }

    /// Bit extraction `self[hi:lo]` (inclusive), like FIRRTL `bits(x, hi, lo)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is outside the width.
    pub fn extract(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "extract range reversed: [{hi}:{lo}]");
        assert!(
            hi < self.width.get(),
            "extract hi bit {hi} out of width {}",
            self.width
        );
        let width = Width::new(hi - lo + 1);
        let mut out = Bits::zero(width);
        for i in 0..width.get() {
            if self.bit(lo + i) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Wrapping addition at `max(widths)` bits.
    pub fn add(&self, rhs: &Bits) -> Self {
        let width = self.width.max(rhs.width);
        let a = self.resize(width);
        let b = rhs.resize(width);
        let mut out = Bits::zero(width);
        let mut carry = 0u64;
        for i in 0..width.words() {
            let (s1, c1) = a.words[i].overflowing_add(b.words[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.words[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Wrapping subtraction at `max(widths)` bits (two's complement).
    pub fn sub(&self, rhs: &Bits) -> Self {
        let width = self.width.max(rhs.width);
        let b = rhs.resize(width).not();
        self.resize(width)
            .add(&b)
            .add(&Bits::from_u64(1, width))
            .resize(width)
    }

    /// Wrapping multiplication at `max(widths)` bits.
    pub fn mul(&self, rhs: &Bits) -> Self {
        let width = self.width.max(rhs.width);
        let a = self.resize(width);
        let b = rhs.resize(width);
        let mut out = Bits::zero(width);
        let n = width.words();
        for i in 0..n {
            let mut carry = 0u128;
            if a.words[i] == 0 {
                continue;
            }
            for j in 0..n - i {
                let cur =
                    out.words[i + j] as u128 + (a.words[i] as u128) * (b.words[j] as u128) + carry;
                out.words[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        out.mask_top();
        out
    }

    /// Unsigned division; division by zero yields all-zeros (FIRRTL leaves it
    /// undefined, we pick zero for determinism). Only widths ≤ 64 support
    /// division.
    ///
    /// # Panics
    ///
    /// Panics if either operand is wider than 64 bits.
    pub fn udiv(&self, rhs: &Bits) -> Self {
        assert!(
            self.width.get() <= 64 && rhs.width.get() <= 64,
            "udiv supports widths <= 64"
        );
        let v = self.to_u64().checked_div(rhs.to_u64()).unwrap_or(0);
        Bits::from_u64(v, self.width.max(rhs.width))
    }

    /// Unsigned remainder with the same restrictions as [`Bits::udiv`].
    ///
    /// # Panics
    ///
    /// Panics if either operand is wider than 64 bits.
    pub fn urem(&self, rhs: &Bits) -> Self {
        assert!(
            self.width.get() <= 64 && rhs.width.get() <= 64,
            "urem supports widths <= 64"
        );
        let v = self.to_u64().checked_rem(rhs.to_u64()).unwrap_or(0);
        Bits::from_u64(v, self.width.max(rhs.width))
    }

    /// Bitwise AND at `max(widths)` bits.
    pub fn and(&self, rhs: &Bits) -> Self {
        self.zip(rhs, |a, b| a & b)
    }

    /// Bitwise OR at `max(widths)` bits.
    pub fn or(&self, rhs: &Bits) -> Self {
        self.zip(rhs, |a, b| a | b)
    }

    /// Bitwise XOR at `max(widths)` bits.
    pub fn xor(&self, rhs: &Bits) -> Self {
        self.zip(rhs, |a, b| a ^ b)
    }

    fn zip(&self, rhs: &Bits, f: impl Fn(u64, u64) -> u64) -> Self {
        let width = self.width.max(rhs.width);
        let a = self.resize(width);
        let b = rhs.resize(width);
        let mut out = Bits::zero(width);
        for i in 0..width.words() {
            out.words[i] = f(a.words[i], b.words[i]);
        }
        out.mask_top();
        out
    }

    /// Bitwise NOT at the value's own width.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_top();
        out
    }

    /// Logical shift left by a constant, keeping the width.
    pub fn shl(&self, n: u32) -> Self {
        let mut out = Bits::zero(self.width);
        for i in n..self.width.get() {
            if self.bit(i - n) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Logical shift right by a constant, keeping the width.
    pub fn shr(&self, n: u32) -> Self {
        let mut out = Bits::zero(self.width);
        if n >= self.width.get() {
            return out;
        }
        for i in 0..self.width.get() - n {
            if self.bit(i + n) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// OR-reduction to a single bit.
    pub fn reduce_or(&self) -> Self {
        Bits::from_u64(u64::from(!self.is_zero()), 1)
    }

    /// AND-reduction to a single bit (true iff every bit in the width is set).
    pub fn reduce_and(&self) -> Self {
        let all = self.count_ones() == self.width.get();
        Bits::from_u64(u64::from(all && !self.width.is_zero()), 1)
    }

    /// XOR-reduction to a single bit (parity).
    pub fn reduce_xor(&self) -> Self {
        Bits::from_u64(u64::from(self.count_ones() % 2 == 1), 1)
    }

    /// Unsigned comparison.
    pub fn ucmp(&self, rhs: &Bits) -> std::cmp::Ordering {
        let width = self.width.max(rhs.width);
        let a = self.resize(width);
        let b = rhs.resize(width);
        for i in (0..width.words()).rev() {
            match a.words[i].cmp(&b.words[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl Default for Bits {
    fn default() -> Self {
        Bits::zero(0)
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits<{}>({:#x})", self.width, self)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(self, f)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.words.is_empty() {
            return write!(f, "0");
        }
        let mut started = false;
        let mut s = String::new();
        for w in self.words.iter().rev() {
            if started {
                s.push_str(&format!("{w:016x}"));
            } else if *w != 0 || std::ptr::eq(w, &self.words[0]) {
                s.push_str(&format!("{w:x}"));
                started = true;
            }
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits = self.width.get();
        if bits == 0 {
            return write!(f, "0");
        }
        let s: String = (0..bits)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect();
        f.pad_integral(true, "0b", &s)
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_u64(u64::from(v), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        let z = Bits::zero(130);
        assert!(z.is_zero());
        assert_eq!(z.width().get(), 130);
        let o = Bits::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(!o.bit(130)); // out of range reads false
    }

    #[test]
    fn from_u64_truncates() {
        let b = Bits::from_u64(0xff, 4);
        assert_eq!(b.to_u64(), 0xf);
    }

    #[test]
    fn add_wraps_at_width() {
        let a = Bits::from_u64(0xffff_ffff_ffff_ffff, 64);
        let one = Bits::from_u64(1, 64);
        assert_eq!(a.add(&one).to_u64(), 0);
    }

    #[test]
    fn add_carries_across_words() {
        let a = Bits::from_words(&[u64::MAX, 0], 128);
        let one = Bits::from_u64(1, 128);
        let s = a.add(&one);
        assert_eq!(s.as_words(), &[0, 1]);
    }

    #[test]
    fn sub_two_complement() {
        let a = Bits::from_u64(5, 8);
        let b = Bits::from_u64(7, 8);
        assert_eq!(a.sub(&b).to_u64(), 254); // -2 mod 256
        assert_eq!(b.sub(&a).to_u64(), 2);
    }

    #[test]
    fn mul_basic_and_wide() {
        let a = Bits::from_u64(1 << 40, 128);
        let b = Bits::from_u64(1 << 30, 128);
        let p = a.mul(&b);
        assert_eq!(p.as_words(), &[0, 1 << 6]); // 2^70
    }

    #[test]
    fn div_rem() {
        let a = Bits::from_u64(17, 8);
        let b = Bits::from_u64(5, 8);
        assert_eq!(a.udiv(&b).to_u64(), 3);
        assert_eq!(a.urem(&b).to_u64(), 2);
        assert_eq!(a.udiv(&Bits::zero(8)).to_u64(), 0);
    }

    #[test]
    fn cat_orders_high_low() {
        let hi = Bits::from_u64(0b101, 3);
        let lo = Bits::from_u64(0b01, 2);
        let c = hi.cat(&lo);
        assert_eq!(c.width().get(), 5);
        assert_eq!(c.to_u64(), 0b10101);
    }

    #[test]
    fn extract_inclusive_range() {
        let v = Bits::from_u64(0b110100, 6);
        assert_eq!(v.extract(4, 2).to_u64(), 0b101);
        assert_eq!(v.extract(0, 0).to_u64(), 0);
        assert_eq!(v.extract(5, 5).to_u64(), 1);
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn extract_out_of_range_panics() {
        Bits::from_u64(1, 4).extract(4, 0);
    }

    #[test]
    fn logic_ops() {
        let a = Bits::from_u64(0b1100, 4);
        let b = Bits::from_u64(0b1010, 4);
        assert_eq!(a.and(&b).to_u64(), 0b1000);
        assert_eq!(a.or(&b).to_u64(), 0b1110);
        assert_eq!(a.xor(&b).to_u64(), 0b0110);
        assert_eq!(a.not().to_u64(), 0b0011);
    }

    #[test]
    fn mixed_width_ops_extend() {
        let a = Bits::from_u64(0b1, 1);
        let b = Bits::from_u64(0b1000, 4);
        assert_eq!(a.or(&b).width().get(), 4);
        assert_eq!(a.or(&b).to_u64(), 0b1001);
    }

    #[test]
    fn shifts_keep_width() {
        let a = Bits::from_u64(0b0110, 4);
        assert_eq!(a.shl(1).to_u64(), 0b1100);
        assert_eq!(a.shl(3).to_u64(), 0); // 0b0110000 truncated to 4 bits
        assert_eq!(a.shr(1).to_u64(), 0b0011);
        assert_eq!(a.shr(8).to_u64(), 0);
    }

    #[test]
    fn reductions() {
        assert_eq!(Bits::from_u64(0, 4).reduce_or().to_u64(), 0);
        assert_eq!(Bits::from_u64(2, 4).reduce_or().to_u64(), 1);
        assert_eq!(Bits::ones(4).reduce_and().to_u64(), 1);
        assert_eq!(Bits::from_u64(0b0111, 4).reduce_and().to_u64(), 0);
        assert_eq!(Bits::from_u64(0b0111, 4).reduce_xor().to_u64(), 1);
    }

    #[test]
    fn comparison() {
        use std::cmp::Ordering;
        let a = Bits::from_words(&[0, 1], 128);
        let b = Bits::from_words(&[u64::MAX, 0], 128);
        assert_eq!(a.ucmp(&b), Ordering::Greater);
        assert_eq!(b.ucmp(&a), Ordering::Less);
        assert_eq!(a.ucmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn binary_str_roundtrip() {
        let b = Bits::from_binary_str("10110").unwrap();
        assert_eq!(b.to_u64(), 0b10110);
        assert_eq!(format!("{b:b}"), "10110");
        assert!(Bits::from_binary_str("").is_none());
        assert!(Bits::from_binary_str("102").is_none());
    }

    #[test]
    fn zero_width_is_inert() {
        let z = Bits::zero(0);
        assert!(z.is_zero());
        assert_eq!(z.cat(&Bits::from_u64(3, 2)).to_u64(), 3);
    }

    #[test]
    fn set_from_u64_masks_and_zeroes_upper_words() {
        let mut b = Bits::from_words(&[u64::MAX, u64::MAX], 100);
        b.set_from_u64(0xABCD);
        assert_eq!(b, Bits::from_u64(0xABCD, 100));
        let mut narrow = Bits::zero(4);
        narrow.set_from_u64(0xFF);
        assert_eq!(narrow.to_u64(), 0xF);
        let mut zw = Bits::zero(0);
        zw.set_from_u64(7); // inert
        assert!(zw.is_zero());
    }

    #[test]
    fn assign_resized_matches_resize() {
        for (src_w, dst_w) in [(8u32, 80u32), (80, 8), (64, 64), (100, 33)] {
            let src = Bits::from_words(&[0xDEAD_BEEF_CAFE_F00D, 0x1234_5678], src_w);
            let mut dst = Bits::ones(dst_w);
            dst.assign_resized(&src);
            assert_eq!(dst, src.resize(dst_w), "src {src_w} -> dst {dst_w}");
        }
    }

    #[test]
    fn eq_resized_matches_resize_equality() {
        for (a_w, b_w) in [(8u32, 80u32), (80, 8), (64, 64), (100, 33), (3, 7)] {
            let a = Bits::from_words(&[0xDEAD_BEEF_CAFE_F00D, 0x1234_5678], a_w);
            let b = Bits::from_words(&[0xDEAD_BEEF_CAFE_F00D, 0x1234_5678], b_w);
            assert_eq!(a.eq_resized(&b), a == b.resize(a_w), "a {a_w} vs b {b_w}");
            assert!(a.eq_resized(&a.clone()));
            assert_eq!(
                a.eq_resized(&Bits::zero(b_w)),
                a == Bits::zero(b_w).resize(a_w)
            );
        }
    }

    #[test]
    fn clone_from_reuses_and_copies() {
        let src = Bits::from_words(&[1, 2, 3], 180);
        let mut dst = Bits::zero(180);
        dst.clone_from(&src);
        assert_eq!(dst, src);
        let mut shrunk = Bits::ones(200);
        shrunk.clone_from(&Bits::from_u64(9, 8));
        assert_eq!(shrunk, Bits::from_u64(9, 8));
    }

    #[test]
    fn set_bit_across_words() {
        let mut b = Bits::zero(100);
        b.set_bit(99, true);
        assert!(b.bit(99));
        assert_eq!(b.count_ones(), 1);
        b.set_bit(99, false);
        assert!(b.is_zero());
    }
}
