//! Width inference and structural validation.
//!
//! [`infer_width`] computes the width of any [`Expr`] in a module context;
//! [`validate`] checks a whole [`Circuit`] for the structural invariants
//! the rest of FireAxe relies on (unique names, resolvable references,
//! single drivers, acyclic hierarchy).

use crate::ast::*;
use crate::bits::Width;
use crate::error::{IrError, Result};
use std::collections::{HashMap, HashSet};

/// Computes the width of `expr` evaluated inside `module` (of `circuit`).
///
/// # Errors
///
/// Returns [`IrError::UnresolvedRef`] when the expression mentions a signal
/// that is not declared, and [`IrError::Malformed`] for other width
/// inconsistencies.
pub fn infer_width(circuit: &Circuit, module: &Module, expr: &Expr) -> Result<Width> {
    match expr {
        Expr::Lit(b) => Ok(b.width()),
        Expr::Ref(r) => ref_width(circuit, module, r),
        Expr::Unary(op, a) => {
            let w = infer_width(circuit, module, a)?;
            Ok(match op {
                UnOp::Not => w,
                UnOp::OrReduce | UnOp::AndReduce | UnOp::XorReduce => Width::new(1),
            })
        }
        Expr::Binary(op, a, b) => {
            let wa = infer_width(circuit, module, a)?;
            let wb = infer_width(circuit, module, b)?;
            Ok(match op {
                BinOp::Add
                | BinOp::Sub
                | BinOp::Mul
                | BinOp::Div
                | BinOp::Rem
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor => wa.max(wb),
                BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Leq | BinOp::Gt | BinOp::Geq => {
                    Width::new(1)
                }
            })
        }
        Expr::Mux(_, a, b) => {
            let wa = infer_width(circuit, module, a)?;
            let wb = infer_width(circuit, module, b)?;
            Ok(wa.max(wb))
        }
        Expr::Cat(parts) => {
            let mut total = 0u32;
            for p in parts {
                total += infer_width(circuit, module, p)?.get();
            }
            Ok(Width::new(total))
        }
        Expr::Extract(a, hi, lo) => {
            let w = infer_width(circuit, module, a)?;
            if hi < lo || *hi >= w.get() {
                return Err(IrError::Malformed {
                    message: format!(
                        "extract [{hi}:{lo}] out of range for width {w} in module `{}`",
                        module.name
                    ),
                });
            }
            Ok(Width::new(hi - lo + 1))
        }
        Expr::Resize(_, w) => Ok(*w),
        Expr::Shl(a, _) | Expr::Shr(a, _) => infer_width(circuit, module, a),
    }
}

/// Width of the signal a [`Ref`] denotes.
///
/// # Errors
///
/// Returns [`IrError::UnresolvedRef`] if the reference cannot be resolved.
pub fn ref_width(circuit: &Circuit, module: &Module, r: &Ref) -> Result<Width> {
    let unresolved = || IrError::UnresolvedRef {
        module: module.name.clone(),
        reference: r.to_string(),
    };
    match &r.instance {
        Some(inst) => {
            let child_mod = module
                .instances()
                .find(|(n, _)| *n == inst)
                .map(|(_, m)| m)
                .ok_or_else(unresolved)?;
            let child = circuit.module(child_mod).ok_or_else(unresolved)?;
            Ok(child.port(&r.name).ok_or_else(unresolved)?.width)
        }
        None => {
            if let Some(p) = module.port(&r.name) {
                return Ok(p.width);
            }
            match module.find_def(&r.name).ok_or_else(unresolved)? {
                Stmt::Wire { width, .. } | Stmt::Reg { width, .. } | Stmt::Mem { width, .. } => {
                    Ok(*width)
                }
                Stmt::MemRead { mem, .. } => match module.find_def(mem) {
                    Some(Stmt::Mem { width, .. }) => Ok(*width),
                    _ => Err(unresolved()),
                },
                Stmt::Node { expr, .. } => infer_width(circuit, module, expr),
                _ => Err(unresolved()),
            }
        }
    }
}

/// Validates a whole circuit.
///
/// Checks, per module: name uniqueness, reference resolution, width
/// computability, drivability and single-driver rules; and globally:
/// existence of the top module and absence of recursive instantiation.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate(circuit: &Circuit) -> Result<()> {
    if circuit.module(&circuit.top).is_none() {
        return Err(IrError::Malformed {
            message: format!("top module `{}` not found", circuit.top),
        });
    }
    check_no_recursion(circuit)?;
    for module in &circuit.modules {
        validate_module(circuit, module)?;
    }
    Ok(())
}

fn check_no_recursion(circuit: &Circuit) -> Result<()> {
    // A module hierarchy is a DAG iff DFS from each module finds no back
    // edge to an in-progress module.
    fn visit<'a>(
        c: &'a Circuit,
        name: &'a str,
        visiting: &mut HashSet<&'a str>,
        done: &mut HashSet<&'a str>,
    ) -> Result<()> {
        if done.contains(name) {
            return Ok(());
        }
        if !visiting.insert(name) {
            return Err(IrError::RecursiveHierarchy {
                module: name.to_string(),
            });
        }
        if let Some(m) = c.module(name) {
            for (_, child) in m.instances() {
                visit(c, child, visiting, done)?;
            }
        }
        visiting.remove(name);
        done.insert(name);
        Ok(())
    }
    let mut visiting = HashSet::new();
    let mut done = HashSet::new();
    for m in &circuit.modules {
        visit(circuit, &m.name, &mut visiting, &mut done)?;
    }
    Ok(())
}

fn validate_module(circuit: &Circuit, module: &Module) -> Result<()> {
    if module.is_extern() {
        if !module.body.is_empty() {
            return Err(IrError::Malformed {
                message: format!("extern module `{}` must have an empty body", module.name),
            });
        }
        // Extern comb paths must name real ports with correct directions.
        if let Some(info) = &module.extern_info {
            for cp in &info.comb_paths {
                let ok_in = module.port(&cp.input).map(|p| p.direction) == Some(Direction::Input);
                let ok_out =
                    module.port(&cp.output).map(|p| p.direction) == Some(Direction::Output);
                if !ok_in || !ok_out {
                    return Err(IrError::Malformed {
                        message: format!(
                            "extern module `{}` comb path {} -> {} does not match its ports",
                            module.name, cp.input, cp.output
                        ),
                    });
                }
            }
        }
        return Ok(());
    }

    // Unique names among ports and defining statements.
    let mut names: HashSet<&str> = HashSet::new();
    for p in &module.ports {
        if !names.insert(&p.name) {
            return Err(IrError::DuplicateName {
                module: module.name.clone(),
                name: p.name.clone(),
            });
        }
    }
    for s in &module.body {
        if let Some(n) = s.defined_name() {
            if !names.insert(n) {
                return Err(IrError::DuplicateName {
                    module: module.name.clone(),
                    name: n.to_string(),
                });
            }
        }
    }

    // Instances must refer to existing modules.
    for (inst, child) in module.instances() {
        if circuit.module(child).is_none() {
            return Err(IrError::UnknownModule {
                module: module.name.clone(),
                instance: inst.to_string(),
                missing: child.to_string(),
            });
        }
    }

    // Every expression must width-check (which also resolves references).
    for s in &module.body {
        match s {
            Stmt::Node { expr, .. } => {
                infer_width(circuit, module, expr)?;
            }
            Stmt::MemRead { addr, mem, .. } => {
                infer_width(circuit, module, addr)?;
                if !matches!(module.find_def(mem), Some(Stmt::Mem { .. })) {
                    return Err(IrError::UnresolvedRef {
                        module: module.name.clone(),
                        reference: mem.clone(),
                    });
                }
            }
            Stmt::MemWrite {
                addr,
                data,
                en,
                mem,
            } => {
                infer_width(circuit, module, addr)?;
                infer_width(circuit, module, data)?;
                infer_width(circuit, module, en)?;
                if !matches!(module.find_def(mem), Some(Stmt::Mem { .. })) {
                    return Err(IrError::UnresolvedRef {
                        module: module.name.clone(),
                        reference: mem.clone(),
                    });
                }
            }
            Stmt::Connect { lhs, rhs } => {
                infer_width(circuit, module, rhs)?;
                ref_width(circuit, module, lhs)?;
                check_drivable(circuit, module, lhs)?;
            }
            _ => {}
        }
    }

    // Drive counts: wires and output ports need exactly one driver;
    // registers at most one; instance inputs exactly one.
    let mut drives: HashMap<String, usize> = HashMap::new();
    for s in &module.body {
        if let Stmt::Connect { lhs, .. } = s {
            *drives.entry(lhs.to_string()).or_insert(0) += 1;
        }
    }
    let mut expect_one: Vec<String> = Vec::new();
    for p in module.ports_in(Direction::Output) {
        expect_one.push(p.name.clone());
    }
    for s in &module.body {
        match s {
            Stmt::Wire { name, .. } => expect_one.push(name.clone()),
            Stmt::Inst { name, module: m } => {
                let child = circuit.module(m).expect("checked above");
                for p in child.ports_in(Direction::Input) {
                    expect_one.push(format!("{name}.{}", p.name));
                }
            }
            _ => {}
        }
    }
    for sig in expect_one {
        let n = drives.get(&sig).copied().unwrap_or(0);
        if n != 1 {
            return Err(IrError::BadDriveCount {
                module: module.name.clone(),
                signal: sig,
                drivers: n,
            });
        }
    }
    for s in &module.body {
        if let Stmt::Reg { name, .. } = s {
            let n = drives.get(name.as_str()).copied().unwrap_or(0);
            if n > 1 {
                return Err(IrError::BadDriveCount {
                    module: module.name.clone(),
                    signal: name.clone(),
                    drivers: n,
                });
            }
        }
    }
    Ok(())
}

fn check_drivable(circuit: &Circuit, module: &Module, lhs: &Ref) -> Result<()> {
    let not_drivable = || IrError::NotDrivable {
        module: module.name.clone(),
        target: lhs.to_string(),
    };
    match &lhs.instance {
        Some(inst) => {
            let child_name = module
                .instances()
                .find(|(n, _)| *n == inst)
                .map(|(_, m)| m)
                .ok_or_else(not_drivable)?;
            let child = circuit.module(child_name).ok_or_else(not_drivable)?;
            match child.port(&lhs.name) {
                Some(p) if p.direction == Direction::Input => Ok(()),
                _ => Err(not_drivable()),
            }
        }
        None => {
            if let Some(p) = module.port(&lhs.name) {
                return if p.direction == Direction::Output {
                    Ok(())
                } else {
                    Err(not_drivable())
                };
            }
            match module.find_def(&lhs.name) {
                Some(Stmt::Wire { .. }) | Some(Stmt::Reg { .. }) => Ok(()),
                _ => Err(not_drivable()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Bits;

    fn passthrough() -> Circuit {
        let mut m = Module::new("M");
        m.ports.push(Port::input("a", 4));
        m.ports.push(Port::output("y", 4));
        m.body.push(Stmt::Connect {
            lhs: Ref::local("y"),
            rhs: Expr::reference("a"),
        });
        Circuit::from_modules("M", vec![m], "M")
    }

    #[test]
    fn validates_passthrough() {
        validate(&passthrough()).unwrap();
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut c = passthrough();
        c.module_mut("M").unwrap().body.push(Stmt::Wire {
            name: "a".into(),
            width: Width::new(1),
        });
        assert!(matches!(
            validate(&c),
            Err(IrError::DuplicateName { name, .. }) if name == "a"
        ));
    }

    #[test]
    fn rejects_undriven_output() {
        let mut c = passthrough();
        c.module_mut("M").unwrap().body.clear();
        assert!(matches!(
            validate(&c),
            Err(IrError::BadDriveCount { drivers: 0, .. })
        ));
    }

    #[test]
    fn rejects_double_drive() {
        let mut c = passthrough();
        c.module_mut("M").unwrap().body.push(Stmt::Connect {
            lhs: Ref::local("y"),
            rhs: Expr::lit(0, 4),
        });
        assert!(matches!(
            validate(&c),
            Err(IrError::BadDriveCount { drivers: 2, .. })
        ));
    }

    #[test]
    fn rejects_driving_input() {
        let mut c = passthrough();
        c.module_mut("M").unwrap().body.push(Stmt::Connect {
            lhs: Ref::local("a"),
            rhs: Expr::lit(0, 4),
        });
        assert!(matches!(validate(&c), Err(IrError::NotDrivable { .. })));
    }

    #[test]
    fn rejects_unknown_instance_module() {
        let mut c = passthrough();
        c.module_mut("M").unwrap().body.push(Stmt::Inst {
            name: "u".into(),
            module: "Nope".into(),
        });
        assert!(matches!(validate(&c), Err(IrError::UnknownModule { .. })));
    }

    #[test]
    fn rejects_recursion() {
        let mut m = Module::new("R");
        m.body.push(Stmt::Inst {
            name: "u".into(),
            module: "R".into(),
        });
        let c = Circuit::from_modules("R", vec![m], "R");
        assert!(matches!(
            validate(&c),
            Err(IrError::RecursiveHierarchy { .. })
        ));
    }

    #[test]
    fn infers_expression_widths() {
        let c = passthrough();
        let m = c.module("M").unwrap();
        let w = |e: &Expr| infer_width(&c, m, e).unwrap().get();
        assert_eq!(w(&Expr::reference("a")), 4);
        assert_eq!(
            w(&Expr::Binary(
                BinOp::Add,
                Box::new(Expr::reference("a")),
                Box::new(Expr::lit(1, 8)),
            )),
            8
        );
        assert_eq!(
            w(&Expr::Binary(
                BinOp::Eq,
                Box::new(Expr::reference("a")),
                Box::new(Expr::lit(1, 4)),
            )),
            1
        );
        assert_eq!(
            w(&Expr::Cat(vec![Expr::reference("a"), Expr::lit(0, 2)])),
            6
        );
        assert_eq!(w(&Expr::Extract(Box::new(Expr::reference("a")), 2, 1)), 2);
        assert_eq!(
            w(&Expr::Unary(UnOp::OrReduce, Box::new(Expr::reference("a")))),
            1
        );
    }

    #[test]
    fn extract_out_of_range_rejected() {
        let c = passthrough();
        let m = c.module("M").unwrap();
        let e = Expr::Extract(Box::new(Expr::reference("a")), 9, 0);
        assert!(infer_width(&c, m, &e).is_err());
    }

    #[test]
    fn extern_comb_paths_checked() {
        let mut m = Module::new("E");
        m.ports.push(Port::input("i", 1));
        m.ports.push(Port::output("o", 1));
        m.extern_info = Some(ExternInfo {
            behavior: "b".into(),
            comb_paths: vec![CombPath {
                input: "o".into(), // wrong direction
                output: "i".into(),
            }],
            resources: ResourceHints::default(),
        });
        let c = Circuit::from_modules("E", vec![m], "E");
        assert!(validate(&c).is_err());
    }

    #[test]
    fn reg_may_be_undriven() {
        let mut m = Module::new("M");
        m.ports.push(Port::output("y", 4));
        m.body.push(Stmt::Reg {
            name: "r".into(),
            width: Width::new(4),
            init: Bits::from_u64(3, 4),
        });
        m.body.push(Stmt::Connect {
            lhs: Ref::local("y"),
            rhs: Expr::reference("r"),
        });
        let c = Circuit::from_modules("M", vec![m], "M");
        validate(&c).unwrap();
    }
}
