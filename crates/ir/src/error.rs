//! Error types for the circuit IR.

use std::fmt;

/// Errors produced while constructing, validating, parsing, or elaborating
/// circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A name was defined twice within one module.
    DuplicateName {
        /// Offending module.
        module: String,
        /// Duplicated name.
        name: String,
    },
    /// A reference did not resolve to a declared signal.
    UnresolvedRef {
        /// Module containing the reference.
        module: String,
        /// The unresolved reference, formatted.
        reference: String,
    },
    /// An instance referred to a module that does not exist.
    UnknownModule {
        /// Module containing the instance.
        module: String,
        /// Instance name.
        instance: String,
        /// Missing module name.
        missing: String,
    },
    /// A signal that must be driven exactly once was driven zero or
    /// multiple times.
    BadDriveCount {
        /// Module name.
        module: String,
        /// Signal name.
        signal: String,
        /// How many drivers were found.
        drivers: usize,
    },
    /// Connect target is not drivable (e.g. an input port or a node).
    NotDrivable {
        /// Module name.
        module: String,
        /// The offending target.
        target: String,
    },
    /// A combinational cycle was found during elaboration.
    CombCycle {
        /// Signals on the cycle, in instance-path form.
        cycle: Vec<String>,
    },
    /// The module hierarchy instantiates a module inside itself.
    RecursiveHierarchy {
        /// Module on the recursion path.
        module: String,
    },
    /// An extern behavioral module was used where structural RTL is
    /// required (e.g. full interpretation without a bound behavior).
    ExternWithoutBehavior {
        /// Module name.
        module: String,
        /// Behavior key that was not bound.
        behavior: String,
    },
    /// Text parse error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Any other structural inconsistency.
    Malformed {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateName { module, name } => {
                write!(f, "duplicate name `{name}` in module `{module}`")
            }
            IrError::UnresolvedRef { module, reference } => {
                write!(f, "unresolved reference `{reference}` in module `{module}`")
            }
            IrError::UnknownModule {
                module,
                instance,
                missing,
            } => write!(
                f,
                "instance `{instance}` in module `{module}` refers to unknown module `{missing}`"
            ),
            IrError::BadDriveCount {
                module,
                signal,
                drivers,
            } => write!(
                f,
                "signal `{signal}` in module `{module}` has {drivers} drivers, expected exactly 1"
            ),
            IrError::NotDrivable { module, target } => {
                write!(f, "target `{target}` in module `{module}` cannot be driven")
            }
            IrError::CombCycle { cycle } => {
                write!(f, "combinational cycle through: {}", cycle.join(" -> "))
            }
            IrError::RecursiveHierarchy { module } => {
                write!(f, "module `{module}` is instantiated inside itself")
            }
            IrError::ExternWithoutBehavior { module, behavior } => write!(
                f,
                "extern module `{module}` requires behavior `{behavior}` which is not bound"
            ),
            IrError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IrError::Malformed { message } => write!(f, "malformed circuit: {message}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenient alias for IR results.
pub type Result<T> = std::result::Result<T, IrError>;
