//! Parsing the FireAxe textual IR format.
//!
//! The grammar is line-oriented: one declaration or statement per line,
//! with `circuit`/`module` headers and four-space body indentation (any
//! indentation is accepted; nesting is determined by keywords). See
//! [`crate::printer`] for the emitting side; `parse(print(c)) == c` is
//! property-tested.

use crate::ast::*;
use crate::bits::{Bits, Width};
use crate::error::{IrError, Result};

/// Parses the textual form of a whole circuit.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a line number and message on malformed
/// input.
///
/// # Examples
///
/// ```
/// let text = "\
/// circuit Top :
///   top Top
///   module Top :
///     input a : UInt<8>
///     output y : UInt<8>
///     y <= add(a, UInt<8>(1))
/// ";
/// let circuit = fireaxe_ir::parser::parse_circuit(text)?;
/// assert_eq!(circuit.top, "Top");
/// # Ok::<(), fireaxe_ir::IrError>(())
/// ```
pub fn parse_circuit(text: &str) -> Result<Circuit> {
    let mut circuit: Option<Circuit> = None;
    let mut current: Option<Module> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with("//") {
            continue;
        }
        let err = |message: String| IrError::Parse {
            line: lineno,
            message,
        };

        if let Some(rest) = line.strip_prefix("circuit ") {
            let name = rest
                .strip_suffix(':')
                .ok_or_else(|| err("expected `circuit <name> :`".into()))?
                .trim();
            circuit = Some(Circuit {
                name: name.to_string(),
                modules: Vec::new(),
                top: String::new(),
            });
            continue;
        }
        let c = circuit
            .as_mut()
            .ok_or_else(|| err("statement before `circuit` header".into()))?;

        if let Some(rest) = line.strip_prefix("top ") {
            c.top = rest.trim().to_string();
            continue;
        }
        if let Some(rest) = line
            .strip_prefix("extern module ")
            .or_else(|| line.strip_prefix("module "))
        {
            if let Some(m) = current.take() {
                c.modules.push(m);
            }
            let name = rest
                .strip_suffix(':')
                .ok_or_else(|| err("expected `module <name> :`".into()))?
                .trim();
            let mut m = Module::new(name);
            if line.starts_with("extern") {
                m.extern_info = Some(ExternInfo::default());
            }
            current = Some(m);
            continue;
        }

        let m = current
            .as_mut()
            .ok_or_else(|| err("statement outside any module".into()))?;
        parse_module_line(m, line).map_err(err)?;
    }

    let mut c = circuit.ok_or(IrError::Parse {
        line: 0,
        message: "no `circuit` header found".into(),
    })?;
    if let Some(m) = current.take() {
        c.modules.push(m);
    }
    if c.top.is_empty() {
        c.top = c.name.clone();
    }
    Ok(c)
}

type PResult<T> = std::result::Result<T, String>;

fn parse_module_line(m: &mut Module, line: &str) -> PResult<()> {
    if let Some(rest) = line.strip_prefix("input ") {
        let (name, w) = parse_typed_name(rest)?;
        m.ports.push(Port::input(name, w));
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("output ") {
        let (name, w) = parse_typed_name(rest)?;
        m.ports.push(Port::output(name, w));
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("behavior ") {
        let key = rest.trim().trim_matches('"').to_string();
        m.extern_info
            .as_mut()
            .ok_or("`behavior` outside extern module")?
            .behavior = key;
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("comb ") {
        let (i, o) = rest
            .split_once("->")
            .ok_or("expected `comb <in> -> <out>`")?;
        m.extern_info
            .as_mut()
            .ok_or("`comb` outside extern module")?
            .comb_paths
            .push(CombPath {
                input: i.trim().to_string(),
                output: o.trim().to_string(),
            });
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("resources ") {
        let mut hints = ResourceHints::default();
        for kv in rest.split_whitespace() {
            let (k, v) = kv.split_once('=').ok_or("expected `key=value`")?;
            let v: u64 = v.parse().map_err(|_| format!("bad number `{v}`"))?;
            match k {
                "luts" => hints.luts = v,
                "regs" => hints.regs = v,
                "brams" => hints.brams = v,
                "dsps" => hints.dsps = v,
                other => return Err(format!("unknown resource `{other}`")),
            }
        }
        m.extern_info
            .as_mut()
            .ok_or("`resources` outside extern module")?
            .resources = hints;
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("wire ") {
        let (name, w) = parse_typed_name(rest)?;
        m.body.push(Stmt::Wire {
            name,
            width: w.into(),
        });
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("node ") {
        let (name, e) = rest
            .split_once('=')
            .ok_or("expected `node <name> = <expr>`")?;
        m.body.push(Stmt::Node {
            name: name.trim().to_string(),
            expr: parse_expr(e.trim())?,
        });
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("reg ") {
        // reg r : UInt<4>, init 2
        let (decl, init) = rest.split_once(',').ok_or("expected `reg ... , init N`")?;
        let (name, w) = parse_typed_name(decl)?;
        let init = init
            .trim()
            .strip_prefix("init ")
            .ok_or("expected `init <value>`")?;
        let init: u64 = init.trim().parse().map_err(|_| "bad init value")?;
        let width = Width::new(w);
        m.body.push(Stmt::Reg {
            name,
            width,
            init: Bits::from_u64(init, width),
        });
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("mem ") {
        // mem m : UInt<8>[16]
        let (name, ty) = rest.split_once(':').ok_or("expected `mem <name> : ...`")?;
        let ty = ty.trim();
        let open = ty.find('[').ok_or("expected `[depth]`")?;
        let width = parse_uint_ty(&ty[..open])?;
        let depth: u32 = ty[open + 1..]
            .trim_end_matches(']')
            .parse()
            .map_err(|_| "bad depth")?;
        m.body.push(Stmt::Mem {
            name: name.trim().to_string(),
            width: Width::new(width),
            depth,
        });
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("read ") {
        // read rd = m[addr_expr]
        let (name, src) = rest.split_once('=').ok_or("expected `read <n> = m[e]`")?;
        let src = src.trim();
        let open = src.find('[').ok_or("expected `mem[addr]`")?;
        let mem = src[..open].trim().to_string();
        let addr = parse_expr(src[open + 1..].trim_end_matches(']').trim())?;
        m.body.push(Stmt::MemRead {
            name: name.trim().to_string(),
            mem,
            addr,
        });
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("write ") {
        // write m[addr] <= data when en
        let (target, rhs) = rest
            .split_once("<=")
            .ok_or("expected `write m[a] <= d when e`")?;
        let target = target.trim();
        let open = target.find('[').ok_or("expected `mem[addr]`")?;
        let mem = target[..open].trim().to_string();
        let addr = parse_expr(target[open + 1..].trim_end_matches(']').trim())?;
        let (data, en) = rhs.split_once(" when ").ok_or("expected `when <en>`")?;
        m.body.push(Stmt::MemWrite {
            mem,
            addr,
            data: parse_expr(data.trim())?,
            en: parse_expr(en.trim())?,
        });
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("inst ") {
        let (name, module) = rest
            .split_once(" of ")
            .ok_or("expected `inst <n> of <M>`")?;
        m.body.push(Stmt::Inst {
            name: name.trim().to_string(),
            module: module.trim().to_string(),
        });
        return Ok(());
    }
    // Fallback: a connect `<ref> <= <expr>`.
    if let Some((lhs, rhs)) = line.split_once("<=") {
        let lhs = lhs.trim();
        let r = match lhs.split_once('.') {
            Some((inst, port)) => Ref::instance_port(inst, port),
            None => Ref::local(lhs),
        };
        m.body.push(Stmt::Connect {
            lhs: r,
            rhs: parse_expr(rhs.trim())?,
        });
        return Ok(());
    }
    Err(format!("unrecognized statement `{line}`"))
}

fn parse_typed_name(s: &str) -> PResult<(String, u32)> {
    let (name, ty) = s.split_once(':').ok_or("expected `<name> : UInt<w>`")?;
    Ok((name.trim().to_string(), parse_uint_ty(ty)?))
}

fn parse_uint_ty(s: &str) -> PResult<u32> {
    let s = s.trim();
    let inner = s
        .strip_prefix("UInt<")
        .and_then(|x| x.strip_suffix('>'))
        .ok_or_else(|| format!("expected `UInt<w>`, got `{s}`"))?;
    inner.parse().map_err(|_| format!("bad width `{inner}`"))
}

/// Parses a single expression in prefix-function syntax.
///
/// # Errors
///
/// Returns a message describing the first syntax problem.
pub fn parse_expr(s: &str) -> PResult<Expr> {
    let (e, rest) = parse_expr_inner(s.trim())?;
    if !rest.trim().is_empty() {
        return Err(format!("trailing input `{rest}`"));
    }
    Ok(e)
}

fn parse_expr_inner(s: &str) -> PResult<(Expr, &str)> {
    let s = s.trim_start();
    // Literal: UInt<w>(v)
    if let Some(rest) = s.strip_prefix("UInt<") {
        let close = rest.find('>').ok_or("unterminated `UInt<`")?;
        let w: u32 = rest[..close].parse().map_err(|_| "bad literal width")?;
        let after = &rest[close + 1..];
        let after = after
            .strip_prefix('(')
            .ok_or("expected `(` after UInt<w>")?;
        let close = after.find(')').ok_or("unterminated literal")?;
        let v: u64 = after[..close]
            .trim()
            .parse()
            .map_err(|_| "bad literal value")?;
        return Ok((Expr::lit(v, w), &after[close + 1..]));
    }
    // Identifier or function call.
    let id_end = s
        .find(|ch: char| !(ch.is_alphanumeric() || ch == '_' || ch == '.' || ch == '$'))
        .unwrap_or(s.len());
    if id_end == 0 {
        return Err(format!("expected expression at `{s}`"));
    }
    let ident = &s[..id_end];
    let rest = &s[id_end..];
    if !rest.trim_start().starts_with('(') {
        // Plain reference.
        let r = match ident.split_once('.') {
            Some((inst, port)) => Ref::instance_port(inst, port),
            None => Ref::local(ident),
        };
        return Ok((Expr::Ref(r), rest));
    }
    // Function call: parse comma-separated arguments.
    let rest = rest.trim_start();
    let mut args: Vec<String> = Vec::new();
    let inner = &rest[1..];
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut end = None;
    for (i, ch) in inner.char_indices() {
        match ch {
            '(' | '<' => depth += 1,
            '>' => depth = depth.saturating_sub(1),
            ')' if depth == 0 => {
                args.push(inner[start..i].to_string());
                end = Some(i);
                break;
            }
            ')' => depth -= 1,
            ',' if depth == 0 => {
                args.push(inner[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let end = end.ok_or("unterminated call")?;
    let remaining = &inner[end + 1..];
    let args: Vec<&str> = args
        .iter()
        .map(|a| a.trim())
        .filter(|a| !a.is_empty())
        .collect();

    let bin = |op: BinOp, args: &[&str]| -> PResult<Expr> {
        if args.len() != 2 {
            return Err(format!("`{op}` takes 2 arguments"));
        }
        Ok(Expr::Binary(
            op,
            Box::new(parse_expr(args[0])?),
            Box::new(parse_expr(args[1])?),
        ))
    };
    let un = |op: UnOp, args: &[&str]| -> PResult<Expr> {
        if args.len() != 1 {
            return Err(format!("`{op}` takes 1 argument"));
        }
        Ok(Expr::Unary(op, Box::new(parse_expr(args[0])?)))
    };
    let num = |s: &str| -> PResult<u32> { s.parse().map_err(|_| format!("bad number `{s}`")) };

    let e = match ident {
        "add" => bin(BinOp::Add, &args)?,
        "sub" => bin(BinOp::Sub, &args)?,
        "mul" => bin(BinOp::Mul, &args)?,
        "div" => bin(BinOp::Div, &args)?,
        "rem" => bin(BinOp::Rem, &args)?,
        "and" => bin(BinOp::And, &args)?,
        "or" => bin(BinOp::Or, &args)?,
        "xor" => bin(BinOp::Xor, &args)?,
        "eq" => bin(BinOp::Eq, &args)?,
        "neq" => bin(BinOp::Neq, &args)?,
        "lt" => bin(BinOp::Lt, &args)?,
        "leq" => bin(BinOp::Leq, &args)?,
        "gt" => bin(BinOp::Gt, &args)?,
        "geq" => bin(BinOp::Geq, &args)?,
        "not" => un(UnOp::Not, &args)?,
        "orr" => un(UnOp::OrReduce, &args)?,
        "andr" => un(UnOp::AndReduce, &args)?,
        "xorr" => un(UnOp::XorReduce, &args)?,
        "mux" => {
            if args.len() != 3 {
                return Err("`mux` takes 3 arguments".into());
            }
            Expr::Mux(
                Box::new(parse_expr(args[0])?),
                Box::new(parse_expr(args[1])?),
                Box::new(parse_expr(args[2])?),
            )
        }
        "cat" => {
            if args.is_empty() {
                return Err("`cat` takes at least 1 argument".into());
            }
            Expr::Cat(args.iter().map(|a| parse_expr(a)).collect::<PResult<_>>()?)
        }
        "bits" => {
            if args.len() != 3 {
                return Err("`bits` takes 3 arguments".into());
            }
            Expr::Extract(Box::new(parse_expr(args[0])?), num(args[1])?, num(args[2])?)
        }
        "resize" => {
            if args.len() != 2 {
                return Err("`resize` takes 2 arguments".into());
            }
            Expr::Resize(Box::new(parse_expr(args[0])?), Width::new(num(args[1])?))
        }
        "shl" => {
            if args.len() != 2 {
                return Err("`shl` takes 2 arguments".into());
            }
            Expr::Shl(Box::new(parse_expr(args[0])?), num(args[1])?)
        }
        "shr" => {
            if args.len() != 2 {
                return Err("`shr` takes 2 arguments".into());
            }
            Expr::Shr(Box::new(parse_expr(args[0])?), num(args[1])?)
        }
        other => return Err(format!("unknown operator `{other}`")),
    };
    Ok((e, remaining))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_circuit, print_expr};

    #[test]
    fn parses_simple_circuit() {
        let text = "\
circuit Top :
  top Top
  module Top :
    input a : UInt<8>
    output y : UInt<8>
    reg r : UInt<8>, init 3
    node n = add(a, r)
    r <= a
    y <= n
";
        let c = parse_circuit(text).unwrap();
        crate::typecheck::validate(&c).unwrap();
        assert_eq!(c.top, "Top");
        let m = c.module("Top").unwrap();
        assert_eq!(m.body.len(), 4);
    }

    #[test]
    fn parses_extern_module() {
        let text = "\
circuit E :
  top E
  extern module E :
    input x : UInt<16>
    output t : UInt<16>
    behavior \"doubler\"
    comb x -> t
    resources luts=100 regs=50 brams=2 dsps=1
";
        let c = parse_circuit(text).unwrap();
        let m = c.module("E").unwrap();
        let info = m.extern_info.as_ref().unwrap();
        assert_eq!(info.behavior, "doubler");
        assert_eq!(info.comb_paths.len(), 1);
        assert_eq!(info.resources.luts, 100);
        assert_eq!(info.resources.dsps, 1);
    }

    #[test]
    fn parses_memory_statements() {
        let text = "\
circuit M :
  top M
  module M :
    input waddr : UInt<4>
    input wdata : UInt<8>
    input wen : UInt<1>
    input raddr : UInt<4>
    output rdata : UInt<8>
    mem store : UInt<8>[16]
    read rd = store[raddr]
    write store[waddr] <= wdata when wen
    rdata <= rd
";
        let c = parse_circuit(text).unwrap();
        crate::typecheck::validate(&c).unwrap();
    }

    #[test]
    fn expr_roundtrip() {
        let exprs = [
            "add(a, UInt<8>(1))",
            "mux(sel, cat(UInt<2>(1), a), bits(b, 3, 1))",
            "orr(xor(u0.y, shr(a, 2)))",
            "resize(not(a), 16)",
        ];
        for src in exprs {
            let e = parse_expr(src).unwrap();
            assert_eq!(print_expr(&e), src);
        }
    }

    #[test]
    fn circuit_roundtrip() {
        let text = "\
circuit Top :
  top Top
  module Top :
    input a : UInt<8>
    output y : UInt<8>
    inst u0 of Leaf
    u0.a <= a
    y <= u0.b
  module Leaf :
    input a : UInt<8>
    output b : UInt<8>
    b <= add(a, UInt<8>(7))
";
        let c = parse_circuit(text).unwrap();
        let printed = print_circuit(&c);
        let c2 = parse_circuit(&printed).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "circuit X :\n  top X\n  module X :\n    bogus statement here\n";
        match parse_circuit(text) {
            Err(IrError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_statements() {
        let cases = [
            ("reg r : UInt<4>", "reg without init"),
            ("reg r UInt<4>, init 0", "reg without colon"),
            ("mem m : UInt<8>", "mem without depth"),
            ("read rd = m addr", "read without brackets"),
            ("write m[0] <= 1", "write without when"),
            ("inst u Leaf", "inst without of"),
            ("input a UInt<4>", "input without colon"),
            ("resources luts=abc", "non-numeric resource"),
        ];
        for (stmt, why) in cases {
            let text = format!("circuit X :\n  top X\n  module X :\n    {stmt}\n");
            assert!(parse_circuit(&text).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn extern_keywords_rejected_outside_extern() {
        for stmt in ["behavior \"b\"", "comb a -> b", "resources luts=1"] {
            let text = format!("circuit X :\n  top X\n  module X :\n    {stmt}\n");
            assert!(parse_circuit(&text).is_err(), "{stmt} needs extern module");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n; a comment\ncircuit X :\n  top X\n\n  // another\n  module X :\n    input a : UInt<4>\n    output y : UInt<4>\n    y <= a\n";
        let c = parse_circuit(text).unwrap();
        crate::typecheck::validate(&c).unwrap();
    }

    #[test]
    fn rejects_trailing_tokens_in_expr() {
        assert!(parse_expr("add(a, b) extra").is_err());
        assert!(parse_expr("unknownop(a)").is_err());
        assert!(parse_expr("mux(a, b)").is_err());
    }
}
