//! # FireAxe-rs — partitioned FPGA-accelerated RTL simulation
//!
//! A complete software reproduction of **FireAxe** (Whangbo et al., ISCA
//! 2024): push-button, user-guided partitioning of large RTL designs
//! across multiple (simulated) FPGAs with exact-mode and fast-mode
//! trade-offs, built on a FIRRTL-like IR, LI-BDN host decoupling, the
//! FireRipper compiler, calibrated FPGA-to-FPGA transport models, and a
//! deterministic multi-partition simulation engine.
//!
//! ## Quickstart
//!
//! ```
//! use fireaxe::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny SoC: one accumulator tile behind a register boundary.
//! let mut tile = ModuleBuilder::new("Tile");
//! let req = tile.input("req", 8);
//! let rsp = tile.output("rsp", 8);
//! let acc = tile.reg("acc", 8, 0);
//! tile.connect_sig(&acc, &acc.add(&req));
//! tile.connect_sig(&rsp, &acc);
//! let mut top = ModuleBuilder::new("Soc");
//! let i = top.input("i", 8);
//! let o = top.output("o", 8);
//! top.inst("tile0", "Tile");
//! top.connect_inst("tile0", "req", &i);
//! let r = top.inst_port("tile0", "rsp");
//! top.connect_sig(&o, &r);
//! let circuit = Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc");
//!
//! // Partition the tile onto its own FPGA, exact-mode, QSFP platform.
//! let spec = PartitionSpec::exact(vec![PartitionGroup::instances(
//!     "tile",
//!     vec!["tile0".into()],
//! )]);
//! let (design, mut sim) = FireAxe::new(circuit, spec)
//!     .platform(Platform::OnPremQsfp)
//!     .build()?;
//! let metrics = sim.run_target_cycles(100)?;
//! assert_eq!(metrics.target_cycles, 100);
//! assert!(design.report.crossings_per_cycle == 2);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | `fireaxe-ir` | §II (FIRRTL) | IR, interpreter, combinational analysis |
//! | `fireaxe-libdn` | §II-A | LI-BDN token protocol, FAME-5 groups |
//! | `fireaxe-ripper` | §III | the FireRipper compiler |
//! | `fireaxe-fpga` | §V-B, §VIII | FPGA capacity/congestion models |
//! | `fireaxe-transport` | §IV | QSFP / p2p PCIe / host PCIe timing |
//! | `fireaxe-sim` | §IV, §VI | the multi-partition engine |
//! | `fireaxe-obs` | §VI (methodology) | tracing, metric series, Chrome-trace/VCD export |
//! | `fireaxe-soc` | §V | BOOM, NoC, tiles, accelerators, RocketLite |
//! | `fireaxe-workloads` | §V-C/D, §VI | Embench, Go GC, leaky-DMA models |

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod flow;
pub mod json;
pub mod topology;
pub mod validation;

pub use config::{ConfigError, GroupConfig, ObsConfig, RunConfig};
pub use cost::CostModel;
pub use flow::{register_soc_behaviors, FireAxe, FlowError, Platform};
pub use topology::{check_qsfp_topology, partition_degrees, TopologyViolation};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::flow::{FireAxe, FlowError, Platform};
    pub use fireaxe_fpga::{estimate, fit, FpgaSpec, ResourceEstimate};
    pub use fireaxe_ir::build::{ModuleBuilder, Sig};
    pub use fireaxe_ir::{Bits, Circuit, Interpreter, Width};
    pub use fireaxe_ripper::{
        compile, ChannelPolicy, PartitionGroup, PartitionMode, PartitionSpec, Selection,
    };
    pub use fireaxe_sim::{
        estimate_target_mhz, Backend, BehaviorRegistry, ConstBridge, DistributedSim, LinkCounters,
        NodeCounters, ObsReport, ObsSpec, ScriptBridge, SimBuilder, SimCheckpoint, SimError,
        SimMetrics, StallReport,
    };
    pub use fireaxe_soc::{
        ring_soc, xbar_soc, BoomConfig, RingSoc, RingSocConfig, TileKind, XbarSocConfig,
    };
    pub use fireaxe_transport::fault::{Fault, FaultEvent, FaultSpec};
    pub use fireaxe_transport::reliable::RetryPolicy;
    pub use fireaxe_transport::{LinkModel, TransportKind};
}

// Re-export component crates under stable names.
pub use fireaxe_fpga as fpga;
pub use fireaxe_ir as ir;
pub use fireaxe_libdn as libdn;
pub use fireaxe_obs as obs;
pub use fireaxe_ripper as ripper;
pub use fireaxe_sim as sim;
pub use fireaxe_soc as soc;
pub use fireaxe_transport as transport;
pub use fireaxe_workloads as workloads;
