//! Manager-style run configuration.
//!
//! FireSim drives simulations from declarative config files
//! (`config_runtime.yaml` etc.); this module provides the equivalent for
//! FireAxe-rs: a serde-serializable [`RunConfig`] describing the
//! partitioning, platform, and clocks of a run, convertible into a
//! [`FireAxe`] flow. Configs are plain JSON so they can be generated,
//! checked in, and diffed like the paper's artifact scripts.

use crate::flow::{FireAxe, Platform};
use fireaxe_ir::Circuit;
use fireaxe_ripper::{ChannelPolicy, PartitionGroup, PartitionMode, PartitionSpec, Selection};
use serde::{Deserialize, Serialize};

/// One partition group in a config file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// Group name.
    pub name: String,
    /// Explicit instance paths (mutually exclusive with `router_indices`).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub instances: Vec<String>,
    /// NoC-partition-mode router indices (requires `routers` at the top
    /// level).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub router_indices: Vec<usize>,
    /// FAME-5 multi-threading.
    #[serde(default)]
    pub fame5: bool,
}

/// A complete run configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// `"exact"` or `"fast"`.
    pub mode: String,
    /// `"onprem-qsfp"`, `"cloud-f1"`, or `"host-managed"`.
    pub platform: String,
    /// Bitstream frequency in MHz for all partitions.
    #[serde(default = "default_clock")]
    pub clock_mhz: f64,
    /// Per-partition clock overrides: `[partition index, MHz]` pairs.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub partition_clocks: Vec<(usize, f64)>,
    /// Router paths for NoC-partition-mode groups, in index order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub routers: Vec<String>,
    /// Partition groups.
    pub groups: Vec<GroupConfig>,
    /// Enforce FPGA fit/topology checks before running.
    #[serde(default)]
    pub check_fit: bool,
}

fn default_clock() -> f64 {
    30.0
}

/// Errors from config parsing/validation.
#[derive(Debug)]
pub enum ConfigError {
    /// JSON syntax or schema problem.
    Parse(serde_json::Error),
    /// Semantically invalid field value.
    Invalid {
        /// Offending field.
        field: &'static str,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "config parse error: {e}"),
            ConfigError::Invalid { field, message } => {
                write!(f, "invalid config field `{field}`: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl RunConfig {
    /// Parses a JSON config.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        serde_json::from_str(text).map_err(ConfigError::Parse)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Resolves the partition mode.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown mode strings.
    pub fn partition_mode(&self) -> Result<PartitionMode, ConfigError> {
        match self.mode.as_str() {
            "exact" => Ok(PartitionMode::Exact),
            "fast" => Ok(PartitionMode::Fast),
            other => Err(ConfigError::Invalid {
                field: "mode",
                message: format!("`{other}` (expected `exact` or `fast`)"),
            }),
        }
    }

    /// Resolves the platform.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown platform strings.
    pub fn platform(&self) -> Result<Platform, ConfigError> {
        match self.platform.as_str() {
            "onprem-qsfp" => Ok(Platform::OnPremQsfp),
            "cloud-f1" => Ok(Platform::CloudF1),
            "host-managed" => Ok(Platform::HostManaged),
            other => Err(ConfigError::Invalid {
                field: "platform",
                message: format!(
                    "`{other}` (expected `onprem-qsfp`, `cloud-f1`, or `host-managed`)"
                ),
            }),
        }
    }

    /// Builds the [`PartitionSpec`] this config describes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for ill-formed groups.
    pub fn partition_spec(&self) -> Result<PartitionSpec, ConfigError> {
        let mut groups = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            let selection = match (g.instances.is_empty(), g.router_indices.is_empty()) {
                (false, true) => Selection::Instances(g.instances.clone()),
                (true, false) => {
                    if self.routers.is_empty() {
                        return Err(ConfigError::Invalid {
                            field: "routers",
                            message: format!(
                                "group `{}` uses router_indices but no routers are listed",
                                g.name
                            ),
                        });
                    }
                    Selection::NocRouters {
                        routers: self.routers.clone(),
                        indices: g.router_indices.clone(),
                    }
                }
                _ => {
                    return Err(ConfigError::Invalid {
                        field: "groups",
                        message: format!(
                            "group `{}` must set exactly one of instances/router_indices",
                            g.name
                        ),
                    })
                }
            };
            groups.push(PartitionGroup {
                name: g.name.clone(),
                selection,
                fame5: g.fame5,
            });
        }
        Ok(PartitionSpec {
            mode: self.partition_mode()?,
            channel_policy: ChannelPolicy::Separated,
            groups,
        })
    }

    /// Instantiates the push-button flow for `circuit`.
    ///
    /// # Errors
    ///
    /// Propagates config validation failures.
    pub fn to_flow(&self, circuit: Circuit) -> Result<FireAxe, ConfigError> {
        let mut fa = FireAxe::new(circuit, self.partition_spec()?)
            .platform(self.platform()?)
            .clock_mhz(self.clock_mhz);
        for (p, mhz) in &self.partition_clocks {
            fa = fa.partition_clock_mhz(*p, *mhz);
        }
        if self.check_fit {
            fa = fa.check_fit();
        }
        Ok(fa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "mode": "fast",
        "platform": "onprem-qsfp",
        "clock_mhz": 30.0,
        "groups": [
            { "name": "tiles", "instances": ["tile0", "tile1"], "fame5": true }
        ]
    }"#;

    #[test]
    fn parses_and_roundtrips() {
        let cfg = RunConfig::from_json(EXAMPLE).unwrap();
        assert_eq!(cfg.partition_mode().unwrap(), PartitionMode::Fast);
        assert_eq!(cfg.platform().unwrap(), Platform::OnPremQsfp);
        let spec = cfg.partition_spec().unwrap();
        assert_eq!(spec.groups.len(), 1);
        assert!(spec.groups[0].fame5);
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn rejects_bad_mode_and_platform() {
        let mut cfg = RunConfig::from_json(EXAMPLE).unwrap();
        cfg.mode = "turbo".into();
        assert!(cfg.partition_mode().is_err());
        cfg.platform = "mainframe".into();
        assert!(cfg.platform().is_err());
    }

    #[test]
    fn rejects_ambiguous_group() {
        let text = r#"{
            "mode": "exact", "platform": "cloud-f1",
            "groups": [{ "name": "g", "instances": ["a"], "router_indices": [0] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert!(matches!(
            cfg.partition_spec(),
            Err(ConfigError::Invalid {
                field: "groups",
                ..
            })
        ));
    }

    #[test]
    fn noc_groups_need_router_list() {
        let text = r#"{
            "mode": "exact", "platform": "onprem-qsfp",
            "groups": [{ "name": "g", "router_indices": [0, 1] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert!(matches!(
            cfg.partition_spec(),
            Err(ConfigError::Invalid {
                field: "routers",
                ..
            })
        ));
    }

    #[test]
    fn flow_from_config_runs() {
        use fireaxe_ir::build::ModuleBuilder;
        let mut tile = ModuleBuilder::new("Tile");
        let req = tile.input("req", 8);
        let rsp = tile.output("rsp", 8);
        let r = tile.reg("r", 8, 0);
        tile.connect_sig(&r, &req);
        tile.connect_sig(&rsp, &r);
        let mut top = ModuleBuilder::new("Soc");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("tile0", "Tile");
        top.connect_inst("tile0", "req", &i);
        let rsp = top.inst_port("tile0", "rsp");
        top.connect_sig(&o, &rsp);
        let circuit =
            fireaxe_ir::Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc");

        let text = r#"{
            "mode": "exact", "platform": "cloud-f1",
            "groups": [{ "name": "t", "instances": ["tile0"] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        let (design, mut sim) = cfg.to_flow(circuit).unwrap().build().unwrap();
        assert_eq!(design.partitions.len(), 2);
        sim.run_target_cycles(50).unwrap();
    }
}
