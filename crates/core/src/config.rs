//! Manager-style run configuration.
//!
//! FireSim drives simulations from declarative config files
//! (`config_runtime.yaml` etc.); this module provides the equivalent for
//! FireAxe-rs: a JSON-serializable [`RunConfig`] describing the
//! partitioning, platform, clocks, and execution backend of a run,
//! convertible into a [`FireAxe`] flow. Configs are plain JSON so they
//! can be generated, checked in, and diffed like the paper's artifact
//! scripts. (De)serialization is hand-rolled over [`crate::json`] since
//! the workspace builds offline.

use crate::flow::{FireAxe, Platform};
use crate::json::{self, Value};
use fireaxe_ir::Circuit;
use fireaxe_ripper::{ChannelPolicy, PartitionGroup, PartitionMode, PartitionSpec, Selection};
use fireaxe_sim::{Backend, ObsSpec};
use fireaxe_transport::fault::FaultSpec;
use fireaxe_transport::reliable::RetryPolicy;
use std::collections::BTreeMap;

/// One partition group in a config file.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupConfig {
    /// Group name.
    pub name: String,
    /// Explicit instance paths (mutually exclusive with `router_indices`).
    pub instances: Vec<String>,
    /// NoC-partition-mode router indices (requires `routers` at the top
    /// level).
    pub router_indices: Vec<usize>,
    /// FAME-5 multi-threading.
    pub fame5: bool,
}

/// Deterministic fault-injection campaign (the `"fault"` object).
///
/// Rates are per-mille per physical transmission attempt; `down` lists
/// half-open `[start, end)` windows in per-link attempt-index space
/// (`end: null` means the link never comes back). Setting `fault` arms
/// the link reliability protocol even if `"reliability"` is omitted.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master seed for the whole campaign.
    pub seed: u64,
    /// Token-drop probability, ‰ per attempt.
    pub drop_per_mille: u16,
    /// Bit-flip corruption probability, ‰ per attempt.
    pub corrupt_per_mille: u16,
    /// Duplication probability, ‰ per attempt.
    pub duplicate_per_mille: u16,
    /// Transient-stall probability, ‰ per attempt.
    pub stall_per_mille: u16,
    /// Maximum stall length in retry-timeout quanta.
    pub max_stall_quanta: u32,
    /// Hard link-down windows `[start, end)` in attempt indices.
    pub down: Vec<(u64, u64)>,
    /// Restrict `down` windows to one link (`None` = every link).
    pub down_link: Option<usize>,
}

/// Observability knobs (the `"obs"` object): event tracing, metric
/// sampling, and waveform capture for a run.
///
/// Output paths are written by the `fireaxe` binary relative to the
/// working directory; the library surface only converts these knobs into
/// a [`fireaxe_sim::ObsSpec`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Chrome `trace_event` JSON output path (empty = no trace capture).
    pub trace_path: String,
    /// VCD waveform output path (empty = no waveform capture).
    pub vcd_path: String,
    /// Metric time-series output path; a `.csv` suffix selects CSV,
    /// anything else JSON (empty = series not written to a file).
    pub metrics_path: String,
    /// Signals to watch for the VCD: `"node:path"` pins a signal to one
    /// node, a bare path watches every node exposing it (empty = every
    /// node's output ports).
    pub signals: Vec<String>,
    /// Target cycles between metric samples (0 disables sampling).
    pub sample_interval: u64,
}

/// Distributed backend knobs (the `"net"` object): where the worker
/// processes listen and how patient the coordinator is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Worker addresses, one per partition, index-aligned: `host:port`
    /// for TCP or `unix:/path` for Unix-domain sockets. Empty means the
    /// `fireaxe` binary self-spawns workers on localhost.
    pub workers: Vec<String>,
    /// Bring-up patience per worker (connect + handshake), milliseconds.
    pub connect_timeout_ms: u64,
    /// Run-phase silence tolerated before `NetTimeout`, milliseconds.
    pub io_timeout_ms: u64,
    /// Target cycles of tokens packed per link into one wire message
    /// before flushing (latency hiding; clamped to the credit window by
    /// the backend). 1 sends every token in its own message.
    pub batch_cycles: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: Vec::new(),
            connect_timeout_ms: 10_000,
            io_timeout_ms: 10_000,
            batch_cycles: 8,
        }
    }
}

/// Link reliability protocol knobs (the `"reliability"` object).
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityConfig {
    /// Retransmissions allowed per frame before `LinkDown`.
    pub max_retries: u32,
    /// Base retransmit timeout in sender host cycles (doubles per
    /// consecutive timeout).
    pub timeout_cycles: u64,
}

/// A complete run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Path to the textual-IR circuit, resolved relative to the config
    /// file's directory by the `fireaxe` binary (empty = caller supplies
    /// the circuit some other way, e.g. `--circuit`).
    pub circuit: String,
    /// `"exact"` or `"fast"`.
    pub mode: String,
    /// `"onprem-qsfp"`, `"cloud-f1"`, or `"host-managed"`.
    pub platform: String,
    /// Execution backend: `"des"` (deterministic discrete-event golden
    /// model, the default), `"threads"` / `"threads:<n>"` (one OS
    /// thread per partition, optionally capped), or `"net"` (one OS
    /// process per partition over sockets). Parsed by
    /// [`Backend::from_str`][std::str::FromStr] — the same spelling the
    /// `--backend` CLI flag accepts.
    pub backend: String,
    /// Worker thread cap for the `"threads"` backend; `0` means one
    /// thread per partition.
    pub threads: usize,
    /// Bitstream frequency in MHz for all partitions.
    pub clock_mhz: f64,
    /// Per-partition clock overrides: `[partition index, MHz]` pairs.
    pub partition_clocks: Vec<(usize, f64)>,
    /// Router paths for NoC-partition-mode groups, in index order.
    pub routers: Vec<String>,
    /// Partition groups.
    pub groups: Vec<GroupConfig>,
    /// Enforce FPGA fit/topology checks before running.
    pub check_fit: bool,
    /// Fault-injection campaign (None = clean wires).
    pub fault: Option<FaultConfig>,
    /// Reliability protocol override (None = protocol defaults when
    /// `fault` is set, raw lossless links otherwise).
    pub reliability: Option<ReliabilityConfig>,
    /// Snapshot the simulation every N target cycles for rollback
    /// recovery (0 disables checkpointing).
    pub checkpoint_interval: u64,
    /// Rollback budget for recoverable `LinkDown` escalations.
    pub max_rollbacks: u32,
    /// Observability knobs (None = nothing observed).
    pub obs: Option<ObsConfig>,
    /// Distributed backend knobs (None = defaults when `backend` is
    /// `"net"`, ignored otherwise).
    pub net: Option<NetConfig>,
}

fn default_clock() -> f64 {
    30.0
}

/// Errors from config parsing/validation.
#[derive(Debug)]
pub enum ConfigError {
    /// JSON syntax or schema problem.
    Parse(String),
    /// Semantically invalid field value.
    Invalid {
        /// Offending field.
        field: &'static str,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "config parse error: {e}"),
            ConfigError::Invalid { field, message } => {
                write!(f, "invalid config field `{field}`: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

fn schema_err(field: &'static str, message: impl Into<String>) -> ConfigError {
    ConfigError::Invalid {
        field,
        message: message.into(),
    }
}

fn get_str(
    obj: &BTreeMap<String, Value>,
    field: &'static str,
) -> Result<Option<String>, ConfigError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| schema_err(field, "expected a string")),
    }
}

fn require_str(obj: &BTreeMap<String, Value>, field: &'static str) -> Result<String, ConfigError> {
    get_str(obj, field)?.ok_or_else(|| schema_err(field, "missing required field"))
}

fn get_usize(
    obj: &BTreeMap<String, Value>,
    field: &'static str,
) -> Result<Option<usize>, ConfigError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| schema_err(field, "expected a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(schema_err(field, "expected a non-negative integer"));
            }
            Ok(Some(n as usize))
        }
    }
}

fn get_u64(obj: &BTreeMap<String, Value>, field: &'static str) -> Result<Option<u64>, ConfigError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| schema_err(field, "expected a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(schema_err(field, "expected a non-negative integer"));
            }
            Ok(Some(n as u64))
        }
    }
}

fn get_per_mille(obj: &BTreeMap<String, Value>, field: &'static str) -> Result<u16, ConfigError> {
    let v = get_u64(obj, field)?.unwrap_or(0);
    u16::try_from(v)
        .ok()
        .filter(|&p| p <= 1000)
        .ok_or_else(|| schema_err(field, format!("{v}‰ is not a per-mille rate (0..=1000)")))
}

impl FaultConfig {
    fn from_value(v: &Value) -> Result<Self, ConfigError> {
        let obj = v
            .as_object()
            .ok_or_else(|| schema_err("fault", "expected an object"))?;
        let mut down = Vec::new();
        if let Some(arr) = obj.get("down") {
            for pair in arr
                .as_array()
                .ok_or_else(|| schema_err("down", "expected an array of [start, end] pairs"))?
            {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| schema_err("down", "expected [start, end] pairs"))?;
                let start = pair[0]
                    .as_f64()
                    .filter(|n| *n >= 0.0)
                    .ok_or_else(|| schema_err("down", "start must be a non-negative number"))?;
                // `null` end = the window never closes (permanent outage).
                let end = match &pair[1] {
                    Value::Null => u64::MAX,
                    v => v
                        .as_f64()
                        .filter(|n| *n >= 0.0)
                        .ok_or_else(|| schema_err("down", "end must be a number or null"))?
                        as u64,
                };
                down.push((start as u64, end));
            }
        }
        Ok(FaultConfig {
            seed: get_u64(obj, "seed")?.unwrap_or(0),
            drop_per_mille: get_per_mille(obj, "drop_per_mille")?,
            corrupt_per_mille: get_per_mille(obj, "corrupt_per_mille")?,
            duplicate_per_mille: get_per_mille(obj, "duplicate_per_mille")?,
            stall_per_mille: get_per_mille(obj, "stall_per_mille")?,
            max_stall_quanta: get_u64(obj, "max_stall_quanta")?.unwrap_or(1) as u32,
            down,
            down_link: get_usize(obj, "down_link")?,
        })
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("seed".to_string(), Value::Number(self.seed as f64));
        let mille = [
            ("drop_per_mille", self.drop_per_mille),
            ("corrupt_per_mille", self.corrupt_per_mille),
            ("duplicate_per_mille", self.duplicate_per_mille),
            ("stall_per_mille", self.stall_per_mille),
        ];
        for (k, v) in mille {
            if v != 0 {
                m.insert(k.to_string(), Value::Number(f64::from(v)));
            }
        }
        if self.max_stall_quanta != 1 {
            m.insert(
                "max_stall_quanta".to_string(),
                Value::Number(f64::from(self.max_stall_quanta)),
            );
        }
        if !self.down.is_empty() {
            m.insert(
                "down".to_string(),
                Value::Array(
                    self.down
                        .iter()
                        .map(|&(s, e)| {
                            let end = if e == u64::MAX {
                                Value::Null
                            } else {
                                Value::Number(e as f64)
                            };
                            Value::Array(vec![Value::Number(s as f64), end])
                        })
                        .collect(),
                ),
            );
        }
        if let Some(link) = self.down_link {
            m.insert("down_link".to_string(), Value::Number(link as f64));
        }
        Value::Object(m)
    }
}

impl NetConfig {
    fn from_value(v: &Value) -> Result<Self, ConfigError> {
        let obj = v
            .as_object()
            .ok_or_else(|| schema_err("net", "expected an object"))?;
        let mut workers = Vec::new();
        if let Some(arr) = obj.get("workers") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("workers", "expected an array of addresses"))?
            {
                workers.push(
                    item.as_str()
                        .ok_or_else(|| schema_err("workers", "expected an array of addresses"))?
                        .to_string(),
                );
            }
        }
        let defaults = NetConfig::default();
        Ok(NetConfig {
            workers,
            connect_timeout_ms: get_u64(obj, "connect_timeout_ms")?
                .unwrap_or(defaults.connect_timeout_ms),
            io_timeout_ms: get_u64(obj, "io_timeout_ms")?.unwrap_or(defaults.io_timeout_ms),
            batch_cycles: get_u64(obj, "batch_cycles")?.unwrap_or(defaults.batch_cycles),
        })
    }

    fn to_value(&self) -> Value {
        let defaults = NetConfig::default();
        let mut m = BTreeMap::new();
        if !self.workers.is_empty() {
            m.insert(
                "workers".to_string(),
                Value::Array(
                    self.workers
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            );
        }
        if self.connect_timeout_ms != defaults.connect_timeout_ms {
            m.insert(
                "connect_timeout_ms".to_string(),
                Value::Number(self.connect_timeout_ms as f64),
            );
        }
        if self.io_timeout_ms != defaults.io_timeout_ms {
            m.insert(
                "io_timeout_ms".to_string(),
                Value::Number(self.io_timeout_ms as f64),
            );
        }
        if self.batch_cycles != defaults.batch_cycles {
            m.insert(
                "batch_cycles".to_string(),
                Value::Number(self.batch_cycles as f64),
            );
        }
        Value::Object(m)
    }
}

impl ReliabilityConfig {
    fn from_value(v: &Value) -> Result<Self, ConfigError> {
        let obj = v
            .as_object()
            .ok_or_else(|| schema_err("reliability", "expected an object"))?;
        let defaults = RetryPolicy::default();
        Ok(ReliabilityConfig {
            max_retries: get_u64(obj, "max_retries")?.unwrap_or(u64::from(defaults.max_retries))
                as u32,
            timeout_cycles: get_u64(obj, "timeout_cycles")?.unwrap_or(defaults.timeout_cycles),
        })
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert(
            "max_retries".to_string(),
            Value::Number(f64::from(self.max_retries)),
        );
        m.insert(
            "timeout_cycles".to_string(),
            Value::Number(self.timeout_cycles as f64),
        );
        Value::Object(m)
    }
}

impl ObsConfig {
    fn from_value(v: &Value) -> Result<Self, ConfigError> {
        let obj = v
            .as_object()
            .ok_or_else(|| schema_err("obs", "expected an object"))?;
        let mut signals = Vec::new();
        if let Some(arr) = obj.get("signals") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("signals", "expected an array of strings"))?
            {
                signals.push(
                    item.as_str()
                        .ok_or_else(|| schema_err("signals", "expected an array of strings"))?
                        .to_string(),
                );
            }
        }
        Ok(ObsConfig {
            trace_path: get_str(obj, "trace_path")?.unwrap_or_default(),
            vcd_path: get_str(obj, "vcd_path")?.unwrap_or_default(),
            metrics_path: get_str(obj, "metrics_path")?.unwrap_or_default(),
            signals,
            sample_interval: get_u64(obj, "sample_interval")?.unwrap_or(0),
        })
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        let paths = [
            ("trace_path", &self.trace_path),
            ("vcd_path", &self.vcd_path),
            ("metrics_path", &self.metrics_path),
        ];
        for (k, v) in paths {
            if !v.is_empty() {
                m.insert(k.to_string(), Value::String(v.clone()));
            }
        }
        if !self.signals.is_empty() {
            m.insert(
                "signals".to_string(),
                Value::Array(
                    self.signals
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            );
        }
        if self.sample_interval != 0 {
            m.insert(
                "sample_interval".to_string(),
                Value::Number(self.sample_interval as f64),
            );
        }
        Value::Object(m)
    }
}

impl GroupConfig {
    fn from_value(v: &Value) -> Result<Self, ConfigError> {
        let obj = v
            .as_object()
            .ok_or_else(|| schema_err("groups", "each group must be an object"))?;
        let mut instances = Vec::new();
        if let Some(arr) = obj.get("instances") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("instances", "expected an array of strings"))?
            {
                instances.push(
                    item.as_str()
                        .ok_or_else(|| schema_err("instances", "expected an array of strings"))?
                        .to_string(),
                );
            }
        }
        let mut router_indices = Vec::new();
        if let Some(arr) = obj.get("router_indices") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("router_indices", "expected an array of integers"))?
            {
                let n = item
                    .as_f64()
                    .ok_or_else(|| schema_err("router_indices", "expected an array of integers"))?;
                router_indices.push(n as usize);
            }
        }
        Ok(GroupConfig {
            name: require_str(obj, "name")?,
            instances,
            router_indices,
            fame5: obj.get("fame5").and_then(Value::as_bool).unwrap_or(false),
        })
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("name".to_string(), Value::String(self.name.clone()));
        if !self.instances.is_empty() {
            m.insert(
                "instances".to_string(),
                Value::Array(
                    self.instances
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            );
        }
        if !self.router_indices.is_empty() {
            m.insert(
                "router_indices".to_string(),
                Value::Array(
                    self.router_indices
                        .iter()
                        .map(|&i| Value::Number(i as f64))
                        .collect(),
                ),
            );
        }
        m.insert("fame5".to_string(), Value::Bool(self.fame5));
        Value::Object(m)
    }
}

impl RunConfig {
    /// Parses a JSON config.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] on malformed JSON and
    /// [`ConfigError::Invalid`] on schema violations.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        let root = json::parse(text).map_err(|e| ConfigError::Parse(e.to_string()))?;
        let obj = root
            .as_object()
            .ok_or_else(|| ConfigError::Parse("top-level value must be an object".into()))?;

        let mut partition_clocks = Vec::new();
        if let Some(arr) = obj.get("partition_clocks") {
            for pair in arr
                .as_array()
                .ok_or_else(|| schema_err("partition_clocks", "expected an array of pairs"))?
            {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| schema_err("partition_clocks", "expected [index, mhz] pairs"))?;
                let idx = pair[0]
                    .as_f64()
                    .ok_or_else(|| schema_err("partition_clocks", "index must be a number"))?;
                let mhz = pair[1]
                    .as_f64()
                    .ok_or_else(|| schema_err("partition_clocks", "mhz must be a number"))?;
                partition_clocks.push((idx as usize, mhz));
            }
        }

        let mut routers = Vec::new();
        if let Some(arr) = obj.get("routers") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("routers", "expected an array of strings"))?
            {
                routers.push(
                    item.as_str()
                        .ok_or_else(|| schema_err("routers", "expected an array of strings"))?
                        .to_string(),
                );
            }
        }

        let groups = obj
            .get("groups")
            .ok_or_else(|| schema_err("groups", "missing required field"))?
            .as_array()
            .ok_or_else(|| schema_err("groups", "expected an array"))?
            .iter()
            .map(GroupConfig::from_value)
            .collect::<Result<Vec<_>, _>>()?;

        Ok(RunConfig {
            circuit: get_str(obj, "circuit")?.unwrap_or_default(),
            mode: require_str(obj, "mode")?,
            platform: require_str(obj, "platform")?,
            backend: get_str(obj, "backend")?.unwrap_or_else(|| "des".to_string()),
            threads: get_usize(obj, "threads")?.unwrap_or(0),
            clock_mhz: obj
                .get("clock_mhz")
                .and_then(Value::as_f64)
                .unwrap_or_else(default_clock),
            partition_clocks,
            routers,
            groups,
            check_fit: obj
                .get("check_fit")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            fault: obj.get("fault").map(FaultConfig::from_value).transpose()?,
            reliability: obj
                .get("reliability")
                .map(ReliabilityConfig::from_value)
                .transpose()?,
            checkpoint_interval: get_u64(obj, "checkpoint_interval")?.unwrap_or(0),
            max_rollbacks: get_u64(obj, "max_rollbacks")?.unwrap_or(8) as u32,
            obs: obj.get("obs").map(ObsConfig::from_value).transpose()?,
            net: obj.get("net").map(NetConfig::from_value).transpose()?,
        })
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        if !self.circuit.is_empty() {
            m.insert("circuit".to_string(), Value::String(self.circuit.clone()));
        }
        m.insert("mode".to_string(), Value::String(self.mode.clone()));
        m.insert("platform".to_string(), Value::String(self.platform.clone()));
        if self.backend != "des" {
            m.insert("backend".to_string(), Value::String(self.backend.clone()));
        }
        if self.threads != 0 {
            m.insert("threads".to_string(), Value::Number(self.threads as f64));
        }
        m.insert("clock_mhz".to_string(), Value::Number(self.clock_mhz));
        if !self.partition_clocks.is_empty() {
            m.insert(
                "partition_clocks".to_string(),
                Value::Array(
                    self.partition_clocks
                        .iter()
                        .map(|&(i, mhz)| {
                            Value::Array(vec![Value::Number(i as f64), Value::Number(mhz)])
                        })
                        .collect(),
                ),
            );
        }
        if !self.routers.is_empty() {
            m.insert(
                "routers".to_string(),
                Value::Array(
                    self.routers
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            );
        }
        m.insert(
            "groups".to_string(),
            Value::Array(self.groups.iter().map(GroupConfig::to_value).collect()),
        );
        m.insert("check_fit".to_string(), Value::Bool(self.check_fit));
        if let Some(fault) = &self.fault {
            m.insert("fault".to_string(), fault.to_value());
        }
        if let Some(rel) = &self.reliability {
            m.insert("reliability".to_string(), rel.to_value());
        }
        if self.checkpoint_interval != 0 {
            m.insert(
                "checkpoint_interval".to_string(),
                Value::Number(self.checkpoint_interval as f64),
            );
        }
        if self.max_rollbacks != 8 {
            m.insert(
                "max_rollbacks".to_string(),
                Value::Number(f64::from(self.max_rollbacks)),
            );
        }
        if let Some(obs) = &self.obs {
            m.insert("obs".to_string(), obs.to_value());
        }
        if let Some(net) = &self.net {
            m.insert("net".to_string(), net.to_value());
        }
        Value::Object(m).to_pretty()
    }

    /// Resolves the partition mode.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown mode strings.
    pub fn partition_mode(&self) -> Result<PartitionMode, ConfigError> {
        match self.mode.as_str() {
            "exact" => Ok(PartitionMode::Exact),
            "fast" => Ok(PartitionMode::Fast),
            other => Err(ConfigError::Invalid {
                field: "mode",
                message: format!("`{other}` (expected `exact` or `fast`)"),
            }),
        }
    }

    /// Resolves the platform.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown platform strings.
    pub fn platform(&self) -> Result<Platform, ConfigError> {
        match self.platform.as_str() {
            "onprem-qsfp" => Ok(Platform::OnPremQsfp),
            "cloud-f1" => Ok(Platform::CloudF1),
            "host-managed" => Ok(Platform::HostManaged),
            other => Err(ConfigError::Invalid {
                field: "platform",
                message: format!(
                    "`{other}` (expected `onprem-qsfp`, `cloud-f1`, or `host-managed`)"
                ),
            }),
        }
    }

    /// Resolves the execution backend through [`Backend::from_str`]
    /// (the single parser the CLI flag also uses). The legacy separate
    /// `"threads"` count field still applies when the backend string
    /// itself doesn't carry one.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown backend strings.
    pub fn execution_backend(&self) -> Result<Backend, ConfigError> {
        let backend: Backend = self
            .backend
            .parse()
            .map_err(|e: String| schema_err("backend", e))?;
        Ok(match backend {
            Backend::Threads(0) if self.threads != 0 => Backend::Threads(self.threads),
            other => other,
        })
    }

    /// Resolves and validates the fault-injection campaign.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] when the rates sum past 1000‰ or
    /// a down window is empty.
    pub fn fault_spec(&self) -> Result<Option<FaultSpec>, ConfigError> {
        let Some(f) = &self.fault else {
            return Ok(None);
        };
        let spec = FaultSpec {
            seed: f.seed,
            drop_per_mille: f.drop_per_mille,
            corrupt_per_mille: f.corrupt_per_mille,
            duplicate_per_mille: f.duplicate_per_mille,
            stall_per_mille: f.stall_per_mille,
            max_stall_quanta: f.max_stall_quanta,
            down: f.down.clone(),
            down_link: f.down_link,
        };
        spec.validate()
            .map_err(|e| schema_err("fault", e.to_string()))?;
        Ok(Some(spec))
    }

    /// Resolves and validates the reliability protocol knobs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for a zero retransmit timeout.
    pub fn retry_policy(&self) -> Result<Option<RetryPolicy>, ConfigError> {
        let Some(r) = &self.reliability else {
            return Ok(None);
        };
        let policy = RetryPolicy {
            max_retries: r.max_retries,
            timeout_cycles: r.timeout_cycles,
        };
        policy
            .validate()
            .map_err(|e| schema_err("reliability", e.to_string()))?;
        Ok(Some(policy))
    }

    /// Resolves and validates the observability knobs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] when a metric output is requested
    /// without a sampling interval.
    pub fn obs_spec(&self) -> Result<Option<ObsSpec>, ConfigError> {
        let Some(o) = &self.obs else {
            return Ok(None);
        };
        if !o.metrics_path.is_empty() && o.sample_interval == 0 {
            return Err(schema_err(
                "obs",
                "metrics_path requires sample_interval > 0",
            ));
        }
        if !o.signals.is_empty() && o.vcd_path.is_empty() {
            return Err(schema_err("obs", "signals requires vcd_path"));
        }
        let spec = ObsSpec {
            sample_interval: o.sample_interval,
            vcd: !o.vcd_path.is_empty(),
            signals: o.signals.clone(),
        };
        Ok(spec.is_active().then_some(spec))
    }

    /// Builds the [`PartitionSpec`] this config describes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for ill-formed groups.
    pub fn partition_spec(&self) -> Result<PartitionSpec, ConfigError> {
        let mut groups = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            let selection = match (g.instances.is_empty(), g.router_indices.is_empty()) {
                (false, true) => Selection::Instances(g.instances.clone()),
                (true, false) => {
                    if self.routers.is_empty() {
                        return Err(ConfigError::Invalid {
                            field: "routers",
                            message: format!(
                                "group `{}` uses router_indices but no routers are listed",
                                g.name
                            ),
                        });
                    }
                    Selection::NocRouters {
                        routers: self.routers.clone(),
                        indices: g.router_indices.clone(),
                    }
                }
                _ => {
                    return Err(ConfigError::Invalid {
                        field: "groups",
                        message: format!(
                            "group `{}` must set exactly one of instances/router_indices",
                            g.name
                        ),
                    })
                }
            };
            groups.push(PartitionGroup {
                name: g.name.clone(),
                selection,
                fame5: g.fame5,
            });
        }
        Ok(PartitionSpec {
            mode: self.partition_mode()?,
            channel_policy: ChannelPolicy::Separated,
            groups,
        })
    }

    /// Instantiates the push-button flow for `circuit`.
    ///
    /// # Errors
    ///
    /// Propagates config validation failures.
    pub fn to_flow(&self, circuit: Circuit) -> Result<FireAxe, ConfigError> {
        let mut fa = FireAxe::new(circuit, self.partition_spec()?)
            .platform(self.platform()?)
            .clock_mhz(self.clock_mhz)
            .backend(self.execution_backend()?)
            .checkpoint_interval(self.checkpoint_interval)
            .max_rollbacks(self.max_rollbacks);
        if let Some(spec) = self.fault_spec()? {
            fa = fa.fault_spec(spec);
        }
        if let Some(policy) = self.retry_policy()? {
            fa = fa.retry_policy(policy);
        }
        if let Some(spec) = self.obs_spec()? {
            fa = fa.observe(spec);
        }
        for (p, mhz) in &self.partition_clocks {
            fa = fa.partition_clock_mhz(*p, *mhz);
        }
        if self.check_fit {
            fa = fa.check_fit();
        }
        Ok(fa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "mode": "fast",
        "platform": "onprem-qsfp",
        "clock_mhz": 30.0,
        "groups": [
            { "name": "tiles", "instances": ["tile0", "tile1"], "fame5": true }
        ]
    }"#;

    #[test]
    fn parses_and_roundtrips() {
        let cfg = RunConfig::from_json(EXAMPLE).unwrap();
        assert_eq!(cfg.partition_mode().unwrap(), PartitionMode::Fast);
        assert_eq!(cfg.platform().unwrap(), Platform::OnPremQsfp);
        assert_eq!(cfg.execution_backend().unwrap(), Backend::Des);
        let spec = cfg.partition_spec().unwrap();
        assert_eq!(spec.groups.len(), 1);
        assert!(spec.groups[0].fame5);
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn rejects_bad_mode_and_platform() {
        let mut cfg = RunConfig::from_json(EXAMPLE).unwrap();
        cfg.mode = "turbo".into();
        assert!(cfg.partition_mode().is_err());
        cfg.platform = "mainframe".into();
        assert!(cfg.platform().is_err());
        cfg.backend = "warp".into();
        assert!(cfg.execution_backend().is_err());
    }

    #[test]
    fn backend_field_parses_threads() {
        let text = r#"{
            "mode": "exact", "platform": "onprem-qsfp",
            "backend": "threads", "threads": 4,
            "groups": [{ "name": "g", "instances": ["a"] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert_eq!(cfg.execution_backend().unwrap(), Backend::Threads(4));
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn backend_field_shares_the_cli_parser() {
        // Every spelling `--backend` accepts works in the JSON field,
        // because both go through the one `Backend::from_str`.
        let mut cfg = RunConfig::from_json(EXAMPLE).unwrap();
        for (spelling, expect) in [
            ("des", Backend::Des),
            ("threads", Backend::Threads(0)),
            ("threads:3", Backend::Threads(3)),
            ("net", Backend::Net),
        ] {
            cfg.backend = spelling.to_string();
            cfg.threads = 0;
            assert_eq!(cfg.execution_backend().unwrap(), expect, "{spelling}");
        }
        // An inline count wins over the legacy separate field.
        cfg.backend = "threads:2".into();
        cfg.threads = 7;
        assert_eq!(cfg.execution_backend().unwrap(), Backend::Threads(2));
        // Parse errors name the field, like every other config error.
        cfg.backend = "threads:lots".into();
        assert!(matches!(
            cfg.execution_backend(),
            Err(ConfigError::Invalid {
                field: "backend",
                ..
            })
        ));
    }

    #[test]
    fn net_knobs_parse_and_roundtrip() {
        let text = r#"{
            "mode": "exact", "platform": "host-managed",
            "backend": "net",
            "net": {
                "workers": ["127.0.0.1:7001", "unix:/tmp/w1.sock"],
                "connect_timeout_ms": 2500,
                "batch_cycles": 64
            },
            "groups": [{ "name": "g", "instances": ["a"] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert_eq!(cfg.execution_backend().unwrap(), Backend::Net);
        let net = cfg.net.as_ref().unwrap();
        assert_eq!(net.workers.len(), 2);
        assert_eq!(net.connect_timeout_ms, 2500);
        assert_eq!(net.io_timeout_ms, NetConfig::default().io_timeout_ms);
        assert_eq!(net.batch_cycles, 64);
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);

        // Self-spawn shorthand: `"net"` backend with no addresses.
        let cfg = RunConfig::from_json(
            r#"{
                "mode": "exact", "platform": "host-managed", "backend": "net",
                "groups": [{ "name": "g", "instances": ["a"] }]
            }"#,
        )
        .unwrap();
        assert!(cfg.net.is_none());
        assert_eq!(cfg.execution_backend().unwrap(), Backend::Net);
    }

    #[test]
    fn rejects_ambiguous_group() {
        let text = r#"{
            "mode": "exact", "platform": "cloud-f1",
            "groups": [{ "name": "g", "instances": ["a"], "router_indices": [0] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert!(matches!(
            cfg.partition_spec(),
            Err(ConfigError::Invalid {
                field: "groups",
                ..
            })
        ));
    }

    #[test]
    fn noc_groups_need_router_list() {
        let text = r#"{
            "mode": "exact", "platform": "onprem-qsfp",
            "groups": [{ "name": "g", "router_indices": [0, 1] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert!(matches!(
            cfg.partition_spec(),
            Err(ConfigError::Invalid {
                field: "routers",
                ..
            })
        ));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(matches!(
            RunConfig::from_json("{ not json"),
            Err(ConfigError::Parse(_))
        ));
        assert!(matches!(
            RunConfig::from_json(r#"{"mode": "exact", "platform": "cloud-f1"}"#),
            Err(ConfigError::Invalid {
                field: "groups",
                ..
            })
        ));
    }

    const FAULTY: &str = r#"{
        "mode": "exact", "platform": "onprem-qsfp",
        "backend": "threads",
        "checkpoint_interval": 8,
        "max_rollbacks": 16,
        "fault": {
            "seed": 99,
            "drop_per_mille": 50,
            "corrupt_per_mille": 25,
            "duplicate_per_mille": 10,
            "stall_per_mille": 5,
            "max_stall_quanta": 3,
            "down": [[10, 30], [100, null]],
            "down_link": 0
        },
        "reliability": { "max_retries": 6, "timeout_cycles": 16 },
        "groups": [{ "name": "t", "instances": ["tile0"] }]
    }"#;

    #[test]
    fn fault_and_reliability_knobs_parse_and_roundtrip() {
        let cfg = RunConfig::from_json(FAULTY).unwrap();
        let spec = cfg.fault_spec().unwrap().unwrap();
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.drop_per_mille, 50);
        assert_eq!(spec.down, vec![(10, 30), (100, u64::MAX)]);
        assert_eq!(spec.down_link, Some(0));
        let policy = cfg.retry_policy().unwrap().unwrap();
        assert_eq!(policy.max_retries, 6);
        assert_eq!(policy.timeout_cycles, 16);
        assert_eq!(cfg.checkpoint_interval, 8);
        assert_eq!(cfg.max_rollbacks, 16);
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn fault_validation_errors_surface() {
        // Rates that sum past 1000‰ are rejected with the field named.
        let mut cfg = RunConfig::from_json(FAULTY).unwrap();
        cfg.fault.as_mut().unwrap().drop_per_mille = 999;
        assert!(matches!(
            cfg.fault_spec(),
            Err(ConfigError::Invalid { field: "fault", .. })
        ));
        // A single rate past 1000‰ never even parses.
        let bad = FAULTY.replace("\"drop_per_mille\": 50", "\"drop_per_mille\": 1500");
        assert!(matches!(
            RunConfig::from_json(&bad),
            Err(ConfigError::Invalid {
                field: "drop_per_mille",
                ..
            })
        ));
        // Zero retransmit timeout is invalid.
        let mut cfg = RunConfig::from_json(FAULTY).unwrap();
        cfg.reliability.as_mut().unwrap().timeout_cycles = 0;
        assert!(matches!(
            cfg.retry_policy(),
            Err(ConfigError::Invalid {
                field: "reliability",
                ..
            })
        ));
        // Empty down windows are caught by spec validation.
        let mut cfg = RunConfig::from_json(FAULTY).unwrap();
        cfg.fault.as_mut().unwrap().down = vec![(30, 10)];
        assert!(matches!(
            cfg.fault_spec(),
            Err(ConfigError::Invalid { field: "fault", .. })
        ));
    }

    #[test]
    fn obs_knobs_parse_validate_and_roundtrip() {
        let text = r#"{
            "circuit": "soc.fir",
            "mode": "exact", "platform": "onprem-qsfp",
            "obs": {
                "trace_path": "out.trace.json",
                "vcd_path": "out.vcd",
                "metrics_path": "out.csv",
                "signals": ["rest:o", "t_rsp"],
                "sample_interval": 25
            },
            "groups": [{ "name": "t", "instances": ["tile0"] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert_eq!(cfg.circuit, "soc.fir");
        let spec = cfg.obs_spec().unwrap().unwrap();
        assert_eq!(spec.sample_interval, 25);
        assert!(spec.vcd);
        assert_eq!(
            spec.signals,
            vec!["rest:o".to_string(), "t_rsp".to_string()]
        );
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);

        // Metric output without a cadence is a field-named error.
        let mut bad = cfg.clone();
        bad.obs.as_mut().unwrap().sample_interval = 0;
        assert!(matches!(
            bad.obs_spec(),
            Err(ConfigError::Invalid { field: "obs", .. })
        ));
        // A watch list without a waveform destination is meaningless.
        let mut bad = cfg.clone();
        bad.obs.as_mut().unwrap().vcd_path.clear();
        assert!(matches!(
            bad.obs_spec(),
            Err(ConfigError::Invalid { field: "obs", .. })
        ));
        // An inactive spec resolves to None.
        let mut quiet = cfg;
        quiet.obs = Some(ObsConfig::default());
        assert!(quiet.obs_spec().unwrap().is_none());
    }

    #[test]
    fn flow_from_config_survives_faults() {
        use fireaxe_ir::build::ModuleBuilder;
        let mut tile = ModuleBuilder::new("Tile");
        let req = tile.input("req", 8);
        let rsp = tile.output("rsp", 8);
        let r = tile.reg("r", 8, 0);
        tile.connect_sig(&r, &req);
        tile.connect_sig(&rsp, &r);
        let mut top = ModuleBuilder::new("Soc");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("tile0", "Tile");
        top.connect_inst("tile0", "req", &i);
        let rsp = top.inst_port("tile0", "rsp");
        top.connect_sig(&o, &rsp);
        let circuit =
            fireaxe_ir::Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc");

        let cfg = RunConfig::from_json(FAULTY).unwrap();
        let (design, mut sim) = cfg.to_flow(circuit).unwrap().build().unwrap();
        assert_eq!(design.partitions.len(), 2);
        // The transient [10, 30) outage is ridden out by rollback;
        // the run completes despite the noisy links.
        sim.run_target_cycles_recovering(40).unwrap();
        assert_eq!(sim.target_cycles(), 40);
    }

    #[test]
    fn flow_from_config_runs() {
        use fireaxe_ir::build::ModuleBuilder;
        let mut tile = ModuleBuilder::new("Tile");
        let req = tile.input("req", 8);
        let rsp = tile.output("rsp", 8);
        let r = tile.reg("r", 8, 0);
        tile.connect_sig(&r, &req);
        tile.connect_sig(&rsp, &r);
        let mut top = ModuleBuilder::new("Soc");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("tile0", "Tile");
        top.connect_inst("tile0", "req", &i);
        let rsp = top.inst_port("tile0", "rsp");
        top.connect_sig(&o, &rsp);
        let circuit =
            fireaxe_ir::Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc");

        let text = r#"{
            "mode": "exact", "platform": "cloud-f1",
            "groups": [{ "name": "t", "instances": ["tile0"] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        let (design, mut sim) = cfg.to_flow(circuit).unwrap().build().unwrap();
        assert_eq!(design.partitions.len(), 2);
        sim.run_target_cycles(50).unwrap();
    }
}
