//! Manager-style run configuration.
//!
//! FireSim drives simulations from declarative config files
//! (`config_runtime.yaml` etc.); this module provides the equivalent for
//! FireAxe-rs: a JSON-serializable [`RunConfig`] describing the
//! partitioning, platform, clocks, and execution backend of a run,
//! convertible into a [`FireAxe`] flow. Configs are plain JSON so they
//! can be generated, checked in, and diffed like the paper's artifact
//! scripts. (De)serialization is hand-rolled over [`crate::json`] since
//! the workspace builds offline.

use crate::flow::{FireAxe, Platform};
use crate::json::{self, Value};
use fireaxe_ir::Circuit;
use fireaxe_ripper::{ChannelPolicy, PartitionGroup, PartitionMode, PartitionSpec, Selection};
use fireaxe_sim::Backend;
use std::collections::BTreeMap;

/// One partition group in a config file.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupConfig {
    /// Group name.
    pub name: String,
    /// Explicit instance paths (mutually exclusive with `router_indices`).
    pub instances: Vec<String>,
    /// NoC-partition-mode router indices (requires `routers` at the top
    /// level).
    pub router_indices: Vec<usize>,
    /// FAME-5 multi-threading.
    pub fame5: bool,
}

/// A complete run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// `"exact"` or `"fast"`.
    pub mode: String,
    /// `"onprem-qsfp"`, `"cloud-f1"`, or `"host-managed"`.
    pub platform: String,
    /// Execution backend: `"des"` (deterministic discrete-event golden
    /// model, the default) or `"threads"` (one OS thread per partition).
    pub backend: String,
    /// Worker thread cap for the `"threads"` backend; `0` means one
    /// thread per partition.
    pub threads: usize,
    /// Bitstream frequency in MHz for all partitions.
    pub clock_mhz: f64,
    /// Per-partition clock overrides: `[partition index, MHz]` pairs.
    pub partition_clocks: Vec<(usize, f64)>,
    /// Router paths for NoC-partition-mode groups, in index order.
    pub routers: Vec<String>,
    /// Partition groups.
    pub groups: Vec<GroupConfig>,
    /// Enforce FPGA fit/topology checks before running.
    pub check_fit: bool,
}

fn default_clock() -> f64 {
    30.0
}

/// Errors from config parsing/validation.
#[derive(Debug)]
pub enum ConfigError {
    /// JSON syntax or schema problem.
    Parse(String),
    /// Semantically invalid field value.
    Invalid {
        /// Offending field.
        field: &'static str,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "config parse error: {e}"),
            ConfigError::Invalid { field, message } => {
                write!(f, "invalid config field `{field}`: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

fn schema_err(field: &'static str, message: impl Into<String>) -> ConfigError {
    ConfigError::Invalid {
        field,
        message: message.into(),
    }
}

fn get_str(
    obj: &BTreeMap<String, Value>,
    field: &'static str,
) -> Result<Option<String>, ConfigError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| schema_err(field, "expected a string")),
    }
}

fn require_str(obj: &BTreeMap<String, Value>, field: &'static str) -> Result<String, ConfigError> {
    get_str(obj, field)?.ok_or_else(|| schema_err(field, "missing required field"))
}

fn get_usize(
    obj: &BTreeMap<String, Value>,
    field: &'static str,
) -> Result<Option<usize>, ConfigError> {
    match obj.get(field) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| schema_err(field, "expected a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(schema_err(field, "expected a non-negative integer"));
            }
            Ok(Some(n as usize))
        }
    }
}

impl GroupConfig {
    fn from_value(v: &Value) -> Result<Self, ConfigError> {
        let obj = v
            .as_object()
            .ok_or_else(|| schema_err("groups", "each group must be an object"))?;
        let mut instances = Vec::new();
        if let Some(arr) = obj.get("instances") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("instances", "expected an array of strings"))?
            {
                instances.push(
                    item.as_str()
                        .ok_or_else(|| schema_err("instances", "expected an array of strings"))?
                        .to_string(),
                );
            }
        }
        let mut router_indices = Vec::new();
        if let Some(arr) = obj.get("router_indices") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("router_indices", "expected an array of integers"))?
            {
                let n = item
                    .as_f64()
                    .ok_or_else(|| schema_err("router_indices", "expected an array of integers"))?;
                router_indices.push(n as usize);
            }
        }
        Ok(GroupConfig {
            name: require_str(obj, "name")?,
            instances,
            router_indices,
            fame5: obj.get("fame5").and_then(Value::as_bool).unwrap_or(false),
        })
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("name".to_string(), Value::String(self.name.clone()));
        if !self.instances.is_empty() {
            m.insert(
                "instances".to_string(),
                Value::Array(
                    self.instances
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            );
        }
        if !self.router_indices.is_empty() {
            m.insert(
                "router_indices".to_string(),
                Value::Array(
                    self.router_indices
                        .iter()
                        .map(|&i| Value::Number(i as f64))
                        .collect(),
                ),
            );
        }
        m.insert("fame5".to_string(), Value::Bool(self.fame5));
        Value::Object(m)
    }
}

impl RunConfig {
    /// Parses a JSON config.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] on malformed JSON and
    /// [`ConfigError::Invalid`] on schema violations.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        let root = json::parse(text).map_err(|e| ConfigError::Parse(e.to_string()))?;
        let obj = root
            .as_object()
            .ok_or_else(|| ConfigError::Parse("top-level value must be an object".into()))?;

        let mut partition_clocks = Vec::new();
        if let Some(arr) = obj.get("partition_clocks") {
            for pair in arr
                .as_array()
                .ok_or_else(|| schema_err("partition_clocks", "expected an array of pairs"))?
            {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| schema_err("partition_clocks", "expected [index, mhz] pairs"))?;
                let idx = pair[0]
                    .as_f64()
                    .ok_or_else(|| schema_err("partition_clocks", "index must be a number"))?;
                let mhz = pair[1]
                    .as_f64()
                    .ok_or_else(|| schema_err("partition_clocks", "mhz must be a number"))?;
                partition_clocks.push((idx as usize, mhz));
            }
        }

        let mut routers = Vec::new();
        if let Some(arr) = obj.get("routers") {
            for item in arr
                .as_array()
                .ok_or_else(|| schema_err("routers", "expected an array of strings"))?
            {
                routers.push(
                    item.as_str()
                        .ok_or_else(|| schema_err("routers", "expected an array of strings"))?
                        .to_string(),
                );
            }
        }

        let groups = obj
            .get("groups")
            .ok_or_else(|| schema_err("groups", "missing required field"))?
            .as_array()
            .ok_or_else(|| schema_err("groups", "expected an array"))?
            .iter()
            .map(GroupConfig::from_value)
            .collect::<Result<Vec<_>, _>>()?;

        Ok(RunConfig {
            mode: require_str(obj, "mode")?,
            platform: require_str(obj, "platform")?,
            backend: get_str(obj, "backend")?.unwrap_or_else(|| "des".to_string()),
            threads: get_usize(obj, "threads")?.unwrap_or(0),
            clock_mhz: obj
                .get("clock_mhz")
                .and_then(Value::as_f64)
                .unwrap_or_else(default_clock),
            partition_clocks,
            routers,
            groups,
            check_fit: obj
                .get("check_fit")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        })
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("mode".to_string(), Value::String(self.mode.clone()));
        m.insert("platform".to_string(), Value::String(self.platform.clone()));
        if self.backend != "des" {
            m.insert("backend".to_string(), Value::String(self.backend.clone()));
        }
        if self.threads != 0 {
            m.insert("threads".to_string(), Value::Number(self.threads as f64));
        }
        m.insert("clock_mhz".to_string(), Value::Number(self.clock_mhz));
        if !self.partition_clocks.is_empty() {
            m.insert(
                "partition_clocks".to_string(),
                Value::Array(
                    self.partition_clocks
                        .iter()
                        .map(|&(i, mhz)| {
                            Value::Array(vec![Value::Number(i as f64), Value::Number(mhz)])
                        })
                        .collect(),
                ),
            );
        }
        if !self.routers.is_empty() {
            m.insert(
                "routers".to_string(),
                Value::Array(
                    self.routers
                        .iter()
                        .map(|s| Value::String(s.clone()))
                        .collect(),
                ),
            );
        }
        m.insert(
            "groups".to_string(),
            Value::Array(self.groups.iter().map(GroupConfig::to_value).collect()),
        );
        m.insert("check_fit".to_string(), Value::Bool(self.check_fit));
        Value::Object(m).to_pretty()
    }

    /// Resolves the partition mode.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown mode strings.
    pub fn partition_mode(&self) -> Result<PartitionMode, ConfigError> {
        match self.mode.as_str() {
            "exact" => Ok(PartitionMode::Exact),
            "fast" => Ok(PartitionMode::Fast),
            other => Err(ConfigError::Invalid {
                field: "mode",
                message: format!("`{other}` (expected `exact` or `fast`)"),
            }),
        }
    }

    /// Resolves the platform.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown platform strings.
    pub fn platform(&self) -> Result<Platform, ConfigError> {
        match self.platform.as_str() {
            "onprem-qsfp" => Ok(Platform::OnPremQsfp),
            "cloud-f1" => Ok(Platform::CloudF1),
            "host-managed" => Ok(Platform::HostManaged),
            other => Err(ConfigError::Invalid {
                field: "platform",
                message: format!(
                    "`{other}` (expected `onprem-qsfp`, `cloud-f1`, or `host-managed`)"
                ),
            }),
        }
    }

    /// Resolves the execution backend.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for unknown backend strings.
    pub fn execution_backend(&self) -> Result<Backend, ConfigError> {
        match self.backend.as_str() {
            "des" => Ok(Backend::Des),
            "threads" => Ok(Backend::Threads(self.threads)),
            other => Err(ConfigError::Invalid {
                field: "backend",
                message: format!("`{other}` (expected `des` or `threads`)"),
            }),
        }
    }

    /// Builds the [`PartitionSpec`] this config describes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Invalid`] for ill-formed groups.
    pub fn partition_spec(&self) -> Result<PartitionSpec, ConfigError> {
        let mut groups = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            let selection = match (g.instances.is_empty(), g.router_indices.is_empty()) {
                (false, true) => Selection::Instances(g.instances.clone()),
                (true, false) => {
                    if self.routers.is_empty() {
                        return Err(ConfigError::Invalid {
                            field: "routers",
                            message: format!(
                                "group `{}` uses router_indices but no routers are listed",
                                g.name
                            ),
                        });
                    }
                    Selection::NocRouters {
                        routers: self.routers.clone(),
                        indices: g.router_indices.clone(),
                    }
                }
                _ => {
                    return Err(ConfigError::Invalid {
                        field: "groups",
                        message: format!(
                            "group `{}` must set exactly one of instances/router_indices",
                            g.name
                        ),
                    })
                }
            };
            groups.push(PartitionGroup {
                name: g.name.clone(),
                selection,
                fame5: g.fame5,
            });
        }
        Ok(PartitionSpec {
            mode: self.partition_mode()?,
            channel_policy: ChannelPolicy::Separated,
            groups,
        })
    }

    /// Instantiates the push-button flow for `circuit`.
    ///
    /// # Errors
    ///
    /// Propagates config validation failures.
    pub fn to_flow(&self, circuit: Circuit) -> Result<FireAxe, ConfigError> {
        let mut fa = FireAxe::new(circuit, self.partition_spec()?)
            .platform(self.platform()?)
            .clock_mhz(self.clock_mhz)
            .backend(self.execution_backend()?);
        for (p, mhz) in &self.partition_clocks {
            fa = fa.partition_clock_mhz(*p, *mhz);
        }
        if self.check_fit {
            fa = fa.check_fit();
        }
        Ok(fa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "mode": "fast",
        "platform": "onprem-qsfp",
        "clock_mhz": 30.0,
        "groups": [
            { "name": "tiles", "instances": ["tile0", "tile1"], "fame5": true }
        ]
    }"#;

    #[test]
    fn parses_and_roundtrips() {
        let cfg = RunConfig::from_json(EXAMPLE).unwrap();
        assert_eq!(cfg.partition_mode().unwrap(), PartitionMode::Fast);
        assert_eq!(cfg.platform().unwrap(), Platform::OnPremQsfp);
        assert_eq!(cfg.execution_backend().unwrap(), Backend::Des);
        let spec = cfg.partition_spec().unwrap();
        assert_eq!(spec.groups.len(), 1);
        assert!(spec.groups[0].fame5);
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn rejects_bad_mode_and_platform() {
        let mut cfg = RunConfig::from_json(EXAMPLE).unwrap();
        cfg.mode = "turbo".into();
        assert!(cfg.partition_mode().is_err());
        cfg.platform = "mainframe".into();
        assert!(cfg.platform().is_err());
        cfg.backend = "warp".into();
        assert!(cfg.execution_backend().is_err());
    }

    #[test]
    fn backend_field_parses_threads() {
        let text = r#"{
            "mode": "exact", "platform": "onprem-qsfp",
            "backend": "threads", "threads": 4,
            "groups": [{ "name": "g", "instances": ["a"] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert_eq!(cfg.execution_backend().unwrap(), Backend::Threads(4));
        let back = RunConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn rejects_ambiguous_group() {
        let text = r#"{
            "mode": "exact", "platform": "cloud-f1",
            "groups": [{ "name": "g", "instances": ["a"], "router_indices": [0] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert!(matches!(
            cfg.partition_spec(),
            Err(ConfigError::Invalid {
                field: "groups",
                ..
            })
        ));
    }

    #[test]
    fn noc_groups_need_router_list() {
        let text = r#"{
            "mode": "exact", "platform": "onprem-qsfp",
            "groups": [{ "name": "g", "router_indices": [0, 1] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        assert!(matches!(
            cfg.partition_spec(),
            Err(ConfigError::Invalid {
                field: "routers",
                ..
            })
        ));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(matches!(
            RunConfig::from_json("{ not json"),
            Err(ConfigError::Parse(_))
        ));
        assert!(matches!(
            RunConfig::from_json(r#"{"mode": "exact", "platform": "cloud-f1"}"#),
            Err(ConfigError::Invalid {
                field: "groups",
                ..
            })
        ));
    }

    #[test]
    fn flow_from_config_runs() {
        use fireaxe_ir::build::ModuleBuilder;
        let mut tile = ModuleBuilder::new("Tile");
        let req = tile.input("req", 8);
        let rsp = tile.output("rsp", 8);
        let r = tile.reg("r", 8, 0);
        tile.connect_sig(&r, &req);
        tile.connect_sig(&rsp, &r);
        let mut top = ModuleBuilder::new("Soc");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("tile0", "Tile");
        top.connect_inst("tile0", "req", &i);
        let rsp = top.inst_port("tile0", "rsp");
        top.connect_sig(&o, &rsp);
        let circuit =
            fireaxe_ir::Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc");

        let text = r#"{
            "mode": "exact", "platform": "cloud-f1",
            "groups": [{ "name": "t", "instances": ["tile0"] }]
        }"#;
        let cfg = RunConfig::from_json(text).unwrap();
        let (design, mut sim) = cfg.to_flow(circuit).unwrap().build().unwrap();
        assert_eq!(design.partitions.len(), 2);
        sim.run_target_cycles(50).unwrap();
    }
}
