//! The hybrid cloud/on-premises usage model (paper §VIII-A).
//!
//! The paper advocates developing on low-latency on-premises FPGAs and
//! bursting benchmark campaigns to the cloud. Three factors drive the
//! choice: cost structure (hourly vs. upfront), capacity (a local U250
//! offers ~50% more usable LUTs than a cloud VU9P), and simulation rate
//! (QSFP beats peer-to-peer PCIe ~1.5×). This module quantifies the cost
//! side so the trade-off is computable.

use crate::flow::Platform;

/// Price assumptions for the hybrid model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cloud price per FPGA-hour (AWS f1.2xlarge on-demand ballpark).
    pub cloud_per_fpga_hour: f64,
    /// Upfront price per on-premises FPGA board (U250 ballpark).
    pub onprem_per_fpga: f64,
    /// Amortization horizon for on-prem hardware, in hours of use.
    pub onprem_lifetime_hours: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cloud_per_fpga_hour: 1.65,
            onprem_per_fpga: 8_000.0,
            onprem_lifetime_hours: 3.0 * 365.0 * 24.0, // three years
        }
    }
}

impl CostModel {
    /// Cost of running `fpgas` FPGAs for `hours` on `platform`.
    ///
    /// On-premises cost is the *upfront* price (the paper's framing);
    /// use [`CostModel::onprem_amortized`] for a marginal comparison.
    pub fn campaign_cost(&self, platform: Platform, fpgas: usize, hours: f64) -> f64 {
        match platform {
            Platform::OnPremQsfp => self.onprem_per_fpga * fpgas as f64,
            Platform::CloudF1 | Platform::HostManaged => {
                self.cloud_per_fpga_hour * fpgas as f64 * hours
            }
        }
    }

    /// Amortized on-premises cost for `fpgas` FPGAs over `hours`.
    pub fn onprem_amortized(&self, fpgas: usize, hours: f64) -> f64 {
        self.onprem_per_fpga * fpgas as f64 * (hours / self.onprem_lifetime_hours)
    }

    /// Usage hours after which buying beats renting, per FPGA.
    pub fn break_even_hours(&self) -> f64 {
        self.onprem_per_fpga / self.cloud_per_fpga_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_is_cheaper_for_short_campaigns() {
        let m = CostModel::default();
        let hours = 40.0; // the paper's full artifact run
        assert!(
            m.campaign_cost(Platform::CloudF1, 5, hours)
                < m.campaign_cost(Platform::OnPremQsfp, 5, hours)
        );
    }

    #[test]
    fn onprem_wins_long_term() {
        let m = CostModel::default();
        let be = m.break_even_hours();
        assert!((1_000.0..20_000.0).contains(&be), "break-even {be} h");
        assert!(
            m.campaign_cost(Platform::CloudF1, 1, 2.0 * be)
                > m.campaign_cost(Platform::OnPremQsfp, 1, 2.0 * be)
        );
    }

    #[test]
    fn amortized_cost_scales_linearly() {
        let m = CostModel::default();
        let a = m.onprem_amortized(4, 100.0);
        let b = m.onprem_amortized(4, 200.0);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }
}
