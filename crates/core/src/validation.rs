//! Simulator validation (paper §VI-C, Table II).
//!
//! For each validation target we measure the run-to-completion cycle
//! count three ways: monolithic interpretation (the golden reference),
//! exact-mode partitioned simulation (must match *exactly* — it is
//! asserted by the test suite, not just reported), and fast-mode
//! partitioned simulation (cycle-approximate; the error column). The
//! error is measured, not modeled: it arises from fast-mode's seed token
//! and the skid-buffer/valid-gating boundary rewrites.

use crate::flow::FireAxe;
use fireaxe_ripper::{ChannelPolicy, PartitionGroup, PartitionMode, PartitionSpec};
use fireaxe_sim::{RecordedToken, ScriptBridge};
use fireaxe_soc::validation::{gemmini_soc, rocket_soc, run_monolithic_to_done, sha3_soc};
use std::collections::BTreeMap;

/// Which Table II row to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationTarget {
    /// "Rocket tile (Linux boot)" — boot-trace iterations scaled down
    /// from the paper's 3.84 B cycles.
    Rocket {
        /// Boot-loop iterations.
        iterations: u32,
    },
    /// "Sha3Accel (Encryption)".
    Sha3,
    /// "Gemmini (Convolution)".
    Gemmini,
}

impl ValidationTarget {
    /// Paper row label.
    pub fn label(&self) -> &'static str {
        match self {
            ValidationTarget::Rocket { .. } => "Rocket tile (Linux boot)",
            ValidationTarget::Sha3 => "Sha3Accel (Encryption)",
            ValidationTarget::Gemmini => "Gemmini (Convolution)",
        }
    }

    fn circuit(&self, mem_latency: u32) -> fireaxe_ir::Circuit {
        match self {
            ValidationTarget::Rocket { iterations } => rocket_soc(*iterations, mem_latency),
            ValidationTarget::Sha3 => sha3_soc(mem_latency),
            ValidationTarget::Gemmini => gemmini_soc(mem_latency),
        }
    }

    fn cycle_budget(&self) -> u64 {
        match self {
            ValidationTarget::Rocket { iterations } => 200 * u64::from(*iterations) + 10_000,
            ValidationTarget::Sha3 => 20_000,
            ValidationTarget::Gemmini => 100_000,
        }
    }
}

/// One row of the reproduced Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Row label.
    pub target: String,
    /// Monolithic cycle count.
    pub monolithic: u64,
    /// Exact-mode partitioned cycle count.
    pub exact: u64,
    /// Fast-mode partitioned cycle count.
    pub fast: u64,
}

impl ValidationRow {
    /// |error| of exact-mode vs monolithic, percent (always 0 when the
    /// system is working).
    pub fn exact_error_pct(&self) -> f64 {
        pct_error(self.exact, self.monolithic)
    }

    /// |error| of fast-mode vs monolithic, percent.
    pub fn fast_error_pct(&self) -> f64 {
        pct_error(self.fast, self.monolithic)
    }
}

fn pct_error(measured: u64, golden: u64) -> f64 {
    if golden == 0 {
        return 0.0;
    }
    (measured as f64 - golden as f64).abs() / golden as f64 * 100.0
}

/// Runs the target with its master (core/accelerator) extracted onto a
/// separate FPGA in the given mode; returns the cycle at which `done`
/// first asserts.
///
/// # Errors
///
/// Returns a message on compile/simulation failure or when the design
/// never finishes within its cycle budget.
pub fn partitioned_cycles_to_done(
    target: ValidationTarget,
    mode: PartitionMode,
    mem_latency: u32,
) -> Result<u64, String> {
    let circuit = target.circuit(mem_latency);
    let spec = PartitionSpec {
        mode,
        channel_policy: ChannelPolicy::Separated,
        groups: vec![PartitionGroup::instances(
            "master_part",
            vec!["master".into()],
        )],
    };
    let has_go = circuit.top_module().port("go").is_some();
    let bridge = ScriptBridge::new(move |_cycle| {
        let mut m = BTreeMap::new();
        if has_go {
            m.insert("go".to_string(), fireaxe_ir::Bits::from_u64(1, 1));
        }
        m
    })
    .until(|t: &RecordedToken| t.values.get("done").is_some_and(|v| v.to_u64() == 1))
    .recording();

    let fa = FireAxe::new(circuit, spec).bridge(1, Box::new(bridge));
    let (design, mut sim) = fa.build().map_err(|e| e.to_string())?;
    let rest = design.node_index(1, 0);
    let budget = target.cycle_budget();
    sim.run_while(|s| s.target_cycles() < budget && !s.any_bridge_done())
        .map_err(|e| e.to_string())?;
    let b = sim
        .bridge_mut(rest)
        .as_any()
        .downcast_mut::<ScriptBridge>()
        .expect("script bridge");
    b.log()
        .iter()
        .find(|t| t.values.get("done").is_some_and(|v| v.to_u64() == 1))
        .map(|t| t.cycle)
        .ok_or_else(|| format!("{} never finished in {mode}", target.label()))
}

/// Produces one Table II row (monolithic / exact / fast).
///
/// # Errors
///
/// Returns a message if any of the three runs fails.
pub fn validation_row(target: ValidationTarget, mem_latency: u32) -> Result<ValidationRow, String> {
    let monolithic = run_monolithic_to_done(&target.circuit(mem_latency), target.cycle_budget())?;
    let exact = partitioned_cycles_to_done(target, PartitionMode::Exact, mem_latency)?;
    let fast = partitioned_cycles_to_done(target, PartitionMode::Fast, mem_latency)?;
    Ok(ValidationRow {
        target: target.label().to_string(),
        monolithic,
        exact,
        fast,
    })
}
