//! The push-button FireAxe flow.
//!
//! [`FireAxe`] strings the whole stack together the way the paper's
//! manager does: take a monolithic circuit and a partition spec, run
//! FireRipper, check per-partition FPGA fit, pick a platform (transport +
//! clocks), and hand back a running [`DistributedSim`] — with the SoC
//! behavior factory pre-registered so generated designs work out of the
//! box.

use fireaxe_fpga::{fit, FitReport, FpgaSpec};
use fireaxe_ir::Circuit;
use fireaxe_ripper::{compile, PartitionSpec, PartitionedDesign};
use fireaxe_sim::{Backend, BehaviorRegistry, Bridge, DistributedSim, ObsSpec, SimBuilder};
use fireaxe_transport::fault::FaultSpec;
use fireaxe_transport::reliable::RetryPolicy;
use fireaxe_transport::LinkModel;
use std::collections::BTreeMap;

/// Simulation platform: where the FPGAs live (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// On-premises Alveo U250 cluster with QSFP direct-attach cables.
    OnPremQsfp,
    /// AWS EC2 F1 with peer-to-peer PCIe.
    CloudF1,
    /// Any platform, tokens through the host CPUs (slow but universal).
    HostManaged,
}

impl Platform {
    /// The transport model this platform uses.
    pub fn transport(self) -> LinkModel {
        match self {
            Platform::OnPremQsfp => LinkModel::qsfp_aurora(),
            Platform::CloudF1 => LinkModel::peer_pcie(),
            Platform::HostManaged => LinkModel::host_pcie(),
        }
    }

    /// The FPGA populating this platform.
    pub fn fpga(self) -> FpgaSpec {
        match self {
            Platform::OnPremQsfp => FpgaSpec::alveo_u250(),
            Platform::CloudF1 | Platform::HostManaged => FpgaSpec::aws_vu9p(),
        }
    }
}

/// Errors from the push-button flow.
#[derive(Debug)]
pub enum FlowError {
    /// FireRipper failed.
    Ripper(fireaxe_ripper::RipperError),
    /// Engine construction/run failed.
    Sim(fireaxe_sim::SimError),
    /// A partition does not fit (or route) on the platform FPGA.
    DoesNotFit {
        /// Partition name.
        partition: String,
        /// The failing fit report.
        report: FitReport,
    },
    /// The partition link graph cannot be cabled with the platform's
    /// QSFP cages (paper §VIII-C).
    Topology {
        /// The violating partitions.
        violations: Vec<crate::topology::TopologyViolation>,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Ripper(e) => write!(f, "FireRipper: {e}"),
            FlowError::Sim(e) => write!(f, "engine: {e}"),
            FlowError::DoesNotFit { partition, report } => {
                write!(f, "partition `{partition}` fails the FPGA build: {report}")
            }
            FlowError::Topology { violations } => {
                write!(f, "interconnect topology is not cable-able: ")?;
                for v in violations {
                    write!(f, "{v}; ")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<fireaxe_ripper::RipperError> for FlowError {
    fn from(e: fireaxe_ripper::RipperError) -> Self {
        FlowError::Ripper(e)
    }
}

impl From<fireaxe_sim::SimError> for FlowError {
    fn from(e: fireaxe_sim::SimError) -> Self {
        FlowError::Sim(e)
    }
}

/// Builder for a complete FireAxe simulation.
pub struct FireAxe {
    circuit: Circuit,
    spec: PartitionSpec,
    platform: Platform,
    clock_mhz: f64,
    partition_clocks: BTreeMap<usize, f64>,
    bridges: BTreeMap<usize, Box<dyn Bridge>>,
    check_fit: bool,
    extra_behaviors: Option<BehaviorRegistry>,
    backend: Backend,
    fault_spec: Option<FaultSpec>,
    retry_policy: Option<RetryPolicy>,
    checkpoint_interval: u64,
    max_rollbacks: u32,
    obs: ObsSpec,
}

impl std::fmt::Debug for FireAxe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FireAxe")
            .field("circuit", &self.circuit.name)
            .field("platform", &self.platform)
            .finish()
    }
}

impl FireAxe {
    /// Starts a flow for `circuit` partitioned per `spec`.
    pub fn new(circuit: Circuit, spec: PartitionSpec) -> Self {
        FireAxe {
            circuit,
            spec,
            platform: Platform::OnPremQsfp,
            clock_mhz: 30.0,
            partition_clocks: BTreeMap::new(),
            bridges: BTreeMap::new(),
            check_fit: false,
            extra_behaviors: None,
            backend: Backend::Des,
            fault_spec: None,
            retry_policy: None,
            checkpoint_interval: 0,
            max_rollbacks: 8,
            obs: ObsSpec::default(),
        }
    }

    /// Turns on run observation: metric sampling every
    /// `spec.sample_interval` target cycles and/or VCD signal capture
    /// (see [`fireaxe_sim::ObsSpec`] and `DistributedSim::obs_report`).
    pub fn observe(mut self, spec: ObsSpec) -> Self {
        self.obs = spec;
        self
    }

    /// Arms deterministic fault injection on every inter-partition link
    /// (which also turns on the reliability protocol).
    pub fn fault_spec(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = Some(spec);
        self
    }

    /// Overrides the reliability protocol's retry/timeout knobs (also
    /// turns the protocol on, even with a quiet fault spec).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = Some(policy);
        self
    }

    /// Snapshot the simulation every `cycles` target cycles so
    /// `DistributedSim::run_target_cycles_recovering` can roll back and
    /// replay through recoverable link outages (0 disables).
    pub fn checkpoint_interval(mut self, cycles: u64) -> Self {
        self.checkpoint_interval = cycles;
        self
    }

    /// Rollback budget for recoverable `LinkDown` escalations.
    pub fn max_rollbacks(mut self, rollbacks: u32) -> Self {
        self.max_rollbacks = rollbacks;
        self
    }

    /// Selects the execution backend for cycle-budgeted runs (default:
    /// the deterministic DES golden model). `Backend::Threads` runs each
    /// partition thread on its own OS thread with bit-identical target
    /// results.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the platform (default: on-premises QSFP).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Bitstream frequency for every partition (default 30 MHz).
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Per-partition bitstream frequency override.
    pub fn partition_clock_mhz(mut self, partition: usize, mhz: f64) -> Self {
        self.partition_clocks.insert(partition, mhz);
        self
    }

    /// Attaches a bridge to a node (flat index; see
    /// [`PartitionedDesign::node_index`]).
    pub fn bridge(mut self, node: usize, bridge: Box<dyn Bridge>) -> Self {
        self.bridges.insert(node, bridge);
        self
    }

    /// Enforce that every partition passes the FPGA fit/congestion check
    /// before building the simulation.
    pub fn check_fit(mut self) -> Self {
        self.check_fit = true;
        self
    }

    /// Adds user behavior factories on top of the built-in SoC models.
    pub fn behaviors(mut self, registry: BehaviorRegistry) -> Self {
        self.extra_behaviors = Some(registry);
        self
    }

    /// Runs FireRipper only (the "quick feedback" step).
    ///
    /// # Errors
    ///
    /// Propagates compiler failures.
    pub fn compile(&self) -> Result<PartitionedDesign, FlowError> {
        Ok(compile(&self.circuit, &self.spec)?)
    }

    /// Compiles, fit-checks, and builds the running simulation.
    ///
    /// # Errors
    ///
    /// Propagates compiler, fit, and engine failures.
    pub fn build(mut self) -> Result<(PartitionedDesign, DistributedSim), FlowError> {
        let design = compile(&self.circuit, &self.spec)?;
        if self.check_fit {
            let fpga = self.platform.fpga();
            for p in &design.partitions {
                for t in &p.threads {
                    let report = fit(&t.circuit, &fpga);
                    if !report.routable {
                        return Err(FlowError::DoesNotFit {
                            partition: t.name.clone(),
                            report,
                        });
                    }
                }
            }
            // Direct-attach cabling must respect the QSFP cage count;
            // PCIe-based platforms route through the host or switch.
            if self.platform == Platform::OnPremQsfp {
                if let Err(violations) = crate::topology::check_qsfp_topology(&design, &fpga) {
                    return Err(FlowError::Topology { violations });
                }
            }
        }
        let mut registry = self.extra_behaviors.take().unwrap_or_default();
        register_soc_behaviors(&mut registry);
        let mut builder = SimBuilder::new(&design)
            .transport(self.platform.transport())
            .clock_mhz(self.clock_mhz)
            .backend(self.backend)
            .behaviors(registry)
            .checkpoint_interval(self.checkpoint_interval)
            .max_rollbacks(self.max_rollbacks)
            .observe(self.obs.clone());
        if let Some(spec) = self.fault_spec.take() {
            builder = builder.fault_spec(spec);
        }
        if let Some(policy) = self.retry_policy.take() {
            builder = builder.retry_policy(policy);
        }
        for (p, mhz) in &self.partition_clocks {
            builder = builder.partition_clock_mhz(*p, *mhz);
        }
        for (node, bridge) in self.bridges {
            builder = builder.bridge(node, bridge);
        }
        let sim = builder.build()?;
        Ok((design, sim))
    }
}

/// Registers the `fireaxe-soc` behavioral models (tiles, BOOM pipeline
/// halves, subsystem, crossbar) as a fallback factory: any behavior key
/// whose name `fireaxe_soc::make_behavior` recognizes is served by the
/// built-in models; user-registered named factories take precedence.
pub fn register_soc_behaviors(registry: &mut BehaviorRegistry) {
    registry.register_fallback(fireaxe_soc::make_behavior);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_transport::TransportKind;

    #[test]
    fn platform_transport_mapping() {
        assert_eq!(
            Platform::OnPremQsfp.transport().kind,
            TransportKind::QsfpAurora
        );
        assert_eq!(Platform::CloudF1.transport().kind, TransportKind::PeerPcie);
        assert_eq!(
            Platform::HostManaged.transport().kind,
            TransportKind::HostPcie
        );
        assert_eq!(Platform::OnPremQsfp.fpga().name, "Xilinx Alveo U250");
        assert_eq!(Platform::CloudF1.fpga().name, "AWS F1 VU9P");
    }

    #[test]
    fn flow_errors_display() {
        let e = FlowError::DoesNotFit {
            partition: "big".into(),
            report: fireaxe_fpga::fit_estimate(
                fireaxe_fpga::ResourceEstimate {
                    luts: 9_999_999,
                    ..Default::default()
                },
                &FpgaSpec::alveo_u250(),
            ),
        };
        let msg = e.to_string();
        assert!(msg.contains("big") && msg.contains("does not fit"));
    }

    #[test]
    fn soc_behavior_fallback_resolves_keys() {
        let mut reg = BehaviorRegistry::new();
        register_soc_behaviors(&mut reg);
        // Registered factories are exercised through SimBuilder elsewhere;
        // here just confirm the umbrella fallback handles a tile key.
        assert!(fireaxe_soc::make_behavior("boom_tile?id=3", "tile3").is_some());
        assert!(fireaxe_soc::make_behavior("warp_drive", "x").is_none());
    }
}
