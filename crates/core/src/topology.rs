//! On-premises interconnect topology constraints (paper §VIII-C).
//!
//! A Xilinx Alveo U250 exposes two QSFP cages, so direct-attach cabling
//! "limits the topology to a ring or binary tree-like structure". This
//! module checks whether a partitioned design's link graph is physically
//! cable-able on a given FPGA: every partition's number of *distinct
//! neighbor partitions* must not exceed the cage count. (Host-managed and
//! peer-to-peer PCIe transports route through the host/switch and carry
//! no such constraint.)

use fireaxe_fpga::FpgaSpec;
use fireaxe_ripper::PartitionedDesign;
use std::collections::BTreeSet;

/// A partition whose required neighbor count exceeds the FPGA's cages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyViolation {
    /// Partition name.
    pub partition: String,
    /// Distinct neighbor partitions it must cable to.
    pub degree: usize,
    /// QSFP cages available.
    pub cages: u32,
}

impl std::fmt::Display for TopologyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partition `{}` needs {} direct neighbors but the FPGA has {} QSFP cages",
            self.partition, self.degree, self.cages
        )
    }
}

/// Returns each partition's distinct-neighbor count (its degree in the
/// partition link graph). FAME-5 threads of one partition share its
/// cages.
pub fn partition_degrees(design: &PartitionedDesign) -> Vec<(String, usize)> {
    // Map flat node index -> partition index.
    let mut node_part = Vec::with_capacity(design.node_count());
    for (pi, p) in design.partitions.iter().enumerate() {
        for _ in &p.threads {
            node_part.push(pi);
        }
    }
    let mut neighbors: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); design.partitions.len()];
    for l in &design.links {
        let a = node_part[l.from_node];
        let b = node_part[l.to_node];
        if a != b {
            neighbors[a].insert(b);
            neighbors[b].insert(a);
        }
    }
    design
        .partitions
        .iter()
        .zip(neighbors)
        .map(|(p, n)| (p.name.clone(), n.len()))
        .collect()
}

/// Checks the design against the FPGA's QSFP cage count.
///
/// # Errors
///
/// Returns every violating partition.
pub fn check_qsfp_topology(
    design: &PartitionedDesign,
    fpga: &FpgaSpec,
) -> Result<(), Vec<TopologyViolation>> {
    let violations: Vec<TopologyViolation> = partition_degrees(design)
        .into_iter()
        .filter(|(_, degree)| *degree > fpga.qsfp_cages as usize)
        .map(|(partition, degree)| TopologyViolation {
            partition,
            degree,
            cages: fpga.qsfp_cages,
        })
        .collect();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::build::ModuleBuilder;
    use fireaxe_ripper::{compile, PartitionGroup, PartitionSpec};

    /// A hub SoC with `n` independent tiles (star topology when each tile
    /// becomes its own partition).
    fn star_soc(n: usize) -> fireaxe_ir::Circuit {
        let mut tile = ModuleBuilder::new("Tile");
        let req = tile.input("req", 8);
        let rsp = tile.output("rsp", 8);
        let r = tile.reg("r", 8, 0);
        tile.connect_sig(&r, &req);
        tile.connect_sig(&rsp, &r);
        let tile = tile.finish();
        let mut top = ModuleBuilder::new("Soc");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        let hub = top.reg("hub", 8, 0);
        let mut acc = i.clone();
        for t in 0..n {
            let inst = format!("tile{t}");
            top.inst(&inst, "Tile");
            top.connect_inst(&inst, "req", &hub);
            let rsp = top.inst_port(&inst, "rsp");
            acc = acc.xor(&rsp);
        }
        top.connect_sig(&hub, &acc);
        top.connect_sig(&o, &hub);
        fireaxe_ir::Circuit::from_modules("Soc", vec![top.finish(), tile], "Soc")
    }

    fn star_design(n: usize) -> PartitionedDesign {
        let groups = (0..n)
            .map(|t| PartitionGroup::instances(format!("g{t}"), vec![format!("tile{t}")]))
            .collect();
        compile(&star_soc(n), &PartitionSpec::exact(groups)).unwrap()
    }

    #[test]
    fn two_partition_star_fits_u250_cages() {
        let d = star_design(1);
        assert!(check_qsfp_topology(&d, &fireaxe_fpga::FpgaSpec::alveo_u250()).is_ok());
    }

    #[test]
    fn high_degree_hub_violates_cages() {
        // Remainder talks to 3 tile partitions: degree 3 > 2 cages.
        let d = star_design(3);
        let degrees = partition_degrees(&d);
        let rest = degrees.iter().find(|(n, _)| n == "rest").unwrap();
        assert_eq!(rest.1, 3);
        let err = check_qsfp_topology(&d, &fireaxe_fpga::FpgaSpec::alveo_u250()).unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].partition, "rest");
        assert_eq!(err[0].cages, 2);
    }

    #[test]
    fn cloud_fpgas_have_no_cages_but_pcie_routes_anyway() {
        // VU9P has 0 cages: any inter-FPGA link is a QSFP violation —
        // which is exactly why the cloud uses p2p PCIe instead.
        let d = star_design(1);
        assert!(check_qsfp_topology(&d, &fireaxe_fpga::FpgaSpec::aws_vu9p()).is_err());
    }
}
