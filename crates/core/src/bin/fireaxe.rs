//! The `fireaxe` command-line runner: push-button partitioned simulation
//! from files, the analog of the paper artifact's `firesim` manager
//! invocations.
//!
//! ```text
//! fireaxe --circuit design.fir --config run.json [--cycles N] [--estimate]
//! ```
//!
//! `design.fir` is the textual IR (see `fireaxe_ir::parser`); `run.json`
//! is a [`fireaxe::RunConfig`]. Prints the partition report, the
//! compiler's quick rate estimate, and — unless `--estimate` — the
//! measured simulation rate.

use fireaxe::prelude::*;
use fireaxe::RunConfig;
use std::process::ExitCode;

struct Args {
    circuit: String,
    config: String,
    cycles: u64,
    estimate_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut circuit = None;
    let mut config = None;
    let mut cycles = 10_000u64;
    let mut estimate_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--circuit" => circuit = Some(it.next().ok_or("--circuit needs a path")?),
            "--config" => config = Some(it.next().ok_or("--config needs a path")?),
            "--cycles" => {
                cycles = it
                    .next()
                    .ok_or("--cycles needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --cycles value: {e}"))?
            }
            "--estimate" => estimate_only = true,
            "--help" | "-h" => {
                return Err("usage: fireaxe --circuit <design.fir> --config <run.json> \
                     [--cycles N] [--estimate]"
                    .into())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args {
        circuit: circuit.ok_or("missing --circuit <path>")?,
        config: config.ok_or("missing --config <path>")?,
        cycles,
        estimate_only,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let circuit_text =
        std::fs::read_to_string(&args.circuit).map_err(|e| format!("{}: {e}", args.circuit))?;
    let config_text =
        std::fs::read_to_string(&args.config).map_err(|e| format!("{}: {e}", args.config))?;

    let circuit = fireaxe::ir::parser::parse_circuit(&circuit_text).map_err(|e| e.to_string())?;
    let cfg = RunConfig::from_json(&config_text).map_err(|e| e.to_string())?;
    let platform = cfg.platform().map_err(|e| e.to_string())?;
    let flow = cfg.to_flow(circuit).map_err(|e| e.to_string())?;

    let design = flow.compile().map_err(|e| e.to_string())?;
    println!("partitions: {}", design.partitions.len());
    for p in &design.partitions {
        for t in &p.threads {
            let est = fireaxe::fpga::estimate(&t.circuit);
            println!(
                "  {:24} {:>8} kLUT  (fit on {}: {})",
                t.name,
                est.luts / 1000,
                platform.fpga().name,
                fireaxe::fpga::fit_estimate(est, &platform.fpga())
            );
        }
    }
    println!(
        "boundary: {} bits over {} links; {} crossings/cycle",
        design.report.total_boundary_width(),
        design.links.len(),
        design.report.crossings_per_cycle
    );
    for note in &design.report.notes {
        println!("  note: {note}");
    }
    let est = estimate_target_mhz(&design, platform.transport(), cfg.clock_mhz)
        .map_err(|e| e.to_string())?;
    println!("estimated rate: {est:.3} MHz");
    if args.estimate_only {
        return Ok(());
    }

    let (_design, mut sim) = flow.build().map_err(|e| e.to_string())?;
    // `recovering` so configs with `checkpoint_interval` set survive
    // injected link outages by rolling back; without checkpoints it is
    // exactly `run_target_cycles`.
    let metrics = sim
        .run_target_cycles_recovering(args.cycles)
        .map_err(|e| e.to_string())?;
    println!(
        "simulated {} target cycles in {:.3} ms of virtual time: {:.3} MHz",
        metrics.target_cycles,
        metrics.time_ps as f64 / 1e9,
        metrics.target_mhz()
    );
    if sim.rollbacks_taken() > 0 {
        println!(
            "recovered from link faults via {} checkpoint rollback(s)",
            sim.rollbacks_taken()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fireaxe: {e}");
            ExitCode::FAILURE
        }
    }
}
