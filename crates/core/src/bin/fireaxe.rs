//! The `fireaxe` command-line runner: push-button partitioned simulation
//! from files, the analog of the paper artifact's `firesim` manager
//! invocations.
//!
//! ```text
//! fireaxe run <run.json> [--circuit design.fir] [--cycles N]
//!             [--backend des|threads] [--trace out.trace.json]
//!             [--vcd out.vcd] [--metrics out.json|out.csv]
//!             [--signals a,b,..] [--sample-interval N] [--estimate]
//! ```
//!
//! `run.json` is a [`fireaxe::RunConfig`]; its `"circuit"` field names
//! the textual-IR design (resolved relative to the config file) unless
//! `--circuit` overrides it. The legacy spelling
//! `fireaxe --circuit design.fir --config run.json` still works.
//!
//! Prints the partition report, the compiler's quick rate estimate, the
//! measured simulation rate, and the per-node/per-link metrics summary.
//! The `--trace`/`--vcd`/`--metrics`/`--signals`/`--sample-interval`
//! flags override the config's `"obs"` object.

use fireaxe::prelude::*;
use fireaxe::{ObsConfig, RunConfig};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: fireaxe run <run.json> [--circuit <design.fir>] [--cycles N] \
     [--backend des|threads] [--trace <out.json>] [--vcd <out.vcd>] \
     [--metrics <out.json|out.csv>] [--signals <a,b,..>] [--sample-interval N] [--estimate]";

struct Args {
    circuit: Option<String>,
    config: String,
    cycles: u64,
    estimate_only: bool,
    backend: Option<String>,
    trace: Option<String>,
    vcd: Option<String>,
    metrics: Option<String>,
    signals: Option<Vec<String>>,
    sample_interval: Option<u64>,
}

fn parse_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or(format!("{flag} needs a number"))?
        .parse()
        .map_err(|e| format!("bad {flag} value: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut circuit = None;
    let mut config = None;
    let mut cycles = 10_000u64;
    let mut estimate_only = false;
    let mut backend = None;
    let mut trace = None;
    let mut vcd = None;
    let mut metrics = None;
    let mut signals = None;
    let mut sample_interval = None;
    let mut run_seen = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "run" if !run_seen && config.is_none() => run_seen = true,
            "--circuit" => circuit = Some(it.next().ok_or("--circuit needs a path")?),
            "--config" => config = Some(it.next().ok_or("--config needs a path")?),
            "--cycles" => cycles = parse_u64(&mut it, "--cycles")?,
            "--backend" => backend = Some(it.next().ok_or("--backend needs des|threads")?),
            "--trace" => trace = Some(it.next().ok_or("--trace needs a path")?),
            "--vcd" => vcd = Some(it.next().ok_or("--vcd needs a path")?),
            "--metrics" => metrics = Some(it.next().ok_or("--metrics needs a path")?),
            "--signals" => {
                let list = it.next().ok_or("--signals needs a comma-separated list")?;
                signals = Some(list.split(',').map(str::to_string).collect());
            }
            "--sample-interval" => sample_interval = Some(parse_u64(&mut it, "--sample-interval")?),
            "--estimate" => estimate_only = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other if run_seen && config.is_none() && !other.starts_with('-') => {
                config = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args {
        circuit,
        config: config.ok_or("missing config path (try --help)")?,
        cycles,
        estimate_only,
        backend,
        trace,
        vcd,
        metrics,
        signals,
        sample_interval,
    })
}

/// Folds the CLI observability flags over the config's `"obs"` object.
fn apply_obs_flags(cfg: &mut RunConfig, args: &Args) {
    let wants_obs = args.trace.is_some()
        || args.vcd.is_some()
        || args.metrics.is_some()
        || args.signals.is_some()
        || args.sample_interval.is_some();
    if cfg.obs.is_none() && !wants_obs {
        return;
    }
    let obs = cfg.obs.get_or_insert_with(ObsConfig::default);
    if let Some(p) = &args.trace {
        obs.trace_path = p.clone();
    }
    if let Some(p) = &args.vcd {
        obs.vcd_path = p.clone();
    }
    if let Some(p) = &args.metrics {
        obs.metrics_path = p.clone();
    }
    if let Some(s) = &args.signals {
        obs.signals = s.clone();
    }
    if let Some(n) = args.sample_interval {
        obs.sample_interval = n;
    }
    // Asking for a trace or metric file implies sampling; pick a default
    // interval rather than silently producing an empty series.
    if obs.sample_interval == 0 && (!obs.trace_path.is_empty() || !obs.metrics_path.is_empty()) {
        obs.sample_interval = 100;
    }
}

fn write_out(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let config_text =
        std::fs::read_to_string(&args.config).map_err(|e| format!("{}: {e}", args.config))?;
    let mut cfg = RunConfig::from_json(&config_text).map_err(|e| e.to_string())?;
    if let Some(b) = &args.backend {
        cfg.backend = b.clone();
    }
    apply_obs_flags(&mut cfg, &args);

    // The circuit comes from --circuit, else the config's `circuit`
    // field resolved relative to the config file.
    let circuit_path = match &args.circuit {
        Some(p) => p.clone(),
        None if !cfg.circuit.is_empty() => Path::new(&args.config)
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(&cfg.circuit)
            .to_string_lossy()
            .into_owned(),
        None => {
            return Err("missing circuit: pass --circuit or set `circuit` in the config".into())
        }
    };
    let circuit_text =
        std::fs::read_to_string(&circuit_path).map_err(|e| format!("{circuit_path}: {e}"))?;
    let circuit = fireaxe::ir::parser::parse_circuit(&circuit_text).map_err(|e| e.to_string())?;

    let platform = cfg.platform().map_err(|e| e.to_string())?;
    let obs = cfg.obs.clone().unwrap_or_default();
    let flow = cfg.to_flow(circuit).map_err(|e| e.to_string())?;

    let design = flow.compile().map_err(|e| e.to_string())?;
    println!("partitions: {}", design.partitions.len());
    for p in &design.partitions {
        for t in &p.threads {
            let est = fireaxe::fpga::estimate(&t.circuit);
            println!(
                "  {:24} {:>8} kLUT  (fit on {}: {})",
                t.name,
                est.luts / 1000,
                platform.fpga().name,
                fireaxe::fpga::fit_estimate(est, &platform.fpga())
            );
        }
    }
    println!(
        "boundary: {} bits over {} links; {} crossings/cycle",
        design.report.total_boundary_width(),
        design.links.len(),
        design.report.crossings_per_cycle
    );
    for note in &design.report.notes {
        println!("  note: {note}");
    }
    let est = estimate_target_mhz(&design, platform.transport(), cfg.clock_mhz)
        .map_err(|e| e.to_string())?;
    println!("estimated rate: {est:.3} MHz");
    if args.estimate_only {
        return Ok(());
    }

    // Arm the event tracer before the engine is built so build-time and
    // run-time spans both land in the Chrome trace.
    if !obs.trace_path.is_empty() {
        fireaxe::obs::trace::set_enabled(true);
    }

    let (_design, mut sim) = flow.build().map_err(|e| e.to_string())?;
    // `recovering` so configs with `checkpoint_interval` set survive
    // injected link outages by rolling back; without checkpoints it is
    // exactly `run_target_cycles`.
    let metrics = sim
        .run_target_cycles_recovering(args.cycles)
        .map_err(|e| e.to_string())?;
    println!(
        "simulated {} target cycles in {:.3} ms of virtual time: {:.3} MHz",
        metrics.target_cycles,
        metrics.time_ps as f64 / 1e9,
        metrics.target_mhz()
    );
    if sim.rollbacks_taken() > 0 {
        println!(
            "recovered from link faults via {} checkpoint rollback(s)",
            sim.rollbacks_taken()
        );
    }
    print!("{metrics}");

    let report = sim.obs_report();
    if !obs.trace_path.is_empty() {
        fireaxe::obs::trace::set_enabled(false);
        let events = fireaxe::obs::trace::take_events();
        write_out(&obs.trace_path, &fireaxe::obs::to_chrome_json(&events))?;
        println!("wrote {} trace events to {}", events.len(), obs.trace_path);
    }
    if !obs.vcd_path.is_empty() {
        let vcd = report.vcd.as_deref().unwrap_or_default();
        write_out(&obs.vcd_path, vcd)?;
        println!("wrote waveform to {}", obs.vcd_path);
    }
    if !obs.metrics_path.is_empty() {
        let doc = if obs.metrics_path.ends_with(".csv") {
            report.metrics.to_csv()
        } else {
            report.metrics.to_json()
        };
        write_out(&obs.metrics_path, &doc)?;
        println!(
            "wrote metric series ({} node samples) to {}",
            report
                .metrics
                .nodes
                .iter()
                .map(|n| n.samples.len())
                .sum::<usize>(),
            obs.metrics_path
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fireaxe: {e}");
            ExitCode::FAILURE
        }
    }
}
