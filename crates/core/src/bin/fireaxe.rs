//! The `fireaxe` command-line runner: push-button partitioned simulation
//! from files, the analog of the paper artifact's `firesim` manager
//! invocations.
//!
//! ```text
//! fireaxe run <run.json> [--circuit design.fir] [--cycles N]
//!             [--backend des|threads[:n]|net] [--trace out.trace.json]
//!             [--vcd out.vcd] [--metrics out.json|out.csv]
//!             [--signals a,b,..] [--sample-interval N] [--estimate]
//! fireaxe coordinator <run.json> [--workers addr,addr,..] [run flags]
//! fireaxe worker [--listen <host:port|unix:/path>]
//! ```
//!
//! `run.json` is a [`fireaxe::RunConfig`]; its `"circuit"` field names
//! the textual-IR design (resolved relative to the config file) unless
//! `--circuit` overrides it. The legacy spelling
//! `fireaxe --circuit design.fir --config run.json` still works.
//!
//! The `--backend` flag and the config's `"backend"` field share one
//! parser (`Backend::from_str`), so `des`, `threads`, `threads:<n>`,
//! and `net` mean the same thing everywhere. With `net`, each partition
//! runs in its own OS process: the addresses come from the config's
//! `"net"` object (or `--workers`), and when none are given the binary
//! self-spawns `fireaxe worker` subprocesses on localhost.
//! `fireaxe coordinator` is `run` with the backend pinned to `net`.
//!
//! Prints the partition report, the compiler's quick rate estimate, the
//! measured simulation rate, and the per-node/per-link metrics summary.
//! The `--trace`/`--vcd`/`--metrics`/`--signals`/`--sample-interval`
//! flags override the config's `"obs"` object.

use fireaxe::prelude::*;
use fireaxe::{ObsConfig, RunConfig};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: fireaxe run <run.json> [--circuit <design.fir>] [--cycles N] \
     [--backend des|threads[:n]|net] [--trace <out.json>] [--vcd <out.vcd>] \
     [--metrics <out.json|out.csv>] [--signals <a,b,..>] [--sample-interval N] [--estimate]\n\
       fireaxe coordinator <run.json> [--workers <addr,addr,..>] [--batch-cycles N] [run flags]\n\
       fireaxe worker [--listen <host:port|unix:/path>]";

const WORKER_USAGE: &str = "usage: fireaxe worker [--listen <host:port|unix:/path>]\n\
binds the listener (default 127.0.0.1:0), prints `listening on <addr>`, \
then serves exactly one coordinator session";

struct Args {
    circuit: Option<String>,
    config: String,
    cycles: u64,
    estimate_only: bool,
    backend: Option<String>,
    /// `coordinator` subcommand: pin the backend to `net`.
    force_net: bool,
    /// `--workers` override for the config's `net.workers` list.
    workers: Option<Vec<String>>,
    /// `--batch-cycles` override for the config's `net.batch_cycles`.
    batch_cycles: Option<u64>,
    trace: Option<String>,
    vcd: Option<String>,
    metrics: Option<String>,
    signals: Option<Vec<String>>,
    sample_interval: Option<u64>,
}

enum Cmd {
    // Boxed: `Args` dwarfs the other variant and `Cmd` is passed around
    // by value out of the parser.
    Run(Box<Args>),
    Worker { listen: String },
}

fn parse_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or(format!("{flag} needs a number"))?
        .parse()
        .map_err(|e| format!("bad {flag} value: {e}"))
}

fn parse_args() -> Result<Cmd, String> {
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("worker") {
        it.next();
        let mut listen = "127.0.0.1:0".to_string();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--listen" => listen = it.next().ok_or("--listen needs an address")?,
                "--help" | "-h" => return Err(WORKER_USAGE.into()),
                other => return Err(format!("unknown worker argument `{other}` (try --help)")),
            }
        }
        return Ok(Cmd::Worker { listen });
    }

    let mut circuit = None;
    let mut config = None;
    let mut cycles = 10_000u64;
    let mut estimate_only = false;
    let mut backend = None;
    let mut force_net = false;
    let mut workers = None;
    let mut batch_cycles = None;
    let mut trace = None;
    let mut vcd = None;
    let mut metrics = None;
    let mut signals = None;
    let mut sample_interval = None;
    let mut run_seen = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "run" if !run_seen && config.is_none() => run_seen = true,
            "coordinator" if !run_seen && config.is_none() => {
                run_seen = true;
                force_net = true;
            }
            "--circuit" => circuit = Some(it.next().ok_or("--circuit needs a path")?),
            "--config" => config = Some(it.next().ok_or("--config needs a path")?),
            "--cycles" => cycles = parse_u64(&mut it, "--cycles")?,
            "--backend" => backend = Some(it.next().ok_or("--backend needs des|threads[:n]|net")?),
            "--workers" => {
                let list = it.next().ok_or("--workers needs a comma-separated list")?;
                workers = Some(list.split(',').map(str::to_string).collect());
            }
            "--batch-cycles" => batch_cycles = Some(parse_u64(&mut it, "--batch-cycles")?),
            "--trace" => trace = Some(it.next().ok_or("--trace needs a path")?),
            "--vcd" => vcd = Some(it.next().ok_or("--vcd needs a path")?),
            "--metrics" => metrics = Some(it.next().ok_or("--metrics needs a path")?),
            "--signals" => {
                let list = it.next().ok_or("--signals needs a comma-separated list")?;
                signals = Some(list.split(',').map(str::to_string).collect());
            }
            "--sample-interval" => sample_interval = Some(parse_u64(&mut it, "--sample-interval")?),
            "--estimate" => estimate_only = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other if run_seen && config.is_none() && !other.starts_with('-') => {
                config = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Cmd::Run(Box::new(Args {
        circuit,
        config: config.ok_or("missing config path (try --help)")?,
        cycles,
        estimate_only,
        backend,
        force_net,
        workers,
        batch_cycles,
        trace,
        vcd,
        metrics,
        signals,
        sample_interval,
    })))
}

/// Folds the CLI observability flags over the config's `"obs"` object.
fn apply_obs_flags(cfg: &mut RunConfig, args: &Args) {
    let wants_obs = args.trace.is_some()
        || args.vcd.is_some()
        || args.metrics.is_some()
        || args.signals.is_some()
        || args.sample_interval.is_some();
    if cfg.obs.is_none() && !wants_obs {
        return;
    }
    let obs = cfg.obs.get_or_insert_with(ObsConfig::default);
    if let Some(p) = &args.trace {
        obs.trace_path = p.clone();
    }
    if let Some(p) = &args.vcd {
        obs.vcd_path = p.clone();
    }
    if let Some(p) = &args.metrics {
        obs.metrics_path = p.clone();
    }
    if let Some(s) = &args.signals {
        obs.signals = s.clone();
    }
    if let Some(n) = args.sample_interval {
        obs.sample_interval = n;
    }
    // Asking for a trace or metric file implies sampling; pick a default
    // interval rather than silently producing an empty series.
    if obs.sample_interval == 0 && (!obs.trace_path.is_empty() || !obs.metrics_path.is_empty()) {
        obs.sample_interval = 100;
    }
}

fn write_out(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

/// The behavior bindings every process in a cluster applies
/// identically: the built-in SoC models as a fallback factory. Workers,
/// the coordinator's passive build, and the single-process backends all
/// resolve extern behaviors through this same hook, which is what makes
/// the cross-process digests comparable in the first place.
fn net_setup(b: SimBuilder<'_>) -> SimBuilder<'_> {
    let mut registry = BehaviorRegistry::new();
    fireaxe::register_soc_behaviors(&mut registry);
    b.behaviors(registry)
}

/// `fireaxe worker`: bind, advertise the resolved address on stdout,
/// serve one coordinator session, exit.
fn run_worker(listen: &str) -> Result<(), String> {
    let listener =
        fireaxe_net::NetListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    // The advertise line is machine-read by `SpawnedWorker::launch`;
    // stdout is a pipe there, so flush explicitly.
    println!(
        "{}{}",
        fireaxe_net::spawn::LISTENING_PREFIX,
        listener.local_addr_string()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    fireaxe_net::serve(&listener, &net_setup).map_err(|e| e.to_string())
}

/// Prints the partition report and the compiler's quick rate estimate.
fn print_design_report(
    design: &fireaxe::ripper::PartitionedDesign,
    platform: Platform,
    clock_mhz: f64,
) -> Result<(), String> {
    println!("partitions: {}", design.partitions.len());
    for p in &design.partitions {
        for t in &p.threads {
            let est = fireaxe::fpga::estimate(&t.circuit);
            println!(
                "  {:24} {:>8} kLUT  (fit on {}: {})",
                t.name,
                est.luts / 1000,
                platform.fpga().name,
                fireaxe::fpga::fit_estimate(est, &platform.fpga())
            );
        }
    }
    println!(
        "boundary: {} bits over {} links; {} crossings/cycle",
        design.report.total_boundary_width(),
        design.links.len(),
        design.report.crossings_per_cycle
    );
    for note in &design.report.notes {
        println!("  note: {note}");
    }
    let est =
        estimate_target_mhz(design, platform.transport(), clock_mhz).map_err(|e| e.to_string())?;
    println!("estimated rate: {est:.3} MHz");
    Ok(())
}

/// The cluster-wide engine settings the coordinator ships to every
/// worker, derived from the same config fields the in-process backends
/// read.
fn wire_settings(
    cfg: &RunConfig,
    platform: Platform,
    obs: &ObsConfig,
) -> Result<fireaxe_net::WireSettings, String> {
    let mut settings = fireaxe_net::WireSettings {
        default_transport: platform.transport(),
        clock_mhz: cfg.clock_mhz,
        partition_clocks: cfg
            .partition_clocks
            .iter()
            .map(|&(p, mhz)| (p as u32, mhz))
            .collect(),
        sample_interval: obs.sample_interval,
        vcd: !obs.vcd_path.is_empty(),
        signals: obs.signals.clone(),
        ..Default::default()
    };
    if let Some(policy) = cfg.retry_policy().map_err(|e| e.to_string())? {
        settings.retry = policy;
    }
    if let Some(net) = &cfg.net {
        settings.io_timeout_ms = net.io_timeout_ms;
        settings.batch_cycles = net.batch_cycles;
    }
    Ok(settings)
}

/// `--backend net`: run the design as one worker process per partition,
/// self-spawning `fireaxe worker` subprocesses when the config names no
/// addresses.
fn run_net(cfg: &RunConfig, circuit: Circuit, args: &Args) -> Result<(), String> {
    if cfg.fault.is_some() {
        return Err(
            "the net backend does not schedule modeled link faults; drop the \
             `fault` object (real-socket loss is exercised by the fault proxy in \
             the fireaxe-net tests) or pick --backend des|threads"
                .into(),
        );
    }
    let platform = cfg.platform().map_err(|e| e.to_string())?;
    let obs = cfg.obs.clone().unwrap_or_default();
    let spec = cfg.partition_spec().map_err(|e| e.to_string())?;
    let design = compile(&circuit, &spec).map_err(|e| e.to_string())?;
    print_design_report(&design, platform, cfg.clock_mhz)?;
    if args.estimate_only {
        return Ok(());
    }

    let mut net = cfg.net.clone().unwrap_or_default();
    if let Some(w) = &args.workers {
        net.workers = w.clone();
    }
    let mut settings = wire_settings(cfg, platform, &obs)?;
    if let Some(b) = args.batch_cycles {
        settings.batch_cycles = b;
    }

    // Named addresses mean externally launched `fireaxe worker`
    // processes; an empty list self-hosts the cluster on localhost.
    let n = design.partitions.len();
    let (addrs, spawned) = if net.workers.is_empty() {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut spawned = Vec::with_capacity(n);
        for _ in 0..n {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("worker").arg("--listen").arg("127.0.0.1:0");
            spawned.push(
                fireaxe_net::SpawnedWorker::launch(cmd)
                    .map_err(|e| format!("spawning worker: {e}"))?,
            );
        }
        let addrs: Vec<String> = spawned.iter().map(|w| w.addr.clone()).collect();
        println!(
            "spawned {n} local worker process(es) on {}",
            addrs.join(", ")
        );
        (addrs, spawned)
    } else {
        (net.workers.clone(), Vec::new())
    };

    let started = std::time::Instant::now();
    let report = fireaxe_net::run_cluster(
        &circuit,
        &spec,
        args.cycles,
        &addrs,
        &settings,
        net.connect_timeout_ms,
        &net_setup,
    )
    .map_err(|e| e.to_string())?;
    let secs = started.elapsed().as_secs_f64();
    println!(
        "simulated {} target cycles across {} worker process(es) in {:.3} s: {:.0} cycles/s",
        report.metrics.target_cycles,
        addrs.len(),
        secs,
        report.metrics.target_cycles as f64 / secs.max(f64::EPSILON),
    );
    print!("{}", report.metrics);
    for w in spawned {
        if !w.wait().map_err(|e| format!("reaping worker: {e}"))? {
            return Err("a worker process exited with failure after the run".into());
        }
    }

    if !obs.trace_path.is_empty() {
        write_out(&obs.trace_path, &report.chrome_trace)?;
        println!(
            "wrote merged Chrome trace (coordinator + {} worker tracks) to {}",
            addrs.len(),
            obs.trace_path
        );
    }
    if !obs.vcd_path.is_empty() {
        let vcd = report.vcd.as_deref().unwrap_or_default();
        write_out(&obs.vcd_path, vcd)?;
        println!("wrote waveform to {}", obs.vcd_path);
    }
    if !obs.metrics_path.is_empty() {
        let doc = if obs.metrics_path.ends_with(".csv") {
            report.series.to_csv()
        } else {
            report.series.to_json()
        };
        write_out(&obs.metrics_path, &doc)?;
        println!(
            "wrote merged metric series ({} node samples) to {}",
            report
                .series
                .nodes
                .iter()
                .map(|n| n.samples.len())
                .sum::<usize>(),
            obs.metrics_path
        );
    }
    Ok(())
}

fn run(args: Args) -> Result<(), String> {
    let config_text =
        std::fs::read_to_string(&args.config).map_err(|e| format!("{}: {e}", args.config))?;
    let mut cfg = RunConfig::from_json(&config_text).map_err(|e| e.to_string())?;
    if let Some(b) = &args.backend {
        cfg.backend = b.clone();
    }
    if args.force_net {
        if args.backend.as_deref().is_some_and(|b| b != "net") {
            return Err("`fireaxe coordinator` implies --backend net".into());
        }
        cfg.backend = "net".into();
    }
    apply_obs_flags(&mut cfg, &args);

    // The circuit comes from --circuit, else the config's `circuit`
    // field resolved relative to the config file.
    let circuit_path = match &args.circuit {
        Some(p) => p.clone(),
        None if !cfg.circuit.is_empty() => Path::new(&args.config)
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(&cfg.circuit)
            .to_string_lossy()
            .into_owned(),
        None => {
            return Err("missing circuit: pass --circuit or set `circuit` in the config".into())
        }
    };
    let circuit_text =
        std::fs::read_to_string(&circuit_path).map_err(|e| format!("{circuit_path}: {e}"))?;
    let circuit = fireaxe::ir::parser::parse_circuit(&circuit_text).map_err(|e| e.to_string())?;

    // One parser decides the backend for the flag and the config field
    // alike; the multi-process path forks off before the in-process
    // flow is built.
    if matches!(
        cfg.execution_backend().map_err(|e| e.to_string())?,
        Backend::Net
    ) {
        return run_net(&cfg, circuit, &args);
    }

    let platform = cfg.platform().map_err(|e| e.to_string())?;
    let obs = cfg.obs.clone().unwrap_or_default();
    let flow = cfg.to_flow(circuit).map_err(|e| e.to_string())?;

    let design = flow.compile().map_err(|e| e.to_string())?;
    print_design_report(&design, platform, cfg.clock_mhz)?;
    if args.estimate_only {
        return Ok(());
    }

    // Arm the event tracer before the engine is built so build-time and
    // run-time spans both land in the Chrome trace.
    if !obs.trace_path.is_empty() {
        fireaxe::obs::trace::set_enabled(true);
    }

    let (_design, mut sim) = flow.build().map_err(|e| e.to_string())?;
    // `recovering` so configs with `checkpoint_interval` set survive
    // injected link outages by rolling back; without checkpoints it is
    // exactly `run_target_cycles`.
    let metrics = sim
        .run_target_cycles_recovering(args.cycles)
        .map_err(|e| e.to_string())?;
    println!(
        "simulated {} target cycles in {:.3} ms of virtual time: {:.3} MHz",
        metrics.target_cycles,
        metrics.time_ps as f64 / 1e9,
        metrics.target_mhz()
    );
    if sim.rollbacks_taken() > 0 {
        println!(
            "recovered from link faults via {} checkpoint rollback(s)",
            sim.rollbacks_taken()
        );
    }
    print!("{metrics}");

    let report = sim.obs_report();
    if !obs.trace_path.is_empty() {
        fireaxe::obs::trace::set_enabled(false);
        let events = fireaxe::obs::trace::take_events();
        write_out(&obs.trace_path, &fireaxe::obs::to_chrome_json(&events))?;
        println!("wrote {} trace events to {}", events.len(), obs.trace_path);
    }
    if !obs.vcd_path.is_empty() {
        let vcd = report.vcd.as_deref().unwrap_or_default();
        write_out(&obs.vcd_path, vcd)?;
        println!("wrote waveform to {}", obs.vcd_path);
    }
    if !obs.metrics_path.is_empty() {
        let doc = if obs.metrics_path.ends_with(".csv") {
            report.metrics.to_csv()
        } else {
            report.metrics.to_json()
        };
        write_out(&obs.metrics_path, &doc)?;
        println!(
            "wrote metric series ({} node samples) to {}",
            report
                .metrics
                .nodes
                .iter()
                .map(|n| n.samples.len())
                .sum::<usize>(),
            obs.metrics_path
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let outcome = match parse_args() {
        Ok(Cmd::Worker { listen }) => run_worker(&listen),
        Ok(Cmd::Run(args)) => run(*args),
        Err(e) => Err(e),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fireaxe: {e}");
            ExitCode::FAILURE
        }
    }
}
