//! A small self-contained JSON parser/printer.
//!
//! The workspace builds fully offline, so `serde`/`serde_json` are
//! unavailable; run configs are plain JSON and only need a tree parser
//! and a pretty printer, which this module provides. Parsing is strict
//! (no trailing commas, no comments) and errors carry line/column
//! positions.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is not preserved (keys are sorted),
    /// which keeps serialization deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and sorted keys.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{:.1}", n)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.message, self.line, self.column
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            column: col,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or(""));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o["a"].as_array().unwrap().len(), 3);
        assert_eq!(o["a"].as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(o["b"].as_object().unwrap()["c"].as_bool(), Some(true));
        assert_eq!(o["e"].as_str(), Some("x\ny"));
    }

    #[test]
    fn pretty_roundtrip() {
        let text = r#"{"groups": [{"fame5": true, "name": "tiles"}], "clock_mhz": 30.0}"#;
        let v = parse(text).unwrap();
        let back = parse(&v.to_pretty()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn error_positions() {
        let err = parse("{\n  \"a\": oops\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
