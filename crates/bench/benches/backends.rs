//! DES vs threaded backend throughput on the NoC-partitioned ring SoC.
//!
//! The paper's FPGA fleets run partitions concurrently; this bench asks
//! whether the software engine can too. A 6-tile ring SoC is cut along
//! NoC router boundaries into 4 partitions (3 router groups + the rest),
//! then driven for a fixed target-cycle budget on both backends. Both
//! produce bit-identical target state (asserted here before timing), so
//! the comparison is purely host throughput: virtual-time discrete-event
//! scheduling on one core vs free-running OS threads per partition.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fireaxe::prelude::*;
use std::time::Instant;

const CYCLES: u64 = 1_500;

fn noc_4partition_design() -> (Circuit, PartitionSpec) {
    let soc = ring_soc(&RingSocConfig {
        tiles: 6,
        tile_period: 4,
        ..Default::default()
    });
    let groups: Vec<PartitionGroup> = (0..3)
        .map(|g| PartitionGroup {
            name: format!("fpga{g}"),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![2 * g, 2 * g + 1],
            },
            fame5: false,
        })
        .collect();
    (soc.circuit, PartitionSpec::exact(groups))
}

fn build(
    circuit: &Circuit,
    spec: &PartitionSpec,
    backend: Backend,
    reliable: bool,
) -> DistributedSim {
    let mut flow = fireaxe::FireAxe::new(circuit.clone(), spec.clone()).backend(backend);
    if reliable {
        // Protocol armed, fault schedule empty: every frame still gets
        // sequenced, CRC'd, tracked for ACK, and timeout-scanned, so this
        // measures the pure reliability-layer overhead.
        flow = flow
            .fault_spec(FaultSpec::quiet(0))
            .retry_policy(RetryPolicy::default());
    }
    let (design, sim) = flow.build().unwrap();
    assert_eq!(design.partitions.len(), 4, "expected a 4-partition cut");
    sim
}

fn run_once(
    circuit: &Circuit,
    spec: &PartitionSpec,
    backend: Backend,
    reliable: bool,
) -> SimMetrics {
    let mut sim = build(circuit, spec, backend, reliable);
    sim.run_target_cycles(CYCLES).unwrap()
}

fn final_state(circuit: &Circuit, spec: &PartitionSpec, backend: Backend) -> Vec<(usize, u64)> {
    let mut sim = build(circuit, spec, backend, false);
    sim.run_target_cycles(CYCLES).unwrap();
    let mut out = Vec::new();
    for ni in 0..sim.node_names().len() {
        let t = sim.target(ni);
        for (port, _) in t.output_ports() {
            out.push((ni, t.peek(&port).to_u64()));
        }
    }
    out
}

fn backend_throughput(c: &mut Criterion) {
    let (circuit, spec) = noc_4partition_design();

    // Parity gate: timing a wrong answer is meaningless.
    assert_eq!(
        final_state(&circuit, &spec, Backend::Des),
        final_state(&circuit, &spec, Backend::Threads(0)),
        "backends disagree on final target state"
    );

    let mut g = c.benchmark_group("backend");
    g.sample_size(10);
    g.bench_function("des_noc4", |bench| {
        bench.iter(|| black_box(run_once(&circuit, &spec, Backend::Des, false)))
    });
    g.bench_function("threads_noc4", |bench| {
        bench.iter(|| black_box(run_once(&circuit, &spec, Backend::Threads(0), false)))
    });
    // Reliability layer armed but with no faults scheduled: the delta
    // against the plain variants is the pure protocol cost (framing, CRC,
    // sequence/ACK tracking, retransmit-timer scans).
    g.bench_function("des_noc4_reliable", |bench| {
        bench.iter(|| black_box(run_once(&circuit, &spec, Backend::Des, true)))
    });
    g.bench_function("threads_noc4_reliable", |bench| {
        bench.iter(|| black_box(run_once(&circuit, &spec, Backend::Threads(0), true)))
    });
    g.finish();

    // Headline number: target cycles per wall second over the simulation
    // loop only (partition compile + sim build is backend-independent and
    // excluded), best of five runs per backend so a single noisy run on
    // a loaded host doesn't decide the comparison. Per-node FMR makes
    // stalls visible.
    for (name, backend, reliable) in [
        ("des", Backend::Des, false),
        ("threads", Backend::Threads(0), false),
        ("des+rel", Backend::Des, true),
        ("threads+rel", Backend::Threads(0), true),
    ] {
        let mut best_rate = 0.0f64;
        let mut fmr_worst = 0.0f64;
        let mut cycles = 0;
        for _ in 0..5 {
            let mut sim = build(&circuit, &spec, backend, reliable);
            let t = Instant::now();
            let m = sim.run_target_cycles(CYCLES).unwrap();
            let secs = t.elapsed().as_secs_f64();
            best_rate = best_rate.max(m.target_cycles as f64 / secs);
            fmr_worst = m
                .counters
                .iter()
                .map(NodeCounters::fmr)
                .fold(fmr_worst, f64::max);
            cycles = m.target_cycles;
        }
        println!(
            "backend/{name:<12} {best_rate:>12.0} target-cycles/s  (cycles {cycles}, worst FMR {fmr_worst:.1}, best of 5)",
        );
    }
}

criterion_group!(benches, backend_throughput);
criterion_main!(benches);
