//! Criterion benches over FireAxe's hot kernels: Bits arithmetic, the RTL
//! interpreter, LI-BDN host stepping, channel packing, and FireRipper
//! compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use fireaxe::prelude::*;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bits_ops(c: &mut Criterion) {
    let a = Bits::from_u64(0x1234_5678_9ABC_DEF0, 256);
    let b = Bits::from_u64(0x0FED_CBA9_8765_4321, 256);
    c.bench_function("bits/add_256", |bench| {
        bench.iter(|| black_box(a.add(black_box(&b))))
    });
    c.bench_function("bits/mul_256", |bench| {
        bench.iter(|| black_box(a.mul(black_box(&b))))
    });
    c.bench_function("bits/cat_extract", |bench| {
        bench.iter(|| {
            let x = a.cat(&b);
            black_box(x.extract(300, 100))
        })
    });
}

fn interpreter_step(c: &mut Criterion) {
    use fireaxe::ir::ExecEngine;
    let circuit = fireaxe::soc::validation::sha3_soc(8);
    // One entry per execution engine, same workload: the compiled
    // instruction tape (default) vs the tree-walking reference.
    for (name, engine) in [
        ("interp/sha3_soc_cycle", ExecEngine::Compiled),
        ("interp/sha3_soc_cycle_reference", ExecEngine::Reference),
    ] {
        c.bench_function(name, |bench| {
            let mut sim = Interpreter::with_engine(&circuit, engine).unwrap();
            sim.poke("go", Bits::from_u64(1, 1));
            bench.iter(|| {
                sim.step().unwrap();
            })
        });
    }
    c.bench_function("interp/elaborate_sha3_soc", |bench| {
        bench.iter(|| black_box(Interpreter::new(black_box(&circuit)).unwrap()))
    });
    // Settle-loop throughput on the pure-RTL 4-node NoC ring, the
    // all-<=64-bit design the zero-allocation guard runs against.
    let noc = fireaxe::soc::noc::ring_noc_circuit(&fireaxe::soc::noc::NocConfig {
        nodes: 4,
        payload_bits: 32,
    });
    for (name, engine) in [
        ("interp/noc_ring4_cycle", ExecEngine::Compiled),
        ("interp/noc_ring4_cycle_reference", ExecEngine::Reference),
    ] {
        c.bench_function(name, |bench| {
            let mut sim = Interpreter::with_engine(&noc, engine).unwrap();
            sim.poke_u64("node0_tx_valid", 1);
            let mut n = 0u64;
            bench.iter(|| {
                n = n.wrapping_add(0x9E37_79B9);
                sim.poke_u64("node0_tx_bits", n & 0x3FFF_FFFF);
                sim.step().unwrap();
            })
        });
    }
}

fn channel_pack(c: &mut Criterion) {
    use fireaxe::libdn::ChannelSpec;
    let spec = ChannelSpec::new(
        "wide",
        (0..32).map(|i| (format!("p{i}"), Width::new(47))).collect(),
    );
    let mut vals = BTreeMap::new();
    for i in 0..32 {
        vals.insert(format!("p{i}"), Bits::from_u64(i as u64 * 977, 47));
    }
    c.bench_function("channel/pack_1504b", |bench| {
        bench.iter(|| black_box(spec.pack(black_box(&vals))))
    });
    let token = spec.pack(&vals);
    c.bench_function("channel/unpack_1504b", |bench| {
        bench.iter(|| black_box(spec.unpack(black_box(&token))))
    });
}

fn ripper_compile(c: &mut Criterion) {
    let soc = ring_soc(&RingSocConfig {
        tiles: 8,
        ..Default::default()
    });
    let spec = PartitionSpec::exact(vec![PartitionGroup {
        name: "fpga0".into(),
        selection: Selection::NocRouters {
            routers: soc.router_paths.clone(),
            indices: vec![0, 1, 2, 3],
        },
        fame5: false,
    }]);
    let mut g = c.benchmark_group("ripper");
    g.sample_size(10);
    g.bench_function("compile_8tile_ring", |bench| {
        bench.iter(|| black_box(compile(black_box(&soc.circuit), black_box(&spec)).unwrap()))
    });
    g.finish();
}

fn engine_throughput(c: &mut Criterion) {
    let circuit = fireaxe::soc::validation::gemmini_soc(8);
    let spec = PartitionSpec::exact(vec![PartitionGroup::instances("m", vec!["master".into()])]);
    let design = compile(&circuit, &spec).unwrap();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("exact_mode_100_cycles", |bench| {
        bench.iter(|| {
            let mut sim = SimBuilder::new(&design).build().unwrap();
            black_box(sim.run_target_cycles(100).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bits_ops,
    interpreter_step,
    channel_pack,
    ripper_compile,
    engine_throughput
);
criterion_main!(benches);
