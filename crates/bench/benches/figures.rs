//! Reduced-size versions of every paper table/figure, so `cargo bench`
//! exercises the full evaluation path. The `fig*`/`table*` binaries run
//! the full-size versions and print the paper's rows/series.

use criterion::{criterion_group, criterion_main, Criterion};
use fireaxe::prelude::*;
use fireaxe::Platform;
use std::hint::black_box;

fn fig11_12_rate_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig11_qsfp_point", |b| {
        b.iter(|| {
            black_box(fireaxe_bench::rate_point(
                Platform::OnPremQsfp,
                1024,
                30.0,
                PartitionMode::Fast,
                60,
            ))
        })
    });
    g.bench_function("fig12_pcie_point", |b| {
        b.iter(|| {
            black_box(fireaxe_bench::rate_point(
                Platform::CloudF1,
                1024,
                30.0,
                PartitionMode::Exact,
                60,
            ))
        })
    });
    g.finish();
}

fn fig13_fpga_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig13_ring_3fpga", |b| {
        b.iter(|| black_box(fireaxe_bench::fpga_count_sweep(&[3], 30.0, 60)))
    });
    g.finish();
}

fn fig14_fame5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig14_fame5_3tiles", |b| {
        b.iter(|| black_box(fireaxe_bench::fame5_sweep(&[3], &[25.0], 60)))
    });
    g.finish();
}

fn table2_validation(c: &mut Criterion) {
    use fireaxe::validation::{partitioned_cycles_to_done, ValidationTarget};
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2_sha3_exact", |b| {
        b.iter(|| {
            black_box(
                partitioned_cycles_to_done(ValidationTarget::Sha3, PartitionMode::Exact, 8)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn fig07_08_embench(c: &mut Criterion) {
    use fireaxe::workloads::{core_model::CoreParams, embench};
    let gc40 = CoreParams::from(&BoomConfig::gc40());
    c.bench_function("fig07_embench_nettle_aes", |b| {
        let p = embench::profile("nettle-aes");
        b.iter(|| black_box(fireaxe::workloads::run(&gc40, &p)))
    });
}

fn fig09_leaky_dma(c: &mut Criterion) {
    use fireaxe::workloads::leaky_dma::{run_leaky_dma, BusTopology, LeakyDmaConfig};
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig09_leaky_dma_6core", |b| {
        b.iter(|| {
            black_box(run_leaky_dma(&LeakyDmaConfig {
                forwarding_cores: 6,
                topology: BusTopology::Xbar,
                packets_per_core: 60,
                ..Default::default()
            }))
        })
    });
    g.finish();
}

fn fig10_golang_gc(c: &mut Criterion) {
    use fireaxe::workloads::golang_gc::{run_study, Affinity, GcStudyConfig};
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig10_gc_study", |b| {
        let mut cfg = GcStudyConfig::paper(2, Affinity::OneCore);
        cfg.duration_us = 200_000.0;
        b.iter(|| black_box(run_study(&cfg)))
    });
    g.finish();
}

fn fig06_bug_hunt(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig06_ring_soc_2fpga", |b| {
        b.iter(|| {
            let soc = ring_soc(&RingSocConfig {
                tiles: 2,
                tile_period: 4,
                ..Default::default()
            });
            let spec = PartitionSpec::exact(vec![PartitionGroup {
                name: "fpga0".into(),
                selection: Selection::NocRouters {
                    routers: soc.router_paths.clone(),
                    indices: vec![0],
                },
                fame5: false,
            }]);
            let (_d, mut sim) = fireaxe::FireAxe::new(soc.circuit, spec).build().unwrap();
            black_box(sim.run_target_cycles(60).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig11_12_rate_sweeps,
    fig13_fpga_count,
    fig14_fame5,
    table2_validation,
    fig07_08_embench,
    fig09_leaky_dma,
    fig10_golang_gc,
    fig06_bug_hunt
);
criterion_main!(benches);
