//! Socket transports vs in-process threads on the NoC-partitioned ring
//! SoC.
//!
//! The distributed backend pays for real I/O: every cross-partition
//! token is framed, CRC'd, credit-gated, and relayed through the
//! coordinator over an actual socket. This bench prices that against
//! the `Threads` backend's lock-free in-process channels on the same
//! 4-partition cut, for both net transports (localhost TCP and
//! Unix-domain sockets). All variants are gated on identical per-link
//! token totals first — timing a wrong answer is meaningless.
//!
//! Besides the criterion timings, a machine-readable summary with the
//! headline numbers (target-cycles/s, ns per target cycle, and
//! cross-partition tokens/s, best of five) is written to
//! `BENCH_net.json`; EXPERIMENTS.md quotes it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fireaxe::prelude::*;
use fireaxe_net::{run_cluster, serve, NetListener, WireSettings};
use std::time::Instant;

const CYCLES: u64 = 1_500;
const BEST_OF: usize = 5;

fn noc_4partition_design() -> (Circuit, PartitionSpec) {
    let soc = ring_soc(&RingSocConfig {
        tiles: 6,
        tile_period: 4,
        ..Default::default()
    });
    let groups: Vec<PartitionGroup> = (0..3)
        .map(|g| PartitionGroup {
            name: format!("fpga{g}"),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![2 * g, 2 * g + 1],
            },
            fame5: false,
        })
        .collect();
    (soc.circuit, PartitionSpec::exact(groups))
}

fn setup(b: SimBuilder<'_>) -> SimBuilder<'_> {
    let mut registry = BehaviorRegistry::new();
    fireaxe::register_soc_behaviors(&mut registry);
    b.behaviors(registry)
}

fn run_threads(circuit: &Circuit, spec: &PartitionSpec) -> SimMetrics {
    let (_, mut sim) = FireAxe::new(circuit.clone(), spec.clone())
        .backend(Backend::Threads(0))
        .build()
        .unwrap();
    sim.run_target_cycles(CYCLES).unwrap()
}

/// One full cluster run over in-process worker threads (loopback
/// sockets carry every cross-partition token; the workers being
/// threads rather than subprocesses keeps the bench hermetic and
/// excludes process spawn cost, which is bring-up, not transport).
fn run_net(circuit: &Circuit, spec: &PartitionSpec, unix: bool, tag: usize) -> SimMetrics {
    let mut bound = Vec::new();
    let mut handles = Vec::new();
    for i in 0..4 {
        let addr = if unix {
            format!(
                "unix:{}/fxbench-{}-{tag}-{i}.sock",
                std::env::temp_dir().display(),
                std::process::id()
            )
        } else {
            "127.0.0.1:0".to_string()
        };
        let listener = NetListener::bind(&addr).expect("worker bind");
        bound.push(listener.local_addr_string());
        handles.push(std::thread::spawn(move || serve(&listener, &setup)));
    }
    let report = run_cluster(
        circuit,
        spec,
        CYCLES,
        &bound,
        &WireSettings::default(),
        10_000,
        &setup,
    )
    .expect("cluster run");
    for h in handles {
        h.join().expect("worker thread").expect("worker exit");
    }
    report.metrics
}

/// Best-of-N timing of one variant: (cycles/s, ns/cycle, tokens/s).
fn measure(mut run: impl FnMut() -> SimMetrics) -> (f64, f64, f64) {
    let mut best_secs = f64::INFINITY;
    let mut tokens = 0u64;
    for _ in 0..BEST_OF {
        let t = Instant::now();
        let m = run();
        best_secs = best_secs.min(t.elapsed().as_secs_f64());
        tokens = m.link_tokens.iter().sum();
    }
    (
        CYCLES as f64 / best_secs,
        best_secs * 1e9 / CYCLES as f64,
        tokens as f64 / best_secs,
    )
}

fn transport_throughput(c: &mut Criterion) {
    let (circuit, spec) = noc_4partition_design();

    // Parity gate: all three paths must move the exact same per-link
    // token totals before any of them is timed.
    let threads_tokens = run_threads(&circuit, &spec).link_tokens;
    assert_eq!(
        threads_tokens,
        run_net(&circuit, &spec, false, 0).link_tokens,
        "TCP cluster disagrees with Threads on link tokens"
    );
    assert_eq!(
        threads_tokens,
        run_net(&circuit, &spec, true, 1).link_tokens,
        "Unix cluster disagrees with Threads on link tokens"
    );

    let mut g = c.benchmark_group("transport");
    g.sample_size(10);
    g.bench_function("threads_noc4", |bench| {
        bench.iter(|| black_box(run_threads(&circuit, &spec)))
    });
    g.bench_function("net_tcp_noc4", |bench| {
        bench.iter(|| black_box(run_net(&circuit, &spec, false, 2)))
    });
    g.bench_function("net_unix_noc4", |bench| {
        bench.iter(|| black_box(run_net(&circuit, &spec, true, 3)))
    });
    g.finish();

    // Headline numbers, best of five, and the machine-readable summary.
    let mut doc = String::from("{\n");
    doc.push_str(&format!(
        "  \"bench\": \"transports\",\n  \"cycles\": {CYCLES},\n"
    ));
    type Variant<'a> = (&'a str, Box<dyn FnMut() -> SimMetrics + 'a>);
    let variants: [Variant<'_>; 3] = [
        ("threads", Box::new(|| run_threads(&circuit, &spec))),
        ("net_tcp", Box::new(|| run_net(&circuit, &spec, false, 4))),
        ("net_unix", Box::new(|| run_net(&circuit, &spec, true, 5))),
    ];
    for (i, (name, run)) in variants.into_iter().enumerate() {
        let (rate, ns_per_cycle, tokens_per_sec) = measure(run);
        println!(
            "transport/{name:<10} {rate:>12.0} target-cycles/s  \
             {ns_per_cycle:>10.0} ns/cycle  {tokens_per_sec:>12.0} tokens/s  (best of {BEST_OF})"
        );
        doc.push_str(&format!(
            "  \"{name}\": {{ \"cycles_per_sec\": {rate:.0}, \"ns_per_cycle\": {ns_per_cycle:.0}, \
             \"tokens_per_sec\": {tokens_per_sec:.0} }}{}\n",
            if i < 2 { "," } else { "" }
        ));
    }
    doc.push_str("}\n");
    // cargo runs benches with the package dir as cwd; anchor the output
    // at the workspace root next to the other BENCH_*.json files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(out, &doc).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}

criterion_group!(benches, transport_throughput);
criterion_main!(benches);
