//! Socket transports vs in-process threads on the NoC-partitioned ring
//! SoC.
//!
//! The distributed backend pays for real I/O: every cross-partition
//! token is framed, CRC'd, credit-gated, and relayed through the
//! coordinator over an actual socket. This bench prices that against
//! the `Threads` backend's lock-free in-process channels on the same
//! 4-partition cut, for both net transports (localhost TCP and
//! Unix-domain sockets). All variants are gated on identical per-link
//! token totals first — timing a wrong answer is meaningless.
//!
//! The net variants sweep the `batch_cycles` knob over {1, 8, 64}:
//! 1 is the pre-batching wire shape (one `Token` message per token),
//! 8 is the default, 64 packs a full credit window per message. Each
//! swept point gets its own row in the summary, and the headline
//! `net_tcp`/`net_unix` entries quote the best batch size — that is
//! the number the roadmap's "within 3× of threads" target is scored
//! against.
//!
//! Besides the criterion timings, a machine-readable summary with the
//! headline numbers (target-cycles/s, ns per target cycle, and
//! cross-partition tokens/s, best of five) is written to
//! `BENCH_net.json`; EXPERIMENTS.md quotes it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fireaxe::prelude::*;
use fireaxe_net::{run_cluster, serve, NetListener, WireSettings};
use std::time::Instant;

// Long enough that cluster bring-up (circuit compile + handshake per
// worker, ~50 ms — a constant, not a per-cycle cost) stays well under
// 10% of the timed window; the headline number is meant to reflect
// steady-state wire throughput, the quantity a long simulation sees.
const CYCLES: u64 = 6_000;
const BEST_OF: usize = 5;
const BATCHES: [u64; 3] = [1, 8, 64];

fn noc_4partition_design() -> (Circuit, PartitionSpec) {
    let soc = ring_soc(&RingSocConfig {
        tiles: 6,
        tile_period: 4,
        ..Default::default()
    });
    let groups: Vec<PartitionGroup> = (0..3)
        .map(|g| PartitionGroup {
            name: format!("fpga{g}"),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![2 * g, 2 * g + 1],
            },
            fame5: false,
        })
        .collect();
    (soc.circuit, PartitionSpec::exact(groups))
}

fn setup(b: SimBuilder<'_>) -> SimBuilder<'_> {
    let mut registry = BehaviorRegistry::new();
    fireaxe::register_soc_behaviors(&mut registry);
    b.behaviors(registry)
}

fn run_threads(circuit: &Circuit, spec: &PartitionSpec) -> SimMetrics {
    let (_, mut sim) = FireAxe::new(circuit.clone(), spec.clone())
        .backend(Backend::Threads(0))
        .build()
        .unwrap();
    sim.run_target_cycles(CYCLES).unwrap()
}

/// One full cluster run over in-process worker threads (loopback
/// sockets carry every cross-partition token; the workers being
/// threads rather than subprocesses keeps the bench hermetic and
/// excludes process spawn cost, which is bring-up, not transport).
fn run_net(
    circuit: &Circuit,
    spec: &PartitionSpec,
    unix: bool,
    tag: usize,
    batch_cycles: u64,
) -> SimMetrics {
    let mut bound = Vec::new();
    let mut handles = Vec::new();
    for i in 0..4 {
        let addr = if unix {
            format!(
                "unix:{}/fxbench-{}-{tag}-{i}.sock",
                std::env::temp_dir().display(),
                std::process::id()
            )
        } else {
            "127.0.0.1:0".to_string()
        };
        let listener = NetListener::bind(&addr).expect("worker bind");
        bound.push(listener.local_addr_string());
        handles.push(std::thread::spawn(move || serve(&listener, &setup)));
    }
    let settings = WireSettings {
        batch_cycles,
        ..WireSettings::default()
    };
    let report =
        run_cluster(circuit, spec, CYCLES, &bound, &settings, 10_000, &setup).expect("cluster run");
    for h in handles {
        h.join().expect("worker thread").expect("worker exit");
    }
    report.metrics
}

/// Best-of-N timing of one variant: (cycles/s, ns/cycle, tokens/s).
fn measure(mut run: impl FnMut() -> SimMetrics) -> (f64, f64, f64) {
    let mut best_secs = f64::INFINITY;
    let mut tokens = 0u64;
    for _ in 0..BEST_OF {
        let t = Instant::now();
        let m = run();
        best_secs = best_secs.min(t.elapsed().as_secs_f64());
        tokens = m.link_tokens.iter().sum();
    }
    (
        CYCLES as f64 / best_secs,
        best_secs * 1e9 / CYCLES as f64,
        tokens as f64 / best_secs,
    )
}

fn transport_throughput(c: &mut Criterion) {
    let (circuit, spec) = noc_4partition_design();

    // Parity gate: every timed path must move the exact same per-link
    // token totals before any of them is timed — including each swept
    // batch size, since batching reshapes the wire but must not reshape
    // the traffic.
    let threads_tokens = run_threads(&circuit, &spec).link_tokens;
    for (bi, &batch) in BATCHES.iter().enumerate() {
        assert_eq!(
            threads_tokens,
            run_net(&circuit, &spec, false, 2 * bi, batch).link_tokens,
            "TCP cluster (batch {batch}) disagrees with Threads on link tokens"
        );
        assert_eq!(
            threads_tokens,
            run_net(&circuit, &spec, true, 2 * bi + 1, batch).link_tokens,
            "Unix cluster (batch {batch}) disagrees with Threads on link tokens"
        );
    }

    let mut g = c.benchmark_group("transport");
    g.sample_size(10);
    g.bench_function("threads_noc4", |bench| {
        bench.iter(|| black_box(run_threads(&circuit, &spec)))
    });
    for (bi, &batch) in BATCHES.iter().enumerate() {
        g.bench_function(&format!("net_tcp_noc4_batch{batch}"), |bench| {
            bench.iter(|| black_box(run_net(&circuit, &spec, false, 10 + 2 * bi, batch)))
        });
        g.bench_function(&format!("net_unix_noc4_batch{batch}"), |bench| {
            bench.iter(|| black_box(run_net(&circuit, &spec, true, 11 + 2 * bi, batch)))
        });
    }
    g.finish();

    // Headline numbers, best of five, and the machine-readable summary:
    // one row per swept point, then `net_tcp`/`net_unix` quoting the
    // best batch for each transport.
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    let mut best: [Option<(u64, f64, f64, f64)>; 2] = [None, None];
    {
        let (rate, ns, tps) = measure(|| run_threads(&circuit, &spec));
        rows.push(("threads".to_string(), rate, ns, tps));
    }
    for &batch in &BATCHES {
        for (ti, &unix) in [false, true].iter().enumerate() {
            let transport = if unix { "unix" } else { "tcp" };
            let tag = 20 + 2 * batch as usize + ti;
            let (rate, ns, tps) = measure(|| run_net(&circuit, &spec, unix, tag, batch));
            rows.push((format!("net_{transport}_batch{batch}"), rate, ns, tps));
            if best[ti].is_none_or(|(_, r, _, _)| rate > r) {
                best[ti] = Some((batch, rate, ns, tps));
            }
        }
    }
    for (ti, transport) in ["tcp", "unix"].into_iter().enumerate() {
        let (batch, rate, ns, tps) = best[ti].expect("swept at least one batch size");
        rows.push((format!("net_{transport}"), rate, ns, tps));
        println!("transport/net_{transport}: best batch_cycles = {batch}");
    }

    let mut doc = String::from("{\n");
    doc.push_str(&format!(
        "  \"bench\": \"transports\",\n  \"cycles\": {CYCLES},\n"
    ));
    doc.push_str(&format!(
        "  \"best_batch_cycles\": {{ \"net_tcp\": {}, \"net_unix\": {} }},\n",
        best[0].unwrap().0,
        best[1].unwrap().0
    ));
    let n_rows = rows.len();
    for (i, (name, rate, ns_per_cycle, tokens_per_sec)) in rows.into_iter().enumerate() {
        println!(
            "transport/{name:<18} {rate:>12.0} target-cycles/s  \
             {ns_per_cycle:>10.0} ns/cycle  {tokens_per_sec:>12.0} tokens/s  (best of {BEST_OF})"
        );
        doc.push_str(&format!(
            "  \"{name}\": {{ \"cycles_per_sec\": {rate:.0}, \"ns_per_cycle\": {ns_per_cycle:.0}, \
             \"tokens_per_sec\": {tokens_per_sec:.0} }}{}\n",
            if i + 1 < n_rows { "," } else { "" }
        ));
    }
    doc.push_str("}\n");
    // cargo runs benches with the package dir as cwd; anchor the output
    // at the workspace root next to the other BENCH_*.json files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(out, &doc).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}

criterion_group!(benches, transport_throughput);
criterion_main!(benches);
