//! # fireaxe-bench — the paper's evaluation, regenerated
//!
//! One function per table/figure of the FireAxe paper, shared between the
//! `fig*`/`table*` binaries (full-size runs printing the same rows and
//! series the paper reports) and the Criterion benches (reduced sizes, so
//! `cargo bench` exercises every experiment).

#![warn(missing_docs)]

use fireaxe::prelude::*;
use fireaxe::Platform;

/// One measured point of a rate sweep (Figs. 11/12).
#[derive(Debug, Clone, PartialEq)]
pub struct RatePoint {
    /// Partition interface width in bits.
    pub width_bits: u64,
    /// Bitstream (host) frequency in MHz.
    pub host_mhz: f64,
    /// Partitioning mode.
    pub mode: PartitionMode,
    /// Measured simulation rate in MHz.
    pub measured_mhz: f64,
}

fn sweep_soc(trace_bits: u32) -> RingSoc {
    xbar_soc(&XbarSocConfig {
        tiles: 1,
        trace_bits,
        tile_period: 4,
        ..Default::default()
    })
}

/// Runs one point of the interface-width/bitstream-frequency/mode sweep
/// over the given platform (Fig. 11 = QSFP, Fig. 12 = p2p PCIe).
pub fn rate_point(
    platform: Platform,
    trace_bits: u32,
    host_mhz: f64,
    mode: PartitionMode,
    cycles: u64,
) -> RatePoint {
    let soc = sweep_soc(trace_bits);
    let spec = PartitionSpec {
        mode,
        channel_policy: ChannelPolicy::Separated,
        groups: vec![PartitionGroup::instances("tiles", vec!["tile0".into()])],
    };
    let (design, mut sim) = fireaxe::FireAxe::new(soc.circuit, spec)
        .platform(platform)
        .clock_mhz(host_mhz)
        .build()
        .expect("sweep SoC compiles");
    let width = design.report.total_boundary_width();
    let measured = sim
        .run_target_cycles(cycles)
        .expect("sweep runs")
        .target_mhz();
    RatePoint {
        width_bits: width,
        host_mhz,
        mode,
        measured_mhz: measured,
    }
}

/// Full sweep grid (Figs. 11/12).
pub fn rate_sweep(
    platform: Platform,
    trace_widths: &[u32],
    freqs_mhz: &[f64],
    cycles: u64,
) -> Vec<RatePoint> {
    let mut out = Vec::new();
    for &mode in &[PartitionMode::Exact, PartitionMode::Fast] {
        for &f in freqs_mhz {
            for &w in trace_widths {
                out.push(rate_point(platform, w, f, mode, cycles));
            }
        }
    }
    out
}

/// Fig. 13: simulation rate vs number of FPGAs in the (NoC-partitioned)
/// ring, at a fixed bitstream frequency.
pub fn fpga_count_sweep(fpga_counts: &[usize], host_mhz: f64, cycles: u64) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &fpgas in fpga_counts {
        let tiles = (fpgas - 1) * 2;
        let soc = ring_soc(&RingSocConfig {
            tiles,
            tile_period: 4,
            ..Default::default()
        });
        let groups: Vec<PartitionGroup> = (0..fpgas - 1)
            .map(|g| PartitionGroup {
                name: format!("fpga{g}"),
                selection: Selection::NocRouters {
                    routers: soc.router_paths.clone(),
                    indices: vec![2 * g, 2 * g + 1],
                },
                fame5: false,
            })
            .collect();
        let (_d, mut sim) = fireaxe::FireAxe::new(soc.circuit, PartitionSpec::exact(groups))
            .platform(Platform::OnPremQsfp)
            .clock_mhz(host_mhz)
            .build()
            .expect("ring compiles");
        let mhz = sim
            .run_target_cycles(cycles)
            .expect("ring runs")
            .target_mhz();
        out.push((fpgas, mhz));
    }
    out
}

/// Fig. 14: FAME-5 multi-threading sweep — N tiles multi-threaded on one
/// FPGA at 15 MHz, SoC side swept over `soc_mhz`.
pub fn fame5_sweep(tile_counts: &[usize], soc_mhz: &[f64], cycles: u64) -> Vec<(usize, f64, f64)> {
    let mut out = Vec::new();
    for &n in tile_counts {
        for &f in soc_mhz {
            let soc = xbar_soc(&XbarSocConfig {
                tiles: n,
                tile_period: 4,
                ..Default::default()
            });
            let paths: Vec<String> = (0..n).map(|i| format!("tile{i}")).collect();
            let spec =
                PartitionSpec::fast(vec![PartitionGroup::instances("tiles", paths).with_fame5()]);
            let (_d, mut sim) = fireaxe::FireAxe::new(soc.circuit, spec)
                .platform(Platform::OnPremQsfp)
                .partition_clock_mhz(0, 15.0)
                .partition_clock_mhz(1, f)
                .build()
                .expect("fame5 soc compiles");
            let mhz = sim
                .run_target_cycles(cycles)
                .expect("fame5 runs")
                .target_mhz();
            out.push((n, f, mhz));
        }
    }
    out
}

/// Table II rows. The scratchpad latency (16 cycles, an L2-like figure)
/// sets how much of each workload is memory-bound and therefore how
/// sensitive it is to fast-mode's injected boundary latency.
pub fn table2_rows(rocket_iterations: u32) -> Vec<fireaxe::validation::ValidationRow> {
    use fireaxe::validation::{validation_row, ValidationTarget};
    const MEM_LATENCY: u32 = 16;
    vec![
        validation_row(
            ValidationTarget::Rocket {
                iterations: rocket_iterations,
            },
            MEM_LATENCY,
        )
        .expect("rocket validates"),
        validation_row(ValidationTarget::Sha3, MEM_LATENCY).expect("sha3 validates"),
        validation_row(ValidationTarget::Gemmini, MEM_LATENCY).expect("gemmini validates"),
    ]
}

/// Directory where figure binaries drop CSV series (the artifact's
/// `generated-plots` analog): `$FIREAXE_RESULTS_DIR` or `results/`.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("FIREAXE_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Writes a CSV file into [`results_dir`]; failures are reported but not
/// fatal (figure binaries still print their series).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    let path = dir.join(name);
    let mut text = header.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, text)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(series written to {})", path.display());
    }
}

/// CSV rows for a rate sweep.
pub fn rate_sweep_rows(points: &[RatePoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                match p.mode {
                    PartitionMode::Exact => "exact".to_string(),
                    PartitionMode::Fast => "fast".to_string(),
                },
                format!("{}", p.host_mhz),
                format!("{}", p.width_bits),
                format!("{:.6}", p.measured_mhz),
            ]
        })
        .collect()
}

/// Pretty-prints a rate sweep as the Fig. 11/12 series.
pub fn print_rate_sweep(title: &str, points: &[RatePoint]) {
    println!("== {title} ==\n");
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "mode", "host MHz", "width bits", "rate MHz"
    );
    for p in points {
        println!(
            "{:>10} {:>10.0} {:>12} {:>12.3}",
            match p.mode {
                PartitionMode::Exact => "exact",
                PartitionMode::Fast => "fast",
            },
            p.host_mhz,
            p.width_bits,
            p.measured_mhz
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_point_runs() {
        let p = rate_point(Platform::OnPremQsfp, 0, 30.0, PartitionMode::Fast, 60);
        assert!(p.measured_mhz > 0.1);
    }

    #[test]
    fn fame5_sweep_smoke() {
        let rows = fame5_sweep(&[1, 2], &[20.0], 40);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, _, mhz)| *mhz > 0.0));
    }
}
