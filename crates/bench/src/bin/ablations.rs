//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Separated vs. monolithic channels** (paper Fig. 2): on a
//!    register-decoupled boundary both policies work — monolithic merely
//!    merges channels; on a combinationally coupled boundary, monolithic
//!    channels deadlock while separated channels run.
//! 2. **Shell-passthrough resolution**: NoC-partition-mode extraction
//!    without the collapsing pass routes intra-partition wiring through
//!    the remainder, inflating the boundary; with it, the cut shrinks to
//!    the true ring/tile interfaces.
//! 3. **Exact vs. fast crossings**: the measured per-cycle link crossings
//!    for both modes, confirming the 2-vs-1 schedule.

use fireaxe::prelude::*;
use fireaxe::Platform;

fn fig2_style_soc(comb_boundary: bool) -> Circuit {
    let mut tile = ModuleBuilder::new("Tile");
    let req = tile.input("req", 16);
    let rsp = tile.output("rsp", 16);
    let acc = tile.reg("acc", 16, 0);
    tile.connect_sig(&acc, &acc.add(&req));
    if comb_boundary {
        tile.connect_sig(&rsp, &acc.add(&req)); // adder across the cut
    } else {
        tile.connect_sig(&rsp, &acc);
    }
    let mut top = ModuleBuilder::new("Soc");
    let i = top.input("i", 16);
    let o = top.output("o", 16);
    top.inst("t", "Tile");
    let hub = top.reg("hub", 16, 1);
    top.connect_inst("t", "req", &hub);
    let rsp = top.inst_port("t", "rsp");
    top.connect_sig(&hub, &rsp.xor(&i));
    top.connect_sig(&o, &hub);
    Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc")
}

/// The paper's exact Fig. 2 topology: adders fed by the peer's registers
/// on *both* sides of the cut — the configuration whose circular token
/// dependency deadlocks monolithic channels.
fn fig2_symmetric_soc() -> Circuit {
    let mut tile = ModuleBuilder::new("Fig2Side");
    let sink_in = tile.input("sink_in", 16);
    let src_in = tile.input("src_in", 16);
    let sink_out = tile.output("sink_out", 16);
    let src_out = tile.output("src_out", 16);
    let x = tile.reg("x", 16, 1);
    tile.connect_sig(&sink_out, &x.add(&sink_in)); // adder P
    tile.connect_sig(&src_out, &x);
    tile.connect_sig(&x, &src_in);
    let mut top = ModuleBuilder::new("Soc");
    let i = top.input("i", 16);
    let o = top.output("o", 16);
    top.inst("t", "Fig2Side");
    let y = top.reg("y", 16, 2);
    top.connect_inst("t", "sink_in", &y);
    let t_src = top.inst_port("t", "src_out");
    top.connect_inst("t", "src_in", &y.add(&t_src)); // adder Q
    let t_snk = top.inst_port("t", "sink_out");
    top.connect_sig(&y, &t_snk.xor(&i));
    top.connect_sig(&o, &y);
    Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc")
}

fn channel_policy_ablation() {
    println!("-- ablation 1: separated vs monolithic channels (Fig. 2) --\n");
    for (boundary, label) in [(false, "register boundary"), (true, "adders on both sides")] {
        for policy in [ChannelPolicy::Separated, ChannelPolicy::Monolithic] {
            let spec = PartitionSpec {
                mode: PartitionMode::Exact,
                channel_policy: policy,
                groups: vec![PartitionGroup::instances("t", vec!["t".into()])],
            };
            let circuit = if boundary {
                fig2_symmetric_soc()
            } else {
                fig2_style_soc(false)
            };
            let (_d, mut sim) = fireaxe::FireAxe::new(circuit, spec)
                .build()
                .expect("compiles");
            // Cap the deadlock horizon so the hang is detected quickly.
            let outcome = {
                let mut result = None;
                for _ in 0..200_000 {
                    if sim.target_cycles() >= 200 {
                        result = Some(sim.metrics().target_mhz());
                        break;
                    }
                    if sim.step_one_edge().is_err() {
                        break;
                    }
                }
                result
            };
            match outcome {
                Some(mhz) => println!("  {label:<26} {policy:?}: runs at {mhz:.3} MHz"),
                None => println!("  {label:<26} {policy:?}: DEADLOCK (as the paper predicts)"),
            }
        }
    }
    println!();
}

fn passthrough_ablation() {
    println!("-- ablation 2: shell-passthrough resolution --\n");
    let soc = ring_soc(&RingSocConfig {
        tiles: 4,
        tile_period: 4,
        ..Default::default()
    });
    let spec = PartitionSpec::exact(vec![PartitionGroup {
        name: "fpga0".into(),
        selection: Selection::NocRouters {
            routers: soc.router_paths.clone(),
            indices: vec![0, 1],
        },
        fame5: false,
    }]);
    for (resolve, label) in [(true, "with resolution"), (false, "without resolution")] {
        let options = fireaxe::ripper::CompileOptions {
            resolve_passthroughs: resolve,
        };
        match fireaxe::ripper::compile_with_options(&soc.circuit, &spec, options) {
            Ok(d) => println!(
                "  {label:<22} boundary {:>6} bits over {:>2} links",
                d.report.total_boundary_width(),
                d.links.len()
            ),
            Err(e) => println!("  {label:<22} compilation fails: {e}"),
        }
    }
    println!();
}

fn crossings_ablation() {
    println!("-- ablation 3: exact vs fast scheduling on a comb boundary --\n");
    let mut rates = Vec::new();
    for mode in [PartitionMode::Exact, PartitionMode::Fast] {
        let spec = PartitionSpec {
            mode,
            channel_policy: ChannelPolicy::Separated,
            groups: vec![PartitionGroup::instances("t", vec!["t".into()])],
        };
        let (_d, mut sim) = fireaxe::FireAxe::new(fig2_style_soc(true), spec)
            .platform(Platform::OnPremQsfp)
            .build()
            .expect("compiles");
        let m = sim.run_target_cycles(800).expect("runs");
        let tokens: u64 = m.link_tokens.iter().sum();
        println!(
            "  {mode}: {:.3} MHz, {:.2} tokens/cycle (same traffic, different serialization)",
            m.target_mhz(),
            tokens as f64 / m.target_cycles as f64
        );
        rates.push(m.target_mhz());
    }
    println!(
        "  fast/exact speedup: {:.2}x (the paper's ~2x: exact serializes its two\n\
         \u{20}\u{20}crossings, fast overlaps them via seed tokens)\n",
        rates[1] / rates[0]
    );
}

fn main() {
    println!("== Ablation studies ==\n");
    channel_policy_ablation();
    passthrough_ablation();
    crossings_ablation();
}
