//! Fig. 9: the leaky-DMA effect — NIC request→response latencies vs
//! forwarding-core count, crossbar vs ring.

use fireaxe::workloads::leaky_dma::{fig9_sweep, BusTopology};

fn main() {
    println!("== Fig. 9: leaky-DMA (DDIO) study ==\n");
    println!(
        "{:>5} {:>6}  {:>12} {:>12} {:>10}",
        "cores", "bus", "Rd Lat (cyc)", "Wr Lat (cyc)", "TX hit %"
    );
    for (cores, topo, r) in fig9_sweep(12) {
        let bus = match topo {
            BusTopology::Xbar => "XBar",
            BusTopology::Ring => "Ring",
        };
        println!(
            "{cores:>5} {bus:>6}  {:>12.1} {:>12.1} {:>9.1}%",
            r.nic_read_avg,
            r.nic_write_avg,
            r.tx_read_hit_rate * 100.0
        );
    }
    println!("\npaper shape: read/write latencies grow with core count (cache and bus");
    println!("contention); XBar write latency overtakes Ring beyond ~6 cores.");
}
