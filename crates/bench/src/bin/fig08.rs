//! Fig. 8: TIP-style CPI stacks for Large BOOM and GC40 BOOM on the
//! selected Embench benchmarks.

use fireaxe::prelude::BoomConfig;
use fireaxe::workloads::{core_model::CoreParams, embench};

fn main() {
    println!("== Fig. 8: CPI stacks (fraction of commit slots) ==\n");
    let configs = [
        ("Large", CoreParams::from(&BoomConfig::large())),
        ("GC40", CoreParams::from(&BoomConfig::gc40())),
    ];
    println!(
        "{:<18}{:<7}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "benchmark", "core", "commit", "frontend", "badspec", "hazard", "memory"
    );
    for b in embench::CPI_STACK_BENCHMARKS {
        let p = embench::profile(b);
        for (name, params) in &configs {
            let r = fireaxe::workloads::run(params, &p);
            let n = r.stack.normalized();
            println!(
                "{:<18}{:<7}{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%",
                b,
                name,
                n.committing * 100.0,
                n.frontend * 100.0,
                n.bad_speculation * 100.0,
                n.exec_hazard * 100.0,
                n.memory * 100.0
            );
        }
    }
    println!("\npaper shape: nettle-aes spends most cycles committing; nbody stalls");
    println!("on pipeline (execution) hazards, so extra width barely helps it.");
}
