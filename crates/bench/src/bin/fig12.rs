//! Fig. 12: peer-to-peer PCIe performance sweep (AWS EC2 F1).

use fireaxe::Platform;

fn main() {
    let widths = [0u32, 512, 1024, 2048, 4096, 8192];
    let freqs = [10.0, 30.0, 90.0];
    let pts = fireaxe_bench::rate_sweep(Platform::CloudF1, &widths, &freqs, 500);
    fireaxe_bench::print_rate_sweep("Fig. 12: peer-to-peer PCIe sweep", &pts);
    fireaxe_bench::write_csv(
        "fig12-pcie-sweep.csv",
        &["mode", "host_mhz", "width_bits", "rate_mhz"],
        &fireaxe_bench::rate_sweep_rows(&pts),
    );
    println!("\npaper shape: same trends as Fig. 11 but ~1.5x slower overall due to the");
    println!("higher inter-FPGA latency. Peak ~1.0 MHz.");
}
