//! Fig. 10: Golang GC tail latency vs GOMAXPROCS and CPU affinity.

use fireaxe::workloads::golang_gc::{fig10_sweep, Affinity};

fn main() {
    println!("== Fig. 10: Go GC tail latency ==\n");
    println!(
        "{:>11} {:>10}  {:>12} {:>12}",
        "GOMAXPROCS", "affinity", "p95 (us)", "p99 (us)"
    );
    for (g, aff, r) in fig10_sweep() {
        let a = match aff {
            Affinity::OneCore => "1 core",
            Affinity::Spread => "spread",
        };
        println!("{g:>11} {a:>10}  {:>12.0} {:>12.0}", r.p95_us, r.p99_us);
    }
    println!("\npaper shape: GOMAXPROCS=1 has a very high p99 (GC serializes with the");
    println!("main goroutine); pinning to one core beats spreading across cores.");
}
