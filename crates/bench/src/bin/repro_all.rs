//! Runs every table/figure generator in sequence (the `run-ae-full.sh`
//! analog of the paper's artifact).

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "transports",
        "gc40",
        "ablations",
    ];
    for b in bins {
        println!("\n########## {b} ##########\n");
        let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(b))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {b}: {e}"));
        assert!(status.success(), "{b} failed");
    }
    println!("\nrepro-all complete!");
}
