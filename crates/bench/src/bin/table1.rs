//! Table I: microarchitectural parameters of Large BOOM, GC40 BOOM, and
//! the Golden Cove Xeon, plus the synthesis-area comparison from §V-B.

use fireaxe::prelude::BoomConfig;

fn main() {
    let configs = [
        BoomConfig::large(),
        BoomConfig::gc40(),
        BoomConfig::golden_cove_xeon(),
    ];
    println!("== Table I: BOOM / Xeon microarchitectural parameters ==\n");
    println!(
        "{:<22}{:>12}{:>12}{:>12}",
        "", configs[0].name, configs[1].name, configs[2].name
    );
    type Row = (&'static str, fn(&BoomConfig) -> String);
    let rows: [Row; 9] = [
        ("Issue width", |c| c.issue_width.to_string()),
        ("ROB entries", |c| c.rob_entries.to_string()),
        ("I-Phys Regs", |c| c.int_phys_regs.to_string()),
        ("F-Phys Regs", |c| c.fp_phys_regs.to_string()),
        ("Ld queue entries", |c| c.ldq_entries.to_string()),
        ("St queue entries", |c| c.stq_entries.to_string()),
        ("Fetch buffer entries", |c| c.fetch_buf_entries.to_string()),
        ("L1-I", |c| format!("{} kB", c.l1i_kb)),
        ("L1-D", |c| format!("{} kB", c.l1d_kb)),
    ];
    for (name, f) in rows {
        println!(
            "{:<22}{:>12}{:>12}{:>12}",
            name,
            f(&configs[0]),
            f(&configs[1]),
            f(&configs[2])
        );
    }
    println!("\nArea (core + L1, mm^2):");
    for c in &configs {
        println!(
            "  {:<12} measured {:>5.2}  structural estimate {:>5.2}",
            c.name,
            c.area_mm2(),
            c.estimated_area_mm2()
        );
    }
    println!("\npaper: 0.79 / 1.56 / 9.13 mm^2 — the Xeon's gap over its structural");
    println!("estimate is the \"room for microarchitectural innovation\" headroom.");
}
