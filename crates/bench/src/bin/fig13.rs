//! Fig. 13: simulation rate vs the number of FPGAs in the ring.

fn main() {
    println!("== Fig. 13: FPGA-count sweep (NoC-partition-mode ring) ==\n");
    println!("{:>6} {:>12}", "FPGAs", "rate MHz");
    let rows = fireaxe_bench::fpga_count_sweep(&[2, 3, 4, 5], 30.0, 400);
    for (fpgas, mhz) in &rows {
        println!("{fpgas:>6} {mhz:>12.3}");
    }
    fireaxe_bench::write_csv(
        "fig13-fpga-count.csv",
        &["fpgas", "rate_mhz"],
        &rows
            .iter()
            .map(|(f, m)| vec![f.to_string(), format!("{m:.6}")])
            .collect::<Vec<_>>(),
    );
    println!("\npaper shape: rate degrades as FPGAs join the ring (token-exchange");
    println!("timing overheads accumulate), even though each FPGA only talks to");
    println!("its neighbors.");
}
