//! Fig. 6: the 24-core SoC partitioned across 5 FPGAs with
//! NoC-partition-mode, and the §V-A RTL bug hunt.

use fireaxe::prelude::*;
use fireaxe::Platform;

fn main() {
    println!("== Fig. 6: 24-core ring SoC on 5 FPGAs ==\n");
    let tiles = 24;
    let fpgas = 5;
    let soc = ring_soc(&RingSocConfig {
        tiles,
        tile_period: 4,
        subsystem_latency: 8,
        heavy_workload: true,
        bug_after: 150,
        ..Default::default()
    });
    let per = tiles / (fpgas - 1);
    let groups: Vec<PartitionGroup> = (0..fpgas - 1)
        .map(|g| PartitionGroup {
            name: format!("fpga{g}"),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: (g * per..(g + 1) * per).collect(),
            },
            fame5: false,
        })
        .collect();
    let (design, mut sim) = fireaxe::FireAxe::new(soc.circuit, PartitionSpec::exact(groups))
        .platform(Platform::OnPremQsfp)
        .build()
        .expect("24-core SoC compiles");
    println!("partitions (paper: tiles are FAME-5 multi-threaded to fit a U250):");
    let u250 = FpgaSpec::alveo_u250();
    for p in &design.partitions {
        for t in &p.threads {
            let est = estimate(&t.circuit);
            if p.name == "rest" {
                println!(
                    "  {:8} {:>6} kLUT ({})",
                    t.name,
                    est.luts / 1000,
                    fireaxe::fpga::fit_estimate(est, &u250)
                );
            } else {
                let threaded = est.fame5_adjusted(per as u64, 0.7);
                println!(
                    "  {:8} {:>6} kLUT raw -> {:>6} kLUT with FAME-5 x{per} ({})",
                    t.name,
                    est.luts / 1000,
                    threaded.luts / 1000,
                    fireaxe::fpga::fit_estimate(threaded, &u250)
                );
            }
        }
    }
    let m = sim.run_target_cycles(20_000).expect("runs");
    let rest = design.node_index(fpgas - 1, 0);
    println!(
        "\n{} target cycles at {:.3} MHz (paper: 0.58 MHz); serviced {}, traps {}",
        m.target_cycles,
        m.target_mhz(),
        sim.target(rest).peek("subsys.serviced").to_u64(),
        sim.target(rest).peek("subsys.traps").to_u64()
    );
    let sw_rtl_khz = 1.26;
    println!(
        "speedup over the paper's 1.26 kHz software RTL simulation: {:.0}x (paper: 460x)",
        m.target_hz() / (sw_rtl_khz * 1e3)
    );
}
