//! Fig. 7: Embench runtimes for Large BOOM, GC40 BOOM and Xeon at 3.4 GHz.

use fireaxe::prelude::BoomConfig;
use fireaxe::workloads::{core_model::CoreParams, embench};

fn main() {
    println!("== Fig. 7: Embench runtimes at 3.4 GHz ==\n");
    let large = CoreParams::from(&BoomConfig::large());
    let gc40 = CoreParams::from(&BoomConfig::gc40());
    let xeon = CoreParams::from(&BoomConfig::golden_cove_xeon());
    println!(
        "{:<18}{:>12}{:>12}{:>12}{:>14}",
        "benchmark", "Large (ms)", "GC40 (ms)", "Xeon (ms)", "GC40 uplift"
    );
    for b in embench::BENCHMARKS {
        let p = embench::profile(b);
        let rl = fireaxe::workloads::run(&large, &p);
        let rg = fireaxe::workloads::run(&gc40, &p);
        let rx = fireaxe::workloads::run(&xeon, &p);
        println!(
            "{:<18}{:>12.3}{:>12.3}{:>12.3}{:>13.1}%",
            b,
            rl.runtime_ms(3.4),
            rg.runtime_ms(3.4),
            rx.runtime_ms(3.4),
            (rg.ipc() / rl.ipc() - 1.0) * 100.0
        );
    }
    let uplift = embench::mean_ipc_uplift(&large, &gc40);
    println!(
        "\naverage GC40 IPC uplift over Large BOOM: {:.1}% (paper: 15.8%)",
        uplift * 100.0
    );
}
