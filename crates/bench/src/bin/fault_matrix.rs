//! Deterministic fault matrix: fixed seeds × fault kinds × both
//! backends, each cell asserting that a recovered fault-injected run
//! ends bit-identical to the fault-free DES golden run.
//!
//! This is the CI-facing version of the `fault_recovery` property suite:
//! no randomness, a fixed list of campaigns, table output, and a
//! non-zero exit code on any parity mismatch — so a regression in the
//! reliability protocol or checkpoint/rollback recovery fails the build
//! even if the unit suites are skipped.

use fireaxe::prelude::*;
use std::process::ExitCode;

const CYCLES: u64 = 300;
const SEEDS: [u64; 3] = [1, 42, 0xF1AE];
const CHECKPOINT_INTERVAL: u64 = 32;
const MAX_ROLLBACKS: u32 = 16;

fn noc_design() -> (Circuit, PartitionSpec) {
    let soc = ring_soc(&RingSocConfig {
        tiles: 6,
        tile_period: 4,
        ..Default::default()
    });
    let groups: Vec<PartitionGroup> = (0..3)
        .map(|g| PartitionGroup {
            name: format!("fpga{g}"),
            selection: Selection::NocRouters {
                routers: soc.router_paths.clone(),
                indices: vec![2 * g, 2 * g + 1],
            },
            fame5: false,
        })
        .collect();
    (soc.circuit, PartitionSpec::exact(groups))
}

/// The campaign for one matrix cell: a single fault kind at a rate high
/// enough to exercise the protocol constantly, or a transient outage
/// long enough to force rollback, or everything at once.
fn campaign(kind: &str, seed: u64) -> FaultSpec {
    let quiet = FaultSpec::quiet(seed);
    match kind {
        "drop" => FaultSpec {
            drop_per_mille: 150,
            ..quiet
        },
        "corrupt" => FaultSpec {
            corrupt_per_mille: 150,
            ..quiet
        },
        "duplicate" => FaultSpec {
            duplicate_per_mille: 150,
            ..quiet
        },
        "stall" => FaultSpec {
            stall_per_mille: 100,
            max_stall_quanta: 3,
            ..quiet
        },
        "outage" => FaultSpec {
            down: vec![(5, 25)],
            down_link: Some(0),
            ..quiet
        },
        "mix" => FaultSpec {
            drop_per_mille: 60,
            corrupt_per_mille: 60,
            duplicate_per_mille: 60,
            stall_per_mille: 40,
            max_stall_quanta: 2,
            down: vec![(10, 22)],
            down_link: Some(1),
            ..quiet
        },
        other => unreachable!("unknown fault kind {other}"),
    }
}

/// Final target-visible state: every node's completed cycle count and
/// output-port values.
type Fingerprint = Vec<(usize, String, u64, u64)>;

fn run(
    circuit: &Circuit,
    spec: &PartitionSpec,
    backend: Backend,
    faults: Option<FaultSpec>,
) -> Result<(Fingerprint, u64), SimError> {
    let mut flow = fireaxe::FireAxe::new(circuit.clone(), spec.clone()).backend(backend);
    if let Some(fs) = faults {
        flow = flow
            .fault_spec(fs)
            .retry_policy(RetryPolicy {
                max_retries: 6,
                timeout_cycles: 8,
            })
            .checkpoint_interval(CHECKPOINT_INTERVAL)
            .max_rollbacks(MAX_ROLLBACKS);
    }
    let (_, mut sim) = flow.build().map_err(|e| match e {
        FlowError::Sim(e) => e,
        other => panic!("flow setup failed: {other}"),
    })?;
    sim.run_target_cycles_recovering(CYCLES)?;
    let rollbacks = sim.rollbacks_taken();
    let mut fp = Vec::new();
    for ni in 0..sim.node_names().len() {
        let cycles = sim.node_target_cycles(ni);
        let t = sim.target(ni);
        for (port, _) in t.output_ports() {
            fp.push((ni, port.clone(), t.peek(&port).to_u64(), cycles));
        }
    }
    Ok((fp, rollbacks))
}

fn main() -> ExitCode {
    let (circuit, spec) = noc_design();
    let (golden, _) =
        run(&circuit, &spec, Backend::Des, None).expect("fault-free golden run failed");

    println!("== Fault matrix: {CYCLES} cycles, golden = fault-free DES ==\n");
    println!(
        "{:<10} {:>8}  {:<11} {:>9}  result",
        "kind", "seed", "backend", "rollbacks"
    );
    let mut failures = 0u32;
    for kind in ["drop", "corrupt", "duplicate", "stall", "outage", "mix"] {
        for seed in SEEDS {
            for backend in [Backend::Des, Backend::Threads(0)] {
                let cell = run(&circuit, &spec, backend, Some(campaign(kind, seed)));
                let verdict = match cell {
                    Ok((ref fp, _)) if *fp == golden => "ok",
                    Ok(_) => {
                        failures += 1;
                        "PARITY MISMATCH"
                    }
                    Err(ref e) => {
                        failures += 1;
                        eprintln!("  error: {e}");
                        "FAILED"
                    }
                };
                let rollbacks = cell.as_ref().map(|&(_, r)| r).unwrap_or(0);
                println!(
                    "{kind:<10} {seed:>8}  {:<11} {rollbacks:>9}  {verdict}",
                    format!("{backend:?}"),
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} cell(s) failed");
        return ExitCode::FAILURE;
    }
    println!("\nall cells bit-identical to the fault-free golden run");
    ExitCode::SUCCESS
}
