//! Interpreter-engine throughput benchmark and allocation regression
//! guard.
//!
//! Runs the same workloads through both execution engines (the compiled
//! instruction tape and the tree-walking reference), reports settle-loop
//! throughput in cycles/s, and enforces two CI invariants:
//!
//! 1. **Bit-exactness** — both engines must end every workload in an
//!    identical architectural state (probe signals compared).
//! 2. **Zero per-cycle heap allocation** — on an all-≤64-bit pure-RTL
//!    design (the 4-node NoC ring), the compiled engine's steady-state
//!    poke/eval/tick loop must not allocate at all. A counting global
//!    allocator measures the delta over a thousand cycles; any nonzero
//!    count is a regression and fails the build. The binary is
//!    single-threaded precisely so this counter is meaningful. The
//!    measured loop carries live `obs_span!`/`obs_counter!` tracing
//!    macros, so this guard also proves the disabled tracer is
//!    allocation-free on the hot path.
//! 3. **Bounded observability overhead** — enabling the tracer (with the
//!    default 100-cycle metric-sampling cadence) must keep settle-loop
//!    throughput within 5% of the untraced run.
//!
//! Results land in `BENCH_interp.json` for the before/after table in
//! EXPERIMENTS.md. Throughput numbers are machine-dependent; the two
//! invariants are not.

use fireaxe::ir::{Bits, ExecEngine, Interpreter};
use fireaxe::obs::{obs_counter, obs_span, trace};
use fireaxe::prelude::*;
use fireaxe::soc::noc::{ring_noc_circuit, NocConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct WorkloadResult {
    name: &'static str,
    cycles: u64,
    compiled_cps: f64,
    reference_cps: f64,
    probes_match: bool,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        self.compiled_cps / self.reference_cps
    }
}

/// Drives a NoC ring: every node injects a flit each cycle it can.
/// Port-name strings live in the driver so the measured loop itself is
/// allocation-free on the harness side.
struct NocDriver {
    valid_names: Vec<String>,
    bits_names: Vec<String>,
}

impl NocDriver {
    fn new(cfg: &NocConfig) -> Self {
        NocDriver {
            valid_names: (0..cfg.nodes)
                .map(|i| format!("node{i}_tx_valid"))
                .collect(),
            bits_names: (0..cfg.nodes).map(|i| format!("node{i}_tx_bits")).collect(),
        }
    }

    fn run(&self, sim: &mut Interpreter, cfg: &NocConfig, cycles: u64) {
        let n = cfg.nodes;
        let layout = cfg.flit();
        let w = layout.width();
        // The tracing macros stay in the measured loop: disabled they
        // compile to one relaxed load (the alloc guard proves they never
        // allocate), enabled they model a profiled simulation run at the
        // default 100-cycle sampling cadence.
        for c in 0..cycles {
            let _span = obs_span!("bench.cycle");
            for i in 0..n {
                let dest = (i + 1 + (c as usize % (n - 1))) % n;
                let flit = layout.pack(dest as u64, i as u64, 0, (c ^ i as u64) & 0xFFFF);
                sim.poke_u64(&self.valid_names[i], (c % 3 != 0) as u64);
                sim.poke_u64(&self.bits_names[i], flit & ((1u64 << w) - 1));
            }
            sim.eval().unwrap();
            sim.tick();
            if c % 100 == 0 {
                obs_counter!("bench.cycles", 0, c as f64);
            }
        }
        sim.eval().unwrap();
    }
}

fn noc_probes(sim: &Interpreter, cfg: &NocConfig) -> Vec<Bits> {
    (0..cfg.nodes)
        .flat_map(|i| {
            [
                sim.peek(&format!("node{i}_rx_valid")).clone(),
                sim.peek(&format!("node{i}_rx_bits")).clone(),
                sim.peek(&format!("node{i}_tx_ready")).clone(),
            ]
        })
        .collect()
}

fn bench_noc_ring() -> WorkloadResult {
    let cfg = NocConfig {
        nodes: 4,
        payload_bits: 32,
    };
    let circuit = ring_noc_circuit(&cfg);
    let driver = NocDriver::new(&cfg);
    let cycles = 30_000u64;
    let mut out = [0.0f64; 2];
    let mut probes: Vec<Vec<Bits>> = Vec::new();
    for (k, engine) in [ExecEngine::Compiled, ExecEngine::Reference]
        .into_iter()
        .enumerate()
    {
        let mut sim = Interpreter::with_engine(&circuit, engine).unwrap();
        driver.run(&mut sim, &cfg, 64); // warmup
        let t0 = Instant::now();
        driver.run(&mut sim, &cfg, cycles);
        out[k] = cycles as f64 / t0.elapsed().as_secs_f64();
        probes.push(noc_probes(&sim, &cfg));
    }
    WorkloadResult {
        name: "noc_ring_4",
        cycles,
        compiled_cps: out[0],
        reference_cps: out[1],
        probes_match: probes[0] == probes[1],
    }
}

/// The steady-state allocation guard: after warmup, a compiled-engine
/// poke/eval/tick loop over the all-narrow NoC ring must not touch the
/// heap at all.
fn alloc_guard() -> Result<(), String> {
    let cfg = NocConfig {
        nodes: 4,
        payload_bits: 32,
    };
    let circuit = ring_noc_circuit(&cfg);
    let driver = NocDriver::new(&cfg);
    let mut sim = Interpreter::with_engine(&circuit, ExecEngine::Compiled).unwrap();
    // Warm up: first eval force-settles everything, Vec capacities and
    // interned lookups reach steady state.
    driver.run(&mut sim, &cfg, 64);
    let guard_cycles = 1_000u64;
    let before = ALLOCS.load(Ordering::Relaxed);
    driver.run(&mut sim, &cfg, guard_cycles);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    if delta != 0 {
        return Err(format!(
            "compiled engine allocated {delta} times over {guard_cycles} steady-state cycles \
             on an all-<=64-bit design (expected 0)"
        ));
    }
    println!(
        "alloc guard: 0 heap allocations over {guard_cycles} compiled-engine cycles (noc_ring_4)"
    );
    Ok(())
}

/// Settle-loop throughput of the compiled engine over the NoC ring,
/// with whatever tracer state is currently in force.
fn noc_throughput(cycles: u64) -> f64 {
    let cfg = NocConfig {
        nodes: 4,
        payload_bits: 32,
    };
    let circuit = ring_noc_circuit(&cfg);
    let driver = NocDriver::new(&cfg);
    let mut sim = Interpreter::with_engine(&circuit, ExecEngine::Compiled).unwrap();
    driver.run(&mut sim, &cfg, 64); // warmup
    let t0 = Instant::now();
    driver.run(&mut sim, &cfg, cycles);
    cycles as f64 / t0.elapsed().as_secs_f64()
}

/// The observability overhead gate: tracing enabled (per-cycle spans
/// plus the default 100-cycle counter cadence) must stay within 5% of
/// untraced settle-loop throughput. Timing is noisy on shared CI hosts,
/// so the comparison retries a few times before failing.
fn obs_overhead_gate() -> Result<(), String> {
    const MAX_TRIES: u32 = 3;
    const CYCLES: u64 = 10_000;
    let mut worst = 0.0f64;
    for attempt in 1..=MAX_TRIES {
        let off = noc_throughput(CYCLES);
        trace::set_enabled(true);
        let on = noc_throughput(CYCLES);
        trace::set_enabled(false);
        let _ = trace::take_events(); // drain the rings between attempts
        let ratio = on / off;
        worst = worst.max(ratio);
        if ratio >= 0.95 {
            println!(
                "obs overhead gate: traced run at {:.1}% of untraced throughput \
                 (attempt {attempt})",
                ratio * 100.0
            );
            return Ok(());
        }
    }
    Err(format!(
        "tracing overhead too high: best traced run reached only {:.1}% of untraced \
         settle-loop throughput over {MAX_TRIES} attempts (need >= 95%)",
        worst * 100.0
    ))
}

fn bind_all(sim: &mut Interpreter) {
    for (path, key, bound) in sim.extern_instances() {
        if !bound {
            let model = fireaxe::soc::make_behavior(&key, &path).unwrap();
            sim.bind_behavior(&path, model).unwrap();
        }
    }
    sim.reset();
}

fn bench_soc24() -> WorkloadResult {
    let soc = ring_soc(&RingSocConfig {
        tiles: 24,
        tile_period: 4,
        subsystem_latency: 8,
        heavy_workload: true,
        ..Default::default()
    });
    let cycles = 2_000u64;
    let mut out = [0.0f64; 2];
    let mut probes: Vec<(Bits, u64)> = Vec::new();
    for (k, engine) in [ExecEngine::Compiled, ExecEngine::Reference]
        .into_iter()
        .enumerate()
    {
        let mut sim = Interpreter::with_engine(&soc.circuit, engine).unwrap();
        bind_all(&mut sim);
        for _ in 0..64 {
            sim.step().unwrap(); // warmup
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            sim.step().unwrap();
        }
        out[k] = cycles as f64 / t0.elapsed().as_secs_f64();
        sim.eval().unwrap();
        probes.push((sim.peek("subsys.serviced").clone(), sim.cycle()));
    }
    WorkloadResult {
        name: "soc24_fig6",
        cycles,
        compiled_cps: out[0],
        reference_cps: out[1],
        probes_match: probes[0] == probes[1],
    }
}

fn bench_sha3() -> WorkloadResult {
    let circuit = fireaxe::soc::validation::sha3_soc(8);
    let cycles = 5_000u64;
    let mut out = [0.0f64; 2];
    let mut probes: Vec<Vec<Bits>> = Vec::new();
    for (k, engine) in [ExecEngine::Compiled, ExecEngine::Reference]
        .into_iter()
        .enumerate()
    {
        let mut sim = Interpreter::with_engine(&circuit, engine).unwrap();
        sim.poke_u64("go", 1);
        for _ in 0..64 {
            sim.step().unwrap(); // warmup
        }
        let t0 = Instant::now();
        for _ in 0..cycles {
            sim.step().unwrap();
        }
        out[k] = cycles as f64 / t0.elapsed().as_secs_f64();
        sim.eval().unwrap();
        probes.push(
            sim.signal_paths()
                .iter()
                .map(|p| sim.peek(p).clone())
                .collect::<Vec<_>>(),
        );
    }
    WorkloadResult {
        name: "sha3",
        cycles,
        compiled_cps: out[0],
        reference_cps: out[1],
        probes_match: probes[0] == probes[1],
    }
}

fn write_json(results: &[WorkloadResult]) -> std::io::Result<()> {
    let mut s = String::from("{\n  \"benchmark\": \"interp_engines\",\n  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \"compiled_cps\": {:.0}, \
             \"reference_cps\": {:.0}, \"speedup\": {:.2}, \"probes_match\": {}}}{}\n",
            r.name,
            r.cycles,
            r.compiled_cps,
            r.reference_cps,
            r.speedup(),
            r.probes_match,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write("BENCH_interp.json", s)
}

fn main() -> ExitCode {
    println!("== Interpreter engine throughput (compiled tape vs tree reference) ==\n");
    let results = [bench_noc_ring(), bench_soc24(), bench_sha3()];
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>8}  exact",
        "workload", "cycles", "compiled c/s", "reference c/s", "speedup"
    );
    let mut ok = true;
    for r in &results {
        println!(
            "{:<12} {:>10} {:>14.0} {:>14.0} {:>7.2}x  {}",
            r.name,
            r.cycles,
            r.compiled_cps,
            r.reference_cps,
            r.speedup(),
            if r.probes_match { "yes" } else { "NO" }
        );
        ok &= r.probes_match;
    }
    println!();
    if let Err(e) = alloc_guard() {
        eprintln!("FAIL: {e}");
        ok = false;
    }
    if let Err(e) = obs_overhead_gate() {
        eprintln!("FAIL: {e}");
        ok = false;
    }
    if let Err(e) = write_json(&results) {
        eprintln!("warning: could not write BENCH_interp.json: {e}");
    } else {
        println!("wrote BENCH_interp.json");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("\nFAIL: engine parity or allocation regression detected");
        ExitCode::FAILURE
    }
}
