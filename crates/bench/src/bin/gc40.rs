//! §V-B numbers: GC40 BOOM monolithic build failure, the two-FPGA split's
//! utilizations, the >7000-bit boundary, and the partitioned rate.

use fireaxe::prelude::*;
use fireaxe::Platform;

fn main() {
    println!("== GC40 BOOM split (paper §V-B) ==\n");
    let gc40 = BoomConfig::gc40();
    let circuit = fireaxe::soc::boom::core_circuit(&gc40);
    let u250 = FpgaSpec::alveo_u250();
    println!("monolithic: {}", fit(&circuit, &u250));
    let spec = PartitionSpec::exact(vec![PartitionGroup::instances(
        "backend_fpga",
        vec!["backend".into(), "lsu".into()],
    )]);
    let (design, mut sim) = fireaxe::FireAxe::new(circuit, spec)
        .platform(Platform::OnPremQsfp)
        .clock_mhz(10.0)
        .check_fit()
        .build()
        .expect("split compiles and fits");
    println!(
        "boundary: {} bits (paper: >7000)",
        design.report.total_boundary_width()
    );
    for p in &design.partitions {
        for t in &p.threads {
            println!("  {:14} {}", t.name, fit(&t.circuit, &u250));
        }
    }
    let m = sim.run_target_cycles(20_000).expect("runs");
    println!(
        "\nrate: {:.3} MHz (paper: 0.2 MHz); commits {}",
        m.target_mhz(),
        sim.target(design.node_index(0, 0))
            .peek("backend_commits")
            .to_u64()
    );
}
