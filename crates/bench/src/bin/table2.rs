//! Table II: simulator validation — monolithic vs exact-mode vs fast-mode
//! cycle counts for the Rocket / Sha3 / Gemmini SoCs.

fn main() {
    println!("== Table II: simulator validation ==\n");
    println!(
        "{:<28}{:>14}{:>18}{:>18}",
        "", "Monolithic", "Exact |err| (%)", "Fast |err| (%)"
    );
    for row in fireaxe_bench::table2_rows(400) {
        println!(
            "{:<28}{:>14}{:>18.2}{:>18.2}",
            row.target,
            row.monolithic,
            row.exact_error_pct(),
            row.fast_error_pct()
        );
    }
    println!("\npaper: Rocket 3,840,921,346 cycles (0 / 0.98%), Sha3 302 (0 / 6.62%),");
    println!("Gemmini 4,505 (0 / 0.22%). Exact-mode is zero-error by construction;");
    println!("fast-mode error is largest for the short, memory-bound Sha3 operation.");
}
