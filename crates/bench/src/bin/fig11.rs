//! Fig. 11: QSFP performance sweep — simulation rate vs partition
//! interface width, bitstream frequency, and partitioning mode.

use fireaxe::Platform;

fn main() {
    let widths = [0u32, 512, 1024, 2048, 4096, 8192];
    let freqs = [10.0, 30.0, 90.0];
    let pts = fireaxe_bench::rate_sweep(Platform::OnPremQsfp, &widths, &freqs, 500);
    fireaxe_bench::print_rate_sweep("Fig. 11: QSFP direct-attach sweep", &pts);
    fireaxe_bench::write_csv(
        "fig11-qsfp-sweep.csv",
        &["mode", "host_mhz", "width_bits", "rate_mhz"],
        &fireaxe_bench::rate_sweep_rows(&pts),
    );
    println!("\npaper shape: fast-mode ~2x exact-mode below ~1500-bit interfaces; the");
    println!("advantage fades as (de)serialization rivals the link latency; higher");
    println!("bitstream frequencies are uniformly faster. Peak ~1.6 MHz.");
}
