//! §IV headline rates: the three FPGA-to-FPGA transports side by side.

use fireaxe::prelude::*;
use fireaxe::Platform;

fn main() {
    println!("== Transport headline rates (paper §IV) ==\n");
    for (platform, cycles, paper) in [
        (Platform::OnPremQsfp, 3_000u64, "1.6 MHz"),
        (Platform::CloudF1, 2_000, "1.0 MHz"),
        (Platform::HostManaged, 60, "26.4 kHz"),
    ] {
        let p = fireaxe_bench::rate_point(platform, 0, 30.0, PartitionMode::Fast, cycles);
        println!(
            "{:<28} {:>10.4} MHz   (paper: {})",
            format!("{platform:?} (fast-mode):"),
            p.measured_mhz,
            paper
        );
    }
}
