//! Fig. 14: amortizing inter-FPGA communication latency with FAME-5
//! multi-threading.

fn main() {
    println!("== Fig. 14: FAME-5 multi-threading sweep ==\n");
    println!("tile FPGA fixed at 15 MHz; SoC-side frequency swept\n");
    println!("{:>6} {:>10} {:>12}", "tiles", "SoC MHz", "rate MHz");
    let rows = fireaxe_bench::fame5_sweep(&[1, 2, 3, 4, 5, 6], &[20.0, 25.0, 30.0], 300);
    for (n, f, mhz) in &rows {
        println!("{n:>6} {f:>10.0} {mhz:>12.3}");
    }
    fireaxe_bench::write_csv(
        "fig14-fame5.csv",
        &["tiles", "soc_mhz", "rate_mhz"],
        &rows
            .iter()
            .map(|(n, f, m)| vec![n.to_string(), f.to_string(), format!("{m:.6}")])
            .collect::<Vec<_>>(),
    );
    // Degradation factor from 1 to 6 threads at 30 MHz.
    let r1 = rows
        .iter()
        .find(|(n, f, _)| *n == 1 && *f == 30.0)
        .unwrap()
        .2;
    let r6 = rows
        .iter()
        .find(|(n, f, _)| *n == 6 && *f == 30.0)
        .unwrap()
        .2;
    println!(
        "\n1 -> 6 threads at 30 MHz: {:.2}x slowdown (paper: < 2x — the inter-FPGA",
        r1 / r6
    );
    println!("latency amortizes across threads while LUT usage stays flat).");
}
