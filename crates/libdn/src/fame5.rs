//! FAME-5 multi-threading of duplicate modules.
//!
//! FAME-5 (paper §II-B, §VI-B) shares one copy of a module's combinational
//! logic among N duplicate instances while replicating only the sequential
//! state; a hardware scheduler services one instance ("thread") per host
//! cycle. The performance consequence — N host cycles per target cycle —
//! is exactly what lets FireAxe amortize inter-FPGA latency: while thread
//! 0's token is in flight, threads 1..N-1 are being serviced.
//!
//! In software we model the scheduler faithfully: a [`Fame5Group`] owns N
//! member LI-BDNs and round-robins [`LiBdn::host_step`] across them, one
//! member per host cycle. (Replicating combinational state in software has
//! no cost, so "sharing" it is purely the scheduling constraint.)

use crate::error::Result;
use crate::libdn::LiBdn;

/// N LI-BDNs multiplexed onto one host-cycle budget, FAME-5 style.
#[derive(Debug)]
pub struct Fame5Group {
    members: Vec<LiBdn>,
    next: usize,
    host_cycles: u64,
}

impl Fame5Group {
    /// Creates a group; a single-member group behaves exactly like a bare
    /// [`LiBdn`].
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<LiBdn>) -> Self {
        assert!(
            !members.is_empty(),
            "Fame5Group requires at least one member"
        );
        Fame5Group {
            members,
            next: 0,
            host_cycles: 0,
        }
    }

    /// Number of threads (duplicate module instances).
    pub fn threads(&self) -> usize {
        self.members.len()
    }

    /// Immutable access to a member.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.threads()`.
    pub fn member(&self, idx: usize) -> &LiBdn {
        &self.members[idx]
    }

    /// Mutable access to a member (for pushing/popping its channels).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.threads()`.
    pub fn member_mut(&mut self, idx: usize) -> &mut LiBdn {
        &mut self.members[idx]
    }

    /// Iterates members.
    pub fn members(&self) -> impl Iterator<Item = &LiBdn> {
        self.members.iter()
    }

    /// Host cycles consumed by the whole group.
    pub fn host_cycles(&self) -> u64 {
        self.host_cycles
    }

    /// Minimum target cycle across members (the group's committed time).
    pub fn target_cycle(&self) -> u64 {
        self.members
            .iter()
            .map(LiBdn::target_cycle)
            .min()
            .unwrap_or(0)
    }

    /// One host cycle: services exactly one member (the FAME-5 scheduler),
    /// then rotates. Returns `true` if that member made progress.
    ///
    /// # Errors
    ///
    /// Propagates the member's model failure.
    pub fn host_step(&mut self) -> Result<bool> {
        self.host_cycles += 1;
        let idx = self.next;
        self.next = (self.next + 1) % self.members.len();
        self.members[idx].host_step()
    }

    /// Whether any member could make progress (deadlock detection).
    pub fn can_progress(&self) -> bool {
        self.members.iter().any(LiBdn::can_progress)
    }

    /// Stall report covering every member.
    pub fn stall_report(&self) -> Vec<String> {
        self.members.iter().map(LiBdn::stall_report).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelSpec;
    use crate::libdn::{LiBdnSpec, OutputChannelSpec};
    use crate::target::InterpreterTarget;
    use fireaxe_ir::build::ModuleBuilder;
    use fireaxe_ir::{Bits, Circuit, Width};

    fn accumulator() -> Circuit {
        let mut mb = ModuleBuilder::new("Acc");
        let a = mb.input("a", 8);
        let y = mb.output("y", 8);
        let r = mb.reg("r", 8, 0);
        mb.connect_sig(&r, &r.add(&a));
        mb.connect_sig(&y, &r);
        Circuit::from_modules("Acc", vec![mb.finish()], "Acc")
    }

    fn member() -> LiBdn {
        let spec = LiBdnSpec {
            name: "Acc".into(),
            inputs: vec![ChannelSpec::new(
                "in",
                vec![("a".to_string(), Width::new(8))],
            )],
            outputs: vec![OutputChannelSpec {
                channel: ChannelSpec::new("out", vec![("y".to_string(), Width::new(8))]),
                deps: vec![],
            }],
        };
        LiBdn::new(
            spec,
            Box::new(InterpreterTarget::new(&accumulator()).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_services_all_members() {
        let n = 4;
        let mut g = Fame5Group::new((0..n).map(|_| member()).collect());
        // Give every member one input token per target cycle, run until all
        // have simulated 3 cycles.
        for cycle in 0..3u64 {
            for m in 0..n {
                g.member_mut(m)
                    .push_input(0, Bits::from_u64(m as u64 + 1, 8))
                    .unwrap();
            }
            let mut safety = 0;
            while (0..n).any(|m| g.member(m).target_cycle() <= cycle) {
                g.host_step().unwrap();
                safety += 1;
                assert!(safety < 1000, "group failed to make progress");
            }
        }
        assert_eq!(g.target_cycle(), 3);
        // Each member accumulated its own (distinct) input stream.
        for m in 0..n {
            let mut last = 0;
            while let Some(t) = g.member_mut(m).pop_output(0) {
                last = t.to_u64();
            }
            assert_eq!(last, 2 * (m as u64 + 1)); // after 2 completed accumulations
        }
    }

    #[test]
    fn n_threads_cost_n_host_cycles_per_target_cycle() {
        // With inputs always available and outputs drained, a group of N
        // needs ~N host cycles per target cycle (one member serviced per
        // host cycle; each member needs a constant number of host steps).
        let cost = |n: usize| -> u64 {
            let mut g = Fame5Group::new((0..n).map(|_| member()).collect());
            let cycles = 16u64;
            let mut host = 0u64;
            while g.target_cycle() < cycles {
                for m in 0..n {
                    let mm = g.member_mut(m);
                    if mm.can_accept(0) {
                        mm.push_input(0, Bits::from_u64(1, 8)).unwrap();
                    }
                    while mm.pop_output(0).is_some() {}
                }
                g.host_step().unwrap();
                host += 1;
            }
            host
        };
        let c1 = cost(1);
        let c4 = cost(4);
        // Scales linearly in thread count (within rounding).
        assert!(c4 >= 3 * c1, "expected ~4x host cycles, got {c1} vs {c4}");
        assert!(c4 <= 5 * c1);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_panics() {
        let _ = Fame5Group::new(vec![]);
    }
}
