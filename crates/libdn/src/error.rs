//! Error types for the LI-BDN runtime.

use std::fmt;

/// Errors raised by LI-BDN construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibdnError {
    /// A channel index was out of range.
    NoSuchChannel {
        /// LI-BDN name.
        libdn: String,
        /// Offending channel index.
        channel: usize,
    },
    /// A token was pushed into a full channel queue.
    ChannelFull {
        /// LI-BDN name.
        libdn: String,
        /// Channel name.
        channel: String,
    },
    /// The wrapped target model failed.
    Model {
        /// Explanation from the model.
        message: String,
    },
    /// An output channel declared a dependency on a nonexistent input
    /// channel.
    BadDependency {
        /// LI-BDN name.
        libdn: String,
        /// Output channel name.
        output: String,
        /// Dangling input channel index.
        dep: usize,
    },
    /// The simulation cannot make progress: every LI-BDN is stalled.
    Deadlock {
        /// Human-readable stall report, one line per LI-BDN.
        report: Vec<String>,
    },
}

impl fmt::Display for LibdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibdnError::NoSuchChannel { libdn, channel } => {
                write!(f, "LI-BDN `{libdn}` has no channel #{channel}")
            }
            LibdnError::ChannelFull { libdn, channel } => {
                write!(f, "channel `{channel}` of LI-BDN `{libdn}` is full")
            }
            LibdnError::Model { message } => write!(f, "target model error: {message}"),
            LibdnError::BadDependency { libdn, output, dep } => write!(
                f,
                "output channel `{output}` of LI-BDN `{libdn}` depends on missing input #{dep}"
            ),
            LibdnError::Deadlock { report } => {
                write!(f, "simulation deadlocked:\n{}", report.join("\n"))
            }
        }
    }
}

impl std::error::Error for LibdnError {}

/// Convenient alias.
pub type Result<T> = std::result::Result<T, LibdnError>;
