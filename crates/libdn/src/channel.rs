//! Latency-insensitive channels and token packing.
//!
//! An LI-BDN channel aggregates a set of target ports into a single token
//! stream (the paper: "concatenates all the input wires of the sink/source
//! ports and attaches an LI-BDN input channel to the aggregated wires").
//! [`ChannelSpec`] describes the aggregation; [`ChannelSpec::pack`] and
//! [`ChannelSpec::unpack`] convert between per-port values and the single
//! token [`Bits`] value that crosses the (simulated) FPGA boundary.

use fireaxe_ir::{Bits, Width};
use std::collections::BTreeMap;

/// Description of one latency-insensitive channel: an ordered list of
/// `(port, width)` pairs whose concatenation forms the token payload.
///
/// Port 0 occupies the least-significant bits of the token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Channel name (unique within its LI-BDN).
    pub name: String,
    /// Aggregated ports in payload order (LSB first).
    pub ports: Vec<(String, Width)>,
}

impl ChannelSpec {
    /// Creates a channel over the given ports.
    pub fn new(name: impl Into<String>, ports: Vec<(String, Width)>) -> Self {
        ChannelSpec {
            name: name.into(),
            ports,
        }
    }

    /// Total payload width in bits.
    pub fn width(&self) -> Width {
        Width::new(self.ports.iter().map(|(_, w)| w.get()).sum())
    }

    /// Packs per-port values into a token. Ports missing from `values`
    /// contribute zeros.
    pub fn pack(&self, values: &BTreeMap<String, Bits>) -> Bits {
        let mut token = Bits::zero(self.width());
        let mut offset = 0u32;
        for (port, w) in &self.ports {
            if let Some(v) = values.get(port) {
                let v = v.resize(*w);
                for i in 0..w.get() {
                    if v.bit(i) {
                        token.set_bit(offset + i, true);
                    }
                }
            }
            offset += w.get();
        }
        token
    }

    /// Unpacks a token into per-port values.
    ///
    /// The token is resized to the channel width first, so short or long
    /// tokens are tolerated (zero-extension / truncation).
    pub fn unpack(&self, token: &Bits) -> BTreeMap<String, Bits> {
        let token = token.resize(self.width());
        let mut out = BTreeMap::new();
        let mut offset = 0u32;
        for (port, w) in &self.ports {
            let v = if w.get() == 0 {
                Bits::zero(0)
            } else {
                token.extract(offset + w.get() - 1, offset)
            };
            out.insert(port.clone(), v);
            offset += w.get();
        }
        out
    }

    /// Returns `true` if this channel carries the named port.
    pub fn carries(&self, port: &str) -> bool {
        self.ports.iter().any(|(p, _)| p == port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChannelSpec {
        ChannelSpec::new(
            "sink_in",
            vec![
                ("a".to_string(), Width::new(4)),
                ("b".to_string(), Width::new(8)),
                ("c".to_string(), Width::new(1)),
            ],
        )
    }

    #[test]
    fn width_sums_ports() {
        assert_eq!(spec().width().get(), 13);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let s = spec();
        let mut vals = BTreeMap::new();
        vals.insert("a".to_string(), Bits::from_u64(0xA, 4));
        vals.insert("b".to_string(), Bits::from_u64(0x5C, 8));
        vals.insert("c".to_string(), Bits::from_u64(1, 1));
        let token = s.pack(&vals);
        let back = s.unpack(&token);
        assert_eq!(back["a"].to_u64(), 0xA);
        assert_eq!(back["b"].to_u64(), 0x5C);
        assert_eq!(back["c"].to_u64(), 1);
    }

    #[test]
    fn missing_ports_pack_as_zero() {
        let s = spec();
        let token = s.pack(&BTreeMap::new());
        assert!(token.is_zero());
    }

    #[test]
    fn layout_is_lsb_first() {
        let s = spec();
        let mut vals = BTreeMap::new();
        vals.insert("a".to_string(), Bits::from_u64(0xF, 4));
        let token = s.pack(&vals);
        assert_eq!(token.to_u64(), 0xF);
        let mut vals = BTreeMap::new();
        vals.insert("b".to_string(), Bits::from_u64(1, 8));
        let token = s.pack(&vals);
        assert_eq!(token.to_u64(), 1 << 4);
    }

    #[test]
    fn unpack_tolerates_width_mismatch() {
        let s = spec();
        let vals = s.unpack(&Bits::from_u64(u64::MAX, 64));
        assert_eq!(vals["a"].to_u64(), 0xF);
        assert_eq!(vals["b"].to_u64(), 0xFF);
        assert_eq!(vals["c"].to_u64(), 1);
    }

    #[test]
    fn carries_checks_membership() {
        let s = spec();
        assert!(s.carries("b"));
        assert!(!s.carries("z"));
    }
}
