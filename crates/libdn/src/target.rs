//! Target-design models hosted inside an LI-BDN.
//!
//! The LI-BDN wrapper doesn't care what computes the target's cycle
//! semantics — on real FireAxe it is FAME-1-transformed RTL on the FPGA
//! fabric; here it is anything implementing [`TargetModel`]. Two
//! implementations are provided: [`InterpreterTarget`] (full RTL
//! interpretation via `fireaxe-ir`) and [`BehavioralTarget`] (a
//! coarse-grained model implementing [`CycleModel`], used for
//! BOOM-tile-sized components whose RTL we do not model).

use crate::error::{LibdnError, Result};
use fireaxe_ir::{Bits, Circuit, InterpSnapshot, Interpreter, Width};
use std::any::Any;
use std::collections::BTreeMap;

/// Opaque captured state of a [`TargetModel`], produced by
/// [`TargetModel::snapshot`]. Each implementation downcasts it back to
/// its own concrete type in [`TargetModel::restore`].
pub type TargetSnapshot = Box<dyn Any + Send>;

/// A cycle-accurate model of a target design with named ports.
///
/// Contract per target cycle (enforced by the LI-BDN wrapper):
/// 1. inputs are poked (possibly several times as tokens arrive);
/// 2. [`TargetModel::eval`] settles combinational logic;
/// 3. outputs are peeked;
/// 4. [`TargetModel::tick`] latches state exactly once.
pub trait TargetModel: std::fmt::Debug + Send {
    /// Returns to the post-reset state.
    fn reset(&mut self);

    /// Drives an input port.
    fn poke(&mut self, port: &str, value: Bits);

    /// Settles combinational logic for the currently poked inputs.
    ///
    /// # Errors
    ///
    /// Implementations may fail (e.g. unbound extern behaviors).
    fn eval(&mut self) -> Result<()>;

    /// Reads an output port (valid after [`TargetModel::eval`]).
    fn peek(&self, port: &str) -> Bits;

    /// Advances one target cycle.
    fn tick(&mut self);

    /// Input port names and widths.
    fn input_ports(&self) -> Vec<(String, Width)>;

    /// Output port names and widths.
    fn output_ports(&self) -> Vec<(String, Width)>;

    /// Reads one entry of an internal memory by hierarchical path, when
    /// the model exposes memories (RTL-interpreted targets do).
    fn peek_mem(&self, _path: &str, _index: usize) -> Option<Bits> {
        None
    }

    /// Captures the model's architectural state for checkpoint/rollback,
    /// or `None` when the model cannot be snapshotted (the default —
    /// behavioral models hold arbitrary private state).
    fn snapshot(&self) -> Option<TargetSnapshot> {
        None
    }

    /// Restores state captured by [`TargetModel::snapshot`]; returns
    /// `false` (leaving the model untouched) when the snapshot is not one
    /// of this model's or does not fit.
    fn restore(&mut self, _snap: &TargetSnapshot) -> bool {
        false
    }

    /// Hierarchical paths of every signal the model can expose for
    /// waveform watching, sorted. RTL-interpreted targets expose every
    /// elaborated signal; the default exposes the output ports.
    fn signal_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.output_ports().into_iter().map(|(n, _)| n).collect();
        v.sort();
        v
    }

    /// Reads any watchable signal by hierarchical path, or `None` when
    /// the path names no signal. The default resolves output ports only.
    fn peek_path(&self, path: &str) -> Option<Bits> {
        self.output_ports()
            .iter()
            .any(|(n, _)| n == path)
            .then(|| self.peek(path))
    }

    /// Cumulative settle-loop statistics (settle passes, definitions
    /// run/skipped), when the model is interpreter-backed; `None` for
    /// behavioral models.
    fn exec_stats(&self) -> Option<fireaxe_ir::ExecStats> {
        None
    }
}

/// [`TargetModel`] backed by the RTL interpreter.
#[derive(Debug)]
pub struct InterpreterTarget {
    interp: Interpreter,
}

impl InterpreterTarget {
    /// Elaborates `circuit` into an interpreter-backed target.
    ///
    /// # Errors
    ///
    /// Propagates elaboration/validation failures.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        Ok(InterpreterTarget {
            interp: Interpreter::new(circuit)?,
        })
    }

    /// Wraps an existing interpreter (e.g. with behaviors already bound).
    pub fn from_interpreter(interp: Interpreter) -> Self {
        InterpreterTarget { interp }
    }

    /// Access to the wrapped interpreter (for peeking internal signals).
    pub fn interpreter(&self) -> &Interpreter {
        &self.interp
    }

    /// Mutable access to the wrapped interpreter.
    pub fn interpreter_mut(&mut self) -> &mut Interpreter {
        &mut self.interp
    }
}

impl TargetModel for InterpreterTarget {
    fn reset(&mut self) {
        self.interp.reset();
    }

    fn poke(&mut self, port: &str, value: Bits) {
        self.interp.poke(port, value);
    }

    fn eval(&mut self) -> Result<()> {
        self.interp.eval()?;
        Ok(())
    }

    fn peek(&self, port: &str) -> Bits {
        self.interp.peek(port).clone()
    }

    fn tick(&mut self) {
        self.interp.tick();
    }

    fn input_ports(&self) -> Vec<(String, Width)> {
        self.interp.input_ports()
    }

    fn output_ports(&self) -> Vec<(String, Width)> {
        self.interp.output_ports()
    }

    fn peek_mem(&self, path: &str, index: usize) -> Option<Bits> {
        self.interp.peek_mem(path, index).cloned()
    }

    fn snapshot(&self) -> Option<TargetSnapshot> {
        self.interp
            .snapshot()
            .map(|s| Box::new(s) as TargetSnapshot)
    }

    fn restore(&mut self, snap: &TargetSnapshot) -> bool {
        match snap.downcast_ref::<InterpSnapshot>() {
            Some(s) => self.interp.restore_snapshot(s),
            None => false,
        }
    }

    fn signal_paths(&self) -> Vec<String> {
        self.interp.signal_paths()
    }

    fn peek_path(&self, path: &str) -> Option<Bits> {
        self.interp.peek_opt(path).cloned()
    }

    fn exec_stats(&self) -> Option<fireaxe_ir::ExecStats> {
        Some(self.interp.exec_stats())
    }
}

/// A coarse-grained cycle model: the behavioural analogue of a
/// FAME-1-transformed module.
///
/// Implementors provide Mealy-machine semantics through a single method
/// pair; [`BehavioralTarget`] adapts them to [`TargetModel`].
pub trait CycleModel: std::fmt::Debug + Send {
    /// Returns to the post-reset state.
    fn reset(&mut self);

    /// Computes output values from current state and settled inputs.
    fn outputs(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits>;

    /// Advances one target cycle with the settled inputs.
    fn tick(&mut self, inputs: &BTreeMap<String, Bits>);

    /// Declared input ports.
    fn input_ports(&self) -> Vec<(String, Width)>;

    /// Declared output ports.
    fn output_ports(&self) -> Vec<(String, Width)>;
}

/// Adapts a [`CycleModel`] to the [`TargetModel`] protocol.
#[derive(Debug)]
pub struct BehavioralTarget<M: CycleModel> {
    model: M,
    inputs: BTreeMap<String, Bits>,
    outputs: BTreeMap<String, Bits>,
}

impl<M: CycleModel> BehavioralTarget<M> {
    /// Wraps a cycle model; inputs start at zero.
    pub fn new(model: M) -> Self {
        let inputs = model
            .input_ports()
            .into_iter()
            .map(|(n, w)| (n, Bits::zero(w)))
            .collect();
        BehavioralTarget {
            model,
            inputs,
            outputs: BTreeMap::new(),
        }
    }

    /// Access to the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }
}

impl<M: CycleModel> TargetModel for BehavioralTarget<M> {
    fn reset(&mut self) {
        self.model.reset();
        for v in self.inputs.values_mut() {
            *v = Bits::zero(v.width());
        }
        self.outputs.clear();
    }

    fn poke(&mut self, port: &str, value: Bits) {
        if let Some(slot) = self.inputs.get_mut(port) {
            let w = slot.width();
            *slot = value.resize(w);
        }
    }

    fn eval(&mut self) -> Result<()> {
        self.outputs = self.model.outputs(&self.inputs);
        Ok(())
    }

    fn peek(&self, port: &str) -> Bits {
        self.outputs
            .get(port)
            .cloned()
            .unwrap_or_else(|| Bits::zero(0))
    }

    fn tick(&mut self) {
        self.model.tick(&self.inputs);
    }

    fn input_ports(&self) -> Vec<(String, Width)> {
        self.model.input_ports()
    }

    fn output_ports(&self) -> Vec<(String, Width)> {
        self.model.output_ports()
    }
}

impl From<fireaxe_ir::IrError> for LibdnError {
    fn from(e: fireaxe_ir::IrError) -> Self {
        LibdnError::Model {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::build::{ModuleBuilder, Sig};

    fn counter() -> Circuit {
        let mut mb = ModuleBuilder::new("C");
        let en = mb.input("en", 1);
        let out = mb.output("out", 8);
        let r = mb.reg("r", 8, 0);
        mb.connect_sig(&r, &en.mux(&r.add(&Sig::lit(1, 8)), &r));
        mb.connect_sig(&out, &r);
        Circuit::from_modules("C", vec![mb.finish()], "C")
    }

    #[test]
    fn interpreter_target_cycles() {
        let mut t = InterpreterTarget::new(&counter()).unwrap();
        t.reset();
        t.poke("en", Bits::from_u64(1, 1));
        for _ in 0..3 {
            t.eval().unwrap();
            t.tick();
        }
        t.eval().unwrap();
        assert_eq!(t.peek("out").to_u64(), 3);
        assert_eq!(t.input_ports()[0].0, "en");
    }

    #[derive(Debug, Default)]
    struct Echoer {
        last: u64,
    }

    impl CycleModel for Echoer {
        fn reset(&mut self) {
            self.last = 0;
        }
        fn outputs(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
            let mut m = BTreeMap::new();
            m.insert("now".into(), inputs["x"].clone());
            m.insert("prev".into(), Bits::from_u64(self.last, 8));
            m
        }
        fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
            self.last = inputs["x"].to_u64();
        }
        fn input_ports(&self) -> Vec<(String, Width)> {
            vec![("x".into(), Width::new(8))]
        }
        fn output_ports(&self) -> Vec<(String, Width)> {
            vec![
                ("now".into(), Width::new(8)),
                ("prev".into(), Width::new(8)),
            ]
        }
    }

    #[test]
    fn behavioral_target_protocol() {
        let mut t = BehavioralTarget::new(Echoer::default());
        t.reset();
        t.poke("x", Bits::from_u64(7, 8));
        t.eval().unwrap();
        assert_eq!(t.peek("now").to_u64(), 7);
        assert_eq!(t.peek("prev").to_u64(), 0);
        t.tick();
        t.poke("x", Bits::from_u64(9, 8));
        t.eval().unwrap();
        assert_eq!(t.peek("prev").to_u64(), 7);
    }

    #[test]
    fn interpreter_target_snapshot_round_trip() {
        let mut t = InterpreterTarget::new(&counter()).unwrap();
        t.reset();
        t.poke("en", Bits::from_u64(1, 1));
        for _ in 0..4 {
            t.eval().unwrap();
            t.tick();
        }
        let snap = t.snapshot().unwrap();
        for _ in 0..6 {
            t.eval().unwrap();
            t.tick();
        }
        t.eval().unwrap();
        assert_eq!(t.peek("out").to_u64(), 10);
        assert!(t.restore(&snap));
        t.eval().unwrap();
        assert_eq!(t.peek("out").to_u64(), 4);
        // A foreign snapshot is rejected without touching state.
        let foreign: TargetSnapshot = Box::new(17u32);
        assert!(!t.restore(&foreign));
    }

    #[test]
    fn behavioral_target_has_no_snapshot() {
        let t = BehavioralTarget::new(Echoer::default());
        assert!(TargetModel::snapshot(&t).is_none());
    }

    #[test]
    fn behavioral_target_ignores_unknown_poke() {
        let mut t = BehavioralTarget::new(Echoer::default());
        t.poke("nonexistent", Bits::from_u64(1, 1));
        t.poke("x", Bits::from_u64(3, 8));
        t.eval().unwrap();
        assert_eq!(t.peek("now").to_u64(), 3);
    }
}
