//! # fireaxe-libdn — latency-insensitive bounded dataflow networks
//!
//! The host-decoupling layer of FireAxe-rs (paper §II). FPGA-accelerated
//! simulators cannot run target RTL against host-speed peripherals without
//! distorting time; LI-BDNs solve this by gating the target's clock on
//! token availability:
//!
//! * [`ChannelSpec`] — aggregation of target ports into token streams;
//! * [`LiBdn`] — the wrapper (queues + output-channel FSMs + fireFSM)
//!   around any [`TargetModel`];
//! * [`InterpreterTarget`] / [`BehavioralTarget`] — RTL-interpreted and
//!   coarse-behavioral target models;
//! * [`Fame5Group`] — FAME-5 multi-threading of duplicate modules.
//!
//! The key property, tested here and relied on by everything above: the
//! target-visible cycle sequence is independent of host-side token timing
//! (see `host_decoupling_is_timing_independent` in the tests).

#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod fame5;
#[allow(clippy::module_inception)]
pub mod libdn;
pub mod target;

pub use channel::ChannelSpec;
pub use error::{LibdnError, Result};
pub use fame5::Fame5Group;
pub use libdn::{LiBdn, LiBdnSnapshot, LiBdnSpec, OutputChannelSpec, DEFAULT_CHANNEL_CAPACITY};
pub use target::{BehavioralTarget, CycleModel, InterpreterTarget, TargetModel, TargetSnapshot};
