//! The LI-BDN wrapper: host-decoupled execution of a target design.
//!
//! Reproduces Fig. 1 of the FireAxe paper. The target design interfaces
//! with latency-insensitive channel queues holding tokens. Each output
//! channel has a single-bit FSM that fires (enqueues a token) once every
//! *combinationally connected* input channel holds a valid token; the
//! `fireFSM` advances the target a cycle once all input channels hold a
//! token and all output channels have fired, dequeuing the inputs and
//! resetting the output FSMs.
//!
//! This protocol is what makes simulation *host-decoupled*: the target
//! observes a perfectly synchronous world no matter how token arrival
//! times jitter on the host — the property that keeps partitioned
//! exact-mode simulations cycle-identical to monolithic ones.

use crate::channel::ChannelSpec;
use crate::error::{LibdnError, Result};
use crate::target::{TargetModel, TargetSnapshot};
use fireaxe_ir::Bits;
use std::collections::{BTreeMap, VecDeque};

/// Default token queue capacity, matching FireSim's shallow channel
/// depths.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 4;

/// An output channel together with the input channels it combinationally
/// depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputChannelSpec {
    /// The channel itself.
    pub channel: ChannelSpec,
    /// Indices (into the LI-BDN's input channel list) of combinationally
    /// connected input channels. Empty for *source* channels, which can
    /// fire unconditionally — the paper's deadlock-freedom seed.
    pub deps: Vec<usize>,
}

/// Static description of an LI-BDN: its channels and their dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiBdnSpec {
    /// Name (used in reports).
    pub name: String,
    /// Input channels.
    pub inputs: Vec<ChannelSpec>,
    /// Output channels with dependency sets.
    pub outputs: Vec<OutputChannelSpec>,
}

impl LiBdnSpec {
    /// Validates dependency indices.
    ///
    /// # Errors
    ///
    /// Returns [`LibdnError::BadDependency`] for out-of-range indices.
    pub fn validate(&self) -> Result<()> {
        for o in &self.outputs {
            for &d in &o.deps {
                if d >= self.inputs.len() {
                    return Err(LibdnError::BadDependency {
                        libdn: self.name.clone(),
                        output: o.channel.name.clone(),
                        dep: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// Sum of input channel widths, in bits (the partition boundary width
    /// in the inbound direction).
    pub fn input_width(&self) -> u64 {
        self.inputs.iter().map(|c| u64::from(c.width().get())).sum()
    }

    /// Sum of output channel widths, in bits.
    pub fn output_width(&self) -> u64 {
        self.outputs
            .iter()
            .map(|o| u64::from(o.channel.width().get()))
            .sum()
    }
}

/// Captured state of a running [`LiBdn`]: channel queues, output FSMs,
/// cycle counters, and the wrapped target model's own snapshot.
pub struct LiBdnSnapshot {
    in_queues: Vec<VecDeque<Bits>>,
    out_queues: Vec<VecDeque<Bits>>,
    fired: Vec<bool>,
    target_cycle: u64,
    host_cycles: u64,
    target: TargetSnapshot,
}

impl std::fmt::Debug for LiBdnSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiBdnSnapshot")
            .field("target_cycle", &self.target_cycle)
            .field("host_cycles", &self.host_cycles)
            .field("in_queues", &self.in_queues)
            .field("out_queues", &self.out_queues)
            .field("fired", &self.fired)
            .finish_non_exhaustive()
    }
}

impl LiBdnSnapshot {
    /// Target cycle count at capture time.
    pub fn target_cycle(&self) -> u64 {
        self.target_cycle
    }
}

/// A running LI-BDN: spec + target model + queue/FSM state.
#[derive(Debug)]
pub struct LiBdn {
    spec: LiBdnSpec,
    model: Box<dyn TargetModel>,
    in_queues: Vec<VecDeque<Bits>>,
    out_queues: Vec<VecDeque<Bits>>,
    fired: Vec<bool>,
    capacity: usize,
    target_cycle: u64,
    host_cycles: u64,
}

impl LiBdn {
    /// Wraps `model` with the channel structure in `spec`.
    ///
    /// # Errors
    ///
    /// Propagates [`LiBdnSpec::validate`] failures.
    pub fn new(spec: LiBdnSpec, model: Box<dyn TargetModel>) -> Result<Self> {
        spec.validate()?;
        let n_in = spec.inputs.len();
        let n_out = spec.outputs.len();
        let mut bdn = LiBdn {
            spec,
            model,
            in_queues: vec![VecDeque::new(); n_in],
            out_queues: vec![VecDeque::new(); n_out],
            fired: vec![false; n_out],
            capacity: DEFAULT_CHANNEL_CAPACITY,
            target_cycle: 0,
            host_cycles: 0,
        };
        bdn.model.reset();
        Ok(bdn)
    }

    /// The static spec.
    pub fn spec(&self) -> &LiBdnSpec {
        &self.spec
    }

    /// The wrapped target model.
    pub fn model(&self) -> &dyn TargetModel {
        self.model.as_ref()
    }

    /// Mutable access to the wrapped target model.
    pub fn model_mut(&mut self) -> &mut dyn TargetModel {
        self.model.as_mut()
    }

    /// Completed target cycles.
    pub fn target_cycle(&self) -> u64 {
        self.target_cycle
    }

    /// Host cycles spent (calls to [`LiBdn::host_step`]).
    pub fn host_cycles(&self) -> u64 {
        self.host_cycles
    }

    /// Sets the token queue capacity (default
    /// [`DEFAULT_CHANNEL_CAPACITY`]).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
    }

    /// Current token queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if input channel `chan` can accept a token.
    pub fn can_accept(&self, chan: usize) -> bool {
        self.in_queues
            .get(chan)
            .is_some_and(|q| q.len() < self.capacity)
    }

    /// Enqueues a token on input channel `chan`.
    ///
    /// # Errors
    ///
    /// Returns [`LibdnError::ChannelFull`] when the queue is at capacity
    /// and [`LibdnError::NoSuchChannel`] for bad indices.
    pub fn push_input(&mut self, chan: usize, token: Bits) -> Result<()> {
        let name = self.spec.name.clone();
        let q = self
            .in_queues
            .get_mut(chan)
            .ok_or(LibdnError::NoSuchChannel {
                libdn: name.clone(),
                channel: chan,
            })?;
        if q.len() >= self.capacity {
            return Err(LibdnError::ChannelFull {
                libdn: name,
                channel: self.spec.inputs[chan].name.clone(),
            });
        }
        q.push_back(token);
        Ok(())
    }

    /// Dequeues a token from output channel `chan`, if one is ready.
    pub fn pop_output(&mut self, chan: usize) -> Option<Bits> {
        self.out_queues.get_mut(chan)?.pop_front()
    }

    /// Peeks output channel `chan` without consuming.
    pub fn peek_output(&self, chan: usize) -> Option<&Bits> {
        self.out_queues.get(chan)?.front()
    }

    /// Number of tokens queued on input channel `chan`.
    pub fn input_pending(&self, chan: usize) -> usize {
        self.in_queues.get(chan).map_or(0, |q| q.len())
    }

    /// Computes the *current* value of an output channel without firing —
    /// used to fabricate fast-mode seed tokens from reset state.
    ///
    /// # Errors
    ///
    /// Returns [`LibdnError::NoSuchChannel`] for a bad index and
    /// propagates model evaluation failures.
    pub fn sample_output(&mut self, chan: usize) -> Result<Bits> {
        self.model.eval()?;
        let spec = &self
            .spec
            .outputs
            .get(chan)
            .ok_or_else(|| LibdnError::NoSuchChannel {
                libdn: self.spec.name.clone(),
                channel: chan,
            })?
            .channel;
        let mut vals = BTreeMap::new();
        for (port, _) in &spec.ports {
            vals.insert(port.clone(), self.model.peek(port));
        }
        Ok(spec.pack(&vals))
    }

    /// One host cycle: run every output-channel FSM, then the fireFSM.
    ///
    /// Returns `true` when the target advanced a cycle this host cycle.
    ///
    /// # Errors
    ///
    /// Propagates model evaluation failures.
    pub fn host_step(&mut self) -> Result<bool> {
        self.host_cycles += 1;
        let mut progressed = false;

        // Output-channel FSMs: fire once all combinationally connected
        // input channels hold a token and there is queue space.
        for o in 0..self.spec.outputs.len() {
            if self.fired[o] || self.out_queues[o].len() >= self.capacity {
                continue;
            }
            let deps_ready = self.spec.outputs[o]
                .deps
                .iter()
                .all(|&d| !self.in_queues[d].is_empty());
            if !deps_ready {
                continue;
            }
            // Poke the values of every available input channel's head
            // token (ports this output doesn't depend on may be stale,
            // which is harmless by the dependency analysis).
            self.poke_available_inputs();
            self.model.eval()?;
            let spec = &self.spec.outputs[o].channel;
            let mut vals = BTreeMap::new();
            for (port, _) in &spec.ports {
                vals.insert(port.clone(), self.model.peek(port));
            }
            let token = spec.pack(&vals);
            self.out_queues[o].push_back(token);
            self.fired[o] = true;
            progressed = true;
        }

        // fireFSM: all inputs present and all outputs fired -> advance.
        let inputs_ready = self.in_queues.iter().all(|q| !q.is_empty());
        let outputs_done = self.fired.iter().all(|&f| f);
        if inputs_ready && outputs_done {
            self.poke_available_inputs();
            self.model.eval()?;
            self.model.tick();
            for q in &mut self.in_queues {
                q.pop_front();
            }
            for f in &mut self.fired {
                *f = false;
            }
            self.target_cycle += 1;
            return Ok(true);
        }
        Ok(progressed)
    }

    /// Returns `true` if the LI-BDN could make progress right now (some
    /// output can fire or the fireFSM condition holds) — used for deadlock
    /// detection across a network of LI-BDNs.
    pub fn can_progress(&self) -> bool {
        for (o, spec) in self.spec.outputs.iter().enumerate() {
            if !self.fired[o]
                && self.out_queues[o].len() < self.capacity
                && spec.deps.iter().all(|&d| !self.in_queues[d].is_empty())
            {
                return true;
            }
        }
        self.in_queues.iter().all(|q| !q.is_empty()) && self.fired.iter().all(|&f| f)
    }

    /// Returns `true` if the LI-BDN is starved: at least one input
    /// channel holds no token, so the fireFSM (and any output FSM
    /// depending on that channel) cannot run. Used by the engine to
    /// attribute host cycles to input-wait stalls.
    pub fn waiting_on_input(&self) -> bool {
        self.in_queues.iter().any(|q| q.is_empty())
    }

    /// One-line stall report for deadlock diagnostics.
    pub fn stall_report(&self) -> String {
        let ins: Vec<String> = self
            .spec
            .inputs
            .iter()
            .zip(&self.in_queues)
            .map(|(c, q)| format!("{}={}", c.name, q.len()))
            .collect();
        let outs: Vec<String> = self
            .spec
            .outputs
            .iter()
            .zip(&self.fired)
            .map(|(o, f)| format!("{}{}", o.channel.name, if *f { "*" } else { "" }))
            .collect();
        format!(
            "{} @cycle {}: in[{}] out[{}]",
            self.spec.name,
            self.target_cycle,
            ins.join(", "),
            outs.join(", ")
        )
    }

    /// Per-input-channel occupancy, `(channel name, queued tokens)` —
    /// structured stall forensics for the engine's `StallReport`.
    pub fn input_levels(&self) -> Vec<(String, usize)> {
        self.spec
            .inputs
            .iter()
            .zip(&self.in_queues)
            .map(|(c, q)| (c.name.clone(), q.len()))
            .collect()
    }

    /// Per-output-channel fired flags, `(channel name, fired this target
    /// cycle)` — structured stall forensics.
    pub fn output_fired(&self) -> Vec<(String, bool)> {
        self.spec
            .outputs
            .iter()
            .zip(&self.fired)
            .map(|(o, f)| (o.channel.name.clone(), *f))
            .collect()
    }

    /// Captures queue/FSM state plus the wrapped model's state.
    ///
    /// Returns `None` when the model cannot be snapshotted (see
    /// [`TargetModel::snapshot`]).
    pub fn snapshot(&self) -> Option<LiBdnSnapshot> {
        Some(LiBdnSnapshot {
            in_queues: self.in_queues.clone(),
            out_queues: self.out_queues.clone(),
            fired: self.fired.clone(),
            target_cycle: self.target_cycle,
            host_cycles: self.host_cycles,
            target: self.model.snapshot()?,
        })
    }

    /// Restores state captured by [`LiBdn::snapshot`]. Returns `false`
    /// when the snapshot does not fit this LI-BDN or its model.
    pub fn restore(&mut self, snap: &LiBdnSnapshot) -> bool {
        if snap.in_queues.len() != self.in_queues.len()
            || snap.out_queues.len() != self.out_queues.len()
            || snap.fired.len() != self.fired.len()
            || !self.model.restore(&snap.target)
        {
            return false;
        }
        self.in_queues.clone_from(&snap.in_queues);
        self.out_queues.clone_from(&snap.out_queues);
        self.fired.clone_from(&snap.fired);
        self.target_cycle = snap.target_cycle;
        self.host_cycles = snap.host_cycles;
        true
    }

    fn poke_available_inputs(&mut self) {
        for (ci, q) in self.in_queues.iter().enumerate() {
            if let Some(tok) = q.front() {
                let vals = self.spec.inputs[ci].unpack(tok);
                for (port, v) in vals {
                    self.model.poke(&port, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::InterpreterTarget;
    use fireaxe_ir::build::{ModuleBuilder, Sig};
    use fireaxe_ir::{Circuit, Width};

    /// reg-out module: y = r; r <- a (no comb path a->y).
    fn reg_stage() -> Circuit {
        let mut mb = ModuleBuilder::new("S");
        let a = mb.input("a", 8);
        let y = mb.output("y", 8);
        let r = mb.reg("r", 8, 0);
        mb.connect_sig(&r, &a);
        mb.connect_sig(&y, &r);
        Circuit::from_modules("S", vec![mb.finish()], "S")
    }

    /// comb module: y = a + 1 (comb path a->y).
    fn comb_stage() -> Circuit {
        let mut mb = ModuleBuilder::new("C");
        let a = mb.input("a", 8);
        let y = mb.output("y", 8);
        mb.connect_sig(&y, &a.add(&Sig::lit(1, 8)));
        Circuit::from_modules("C", vec![mb.finish()], "C")
    }

    fn chan(name: &str, port: &str, w: u32) -> ChannelSpec {
        ChannelSpec::new(name, vec![(port.to_string(), Width::new(w))])
    }

    fn make_bdn(circuit: &Circuit, deps: Vec<usize>) -> LiBdn {
        let spec = LiBdnSpec {
            name: circuit.name.clone(),
            inputs: vec![chan("in_a", "a", 8)],
            outputs: vec![OutputChannelSpec {
                channel: chan("out_y", "y", 8),
                deps,
            }],
        };
        LiBdn::new(spec, Box::new(InterpreterTarget::new(circuit).unwrap())).unwrap()
    }

    #[test]
    fn source_output_fires_without_inputs() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        assert!(bdn.host_step().unwrap());
        assert_eq!(bdn.pop_output(0).unwrap().to_u64(), 0); // reset value
                                                            // But the target cannot advance without an input token.
        assert_eq!(bdn.target_cycle(), 0);
    }

    #[test]
    fn sink_output_waits_for_dependency() {
        let mut bdn = make_bdn(&comb_stage(), vec![0]);
        assert!(!bdn.host_step().unwrap());
        assert!(bdn.peek_output(0).is_none());
        bdn.push_input(0, Bits::from_u64(41, 8)).unwrap();
        bdn.host_step().unwrap();
        assert_eq!(bdn.pop_output(0).unwrap().to_u64(), 42);
    }

    #[test]
    fn fire_fsm_advances_target() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        bdn.push_input(0, Bits::from_u64(9, 8)).unwrap();
        // Host step 1: output fires (value 0) and fireFSM advances
        // (input present + output fired in the same host cycle).
        let mut advanced = false;
        for _ in 0..3 {
            advanced |= bdn.host_step().unwrap() && bdn.target_cycle() == 1;
            if bdn.target_cycle() == 1 {
                break;
            }
        }
        assert!(advanced);
        // Next cycle's output token carries the registered 9.
        bdn.push_input(0, Bits::from_u64(0, 8)).unwrap();
        while bdn.target_cycle() < 2 {
            bdn.host_step().unwrap();
        }
        bdn.pop_output(0).unwrap(); // token for cycle 0
        assert_eq!(bdn.pop_output(0).unwrap().to_u64(), 9);
    }

    #[test]
    fn channel_capacity_enforced() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        bdn.set_capacity(2);
        bdn.push_input(0, Bits::from_u64(1, 8)).unwrap();
        bdn.push_input(0, Bits::from_u64(2, 8)).unwrap();
        assert!(!bdn.can_accept(0));
        assert!(matches!(
            bdn.push_input(0, Bits::from_u64(3, 8)),
            Err(LibdnError::ChannelFull { .. })
        ));
    }

    #[test]
    fn output_backpressure_stalls_target() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        bdn.set_capacity(2);
        // Fill output queue without ever draining it.
        for v in 0..4 {
            bdn.push_input(0, Bits::from_u64(v, 8)).unwrap();
            for _ in 0..4 {
                bdn.host_step().unwrap();
            }
        }
        // Only capacity-many target cycles can complete beyond queue space.
        assert!(bdn.target_cycle() <= 3);
    }

    #[test]
    fn host_decoupling_is_timing_independent() {
        // Feeding tokens with different host-side delays must produce the
        // same target-visible sequence.
        let run = |delays: &[usize]| -> Vec<u64> {
            let mut bdn = make_bdn(&reg_stage(), vec![]);
            let inputs = [3u64, 1, 4, 1, 5, 9, 2, 6];
            let mut outs = Vec::new();
            let mut fed = 0;
            let mut wait = delays[0];
            for _ in 0..200 {
                if fed < inputs.len() {
                    if wait == 0 && bdn.can_accept(0) {
                        bdn.push_input(0, Bits::from_u64(inputs[fed], 8)).unwrap();
                        fed += 1;
                        if fed < inputs.len() {
                            wait = delays[fed % delays.len()];
                        }
                    } else {
                        wait = wait.saturating_sub(1);
                    }
                }
                bdn.host_step().unwrap();
                while let Some(t) = bdn.pop_output(0) {
                    outs.push(t.to_u64());
                }
            }
            outs.truncate(inputs.len());
            outs
        };
        let fast = run(&[0]);
        let slow = run(&[0, 3, 1, 7]);
        assert_eq!(fast, slow);
        assert_eq!(fast[0], 0); // reset value first
        assert_eq!(&fast[1..4], &[3, 1, 4]); // registered inputs follow
    }

    #[test]
    fn bad_dependency_rejected() {
        let spec = LiBdnSpec {
            name: "B".into(),
            inputs: vec![],
            outputs: vec![OutputChannelSpec {
                channel: chan("o", "y", 8),
                deps: vec![0],
            }],
        };
        assert!(matches!(
            LiBdn::new(
                spec,
                Box::new(InterpreterTarget::new(&reg_stage()).unwrap())
            ),
            Err(LibdnError::BadDependency { .. })
        ));
    }

    #[test]
    fn sample_output_reflects_reset_state() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        // Reset value of the register is 0; sampling must not fire.
        assert_eq!(bdn.sample_output(0).unwrap().to_u64(), 0);
        assert!(bdn.peek_output(0).is_none(), "sampling is not firing");
        assert_eq!(bdn.target_cycle(), 0);
    }

    #[test]
    fn input_pending_counts_tokens() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        assert_eq!(bdn.input_pending(0), 0);
        bdn.push_input(0, Bits::from_u64(1, 8)).unwrap();
        bdn.push_input(0, Bits::from_u64(2, 8)).unwrap();
        assert_eq!(bdn.input_pending(0), 2);
        assert_eq!(bdn.input_pending(99), 0);
    }

    #[test]
    fn host_cycles_count_steps() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        for _ in 0..7 {
            bdn.host_step().unwrap();
        }
        assert_eq!(bdn.host_cycles(), 7);
    }

    #[test]
    fn snapshot_round_trip_preserves_queues_and_target() {
        let mut bdn = make_bdn(&reg_stage(), vec![]);
        bdn.push_input(0, Bits::from_u64(9, 8)).unwrap();
        while bdn.target_cycle() < 1 {
            bdn.host_step().unwrap();
        }
        bdn.push_input(0, Bits::from_u64(5, 8)).unwrap();
        let snap = bdn.snapshot().unwrap();
        assert_eq!(snap.target_cycle(), 1);

        // Diverge, then roll back.
        while bdn.target_cycle() < 2 {
            bdn.host_step().unwrap();
        }
        assert!(bdn.restore(&snap));
        assert_eq!(bdn.target_cycle(), 1);
        assert_eq!(bdn.input_pending(0), 1, "queued token restored");
        // Replay: the same outputs emerge (reset value, then 9).
        while bdn.target_cycle() < 2 {
            bdn.host_step().unwrap();
        }
        assert_eq!(bdn.pop_output(0).unwrap().to_u64(), 0);
        assert_eq!(bdn.pop_output(0).unwrap().to_u64(), 9);
    }

    #[test]
    fn structured_stall_accessors() {
        let mut bdn = make_bdn(&comb_stage(), vec![0]);
        assert_eq!(bdn.input_levels(), vec![("in_a".to_string(), 0)]);
        assert_eq!(bdn.output_fired(), vec![("out_y".to_string(), false)]);
        bdn.push_input(0, Bits::from_u64(1, 8)).unwrap();
        bdn.host_step().unwrap();
        assert_eq!(bdn.input_levels(), vec![("in_a".to_string(), 0)]);
    }

    #[test]
    fn boundary_widths_reported() {
        let bdn = make_bdn(&reg_stage(), vec![]);
        assert_eq!(bdn.spec().input_width(), 8);
        assert_eq!(bdn.spec().output_width(), 8);
    }
}
