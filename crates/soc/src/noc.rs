//! Constellation-like NoC generator (paper §III-B, Fig. 4).
//!
//! Generates the three-layer hierarchy the paper partitions across:
//!
//! * **physical layer** (`NocPhysical`) — ring-connected router nodes with
//!   registered (hence combinationally decoupled, latency-insensitive)
//!   ring ports — exactly the property that makes router boundaries good
//!   cut points;
//! * **protocol layer** (`NocProtocol`) — per-node protocol converters
//!   between the tiles' ready-valid streams and router flits;
//! * **top layer** (`Noc`) — per-node clock-domain-crossing register
//!   stages.
//!
//! All of it is real interpreted RTL. Flits carry an embedded valid bit;
//! see [`crate::behaviors::FlitLayout`] for the packing.

use crate::behaviors::FlitLayout;
use fireaxe_ir::build::{ModuleBuilder, Sig};
use fireaxe_ir::{Circuit, Module};

/// NoC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Number of nodes (tiles + subsystem).
    pub nodes: usize,
    /// Flit payload width in bits.
    pub payload_bits: u32,
}

impl NocConfig {
    /// The flit layout used on every link.
    pub fn flit(&self) -> FlitLayout {
        FlitLayout {
            payload_bits: self.payload_bits,
        }
    }

    /// Total flit width.
    pub fn flit_bits(&self) -> u32 {
        self.flit().width()
    }
}

/// Builds the unidirectional ring router module.
///
/// Ports: `ring_in`/`ring_out` (flits, registered output — no
/// combinational path, the property FireRipper's NoC mode relies on),
/// `local_in_valid/local_in_bits/local_in_ready` (injection) and
/// `local_out` (delivery), plus `my_id`.
pub fn make_router_module(name: &str, cfg: &NocConfig) -> Module {
    let f = cfg.flit_bits();
    let p = cfg.payload_bits;
    let mut mb = ModuleBuilder::new(name);
    let ring_in = mb.input("ring_in", f);
    let local_in_valid = mb.input("local_in_valid", 1);
    let local_in_bits = mb.input("local_in_bits", f);
    let my_id = mb.input("my_id", 6);
    let ring_out = mb.output("ring_out", f);
    let local_out = mb.output("local_out", f);
    let local_in_ready = mb.output("local_in_ready", 1);

    let in_valid = mb.node("in_valid", &ring_in.bits(p + 14, p + 14));
    let in_dest = mb.node("in_dest", &ring_in.bits(p + 13, p + 8));
    let deliver = mb.node("deliver", &in_valid.and(&in_dest.eq(&my_id)));
    let forward = mb.node("forward", &in_valid.and(&deliver.not()));

    // Registered outputs: the ring hop is one cycle.
    let ring_out_r = mb.reg("ring_out_r", f, 0);
    let local_out_r = mb.reg("local_out_r", f, 0);
    // Forwarded traffic has priority over local injection.
    let inject = mb.node("inject", &forward.not().and(&local_in_valid));
    mb.connect_sig(
        &ring_out_r,
        &forward.mux(
            &ring_in,
            &inject.mux(&local_in_bits, &Sig::lit(0, 64).resize(f)),
        ),
    );
    mb.connect_sig(
        &local_out_r,
        &deliver.mux(&ring_in, &Sig::lit(0, 64).resize(f)),
    );
    mb.connect_sig(&ring_out, &ring_out_r);
    mb.connect_sig(&local_out, &local_out_r);
    mb.connect_sig(&local_in_ready, &forward.not());
    mb.finish()
}

/// Builds the protocol converter: tile-side ready-valid stream to router
/// local ports. The rx direction adds one register stage.
pub fn make_protocol_converter_module(name: &str, cfg: &NocConfig) -> Module {
    let f = cfg.flit_bits();
    let mut mb = ModuleBuilder::new(name);
    let tile_tx_valid = mb.input("tile_tx_valid", 1);
    let tile_tx_bits = mb.input("tile_tx_bits", f);
    let loc_in_ready = mb.input("loc_in_ready", 1);
    let loc_out = mb.input("loc_out", f);
    let tile_tx_ready = mb.output("tile_tx_ready", 1);
    let tile_rx_valid = mb.output("tile_rx_valid", 1);
    let tile_rx_bits = mb.output("tile_rx_bits", f);
    let loc_in_valid = mb.output("loc_in_valid", 1);
    let loc_in_bits = mb.output("loc_in_bits", f);

    mb.connect_sig(&tile_tx_ready, &loc_in_ready);
    mb.connect_sig(&loc_in_valid, &tile_tx_valid);
    mb.connect_sig(&loc_in_bits, &tile_tx_bits);
    let rx_r = mb.reg("rx_r", f, 0);
    mb.connect_sig(&rx_r, &loc_out);
    let p = cfg.payload_bits;
    let rxv = mb.node("rxv", &rx_r.bits(p + 14, p + 14));
    mb.connect_sig(&tile_rx_valid, &rxv);
    mb.connect_sig(&tile_rx_bits, &rx_r);
    mb.finish()
}

/// Builds the clock-domain-crossing stage: two registers on the rx path,
/// one on the tx path (valid/bits pairs; ready passes through).
pub fn make_cdc_module(name: &str, cfg: &NocConfig) -> Module {
    let f = cfg.flit_bits();
    let mut mb = ModuleBuilder::new(name);
    let tx_valid_in = mb.input("tx_valid_in", 1);
    let tx_bits_in = mb.input("tx_bits_in", f);
    let tx_ready_in = mb.input("tx_ready_in", 1);
    let rx_valid_in = mb.input("rx_valid_in", 1);
    let rx_bits_in = mb.input("rx_bits_in", f);
    let tx_valid_out = mb.output("tx_valid_out", 1);
    let tx_bits_out = mb.output("tx_bits_out", f);
    let tx_ready_out = mb.output("tx_ready_out", 1);
    let rx_valid_out = mb.output("rx_valid_out", 1);
    let rx_bits_out = mb.output("rx_bits_out", f);

    // tx: single sync stage.
    mb.connect_sig(&tx_valid_out, &tx_valid_in);
    mb.connect_sig(&tx_bits_out, &tx_bits_in);
    mb.connect_sig(&tx_ready_out, &tx_ready_in);
    // rx: double sync.
    let s1v = mb.reg("s1v", 1, 0);
    let s1b = mb.reg("s1b", f, 0);
    let s2v = mb.reg("s2v", 1, 0);
    let s2b = mb.reg("s2b", f, 0);
    mb.connect_sig(&s1v, &rx_valid_in);
    mb.connect_sig(&s1b, &rx_bits_in);
    mb.connect_sig(&s2v, &s1v);
    mb.connect_sig(&s2b, &s1b);
    mb.connect_sig(&rx_valid_out, &s2v);
    mb.connect_sig(&rx_bits_out, &s2b);
    mb.finish()
}

/// Builds the bidirectional ring router (the paper's Fig. 9 "Ring" bus is
/// "a bidirectional torus with a shortest path routing scheme").
///
/// Two independent registered rings (clockwise `cw_*`, counter-clockwise
/// `ccw_*`); injection picks the shortest direction toward the
/// destination. Local delivery is lossless via deflection: when both
/// rings would deliver in the same cycle, the counter-clockwise flit is
/// deflected onward and circles back.
pub fn make_bidir_router_module(name: &str, cfg: &NocConfig) -> Module {
    let f = cfg.flit_bits();
    let p = cfg.payload_bits;
    let n = cfg.nodes as u64;
    let mut mb = ModuleBuilder::new(name);
    let cw_in = mb.input("cw_in", f);
    let ccw_in = mb.input("ccw_in", f);
    let local_in_valid = mb.input("local_in_valid", 1);
    let local_in_bits = mb.input("local_in_bits", f);
    let my_id = mb.input("my_id", 6);
    let cw_out = mb.output("cw_out", f);
    let ccw_out = mb.output("ccw_out", f);
    let local_out = mb.output("local_out", f);
    let local_in_ready = mb.output("local_in_ready", 1);

    let valid_of = |s: &Sig| s.bits(p + 14, p + 14);
    let dest_of = |s: &Sig| s.bits(p + 13, p + 8);

    let cw_valid = mb.node("cw_valid", &valid_of(&cw_in));
    let cw_dest = mb.node("cw_dest", &dest_of(&cw_in));
    let ccw_valid = mb.node("ccw_valid", &valid_of(&ccw_in));
    let ccw_dest = mb.node("ccw_dest", &dest_of(&ccw_in));

    let cw_here = mb.node("cw_here", &cw_valid.and(&cw_dest.eq(&my_id)));
    let ccw_here = mb.node("ccw_here", &ccw_valid.and(&ccw_dest.eq(&my_id)));
    let cw_fwd = mb.node("cw_fwd", &cw_valid.and(&cw_here.not()));
    // Deflect the ccw flit when the cw ring wins local delivery.
    let ccw_deliver = mb.node("ccw_deliver", &ccw_here.and(&cw_here.not()));
    let ccw_fwd = mb.node("ccw_fwd", &ccw_valid.and(&ccw_deliver.not()));

    // Shortest-path direction for the locally injected flit.
    let inj_dest = mb.node("inj_dest", &dest_of(&local_in_bits));
    let fwd_dist = mb.node(
        "fwd_dist",
        &inj_dest.geq(&my_id).mux(
            &inj_dest.sub(&my_id),
            &inj_dest.add(&Sig::lit(n, 6)).sub(&my_id).resize(6),
        ),
    );
    let go_cw = mb.node(
        "go_cw",
        &fwd_dist.resize(7).lt(&Sig::lit(n.div_ceil(2) + 1, 7)),
    );
    let cw_slot_free = mb.node("cw_slot_free", &cw_fwd.not());
    let ccw_slot_free = mb.node("ccw_slot_free", &ccw_fwd.not());
    let can_inject = mb.node("can_inject", &go_cw.mux(&cw_slot_free, &ccw_slot_free));
    mb.connect_sig(&local_in_ready, &can_inject);
    let inject_cw = mb.node("inject_cw", &local_in_valid.and(&go_cw).and(&cw_slot_free));
    let inject_ccw = mb.node(
        "inject_ccw",
        &local_in_valid.and(&go_cw.not()).and(&ccw_slot_free),
    );

    let zero = Sig::lit(0, 64).resize(f);
    let cw_out_r = mb.reg("cw_out_r", f, 0);
    let ccw_out_r = mb.reg("ccw_out_r", f, 0);
    let local_out_r = mb.reg("local_out_r", f, 0);
    mb.connect_sig(
        &cw_out_r,
        &cw_fwd.mux(&cw_in, &inject_cw.mux(&local_in_bits, &zero)),
    );
    mb.connect_sig(
        &ccw_out_r,
        &ccw_fwd.mux(&ccw_in, &inject_ccw.mux(&local_in_bits, &zero)),
    );
    mb.connect_sig(
        &local_out_r,
        &cw_here.mux(&cw_in, &ccw_deliver.mux(&ccw_in, &zero)),
    );
    mb.connect_sig(&cw_out, &cw_out_r);
    mb.connect_sig(&ccw_out, &ccw_out_r);
    mb.connect_sig(&local_out, &local_out_r);
    mb.finish()
}

/// Standalone bidirectional-ring circuit: routers only, local ports
/// punched to the top (`node{i}_*`).
pub fn bidir_ring_circuit(cfg: &NocConfig) -> Circuit {
    assert!((2..=64).contains(&cfg.nodes));
    let f = cfg.flit_bits();
    let n = cfg.nodes;
    let router = make_bidir_router_module("BidirRouter", cfg);
    let mut top = ModuleBuilder::new("BidirRing");
    for i in 0..n {
        top.inst(format!("r{i}"), "BidirRouter");
    }
    for i in 0..n {
        let next = (i + 1) % n;
        let prev = (i + n - 1) % n;
        let cw = top.inst_port(&format!("r{i}"), "cw_out");
        top.connect_inst(&format!("r{next}"), "cw_in", &cw);
        let ccw = top.inst_port(&format!("r{i}"), "ccw_out");
        top.connect_inst(&format!("r{prev}"), "ccw_in", &ccw);
        top.connect_inst(&format!("r{i}"), "my_id", &Sig::lit(i as u64, 6));
        let liv = top.input(format!("node{i}_tx_valid"), 1);
        let lib = top.input(format!("node{i}_tx_bits"), f);
        let lir = top.output(format!("node{i}_tx_ready"), 1);
        let lo = top.output(format!("node{i}_rx"), f);
        top.connect_inst(&format!("r{i}"), "local_in_valid", &liv);
        top.connect_inst(&format!("r{i}"), "local_in_bits", &lib);
        let rr = top.inst_port(&format!("r{i}"), "local_in_ready");
        top.connect_sig(&lir, &rr);
        let ro = top.inst_port(&format!("r{i}"), "local_out");
        top.connect_sig(&lo, &ro);
    }
    Circuit::from_modules("BidirRing", vec![top.finish(), router], "BidirRing")
}

/// The generated NoC: its circuit modules plus the router instance paths
/// (in node-index order) that NoC-partition-mode consumes.
#[derive(Debug, Clone)]
pub struct GeneratedNoc {
    /// Modules to add to the design: `[Noc, NocProtocol, NocPhysical,
    /// RingRouter, ProtoConv, NocCdc]`.
    pub modules: Vec<Module>,
    /// Name of the top NoC module to instantiate.
    pub top_module: String,
    /// Router instance paths *relative to the NoC instance* (prepend
    /// `"<noc_inst>."` for absolute paths).
    pub router_subpaths: Vec<String>,
    /// Configuration echoed back.
    pub config: NocConfig,
}

/// Generates the three-layer ring NoC.
///
/// Per node `i`, the top module exposes `node{i}_tx_valid/bits/ready`
/// (into the NoC) and `node{i}_rx_valid/bits` (out of the NoC).
///
/// # Panics
///
/// Panics on fewer than 2 nodes or more than 64 (6-bit destinations).
pub fn generate_ring_noc(cfg: &NocConfig) -> GeneratedNoc {
    assert!(
        (2..=64).contains(&cfg.nodes),
        "ring NoC supports 2..=64 nodes"
    );
    let f = cfg.flit_bits();
    let n = cfg.nodes;
    let router = make_router_module("RingRouter", cfg);
    let pc = make_protocol_converter_module("ProtoConv", cfg);
    let cdc = make_cdc_module("NocCdc", cfg);

    // Physical layer.
    let mut phys = ModuleBuilder::new("NocPhysical");
    for i in 0..n {
        phys.inst(format!("r{i}"), "RingRouter");
    }
    for i in 0..n {
        let next = (i + 1) % n;
        let out = phys.inst_port(&format!("r{i}"), "ring_out");
        phys.connect_inst(&format!("r{next}"), "ring_in", &out);
        phys.connect_inst(&format!("r{i}"), "my_id", &Sig::lit(i as u64, 6));
        // Punch local ports to the physical layer boundary.
        let liv = phys.input(format!("node{i}_local_in_valid"), 1);
        let lib = phys.input(format!("node{i}_local_in_bits"), f);
        let lir = phys.output(format!("node{i}_local_in_ready"), 1);
        let lo = phys.output(format!("node{i}_local_out"), f);
        phys.connect_inst(&format!("r{i}"), "local_in_valid", &liv);
        phys.connect_inst(&format!("r{i}"), "local_in_bits", &lib);
        let r_ready = phys.inst_port(&format!("r{i}"), "local_in_ready");
        phys.connect_sig(&lir, &r_ready);
        let r_out = phys.inst_port(&format!("r{i}"), "local_out");
        phys.connect_sig(&lo, &r_out);
    }
    let phys = phys.finish();

    // Protocol layer.
    let mut proto = ModuleBuilder::new("NocProtocol");
    proto.inst("phys", "NocPhysical");
    for i in 0..n {
        proto.inst(format!("pc{i}"), "ProtoConv");
        let v = proto.inst_port(&format!("pc{i}"), "loc_in_valid");
        proto.connect_inst("phys", &format!("node{i}_local_in_valid"), &v);
        let b = proto.inst_port(&format!("pc{i}"), "loc_in_bits");
        proto.connect_inst("phys", &format!("node{i}_local_in_bits"), &b);
        let r = proto.inst_port("phys", &format!("node{i}_local_in_ready"));
        proto.connect_inst(&format!("pc{i}"), "loc_in_ready", &r);
        let lo = proto.inst_port("phys", &format!("node{i}_local_out"));
        proto.connect_inst(&format!("pc{i}"), "loc_out", &lo);
        // Tile-facing ports up to the protocol boundary.
        let ttv = proto.input(format!("node{i}_tx_valid"), 1);
        let ttb = proto.input(format!("node{i}_tx_bits"), f);
        let ttr = proto.output(format!("node{i}_tx_ready"), 1);
        let trv = proto.output(format!("node{i}_rx_valid"), 1);
        let trb = proto.output(format!("node{i}_rx_bits"), f);
        proto.connect_inst(&format!("pc{i}"), "tile_tx_valid", &ttv);
        proto.connect_inst(&format!("pc{i}"), "tile_tx_bits", &ttb);
        let pr = proto.inst_port(&format!("pc{i}"), "tile_tx_ready");
        proto.connect_sig(&ttr, &pr);
        let pv = proto.inst_port(&format!("pc{i}"), "tile_rx_valid");
        proto.connect_sig(&trv, &pv);
        let pb = proto.inst_port(&format!("pc{i}"), "tile_rx_bits");
        proto.connect_sig(&trb, &pb);
    }
    let proto = proto.finish();

    // Top layer with CDCs.
    let mut top = ModuleBuilder::new("Noc");
    top.inst("proto", "NocProtocol");
    for i in 0..n {
        top.inst(format!("cdc{i}"), "NocCdc");
        let tv = top.input(format!("node{i}_tx_valid"), 1);
        let tb = top.input(format!("node{i}_tx_bits"), f);
        let tr = top.output(format!("node{i}_tx_ready"), 1);
        let rv = top.output(format!("node{i}_rx_valid"), 1);
        let rb = top.output(format!("node{i}_rx_bits"), f);
        top.connect_inst(&format!("cdc{i}"), "tx_valid_in", &tv);
        top.connect_inst(&format!("cdc{i}"), "tx_bits_in", &tb);
        let cv = top.inst_port(&format!("cdc{i}"), "tx_valid_out");
        top.connect_inst("proto", &format!("node{i}_tx_valid"), &cv);
        let cb = top.inst_port(&format!("cdc{i}"), "tx_bits_out");
        top.connect_inst("proto", &format!("node{i}_tx_bits"), &cb);
        let pr = top.inst_port("proto", &format!("node{i}_tx_ready"));
        top.connect_inst(&format!("cdc{i}"), "tx_ready_in", &pr);
        let cr = top.inst_port(&format!("cdc{i}"), "tx_ready_out");
        top.connect_sig(&tr, &cr);
        let prv = top.inst_port("proto", &format!("node{i}_rx_valid"));
        top.connect_inst(&format!("cdc{i}"), "rx_valid_in", &prv);
        let prb = top.inst_port("proto", &format!("node{i}_rx_bits"));
        top.connect_inst(&format!("cdc{i}"), "rx_bits_in", &prb);
        let crv = top.inst_port(&format!("cdc{i}"), "rx_valid_out");
        top.connect_sig(&rv, &crv);
        let crb = top.inst_port(&format!("cdc{i}"), "rx_bits_out");
        top.connect_sig(&rb, &crb);
    }
    let top = top.finish();

    GeneratedNoc {
        modules: vec![top, proto, phys, router, pc, cdc],
        top_module: "Noc".into(),
        router_subpaths: (0..n).map(|i| format!("proto.phys.r{i}")).collect(),
        config: cfg.clone(),
    }
}

/// Standalone NoC circuit for testing (the NoC module as top).
pub fn ring_noc_circuit(cfg: &NocConfig) -> Circuit {
    let noc = generate_ring_noc(cfg);
    Circuit::from_modules("Noc", noc.modules, noc.top_module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviors::flit_kind;
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ir::{Bits, CombAnalysis, Interpreter};

    fn cfg(nodes: usize) -> NocConfig {
        NocConfig {
            nodes,
            payload_bits: 32,
        }
    }

    #[test]
    fn noc_validates_and_routers_are_decoupled() {
        let c = ring_noc_circuit(&cfg(4));
        validate(&c).unwrap();
        // Router ring_out must have no combinational dependency on any
        // input (the Fig. 4 property).
        let a = CombAnalysis::run(&c).unwrap();
        let info = a.module("RingRouter").unwrap();
        assert!(info.output_deps["ring_out"].is_empty());
        assert!(info.output_deps["local_out"].is_empty());
        // local_in_ready IS combinational on ring_in (internal-only port).
        assert!(info.depends("local_in_ready", "ring_in"));
    }

    #[test]
    fn flit_traverses_ring_to_destination() {
        let n = 4;
        let c = ring_noc_circuit(&cfg(n));
        let mut sim = Interpreter::new(&c).unwrap();
        let layout = cfg(n).flit();
        let flit = layout.pack(2, 0, flit_kind::REQ, 0xABCD);
        // Inject at node 0 toward node 2.
        sim.poke("node0_tx_valid", Bits::from_u64(1, 1));
        sim.poke("node0_tx_bits", Bits::from_u64(flit, layout.width()));
        sim.step().unwrap();
        sim.poke("node0_tx_valid", Bits::from_u64(0, 1));
        sim.poke("node0_tx_bits", Bits::from_u64(0, layout.width()));
        // Walk until it pops out at node 2.
        let mut arrived_at = None;
        for cycle in 0..30 {
            sim.eval().unwrap();
            if sim.peek("node2_rx_valid").to_u64() == 1 {
                let got = sim.peek("node2_rx_bits").to_u64();
                let (v, dest, src, kind, payload) = layout.unpack(got);
                assert!(v);
                assert_eq!((dest, src, kind, payload), (2, 0, flit_kind::REQ, 0xABCD));
                arrived_at = Some(cycle);
                break;
            }
            // It must not appear anywhere else.
            for other in [1usize, 3] {
                assert_eq!(
                    sim.peek(&format!("node{other}_rx_valid")).to_u64(),
                    0,
                    "flit misdelivered to node {other}"
                );
            }
            sim.tick();
        }
        let arrived = arrived_at.expect("flit never arrived");
        // 2 ring hops + pc/cdc register stages.
        assert!((3..=10).contains(&arrived), "took {arrived} cycles");
    }

    #[test]
    fn ring_wraps_around() {
        let n = 4;
        let c = ring_noc_circuit(&cfg(n));
        let mut sim = Interpreter::new(&c).unwrap();
        let layout = cfg(n).flit();
        // Node 3 -> node 1 requires wrapping through node 0.
        let flit = layout.pack(1, 3, flit_kind::RESP, 7);
        sim.poke("node3_tx_valid", Bits::from_u64(1, 1));
        sim.poke("node3_tx_bits", Bits::from_u64(flit, layout.width()));
        sim.step().unwrap();
        sim.poke("node3_tx_valid", Bits::from_u64(0, 1));
        sim.poke("node3_tx_bits", Bits::from_u64(0, layout.width()));
        for _ in 0..30 {
            sim.eval().unwrap();
            if sim.peek("node1_rx_valid").to_u64() == 1 {
                let (_, dest, src, _, _) = layout.unpack(sim.peek("node1_rx_bits").to_u64());
                assert_eq!((dest, src), (1, 3));
                return;
            }
            sim.tick();
        }
        panic!("wrap-around flit never arrived");
    }

    #[test]
    fn forwarding_backpressures_local_injection() {
        let c = ring_noc_circuit(&cfg(2));
        let mut sim = Interpreter::new(&c).unwrap();
        let layout = cfg(2).flit();
        // Saturate node 0 with through-traffic from node 1 to node 1
        // (dest != 0 keeps the router forwarding).
        let through = layout.pack(1, 1, flit_kind::REQ, 1);
        sim.poke("node1_tx_valid", Bits::from_u64(1, 1));
        sim.poke("node1_tx_bits", Bits::from_u64(through, layout.width()));
        sim.poke("node0_tx_valid", Bits::from_u64(1, 1));
        sim.poke(
            "node0_tx_bits",
            Bits::from_u64(layout.pack(1, 0, flit_kind::REQ, 2), layout.width()),
        );
        // After the pipeline fills, node0's router forwards node1's flits
        // and must deassert local readiness at least sometimes... run and
        // observe tx_ready toggling low at node 0.
        let mut saw_stall = false;
        for _ in 0..20 {
            sim.eval().unwrap();
            if sim.peek("node0_tx_ready").to_u64() == 0 {
                saw_stall = true;
            }
            sim.tick();
        }
        assert!(saw_stall, "local injection never backpressured");
    }

    #[test]
    fn all_pairs_deliver_on_larger_ring() {
        let n = 8;
        let c = ring_noc_circuit(&cfg(n));
        let layout = cfg(n).flit();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let mut sim = Interpreter::new(&c).unwrap();
                let flit = layout.pack(dst as u64, src as u64, flit_kind::REQ, 0x55);
                sim.poke(&format!("node{src}_tx_valid"), Bits::from_u64(1, 1));
                sim.poke(
                    &format!("node{src}_tx_bits"),
                    Bits::from_u64(flit, layout.width()),
                );
                sim.step().unwrap();
                sim.poke(&format!("node{src}_tx_valid"), Bits::from_u64(0, 1));
                sim.poke(
                    &format!("node{src}_tx_bits"),
                    Bits::from_u64(0, layout.width()),
                );
                let mut delivered = false;
                for _ in 0..4 * n {
                    sim.eval().unwrap();
                    if sim.peek(&format!("node{dst}_rx_valid")).to_u64() == 1 {
                        let (_, d, s, _, p) =
                            layout.unpack(sim.peek(&format!("node{dst}_rx_bits")).to_u64());
                        assert_eq!((d, s, p), (dst as u64, src as u64, 0x55));
                        delivered = true;
                        break;
                    }
                    sim.tick();
                }
                assert!(delivered, "flit {src} -> {dst} never arrived");
            }
        }
    }

    #[test]
    fn bidir_ring_takes_shortest_path() {
        let n = 8;
        let c = bidir_ring_circuit(&cfg(n));
        fireaxe_ir::typecheck::validate(&c).unwrap();
        let layout = cfg(n).flit();
        // Measure delivery latency in both directions: node 0 -> 1 (1 hop
        // cw) must be much faster than if it went 7 hops ccw, and
        // node 0 -> 7 (1 hop ccw) likewise.
        let deliver = |src: usize, dst: usize| -> u32 {
            let mut sim = Interpreter::new(&c).unwrap();
            let flit = layout.pack(dst as u64, src as u64, flit_kind::REQ, 7);
            sim.poke(&format!("node{src}_tx_valid"), Bits::from_u64(1, 1));
            sim.poke(
                &format!("node{src}_tx_bits"),
                Bits::from_u64(flit, layout.width()),
            );
            sim.step().unwrap();
            sim.poke(&format!("node{src}_tx_valid"), Bits::from_u64(0, 1));
            sim.poke(
                &format!("node{src}_tx_bits"),
                Bits::from_u64(0, layout.width()),
            );
            for cycle in 0..(4 * n as u32) {
                sim.eval().unwrap();
                let rx = sim.peek(&format!("node{dst}_rx")).to_u64();
                if layout.unpack(rx).0 {
                    return cycle;
                }
                sim.tick();
            }
            panic!("flit {src} -> {dst} never arrived");
        };
        let fwd = deliver(0, 1);
        let bwd = deliver(0, n - 1);
        assert!(fwd <= 3, "1 cw hop took {fwd} cycles");
        assert!(bwd <= 3, "1 ccw hop took {bwd} cycles (shortest path!)");
        let mid = deliver(0, n / 2);
        assert!(mid >= fwd, "diameter hop count {mid} < neighbor {fwd}");
    }

    #[test]
    fn bidir_ring_all_pairs() {
        let n = 6;
        let c = bidir_ring_circuit(&cfg(n));
        let layout = cfg(n).flit();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let mut sim = Interpreter::new(&c).unwrap();
                let flit = layout.pack(dst as u64, src as u64, flit_kind::RESP, 3);
                sim.poke(&format!("node{src}_tx_valid"), Bits::from_u64(1, 1));
                sim.poke(
                    &format!("node{src}_tx_bits"),
                    Bits::from_u64(flit, layout.width()),
                );
                sim.step().unwrap();
                sim.poke(&format!("node{src}_tx_valid"), Bits::from_u64(0, 1));
                sim.poke(
                    &format!("node{src}_tx_bits"),
                    Bits::from_u64(0, layout.width()),
                );
                let mut ok = false;
                for _ in 0..4 * n {
                    sim.eval().unwrap();
                    let (v, d, s, _, _) =
                        layout.unpack(sim.peek(&format!("node{dst}_rx")).to_u64());
                    if v {
                        assert_eq!((d, s), (dst as u64, src as u64));
                        ok = true;
                        break;
                    }
                    sim.tick();
                }
                assert!(ok, "{src} -> {dst} undelivered");
            }
        }
    }

    #[test]
    fn bidir_router_is_boundary_decoupled() {
        // Both ring directions are registered: legal NoC-mode cut points.
        let c = bidir_ring_circuit(&cfg(4));
        let a = CombAnalysis::run(&c).unwrap();
        let info = a.module("BidirRouter").unwrap();
        assert!(info.output_deps["cw_out"].is_empty());
        assert!(info.output_deps["ccw_out"].is_empty());
    }

    #[test]
    fn router_paths_resolve() {
        let c = ring_noc_circuit(&cfg(3));
        let noc = generate_ring_noc(&cfg(3));
        for p in &noc.router_subpaths {
            // Paths are relative to the NoC instance; in the standalone
            // circuit the NoC is the top, so they resolve directly.
            assert_eq!(
                fireaxe_ripper::hier::resolve_path(&c, p).unwrap(),
                "RingRouter"
            );
        }
    }
}
