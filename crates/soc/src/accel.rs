//! Accelerator RTL: Sha3-like and Gemmini-like blocks.
//!
//! These are the Table II validation targets: small accelerators built as
//! *real interpreted RTL* so that partitioning them onto their own
//! (simulated) FPGA exercises genuine ready-valid traffic, and the
//! fast-mode cycle error *emerges* from the boundary rewrites rather than
//! being modeled.
//!
//! Both expose the same memory-master interface, complementary to
//! [`crate::mem::make_memory_module`]:
//!
//! * `mreq_valid/mreq_ready/mreq_bits` (request out),
//! * `mresp_valid/mresp_ready/mresp_bits` (response in),
//! * `go` (level), `done` (sticky).
//!
//! The Sha3-like block absorbs 20 words, runs 24 permutation rounds on a
//! 4×64-bit state, and writes back 4 words — a short, memory-latency-bound
//! operation, which is why the paper measures its fast-mode error as the
//! largest of the three targets. The Gemmini-like block fetches two
//! operand tiles, grinds through a long MAC schedule, and writes back a
//! result tile — compute-bound, hence tiny relative error.

use crate::mem::MemReqLayout;
use fireaxe_ir::build::{ModuleBuilder, Sig};
use fireaxe_ir::Module;

/// Memory request layout shared by the accelerators (32-bit words,
/// 64-entry scratchpad).
pub fn accel_mem_layout() -> MemReqLayout {
    MemReqLayout {
        data_bits: 32,
        addr_bits: 6,
    }
}

/// FSM state encodings shared by both accelerators.
const IDLE: u64 = 0;
const FETCH_REQ: u64 = 1;
const FETCH_WAIT: u64 = 2;
const COMPUTE: u64 = 3;
const WRITEBACK: u64 = 4;
const FINISHED: u64 = 5;

struct AccelShape {
    name: &'static str,
    fetch_words: u64,
    compute_cycles: u64,
    writeback_words: u64,
}

/// Builds the Sha3-like accelerator module.
pub fn make_sha3_module(name: &str) -> Module {
    build_accel(
        AccelShape {
            name: "sha3",
            fetch_words: 20,
            compute_cycles: 24,
            writeback_words: 4,
        },
        name,
    )
}

/// Builds the Gemmini-like accelerator module (convolution-ish schedule).
pub fn make_gemmini_module(name: &str) -> Module {
    build_accel(
        AccelShape {
            name: "gemmini",
            fetch_words: 56,
            compute_cycles: 3800,
            writeback_words: 16,
        },
        name,
    )
}

fn build_accel(shape: AccelShape, name: &str) -> Module {
    let layout = accel_mem_layout();
    let mut mb = ModuleBuilder::new(name);
    let go = mb.input("go", 1);
    let mreq_ready = mb.input("mreq_ready", 1);
    let mresp_valid = mb.input("mresp_valid", 1);
    let mresp_bits = mb.input("mresp_bits", layout.data_bits);
    let mreq_valid = mb.output("mreq_valid", 1);
    let mreq_bits = mb.output("mreq_bits", layout.width());
    let mresp_ready = mb.output("mresp_ready", 1);
    let done = mb.output("done", 1);

    let state = mb.reg("state", 3, IDLE);
    let cnt = mb.reg("cnt", 13, 0);
    // 4x64-bit mixing state.
    let lanes: Vec<Sig> = (0..4)
        .map(|i| mb.reg(format!("lane{i}"), 64, i as u64 + 1))
        .collect();
    let done_r = mb.reg("done_r", 1, 0);

    let in_state = |s: u64| state.eq(&Sig::lit(s, 3));
    let st_idle = mb.node("st_idle", &in_state(IDLE));
    let st_freq = mb.node("st_freq", &in_state(FETCH_REQ));
    let st_fwait = mb.node("st_fwait", &in_state(FETCH_WAIT));
    let st_comp = mb.node("st_comp", &in_state(COMPUTE));
    let st_wb = mb.node("st_wb", &in_state(WRITEBACK));

    // Request generation: reads during FETCH_REQ, writes during WRITEBACK.
    let req_active = mb.node("req_active", &st_freq.or(&st_wb));
    mb.connect_sig(&mreq_valid, &req_active);
    let wdata = mb.node("wdata", &lanes[0].bits(31, 0).xor(&cnt.resize(32)));
    let rd_addr = cnt.resize(layout.addr_bits);
    let wr_addr = cnt.add(&Sig::lit(32, 13)).resize(layout.addr_bits);
    let addr = mb.node("addr", &st_wb.mux(&wr_addr, &rd_addr));
    // pack: wen | addr | wdata (MSB-first in cat).
    let packed = st_wb
        .resize(1)
        .cat(&addr)
        .cat(&st_wb.mux(&wdata, &Sig::lit(0, 32)));
    mb.connect_sig(&mreq_bits, &packed);
    mb.connect_sig(&mresp_ready, &st_fwait);
    mb.connect_sig(&done, &done_r);

    let req_fire = mb.node("req_fire", &req_active.and(&mreq_ready));
    let resp_fire = mb.node("resp_fire", &st_fwait.and(&mresp_valid));

    // Lane updates: absorb on response, permute each compute cycle.
    let resp_ext = mresp_bits.resize(64);
    let rotl = |s: &Sig, n: u32| s.shl(n).or(&s.shr(64 - n));
    let permuted = [
        lanes[1].xor(&rotl(&lanes[0], 1)),
        lanes[2].xor(&lanes[3].and(&lanes[0].not())),
        lanes[3].xor(&rotl(&lanes[1], 7)),
        lanes[0].xor(&rotl(&lanes[2], 13)),
    ];
    let lane_sel = mb.node("lane_sel", &cnt.bits(1, 0));
    for (i, lane) in lanes.iter().enumerate() {
        let absorb_this = lane_sel.eq(&Sig::lit(i as u64, 2)).and(&resp_fire);
        let absorbed = lane.xor(&resp_ext).xor(&Sig::lit((i as u64 + 1) << 8, 64));
        let next = st_comp.mux(&permuted[i], &absorb_this.mux(&absorbed, lane));
        mb.connect_sig(lane, &next);
    }

    // Control FSM.
    let fetch_last = mb.node("fetch_last", &cnt.eq(&Sig::lit(shape.fetch_words - 1, 13)));
    let comp_last = mb.node(
        "comp_last",
        &cnt.eq(&Sig::lit(shape.compute_cycles - 1, 13)),
    );
    let wb_last = mb.node("wb_last", &cnt.eq(&Sig::lit(shape.writeback_words - 1, 13)));

    let zero = Sig::lit(0, 13);
    let inc = cnt.add(&Sig::lit(1, 13));
    // state transitions
    let next_state = st_idle.mux(
        &go.mux(&Sig::lit(FETCH_REQ, 3), &Sig::lit(IDLE, 3)),
        &st_freq.mux(
            &req_fire.mux(&Sig::lit(FETCH_WAIT, 3), &Sig::lit(FETCH_REQ, 3)),
            &st_fwait.mux(
                &resp_fire.mux(
                    &fetch_last.mux(&Sig::lit(COMPUTE, 3), &Sig::lit(FETCH_REQ, 3)),
                    &Sig::lit(FETCH_WAIT, 3),
                ),
                &st_comp.mux(
                    &comp_last.mux(&Sig::lit(WRITEBACK, 3), &Sig::lit(COMPUTE, 3)),
                    &st_wb.mux(
                        &req_fire
                            .and(&wb_last)
                            .mux(&Sig::lit(FINISHED, 3), &Sig::lit(WRITEBACK, 3)),
                        &state, // FINISHED holds
                    ),
                ),
            ),
        ),
    );
    mb.connect_sig(&state, &next_state);

    // Counter: advances within each phase, resets between phases.
    let next_cnt = st_freq.mux(
        &cnt, // wait for fire; counted on resp
        &st_fwait.mux(
            &resp_fire.mux(&fetch_last.mux(&zero, &inc), &cnt),
            &st_comp.mux(
                &comp_last.mux(&zero, &inc),
                &st_wb.mux(&req_fire.mux(&inc, &cnt), &zero),
            ),
        ),
    );
    mb.connect_sig(&cnt, &next_cnt);
    mb.connect_sig(&done_r, &in_state(FINISHED).mux(&Sig::lit(1, 1), &done_r));

    let _ = shape.name;
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::make_memory_module;
    use fireaxe_ir::build::ModuleBuilder;
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ir::{Bits, Circuit, Interpreter};

    /// Wires an accelerator to a scratchpad; returns the SoC circuit.
    pub(crate) fn accel_soc(accel: Module, mem_latency: u32) -> Circuit {
        let layout = accel_mem_layout();
        let accel_name = accel.name.clone();
        let mem = make_memory_module("Scratchpad", layout.data_bits, 64, mem_latency);

        let mut top = ModuleBuilder::new("AccelSoc");
        let go = top.input("go", 1);
        let done = top.output("done", 1);
        top.inst("accel", &accel_name);
        top.inst("mem", "Scratchpad");
        top.connect_inst("accel", "go", &go);
        let av = top.inst_port("accel", "mreq_valid");
        top.connect_inst("mem", "req_valid", &av);
        let ab = top.inst_port("accel", "mreq_bits");
        top.connect_inst("mem", "req_bits", &ab);
        let mr = top.inst_port("mem", "req_ready");
        top.connect_inst("accel", "mreq_ready", &mr);
        let rv = top.inst_port("mem", "resp_valid");
        top.connect_inst("accel", "mresp_valid", &rv);
        let rb = top.inst_port("mem", "resp_bits");
        top.connect_inst("accel", "mresp_bits", &rb);
        let ar = top.inst_port("accel", "mresp_ready");
        top.connect_inst("mem", "resp_ready", &ar);
        let ad = top.inst_port("accel", "done");
        top.connect_sig(&done, &ad);
        Circuit::from_modules("AccelSoc", vec![top.finish(), accel, mem], "AccelSoc")
    }

    /// Runs monolithically until done; returns the cycle count.
    pub(crate) fn run_to_done(c: &Circuit, max: u64) -> u64 {
        let mut sim = Interpreter::new(c).unwrap();
        sim.poke("go", Bits::from_u64(1, 1));
        for cycle in 0..max {
            sim.eval().unwrap();
            if sim.peek("done").to_u64() == 1 {
                return cycle;
            }
            sim.tick();
        }
        panic!("accelerator did not finish within {max} cycles");
    }

    #[test]
    fn sha3_completes_at_expected_scale() {
        let c = accel_soc(make_sha3_module("Sha3Accel"), 8);
        validate(&c).unwrap();
        let cycles = run_to_done(&c, 5_000);
        // ~20 fetches x (latency + handshake) + 24 rounds + 4 writebacks:
        // a few hundred cycles, like the paper's 302.
        assert!((150..=600).contains(&cycles), "sha3 took {cycles} cycles");
    }

    #[test]
    fn gemmini_completes_at_expected_scale() {
        let c = accel_soc(make_gemmini_module("Gemmini"), 8);
        let cycles = run_to_done(&c, 50_000);
        // Compute-dominated, several thousand cycles like the paper's 4505.
        assert!(
            (4_000..=6_000).contains(&cycles),
            "gemmini took {cycles} cycles"
        );
    }

    #[test]
    fn sha3_writes_back_results() {
        let c = accel_soc(make_sha3_module("Sha3Accel"), 4);
        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("go", Bits::from_u64(1, 1));
        for _ in 0..2_000 {
            sim.step().unwrap();
        }
        sim.eval().unwrap();
        assert_eq!(sim.peek("done").to_u64(), 1);
        // Writeback region (addresses 32..36) holds nonzero digest words.
        let w0 = sim.peek("mem.pending_data"); // last written data passed through
        let _ = w0;
        // Check the digest is state-dependent: two different memory
        // preloads give different writeback data. (Preload by writing via
        // the interpreter's memory is internal; instead check lanes moved.)
        assert_ne!(sim.peek("accel.lane0").to_u64(), 1);
    }

    #[test]
    fn accel_is_deterministic() {
        let c = accel_soc(make_sha3_module("Sha3Accel"), 8);
        assert_eq!(run_to_done(&c, 5_000), run_to_done(&c, 5_000));
    }

    #[test]
    fn memory_latency_moves_sha3_more_than_gemmini() {
        // Sha3 is memory-bound: cycles scale with latency. Gemmini is
        // compute-bound: nearly flat. This is the mechanism behind the
        // paper's Table II error spread.
        let sha_fast = run_to_done(&accel_soc(make_sha3_module("S"), 2), 10_000) as f64;
        let sha_slow = run_to_done(&accel_soc(make_sha3_module("S"), 16), 10_000) as f64;
        let gem_fast = run_to_done(&accel_soc(make_gemmini_module("G"), 2), 50_000) as f64;
        let gem_slow = run_to_done(&accel_soc(make_gemmini_module("G"), 16), 50_000) as f64;
        let sha_growth = sha_slow / sha_fast;
        let gem_growth = gem_slow / gem_fast;
        assert!(sha_growth > 1.5, "sha3 growth {sha_growth}");
        assert!(gem_growth < 1.3, "gemmini growth {gem_growth}");
    }
}
