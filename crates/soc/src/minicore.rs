//! RocketLite: a tiny in-order core as interpreted RTL.
//!
//! Stands in for the paper's Rocket tile in the Table II validation: a
//! real fetch/execute state machine running a ROM-resident program that
//! mixes compute phases with loads/stores over the same ready-valid
//! memory interface as the accelerators. "Linux boot" is represented by a
//! boot-trace program iterated for a configurable number of loop
//! iterations (the paper's run is 3.84 billion cycles on silicon-speed
//! FPGAs; we scale the iteration count down and compare *relative* cycle
//! errors, which is what Table II reports).
//!
//! ISA (op, arg) — op in 3 bits, arg in 13:
//!
//! | op | mnemonic    | effect                                   |
//! |----|-------------|------------------------------------------|
//! | 0  | `NOP`       | pc += 1                                  |
//! | 1  | `COMPUTE n` | busy-loop n cycles (ALU phase)           |
//! | 2  | `LOAD a`    | `acc ^= mem[a]`                            |
//! | 3  | `STORE a`   | `mem[a] = acc`                             |
//! | 4  | `DECJNZ t`  | loop -= 1; if loop != 0 jump to t        |
//! | 5  | `HALT`      | assert `done` forever                    |

use crate::mem::MemReqLayout;
use fireaxe_ir::build::{ModuleBuilder, Sig};
use fireaxe_ir::{Expr, Module};

/// One ROM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Busy the ALU for `n` cycles.
    Compute(u16),
    /// `acc ^= mem[addr]`.
    Load(u8),
    /// `mem[addr] = acc`.
    Store(u8),
    /// Decrement the loop counter; jump to `target` while nonzero.
    DecJnz(u8),
    /// Stop and assert `done`.
    Halt,
}

impl Instr {
    fn encode(self) -> u64 {
        let (op, arg) = match self {
            Instr::Nop => (0u64, 0u64),
            Instr::Compute(n) => (1, u64::from(n)),
            Instr::Load(a) => (2, u64::from(a)),
            Instr::Store(a) => (3, u64::from(a)),
            Instr::DecJnz(t) => (4, u64::from(t)),
            Instr::Halt => (5, 0),
        };
        (op << 13) | (arg & 0x1FFF)
    }
}

/// The memory request layout RocketLite drives (shared with the
/// accelerators).
pub fn core_mem_layout() -> MemReqLayout {
    MemReqLayout {
        data_bits: 32,
        addr_bits: 6,
    }
}

/// The paper-analog "Linux boot" workload: long compute bursts (scaled by
/// `compute_scale`) interleaved with occasional memory traffic, looped via
/// the core's loop counter. Boot is compute-dominated, which is why the
/// paper's Rocket fast-mode error (0.98%) is far below Sha3's.
pub fn boot_program(compute_scale: u16) -> Vec<Instr> {
    let s = compute_scale.max(1);
    vec![
        Instr::Compute(15 * s),
        Instr::Load(1),
        Instr::Compute(10 * s),
        Instr::Store(8),
        Instr::Compute(12 * s),
        Instr::Load(3),
        Instr::DecJnz(0),
        Instr::Halt,
    ]
}

/// Builds the RocketLite core module running `program` with the loop
/// counter preloaded to `loop_count`.
///
/// Ports: the `mreq_*`/`mresp_*` memory-master bundle plus `done`.
///
/// # Panics
///
/// Panics if the program is empty or longer than 32 instructions.
pub fn make_core_module(name: &str, program: &[Instr], loop_count: u32) -> Module {
    assert!(
        !program.is_empty() && program.len() <= 32,
        "program must have 1..=32 instructions"
    );
    let layout = core_mem_layout();
    let mut mb = ModuleBuilder::new(name);
    let mreq_ready = mb.input("mreq_ready", 1);
    let mresp_valid = mb.input("mresp_valid", 1);
    let mresp_bits = mb.input("mresp_bits", layout.data_bits);
    let mreq_valid = mb.output("mreq_valid", 1);
    let mreq_bits = mb.output("mreq_bits", layout.width());
    let mresp_ready = mb.output("mresp_ready", 1);
    let done = mb.output("done", 1);

    let pc = mb.reg("pc", 5, 0);
    let acc = mb.reg("acc", 32, 0);
    let loop_r = mb.reg("loop_r", 32, u64::from(loop_count));
    let busy = mb.reg("busy", 13, 0); // compute countdown
    let waiting = mb.reg("waiting", 1, 0); // load response outstanding
    let halted = mb.reg("halted", 1, 0);

    // ROM: mux tree over the PC.
    let mut rom: Expr = Expr::lit(Instr::Halt.encode(), 16);
    for (i, instr) in program.iter().enumerate().rev() {
        rom = Expr::Mux(
            Box::new(pc.eq(&Sig::lit(i as u64, 5)).into_expr()),
            Box::new(Expr::lit(instr.encode(), 16)),
            Box::new(rom),
        );
    }
    let instr = mb.node("instr", &Sig::from_expr(rom));
    let op = mb.node("op", &instr.bits(15, 13));
    let arg = mb.node("arg", &instr.bits(12, 0));

    let is = |v: u64| op.eq(&Sig::lit(v, 3));
    let op_compute = mb.node("op_compute", &is(1));
    let op_load = mb.node("op_load", &is(2));
    let op_store = mb.node("op_store", &is(3));
    let op_decjnz = mb.node("op_decjnz", &is(4));
    let op_halt = mb.node("op_halt", &is(5));

    let computing = mb.node("computing", &busy.neq(&Sig::lit(0, 13)));
    let active = mb.node(
        "active",
        &halted.not().and(&computing.not()).and(&waiting.not()),
    );

    // Memory interface.
    let want_mem = mb.node("want_mem", &active.and(&op_load.or(&op_store)));
    mb.connect_sig(&mreq_valid, &want_mem);
    let packed = op_store
        .resize(1)
        .cat(&arg.resize(layout.addr_bits))
        .cat(&op_store.mux(&acc, &Sig::lit(0, 32)));
    mb.connect_sig(&mreq_bits, &packed);
    mb.connect_sig(&mresp_ready, &waiting);
    let req_fire = mb.node("req_fire", &want_mem.and(&mreq_ready));
    let resp_fire = mb.node("resp_fire", &waiting.and(&mresp_valid));

    // Datapath updates.
    mb.connect_sig(&acc, &resp_fire.mux(&acc.xor(&mresp_bits), &acc));
    let loop_dec = loop_r.sub(&Sig::lit(1, 32));
    let do_decjnz = mb.node("do_decjnz", &active.and(&op_decjnz));
    mb.connect_sig(&loop_r, &do_decjnz.mux(&loop_dec, &loop_r));
    let taken = mb.node("taken", &do_decjnz.and(&loop_dec.neq(&Sig::lit(0, 32))));

    // Busy counter for COMPUTE.
    let start_compute = mb.node("start_compute", &active.and(&op_compute));
    mb.connect_sig(
        &busy,
        &start_compute.mux(&arg, &computing.mux(&busy.sub(&Sig::lit(1, 13)), &busy)),
    );
    // Outstanding-load flag.
    mb.connect_sig(
        &waiting,
        &req_fire
            .and(&op_load)
            .mux(&Sig::lit(1, 1), &resp_fire.mux(&Sig::lit(0, 1), &waiting)),
    );
    mb.connect_sig(&halted, &active.and(&op_halt).mux(&Sig::lit(1, 1), &halted));
    mb.connect_sig(&done, &halted);

    // PC advance: NOP/DECJNZ-not-taken/STORE-fired advance by 1;
    // COMPUTE advances when the countdown is issued; LOAD advances when
    // the response returns; DECJNZ-taken jumps.
    let pc1 = pc.add(&Sig::lit(1, 5));
    let advance = mb.node(
        "advance",
        &active.and(
            &op_compute
                .or(&op_decjnz)
                .or(&is(0))
                .or(&op_store.and(&req_fire)),
        ),
    );
    let next_pc = taken.mux(&arg.resize(5), &advance.or(&resp_fire).mux(&pc1, &pc));
    mb.connect_sig(&pc, &next_pc);

    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::make_memory_module;
    use fireaxe_ir::build::ModuleBuilder;
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ir::{Circuit, Interpreter};

    /// Core + scratchpad SoC.
    pub(crate) fn core_soc(program: &[Instr], loops: u32, mem_latency: u32) -> Circuit {
        let layout = core_mem_layout();
        let core = make_core_module("RocketLite", program, loops);
        let mem = make_memory_module("Scratchpad", layout.data_bits, 64, mem_latency);
        let mut top = ModuleBuilder::new("CoreSoc");
        let done = top.output("done", 1);
        top.inst("core", "RocketLite");
        top.inst("mem", "Scratchpad");
        let cv = top.inst_port("core", "mreq_valid");
        top.connect_inst("mem", "req_valid", &cv);
        let cb = top.inst_port("core", "mreq_bits");
        top.connect_inst("mem", "req_bits", &cb);
        let mr = top.inst_port("mem", "req_ready");
        top.connect_inst("core", "mreq_ready", &mr);
        let rv = top.inst_port("mem", "resp_valid");
        top.connect_inst("core", "mresp_valid", &rv);
        let rb = top.inst_port("mem", "resp_bits");
        top.connect_inst("core", "mresp_bits", &rb);
        let cr = top.inst_port("core", "mresp_ready");
        top.connect_inst("mem", "resp_ready", &cr);
        let cd = top.inst_port("core", "done");
        top.connect_sig(&done, &cd);
        Circuit::from_modules("CoreSoc", vec![top.finish(), core, mem], "CoreSoc")
    }

    fn cycles_to_done(c: &Circuit, max: u64) -> u64 {
        let mut sim = Interpreter::new(c).unwrap();
        for cycle in 0..max {
            sim.eval().unwrap();
            if sim.peek("done").to_u64() == 1 {
                return cycle;
            }
            sim.tick();
        }
        panic!("core did not halt in {max} cycles");
    }

    #[test]
    fn halts_immediately_on_halt_program() {
        let c = core_soc(&[Instr::Halt], 1, 4);
        validate(&c).unwrap();
        assert!(cycles_to_done(&c, 10) <= 2);
    }

    #[test]
    fn compute_takes_declared_cycles() {
        let base = cycles_to_done(&core_soc(&[Instr::Compute(1), Instr::Halt], 1, 4), 100);
        let more = cycles_to_done(&core_soc(&[Instr::Compute(21), Instr::Halt], 1, 4), 100);
        assert_eq!(more - base, 20);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        // store acc (0) xor'ed with loads; verify store lands in memory.
        let prog = [
            Instr::Load(1),  // acc ^= mem[1] (0)
            Instr::Store(5), // mem[5] = acc
            Instr::Halt,
        ];
        let c = core_soc(&prog, 1, 3);
        let mut sim = Interpreter::new(&c).unwrap();
        for _ in 0..100 {
            sim.step().unwrap();
        }
        sim.eval().unwrap();
        assert_eq!(sim.peek("done").to_u64(), 1);
    }

    #[test]
    fn loop_count_scales_runtime() {
        let c10 = cycles_to_done(&core_soc(&boot_program(4), 10, 4), 100_000);
        let c20 = cycles_to_done(&core_soc(&boot_program(4), 20, 4), 100_000);
        let per_iter = c20 - c10;
        assert!(per_iter >= 10, "each iteration costs cycles: {per_iter}");
        // Linear scaling.
        let c40 = cycles_to_done(&core_soc(&boot_program(4), 40, 4), 100_000);
        assert_eq!(c40 - c20, 2 * per_iter);
    }

    #[test]
    fn memory_latency_shifts_boot_time() {
        let fast = cycles_to_done(&core_soc(&boot_program(4), 50, 2), 200_000);
        let slow = cycles_to_done(&core_soc(&boot_program(4), 50, 12), 200_000);
        assert!(slow > fast);
        // Boot is compute-heavy: relative shift stays moderate (the
        // mechanism behind Rocket's ~1% Table II fast-mode error).
        let rel = (slow - fast) as f64 / fast as f64;
        assert!(rel < 1.0, "relative shift {rel}");
    }
}
