//! Cycle-level behavioral models bound to extern modules.
//!
//! Structural SoC components whose full RTL we do not model (BOOM
//! frontends/backends, tiles, the SoC subsystem) are extern modules in
//! the IR; at simulation time the engine binds them to the
//! [`fireaxe_ir::ExternBehavior`] implementations here. Behavior *keys*
//! are self-describing strings of the form `name?k=v&k=v`, so a circuit
//! carries its own model configuration; [`make_behavior`] is the factory
//! the umbrella crate registers for every key prefix.
//!
//! All models are deterministic: traffic patterns come from a small LCG
//! seeded by configuration, never from wall-clock or global RNG state.

use fireaxe_ir::{BehaviorSnapshot, Bits, ExternBehavior};
use std::collections::{BTreeMap, VecDeque};

/// Mechanical checkpoint support for plain-data models: the snapshot is
/// a boxed clone of the whole model, restore copies it back. Every model
/// in this crate keeps its entire simulation state in ordinary fields,
/// so clone-the-struct is exact — which is what lets designs built from
/// these behavioral models participate in the simulator's
/// checkpoint/rollback recovery.
macro_rules! clone_snapshot {
    () => {
        fn snapshot(&self) -> Option<BehaviorSnapshot> {
            Some(Box::new(self.clone()))
        }

        fn restore(&mut self, snap: &BehaviorSnapshot) -> bool {
            match snap.downcast_ref::<Self>() {
                Some(s) => {
                    self.clone_from(s);
                    true
                }
                None => false,
            }
        }
    };
}

/// Parses `name?k=v&k=v` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorKey {
    /// The model name (before `?`).
    pub name: String,
    /// Key/value parameters.
    pub params: BTreeMap<String, u64>,
}

impl BehaviorKey {
    /// Parses a key string. Unparseable parameter values are ignored.
    pub fn parse(key: &str) -> Self {
        let (name, rest) = key.split_once('?').unwrap_or((key, ""));
        let mut params = BTreeMap::new();
        for kv in rest.split('&').filter(|s| !s.is_empty()) {
            if let Some((k, v)) = kv.split_once('=') {
                if let Ok(v) = v.parse::<u64>() {
                    params.insert(k.to_string(), v);
                }
            }
        }
        BehaviorKey {
            name: name.to_string(),
            params,
        }
    }

    /// Parameter lookup with default.
    pub fn get(&self, k: &str, default: u64) -> u64 {
        self.params.get(k).copied().unwrap_or(default)
    }
}

/// Constructs the behavioral model for a behavior key, if the key names a
/// model this crate provides.
pub fn make_behavior(key: &str, path: &str) -> Option<Box<dyn ExternBehavior>> {
    let mut k = BehaviorKey::parse(key);
    // `id_from_path=1` keys recover the instance id from trailing digits
    // of the instance path (e.g. "tile7" -> 7), so duplicate modules can
    // share one module definition (required by FAME-5).
    if k.get("id_from_path", 0) == 1 && !k.params.contains_key("id") {
        if let Some(id) = trailing_digits(path) {
            k.params.insert("id".into(), id);
        }
    }
    match k.name.as_str() {
        "boom_frontend" => Some(Box::new(FrontendModel::new(&k))),
        "boom_backend" => Some(Box::new(BackendModel::new(&k))),
        "boom_lsu" => Some(Box::new(LsuModel::new(&k))),
        "boom_memsys" => Some(Box::new(MemSysModel::new(&k))),
        "boom_tile" | "inorder_tile" => Some(Box::new(TileModel::new(&k))),
        "soc_subsystem" => Some(Box::new(SubsystemModel::new(&k))),
        "xbar" => Some(Box::new(XbarModel::new(&k))),
        _ => None,
    }
}

/// Parses the trailing decimal digits of the last path segment.
fn trailing_digits(path: &str) -> Option<u64> {
    let seg = path.rsplit('.').next().unwrap_or(path);
    let digits: String = seg
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().ok()
}

fn b1(v: bool) -> Bits {
    Bits::from_u64(u64::from(v), 1)
}

fn get_u64(inputs: &BTreeMap<String, Bits>, port: &str) -> u64 {
    inputs.get(port).map(|b| b.to_u64()).unwrap_or(0)
}

/// Small deterministic LCG for traffic patterns.
#[derive(Debug, Clone)]
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Frontend: streams fetch packets; stalls briefly after redirects.
#[derive(Debug, Clone)]
pub struct FrontendModel {
    packet_id: u64,
    stall: u64,
    fetch_width: u64,
}

impl FrontendModel {
    fn new(k: &BehaviorKey) -> Self {
        FrontendModel {
            packet_id: 0,
            stall: 0,
            fetch_width: k.get("issue", 3),
        }
    }
}

impl ExternBehavior for FrontendModel {
    clone_snapshot!();

    fn reset(&mut self) {
        self.packet_id = 0;
        self.stall = 0;
    }

    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("fetch_packet_valid".into(), b1(self.stall == 0));
        m.insert(
            "fetch_packet_bits".into(),
            Bits::from_u64(self.packet_id * self.fetch_width, 64),
        );
        m
    }

    fn comb_outputs(&mut self, _inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        BTreeMap::new()
    }

    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        if get_u64(inputs, "redirect_valid") == 1 {
            self.stall = 3; // refetch penalty
        } else if self.stall > 0 {
            self.stall -= 1;
        } else if get_u64(inputs, "fetch_packet_ready") == 1 {
            self.packet_id += 1;
        }
    }
}

/// Backend: consumes fetch packets, retires up to `issue` µops per cycle,
/// generates deterministic redirects and LSU traffic, counts commits.
#[derive(Debug, Clone)]
pub struct BackendModel {
    issue: u64,
    rob: u64,
    occupancy: u64,
    commits: u64,
    boot_insts: u64,
    lcg: Lcg,
    redirect_now: bool,
    lsu_outstanding: u64,
}

impl BackendModel {
    fn new(k: &BehaviorKey) -> Self {
        BackendModel {
            issue: k.get("issue", 3),
            rob: k.get("rob", 96),
            occupancy: 0,
            commits: 0,
            boot_insts: k.get("boot", 100_000),
            lcg: Lcg::new(k.get("issue", 3) * 31 + k.get("rob", 96)),
            redirect_now: false,
            lsu_outstanding: 0,
        }
    }
}

impl ExternBehavior for BackendModel {
    clone_snapshot!();

    fn reset(&mut self) {
        self.occupancy = 0;
        self.commits = 0;
        self.redirect_now = false;
        self.lsu_outstanding = 0;
    }

    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("redirect_valid".into(), b1(self.redirect_now));
        m.insert("redirect_bits".into(), Bits::from_u64(self.commits, 64));
        m.insert(
            "lsu_issue_valid".into(),
            b1(self.lsu_outstanding == 0 && self.occupancy > self.rob / 4),
        );
        m.insert("lsu_issue_bits".into(), Bits::from_u64(self.commits, 64));
        m.insert("commits".into(), Bits::from_u64(self.commits, 32));
        m.insert("booted".into(), b1(self.commits >= self.boot_insts));
        m
    }

    fn comb_outputs(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        // Declared comb path: ready = valid && ROB space (cross-module
        // combinational coupling across the partition boundary).
        let valid = get_u64(inputs, "fetch_packet_valid") == 1;
        let mut m = BTreeMap::new();
        m.insert(
            "fetch_packet_ready".into(),
            b1(valid && self.occupancy + 2 * self.issue <= self.rob),
        );
        m
    }

    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        let accepted = get_u64(inputs, "fetch_packet_valid") == 1
            && self.occupancy + 2 * self.issue <= self.rob;
        if accepted {
            self.occupancy += 2 * self.issue;
        }
        // Retire up to issue width; memory stalls gate retirement.
        let can_retire = if self.lsu_outstanding > 0 {
            self.issue / 2
        } else {
            self.issue
        };
        let retired = can_retire.min(self.occupancy);
        self.occupancy -= retired;
        self.commits += retired;
        // Deterministic mispredict every ~64 packets.
        self.redirect_now = accepted && self.lcg.next().is_multiple_of(64);
        if get_u64(inputs, "lsu_done_valid") == 1 && self.lsu_outstanding > 0 {
            self.lsu_outstanding -= 1;
        } else if self.occupancy > self.rob / 4 && self.lsu_outstanding == 0 {
            self.lsu_outstanding = 1;
        }
    }
}

/// LSU: turns issue requests into dmem traffic and completes them when
/// responses return.
#[derive(Debug, Clone)]
pub struct LsuModel {
    pending: VecDeque<u64>,
    done_now: Option<u64>,
}

impl LsuModel {
    fn new(_k: &BehaviorKey) -> Self {
        LsuModel {
            pending: VecDeque::new(),
            done_now: None,
        }
    }
}

impl ExternBehavior for LsuModel {
    clone_snapshot!();

    fn reset(&mut self) {
        self.pending.clear();
        self.done_now = None;
    }

    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("dmem_req_valid".into(), b1(!self.pending.is_empty()));
        m.insert(
            "dmem_req_bits".into(),
            Bits::from_u64(self.pending.front().copied().unwrap_or(0), 64),
        );
        m.insert("lsu_done_valid".into(), b1(self.done_now.is_some()));
        m.insert(
            "lsu_done_bits".into(),
            Bits::from_u64(self.done_now.unwrap_or(0), 64),
        );
        m
    }

    fn comb_outputs(&mut self, _inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        BTreeMap::new()
    }

    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        self.done_now = None;
        if get_u64(inputs, "lsu_issue_valid") == 1 {
            self.pending.push_back(get_u64(inputs, "lsu_issue_bits"));
        }
        if get_u64(inputs, "dmem_resp_valid") == 1 {
            self.done_now = Some(get_u64(inputs, "dmem_resp_bits"));
            self.pending.pop_front();
        }
    }
}

/// Memory subsystem: fixed-latency responder.
#[derive(Debug, Clone)]
pub struct MemSysModel {
    latency: u64,
    in_flight: VecDeque<(u64, u64)>, // (ready_at, tag)
    now: u64,
    resp_now: Option<u64>,
}

impl MemSysModel {
    fn new(k: &BehaviorKey) -> Self {
        MemSysModel {
            latency: k.get("latency", 20),
            in_flight: VecDeque::new(),
            now: 0,
            resp_now: None,
        }
    }
}

impl ExternBehavior for MemSysModel {
    clone_snapshot!();

    fn reset(&mut self) {
        self.in_flight.clear();
        self.now = 0;
        self.resp_now = None;
    }

    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("dmem_resp_valid".into(), b1(self.resp_now.is_some()));
        m.insert(
            "dmem_resp_bits".into(),
            Bits::from_u64(self.resp_now.unwrap_or(0), 64),
        );
        m
    }

    fn comb_outputs(&mut self, _inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        BTreeMap::new()
    }

    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        self.now += 1;
        self.resp_now = None;
        if get_u64(inputs, "dmem_req_valid") == 1 {
            self.in_flight
                .push_back((self.now + self.latency, get_u64(inputs, "dmem_req_bits")));
        }
        if let Some(&(at, tag)) = self.in_flight.front() {
            if at <= self.now {
                self.resp_now = Some(tag);
                self.in_flight.pop_front();
            }
        }
    }
}

/// Flit layout used by tiles, the NoC and the subsystem: `{valid(1),
/// dest(6), src(6), kind(2), payload(P)}` packed LSB-first as
/// `payload | kind | src | dest | valid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitLayout {
    /// Payload width in bits.
    pub payload_bits: u32,
}

/// Flit `kind` values.
pub mod flit_kind {
    /// Request from a tile to the subsystem.
    pub const REQ: u64 = 1;
    /// Response from the subsystem to a tile.
    pub const RESP: u64 = 2;
    /// Trap report (the §V-A supervisor-binary-interface trap).
    pub const TRAP: u64 = 3;
}

impl FlitLayout {
    /// Total flit width.
    ///
    /// # Panics
    ///
    /// Payloads are limited to 48 bits so a flit packs into a `u64`;
    /// wider boundaries come from tile trace ports, not wider flits.
    pub fn width(&self) -> u32 {
        assert!(self.payload_bits <= 48, "flit payload limited to 48 bits");
        self.payload_bits + 15
    }

    /// Packs a flit.
    pub fn pack(&self, dest: u64, src: u64, kind: u64, payload: u64) -> u64 {
        let p = self.payload_bits;
        (payload & ((1u64 << p.min(63)) - 1))
            | ((kind & 0x3) << p)
            | ((src & 0x3F) << (p + 2))
            | ((dest & 0x3F) << (p + 8))
            | (1u64 << (p + 14))
    }

    /// Unpacks `(valid, dest, src, kind, payload)`.
    pub fn unpack(&self, v: u64) -> (bool, u64, u64, u64, u64) {
        let p = self.payload_bits;
        (
            (v >> (p + 14)) & 1 == 1,
            (v >> (p + 8)) & 0x3F,
            (v >> (p + 2)) & 0x3F,
            (v >> p) & 0x3,
            v & ((1u64 << p.min(63)) - 1),
        )
    }
}

/// A core tile on the NoC: generates request flits toward the subsystem,
/// consumes responses, models forward progress, and optionally manifests
/// the §V-A RTL bug.
///
/// Ports: `tx_valid/tx_ready/tx_bits` (out), `rx_valid/rx_bits` (in,
/// always accepted), `trap` (out, sticky).
#[derive(Debug, Clone)]
pub struct TileModel {
    id: u64,
    subsystem: u64,
    period: u64,
    cycle: u64,
    responses: u64,
    requests_sent: u64,
    pending_tx: VecDeque<u64>,
    layout: FlitLayout,
    /// Out-of-order tiles with the `bug=1` parameter trap after this many
    /// serviced responses under the heavy workload (paper §V-A: the BOOM
    /// bug that only manifests with larger binaries).
    bug_threshold: Option<u64>,
    trapped: bool,
    lcg: Lcg,
}

impl TileModel {
    fn new(k: &BehaviorKey) -> Self {
        let heavy = k.get("heavy", 0) == 1;
        let buggy = k.get("bug", 0) == 1;
        TileModel {
            id: k.get("id", 0),
            subsystem: k.get("subsystem", 63),
            period: k.get("period", 8).max(1),
            cycle: 0,
            responses: 0,
            requests_sent: 0,
            pending_tx: VecDeque::new(),
            layout: FlitLayout {
                payload_bits: k.get("payload", 32) as u32,
            },
            bug_threshold: if buggy && heavy {
                Some(k.get("bug_after", 1000))
            } else {
                None
            },
            trapped: false,
            lcg: Lcg::new(k.get("id", 0) + 1),
        }
    }

    /// Responses this tile has received (its progress metric).
    pub fn responses(&self) -> u64 {
        self.responses
    }
}

impl ExternBehavior for TileModel {
    clone_snapshot!();

    fn reset(&mut self) {
        self.cycle = 0;
        self.responses = 0;
        self.requests_sent = 0;
        self.pending_tx.clear();
        self.trapped = false;
    }

    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert(
            "tx_bits".into(),
            Bits::from_u64(
                self.pending_tx.front().copied().unwrap_or(0),
                self.layout.width(),
            ),
        );
        m.insert("trap".into(), b1(self.trapped));
        m.insert("progress".into(), Bits::from_u64(self.responses, 32));
        m
    }

    fn comb_outputs(&mut self, inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        // Declared comb path: valid is credit-gated on the incoming ready
        // (note: the trap-report flit still goes out after the bug fires).
        let valid = !self.pending_tx.is_empty() && get_u64(inputs, "tx_ready") == 1;
        let mut m = BTreeMap::new();
        m.insert("tx_valid".into(), b1(valid));
        m
    }

    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        self.cycle += 1;
        if get_u64(inputs, "tx_ready") == 1 && !self.pending_tx.is_empty() {
            self.pending_tx.pop_front();
        }
        if !self.trapped {
            // Generate a request every `period` cycles with jitter.
            if self.cycle % self.period == self.lcg.next() % self.period {
                let payload = self.requests_sent;
                self.pending_tx.push_back(self.layout.pack(
                    self.subsystem,
                    self.id,
                    flit_kind::REQ,
                    payload,
                ));
                self.requests_sent += 1;
            }
            if get_u64(inputs, "rx_valid") == 1 {
                let (v, dest, _src, kind, _p) = self.layout.unpack(get_u64(inputs, "rx_bits"));
                if v && dest == self.id && kind == flit_kind::RESP {
                    self.responses += 1;
                    if let Some(t) = self.bug_threshold {
                        if self.responses >= t {
                            // The bug manifests: report the SBI trap to
                            // the subsystem and stop making progress.
                            self.trapped = true;
                            self.pending_tx.clear();
                            self.pending_tx.push_back(self.layout.pack(
                                self.subsystem,
                                self.id,
                                flit_kind::TRAP,
                                self.responses,
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// The SoC subsystem (memory controller + I/O): answers tile requests
/// after a fixed service latency.
#[derive(Debug, Clone)]
pub struct SubsystemModel {
    latency: u64,
    now: u64,
    queue: VecDeque<(u64, u64, u64)>, // (ready_at, tile, payload)
    pending_tx: VecDeque<u64>,
    serviced: u64,
    traps: u64,
    layout: FlitLayout,
    id: u64,
}

impl SubsystemModel {
    fn new(k: &BehaviorKey) -> Self {
        SubsystemModel {
            latency: k.get("latency", 12),
            now: 0,
            queue: VecDeque::new(),
            pending_tx: VecDeque::new(),
            serviced: 0,
            traps: 0,
            layout: FlitLayout {
                payload_bits: k.get("payload", 32) as u32,
            },
            id: k.get("id", 63),
        }
    }
}

impl ExternBehavior for SubsystemModel {
    clone_snapshot!();

    fn reset(&mut self) {
        self.now = 0;
        self.queue.clear();
        self.pending_tx.clear();
        self.serviced = 0;
        self.traps = 0;
    }

    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        m.insert("tx_valid".into(), b1(!self.pending_tx.is_empty()));
        m.insert(
            "tx_bits".into(),
            Bits::from_u64(
                self.pending_tx.front().copied().unwrap_or(0),
                self.layout.width(),
            ),
        );
        m.insert("serviced".into(), Bits::from_u64(self.serviced, 32));
        m.insert("traps".into(), Bits::from_u64(self.traps, 32));
        m
    }

    fn comb_outputs(&mut self, _inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        BTreeMap::new()
    }

    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        self.now += 1;
        // Complete the handshake for the flit advertised *this* cycle
        // before queueing newly finished work.
        if get_u64(inputs, "tx_ready") == 1 && !self.pending_tx.is_empty() {
            self.pending_tx.pop_front();
        }
        if get_u64(inputs, "rx_valid") == 1 {
            let (v, dest, src, kind, payload) = self.layout.unpack(get_u64(inputs, "rx_bits"));
            if v && dest == self.id && kind == flit_kind::REQ {
                self.queue
                    .push_back((self.now + self.latency, src, payload));
            } else if v && dest == self.id && kind == flit_kind::TRAP {
                self.traps += 1;
            }
        }
        while let Some(&(at, tile, payload)) = self.queue.front() {
            if at > self.now {
                break;
            }
            self.queue.pop_front();
            self.pending_tx
                .push_back(self.layout.pack(tile, self.id, flit_kind::RESP, payload));
            self.serviced += 1;
        }
    }
}

/// Behavioral crossbar: routes flits between `nodes` ports with a fixed
/// internal latency; one delivery per output port per cycle, FIFO per
/// destination. Used by the Fig. 11/12 sweep SoCs where the bus topology
/// is a crossbar.
#[derive(Debug, Clone)]
pub struct XbarModel {
    nodes: usize,
    latency: u64,
    now: u64,
    layout: FlitLayout,
    queues: Vec<VecDeque<(u64, u64)>>, // per destination: (ready_at, flit)
    rx_now: Vec<Option<u64>>,
}

impl XbarModel {
    fn new(k: &BehaviorKey) -> Self {
        let nodes = k.get("nodes", 2) as usize;
        XbarModel {
            nodes,
            latency: k.get("latency", 2),
            now: 0,
            layout: FlitLayout {
                payload_bits: k.get("payload", 32) as u32,
            },
            queues: vec![VecDeque::new(); nodes],
            rx_now: vec![None; nodes],
        }
    }
}

impl ExternBehavior for XbarModel {
    clone_snapshot!();

    fn reset(&mut self) {
        self.now = 0;
        for q in &mut self.queues {
            q.clear();
        }
        self.rx_now = vec![None; self.nodes];
    }

    fn source_outputs(&mut self) -> BTreeMap<String, Bits> {
        let mut m = BTreeMap::new();
        for i in 0..self.nodes {
            // Accept while the destination queues are shallow.
            m.insert(format!("node{i}_tx_ready"), b1(true));
            m.insert(format!("node{i}_rx_valid"), b1(self.rx_now[i].is_some()));
            m.insert(
                format!("node{i}_rx_bits"),
                Bits::from_u64(self.rx_now[i].unwrap_or(0), self.layout.width()),
            );
        }
        m
    }

    fn comb_outputs(&mut self, _inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        BTreeMap::new()
    }

    fn tick(&mut self, inputs: &BTreeMap<String, Bits>) {
        self.now += 1;
        for i in 0..self.nodes {
            if get_u64(inputs, &format!("node{i}_tx_valid")) == 1 {
                let flit = get_u64(inputs, &format!("node{i}_tx_bits"));
                let (v, dest, _, _, _) = self.layout.unpack(flit);
                if v && (dest as usize) < self.nodes {
                    self.queues[dest as usize].push_back((self.now + self.latency, flit));
                }
            }
        }
        for i in 0..self.nodes {
            self.rx_now[i] = None;
            if let Some(&(at, flit)) = self.queues[i].front() {
                if at <= self.now {
                    self.rx_now[i] = Some(flit);
                    self.queues[i].pop_front();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_parsing() {
        let k = BehaviorKey::parse("boom_tile?id=3&period=8&bug=1");
        assert_eq!(k.name, "boom_tile");
        assert_eq!(k.get("id", 0), 3);
        assert_eq!(k.get("missing", 7), 7);
        let bare = BehaviorKey::parse("soc_subsystem");
        assert_eq!(bare.name, "soc_subsystem");
    }

    #[test]
    fn factory_covers_all_models() {
        for key in [
            "boom_frontend?issue=3",
            "boom_backend?issue=3&rob=96",
            "boom_lsu",
            "boom_memsys",
            "boom_tile?id=1",
            "inorder_tile?id=2",
            "soc_subsystem",
        ] {
            assert!(make_behavior(key, "p").is_some(), "no model for {key}");
        }
        assert!(make_behavior("unknown_thing", "p").is_none());
    }

    #[test]
    fn flit_pack_unpack_roundtrip() {
        let l = FlitLayout { payload_bits: 32 };
        let f = l.pack(24, 3, flit_kind::REQ, 0xDEADBEEF);
        let (v, dest, src, kind, payload) = l.unpack(f);
        assert!(v);
        assert_eq!(dest, 24);
        assert_eq!(src, 3);
        assert_eq!(kind, flit_kind::REQ);
        assert_eq!(payload, 0xDEADBEEF);
        assert!(!l.unpack(0).0);
    }

    #[test]
    fn tile_requests_and_counts_responses() {
        let mut t = TileModel::new(&BehaviorKey::parse("boom_tile?id=2&period=1&subsystem=9"));
        t.reset();
        let mut inputs: BTreeMap<String, Bits> = BTreeMap::new();
        inputs.insert("tx_ready".into(), b1(true));
        inputs.insert("rx_valid".into(), b1(false));
        inputs.insert("rx_bits".into(), Bits::zero(47));
        for _ in 0..20 {
            t.tick(&inputs);
        }
        assert!(t.requests_sent > 5);
        // Feed a response.
        let l = FlitLayout { payload_bits: 32 };
        inputs.insert("rx_valid".into(), b1(true));
        inputs.insert(
            "rx_bits".into(),
            Bits::from_u64(l.pack(2, 9, flit_kind::RESP, 0), 47),
        );
        t.tick(&inputs);
        assert_eq!(t.responses(), 1);
        // Responses addressed elsewhere are ignored.
        inputs.insert(
            "rx_bits".into(),
            Bits::from_u64(l.pack(5, 9, flit_kind::RESP, 0), 47),
        );
        t.tick(&inputs);
        assert_eq!(t.responses(), 1);
    }

    #[test]
    fn buggy_tile_traps_only_under_heavy_workload() {
        let run = |key: &str| {
            let mut t = TileModel::new(&BehaviorKey::parse(key));
            t.reset();
            let l = FlitLayout { payload_bits: 32 };
            let mut inputs: BTreeMap<String, Bits> = BTreeMap::new();
            inputs.insert("tx_ready".into(), b1(true));
            inputs.insert("rx_valid".into(), b1(true));
            inputs.insert(
                "rx_bits".into(),
                Bits::from_u64(l.pack(0, 9, flit_kind::RESP, 0), 47),
            );
            for _ in 0..50 {
                t.tick(&inputs);
            }
            t.source_outputs()["trap"].to_u64() == 1
        };
        assert!(run("boom_tile?id=0&bug=1&heavy=1&bug_after=10"));
        assert!(!run("boom_tile?id=0&bug=1&heavy=0&bug_after=10")); // small binaries
        assert!(!run("inorder_tile?id=0&bug=0&heavy=1&bug_after=10")); // in-order swap
    }

    #[test]
    fn subsystem_answers_after_latency() {
        let mut s = SubsystemModel::new(&BehaviorKey::parse("soc_subsystem?latency=5&id=9"));
        s.reset();
        let l = FlitLayout { payload_bits: 32 };
        let mut inputs: BTreeMap<String, Bits> = BTreeMap::new();
        inputs.insert("tx_ready".into(), b1(true));
        inputs.insert("rx_valid".into(), b1(true));
        inputs.insert(
            "rx_bits".into(),
            Bits::from_u64(l.pack(9, 4, flit_kind::REQ, 77), 47),
        );
        s.tick(&inputs);
        inputs.insert("rx_valid".into(), b1(false));
        let mut first_valid_at = None;
        for i in 1..20 {
            let out = s.source_outputs();
            if out["tx_valid"].to_u64() == 1 && first_valid_at.is_none() {
                first_valid_at = Some(i);
                let (_, dest, src, kind, payload) = l.unpack(out["tx_bits"].to_u64());
                assert_eq!((dest, src, kind, payload), (4, 9, flit_kind::RESP, 77));
            }
            s.tick(&inputs);
        }
        assert_eq!(first_valid_at, Some(6));
    }

    #[test]
    fn backend_commit_rate_scales_with_issue_width() {
        let run = |issue: u64| {
            let mut fe_ready = BTreeMap::new();
            fe_ready.insert("fetch_packet_valid".into(), b1(true));
            fe_ready.insert("lsu_done_valid".into(), b1(true));
            let mut b = BackendModel::new(&BehaviorKey::parse(&format!(
                "boom_backend?issue={issue}&rob=216"
            )));
            b.reset();
            for _ in 0..200 {
                b.tick(&fe_ready);
            }
            b.commits
        };
        assert!(run(6) > run(3));
    }
}
