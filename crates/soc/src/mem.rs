//! Memory subsystem RTL: a fixed-latency scratchpad behind a ready-valid
//! interface.
//!
//! This is the "memory subsystem" side of the Table II validation SoCs:
//! real interpreted RTL, so partitioning it away from a core or
//! accelerator exercises genuine request/response traffic across the
//! boundary. Latency is modeled with an internal response shift pipeline.
//!
//! Interface (all `<prefix>_*` ports, ready-valid per FireAxe convention):
//!
//! * `req_valid/req_ready/req_bits` — request: `{wen(1), addr(A), wdata(W)}`
//!   packed LSB-first as `wdata | addr | wen`;
//! * `resp_valid/resp_ready/resp_bits` — read response data.

use fireaxe_ir::build::{ModuleBuilder, Sig};
use fireaxe_ir::Module;

/// Layout of the packed request word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReqLayout {
    /// Data width.
    pub data_bits: u32,
    /// Address width.
    pub addr_bits: u32,
}

impl MemReqLayout {
    /// Total packed width: wdata + addr + wen.
    pub fn width(&self) -> u32 {
        self.data_bits + self.addr_bits + 1
    }

    /// Packs `(wen, addr, wdata)` into a request word.
    pub fn pack(&self, wen: bool, addr: u64, wdata: u64) -> u64 {
        let a = addr & ((1u64 << self.addr_bits) - 1);
        let d = wdata & mask64(self.data_bits);
        d | (a << self.data_bits) | ((wen as u64) << (self.data_bits + self.addr_bits))
    }
}

fn mask64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Builds a scratchpad memory module named `name`.
///
/// `latency` is the number of cycles between accepting a read request and
/// asserting `resp_valid` (minimum 1). One request may be in flight at a
/// time — matching the simple blocking memories of the paper's validation
/// targets. Writes are acknowledged implicitly (no response).
///
/// # Panics
///
/// Panics if `latency == 0` or `depth` is not a power of two.
pub fn make_memory_module(name: &str, data_bits: u32, depth: u32, latency: u32) -> Module {
    assert!(latency >= 1, "memory latency must be >= 1");
    assert!(depth.is_power_of_two(), "depth must be a power of two");
    let addr_bits = depth.trailing_zeros().max(1);
    let layout = MemReqLayout {
        data_bits,
        addr_bits,
    };
    let mut mb = ModuleBuilder::new(name);
    let req_valid = mb.input("req_valid", 1);
    let req_bits = mb.input("req_bits", layout.width());
    let req_ready = mb.output("req_ready", 1);
    let resp_ready = mb.input("resp_ready", 1);
    let resp_valid = mb.output("resp_valid", 1);
    let resp_bits = mb.output("resp_bits", data_bits);

    let store = mb.mem("store", data_bits, depth);

    // Request decode.
    let wdata = mb.node("wdata", &req_bits.bits(data_bits - 1, 0));
    let addr = mb.node("addr", &req_bits.bits(data_bits + addr_bits - 1, data_bits));
    let wen = mb.node(
        "wen",
        &req_bits.bits(layout.width() - 1, layout.width() - 1),
    );

    // One outstanding read: a countdown timer + a data register.
    let busy = mb.reg("busy", 1, 0);
    let timer = mb.reg("timer", 8, 0);
    let pending_data = mb.reg("pending_data", data_bits, 0);
    let resp_full = mb.reg("resp_full", 1, 0);

    let idle = busy.not().and(&resp_full.not());
    let idle = mb.node("idle", &idle);
    mb.connect_sig(&req_ready, &idle);
    let fire = mb.node("fire", &req_valid.and(&idle));
    let is_read_fire = mb.node("is_read_fire", &fire.and(&wen.not()));
    let is_write_fire = mb.node("is_write_fire", &fire.and(&wen));

    // Write port: committed at the accepting edge.
    mb.mem_write(&store, &addr, &wdata, &is_write_fire);

    // Read data captured at the accepting edge, surfaced after `latency`.
    let rdata = mb.mem_read("rdata", &store, &addr);
    let timer_done = mb.node("timer_done", &timer.eq(&Sig::lit(1, 8)));
    let finishing = mb.node("finishing", &busy.and(&timer_done));

    mb.connect_sig(
        &busy,
        &is_read_fire.mux(&Sig::lit(1, 1), &finishing.mux(&Sig::lit(0, 1), &busy)),
    );
    mb.connect_sig(
        &timer,
        &is_read_fire.mux(
            &Sig::lit(u64::from(latency), 8),
            &busy.mux(&timer.sub(&Sig::lit(1, 8)), &timer),
        ),
    );
    mb.connect_sig(&pending_data, &is_read_fire.mux(&rdata, &pending_data));

    // Response register with handshake.
    let resp_fire = mb.node("resp_fire", &resp_full.and(&resp_ready));
    mb.connect_sig(
        &resp_full,
        &finishing.mux(&Sig::lit(1, 1), &resp_fire.mux(&Sig::lit(0, 1), &resp_full)),
    );
    mb.connect_sig(&resp_valid, &resp_full);
    mb.connect_sig(&resp_bits, &pending_data);

    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ir::{Bits, Circuit, Interpreter};

    fn mem_sim(latency: u32) -> (Interpreter, MemReqLayout) {
        let m = make_memory_module("Mem", 32, 64, latency);
        let layout = MemReqLayout {
            data_bits: 32,
            addr_bits: 6,
        };
        let c = Circuit::from_modules("Mem", vec![m], "Mem");
        validate(&c).unwrap();
        (Interpreter::new(&c).unwrap(), layout)
    }

    fn write(sim: &mut Interpreter, layout: &MemReqLayout, addr: u64, data: u64) {
        sim.poke("req_valid", Bits::from_u64(1, 1));
        sim.poke(
            "req_bits",
            Bits::from_u64(layout.pack(true, addr, data), layout.width()),
        );
        // Wait until accepted.
        loop {
            sim.eval().unwrap();
            let accepted = sim.peek("req_ready").to_u64() == 1;
            sim.tick();
            if accepted {
                break;
            }
        }
        sim.poke("req_valid", Bits::from_u64(0, 1));
    }

    /// Issues a read and returns `(data, cycles_from_accept_to_valid)`.
    fn read(sim: &mut Interpreter, layout: &MemReqLayout, addr: u64) -> (u64, u32) {
        sim.poke("resp_ready", Bits::from_u64(1, 1));
        sim.poke("req_valid", Bits::from_u64(1, 1));
        sim.poke(
            "req_bits",
            Bits::from_u64(layout.pack(false, addr, 0), layout.width()),
        );
        loop {
            sim.eval().unwrap();
            let accepted = sim.peek("req_ready").to_u64() == 1;
            sim.tick();
            if accepted {
                break;
            }
        }
        sim.poke("req_valid", Bits::from_u64(0, 1));
        let mut waited = 0;
        loop {
            sim.eval().unwrap();
            if sim.peek("resp_valid").to_u64() == 1 {
                let d = sim.peek("resp_bits").to_u64();
                sim.tick(); // consume response
                return (d, waited);
            }
            sim.tick();
            waited += 1;
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut sim, layout) = mem_sim(4);
        write(&mut sim, &layout, 5, 0xDEAD);
        write(&mut sim, &layout, 9, 0xBEEF);
        assert_eq!(read(&mut sim, &layout, 5).0, 0xDEAD);
        assert_eq!(read(&mut sim, &layout, 9).0, 0xBEEF);
        assert_eq!(read(&mut sim, &layout, 1).0, 0);
    }

    #[test]
    fn latency_is_respected() {
        for lat in [1u32, 4, 9] {
            let (mut sim, layout) = mem_sim(lat);
            write(&mut sim, &layout, 3, 42);
            let (d, waited) = read(&mut sim, &layout, 3);
            assert_eq!(d, 42);
            assert_eq!(waited, lat, "latency {lat}");
        }
    }

    #[test]
    fn blocking_while_busy() {
        let (mut sim, layout) = mem_sim(6);
        sim.poke("resp_ready", Bits::from_u64(1, 1));
        sim.poke("req_valid", Bits::from_u64(1, 1));
        sim.poke(
            "req_bits",
            Bits::from_u64(layout.pack(false, 0, 0), layout.width()),
        );
        sim.eval().unwrap();
        assert_eq!(sim.peek("req_ready").to_u64(), 1);
        sim.tick();
        // While the read is in flight, further requests are not accepted.
        sim.eval().unwrap();
        assert_eq!(sim.peek("req_ready").to_u64(), 0);
    }

    #[test]
    fn response_backpressure_holds_data() {
        let (mut sim, layout) = mem_sim(2);
        write(&mut sim, &layout, 7, 123);
        sim.poke("resp_ready", Bits::from_u64(0, 1));
        sim.poke("req_valid", Bits::from_u64(1, 1));
        sim.poke(
            "req_bits",
            Bits::from_u64(layout.pack(false, 7, 0), layout.width()),
        );
        sim.eval().unwrap();
        sim.tick();
        sim.poke("req_valid", Bits::from_u64(0, 1));
        for _ in 0..10 {
            sim.step().unwrap();
        }
        sim.eval().unwrap();
        // Response parked until ready.
        assert_eq!(sim.peek("resp_valid").to_u64(), 1);
        assert_eq!(sim.peek("resp_bits").to_u64(), 123);
        sim.poke("resp_ready", Bits::from_u64(1, 1));
        sim.step().unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.peek("resp_valid").to_u64(), 0);
    }

    #[test]
    fn pack_layout() {
        let l = MemReqLayout {
            data_bits: 8,
            addr_bits: 4,
        };
        assert_eq!(l.width(), 13);
        let w = l.pack(true, 0xF, 0xAB);
        assert_eq!(w & 0xFF, 0xAB);
        assert_eq!((w >> 8) & 0xF, 0xF);
        assert_eq!(w >> 12, 1);
    }
}
