//! Full-SoC composition: tiles + interconnect + subsystem.
//!
//! * [`ring_soc`] — N tiles and the SoC subsystem on an (N+1)-node ring
//!   NoC (the §V-A 24-core configuration, partitioned with
//!   NoC-partition-mode);
//! * [`xbar_soc`] — tiles hanging off a behavioral crossbar (the §VI-A
//!   sweep configuration, where the partition interface width is varied
//!   by pulling different numbers of tiles out).
//!
//! Both return the circuit plus the metadata FireRipper and the engine
//! need (router paths, behavior keys are embedded in the circuit itself).

use crate::behaviors::FlitLayout;
use crate::boom::BoomConfig;
use crate::noc::{generate_ring_noc, NocConfig};
use fireaxe_ir::build::ModuleBuilder;
use fireaxe_ir::{Circuit, ExternInfo, Module, Port, ResourceHints};

/// Which core model populates the tiles.
#[derive(Debug, Clone, PartialEq)]
pub enum TileKind {
    /// Out-of-order BOOM tiles of the given configuration.
    Boom(BoomConfig),
    /// In-order control tiles (the §V-A bug-isolation swap).
    InOrder,
}

impl TileKind {
    fn behavior_name(&self) -> &'static str {
        match self {
            TileKind::Boom(_) => "boom_tile",
            TileKind::InOrder => "inorder_tile",
        }
    }

    fn luts(&self) -> u64 {
        match self {
            TileKind::Boom(cfg) => cfg.total_luts(),
            TileKind::InOrder => 90_000,
        }
    }

    /// BOOM tiles carry the §V-A RTL bug; in-order tiles do not.
    fn has_bug(&self) -> bool {
        matches!(self, TileKind::Boom(_))
    }
}

/// Ring-SoC configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSocConfig {
    /// Number of core tiles (the subsystem adds one more NoC node).
    pub tiles: usize,
    /// Tile model.
    pub tile_kind: TileKind,
    /// Flit payload width.
    pub payload_bits: u32,
    /// Cycles between generated requests per tile.
    pub tile_period: u64,
    /// Subsystem service latency in cycles.
    pub subsystem_latency: u64,
    /// Run the heavy workload (larger binaries via filesystem overlays —
    /// the condition under which the §V-A bug manifests).
    pub heavy_workload: bool,
    /// Responses per tile after which the buggy RTL traps.
    pub bug_after: u64,
}

impl Default for RingSocConfig {
    fn default() -> Self {
        RingSocConfig {
            tiles: 4,
            tile_kind: TileKind::Boom(BoomConfig::large()),
            payload_bits: 32,
            tile_period: 8,
            subsystem_latency: 12,
            heavy_workload: false,
            bug_after: 1_000,
        }
    }
}

/// A generated ring SoC.
#[derive(Debug, Clone)]
pub struct RingSoc {
    /// The complete circuit (top: `RingSoc`).
    pub circuit: Circuit,
    /// Absolute router instance paths in node order (nodes `0..tiles` are
    /// tiles; node `tiles` is the subsystem) — feed these to
    /// [`fireaxe_ripper::Selection::NocRouters`].
    pub router_paths: Vec<String>,
    /// The flit layout in use.
    pub flit: FlitLayout,
}

/// One shared tile module for all tile instances (FAME-5 requires
/// duplicates of a single module); the per-tile id is recovered from the
/// instance path at behavior-binding time.
fn tile_module(
    name: &str,
    kind: &TileKind,
    cfg: &RingSocConfig,
    flit_bits: u32,
    trace_bits: u32,
) -> Module {
    let mut m = Module::new(name);
    m.ports = vec![
        Port::input("tx_ready", 1),
        Port::input("rx_valid", 1),
        Port::input("rx_bits", flit_bits),
        Port::output("tx_valid", 1),
        Port::output("tx_bits", flit_bits),
        Port::output("trap", 1),
        Port::output("progress", 32),
    ];
    if trace_bits > 0 {
        // Debug/trace port: widens the partition boundary (the Fig. 11/12
        // interface-width knob) without affecting behavior.
        m.ports.push(Port::output("trace_out", trace_bits));
    }
    // Core tiles couple their bus valid combinationally to the incoming
    // ready (credit gating) — the cross-module coupling that makes
    // exact-mode pay two link crossings per cycle on tile boundaries.
    let comb_paths = vec![fireaxe_ir::CombPath {
        input: "tx_ready".into(),
        output: "tx_valid".into(),
    }];
    let behavior = format!(
        "{}?id_from_path=1&subsystem={}&period={}&payload={}&heavy={}&bug={}&bug_after={}",
        kind.behavior_name(),
        cfg.tiles,
        cfg.tile_period,
        cfg.payload_bits,
        u64::from(cfg.heavy_workload),
        u64::from(kind.has_bug()),
        cfg.bug_after,
    );
    m.extern_info = Some(ExternInfo {
        behavior,
        comb_paths,
        resources: ResourceHints {
            luts: kind.luts(),
            regs: kind.luts() / 2,
            brams: kind.luts() / 10_000,
            dsps: kind.luts() / 40_000,
        },
    });
    m
}

fn subsystem_module(name: &str, cfg: &RingSocConfig, id: usize, flit_bits: u32) -> Module {
    let mut m = Module::new(name);
    m.ports = vec![
        Port::input("tx_ready", 1),
        Port::input("rx_valid", 1),
        Port::input("rx_bits", flit_bits),
        Port::output("tx_valid", 1),
        Port::output("tx_bits", flit_bits),
        Port::output("serviced", 32),
        Port::output("traps", 32),
    ];
    m.extern_info = Some(ExternInfo {
        behavior: format!(
            "soc_subsystem?id={id}&latency={}&payload={}",
            cfg.subsystem_latency, cfg.payload_bits
        ),
        comb_paths: vec![],
        resources: ResourceHints {
            luts: 220_000,
            regs: 110_000,
            brams: 400,
            dsps: 0,
        },
    });
    m
}

/// Builds the ring SoC.
///
/// # Panics
///
/// Panics if `tiles` is 0 or the node count exceeds the NoC's 64-node
/// limit.
pub fn ring_soc(cfg: &RingSocConfig) -> RingSoc {
    assert!(cfg.tiles >= 1, "need at least one tile");
    let nodes = cfg.tiles + 1;
    let noc_cfg = NocConfig {
        nodes,
        payload_bits: cfg.payload_bits,
    };
    let f = noc_cfg.flit_bits();
    let noc = generate_ring_noc(&noc_cfg);

    let mut modules = noc.modules.clone();
    let mut top = ModuleBuilder::new("RingSoc");
    let serviced = top.output("serviced", 32);
    let traps = top.output("traps", 32);
    top.inst("noc", &noc.top_module);

    modules.push(tile_module("Tile", &cfg.tile_kind, cfg, f, 0));
    for i in 0..cfg.tiles {
        let inst = format!("tile{i}");
        top.inst(&inst, "Tile");
        let tv = top.inst_port(&inst, "tx_valid");
        top.connect_inst("noc", &format!("node{i}_tx_valid"), &tv);
        let tb = top.inst_port(&inst, "tx_bits");
        top.connect_inst("noc", &format!("node{i}_tx_bits"), &tb);
        let tr = top.inst_port("noc", &format!("node{i}_tx_ready"));
        top.connect_inst(&inst, "tx_ready", &tr);
        let rv = top.inst_port("noc", &format!("node{i}_rx_valid"));
        top.connect_inst(&inst, "rx_valid", &rv);
        let rb = top.inst_port("noc", &format!("node{i}_rx_bits"));
        top.connect_inst(&inst, "rx_bits", &rb);
    }
    // Subsystem on the last node.
    let sub_id = cfg.tiles;
    modules.push(subsystem_module("SocSubsystem", cfg, sub_id, f));
    top.inst("subsys", "SocSubsystem");
    let tv = top.inst_port("subsys", "tx_valid");
    top.connect_inst("noc", &format!("node{sub_id}_tx_valid"), &tv);
    let tb = top.inst_port("subsys", "tx_bits");
    top.connect_inst("noc", &format!("node{sub_id}_tx_bits"), &tb);
    let tr = top.inst_port("noc", &format!("node{sub_id}_tx_ready"));
    top.connect_inst("subsys", "tx_ready", &tr);
    let rv = top.inst_port("noc", &format!("node{sub_id}_rx_valid"));
    top.connect_inst("subsys", "rx_valid", &rv);
    let rb = top.inst_port("noc", &format!("node{sub_id}_rx_bits"));
    top.connect_inst("subsys", "rx_bits", &rb);
    let s = top.inst_port("subsys", "serviced");
    top.connect_sig(&serviced, &s);
    let t = top.inst_port("subsys", "traps");
    top.connect_sig(&traps, &t);

    modules.insert(0, top.finish());
    RingSoc {
        circuit: Circuit::from_modules("RingSoc", modules, "RingSoc"),
        router_paths: noc
            .router_subpaths
            .iter()
            .map(|p| format!("noc.{p}"))
            .collect(),
        flit: noc_cfg.flit(),
    }
}

/// Crossbar-SoC configuration (for the §VI-A width sweeps: the cut width
/// is `tiles_extracted × per-tile boundary`, so pulling more tiles widens
/// the interface).
#[derive(Debug, Clone, PartialEq)]
pub struct XbarSocConfig {
    /// Number of tiles.
    pub tiles: usize,
    /// Tile model.
    pub tile_kind: TileKind,
    /// Flit payload width (directly controls per-tile boundary width).
    pub payload_bits: u32,
    /// Crossbar internal latency.
    pub xbar_latency: u64,
    /// Request period per tile.
    pub tile_period: u64,
    /// Subsystem latency.
    pub subsystem_latency: u64,
    /// Extra per-tile debug/trace boundary width in bits (the Fig. 11/12
    /// interface-width knob; 0 disables the port).
    pub trace_bits: u32,
}

impl Default for XbarSocConfig {
    fn default() -> Self {
        XbarSocConfig {
            tiles: 4,
            tile_kind: TileKind::Boom(BoomConfig::large()),
            payload_bits: 32,
            xbar_latency: 2,
            tile_period: 8,
            subsystem_latency: 12,
            trace_bits: 0,
        }
    }
}

/// Builds the crossbar SoC: tiles 0..N-1 plus the subsystem on crossbar
/// port N. Extract `["tile0", "tile1", ...]` with explicit selection to
/// reproduce the Fig. 11/12 width sweeps.
pub fn xbar_soc(cfg: &XbarSocConfig) -> RingSoc {
    assert!(cfg.tiles >= 1, "need at least one tile");
    let nodes = cfg.tiles + 1;
    let flit = FlitLayout {
        payload_bits: cfg.payload_bits,
    };
    let f = flit.width();

    // Behavioral crossbar module.
    let mut xbar = Module::new("Xbar");
    for i in 0..nodes {
        xbar.ports.push(Port::input(format!("node{i}_tx_valid"), 1));
        xbar.ports.push(Port::input(format!("node{i}_tx_bits"), f));
        xbar.ports
            .push(Port::output(format!("node{i}_tx_ready"), 1));
        xbar.ports
            .push(Port::output(format!("node{i}_rx_valid"), 1));
        xbar.ports.push(Port::output(format!("node{i}_rx_bits"), f));
        if cfg.trace_bits > 0 && i < cfg.tiles {
            // Trace aggregation port (consumed, never interpreted) so the
            // tile's trace output crosses the partition boundary.
            xbar.ports
                .push(Port::input(format!("node{i}_trace"), cfg.trace_bits));
        }
    }
    xbar.extern_info = Some(ExternInfo {
        behavior: format!(
            "xbar?nodes={nodes}&latency={}&payload={}",
            cfg.xbar_latency, cfg.payload_bits
        ),
        comb_paths: vec![],
        resources: ResourceHints {
            luts: 60_000 + 9_000 * nodes as u64,
            regs: 40_000,
            brams: 32,
            dsps: 0,
        },
    });

    let ring_cfg = RingSocConfig {
        tiles: cfg.tiles,
        tile_kind: cfg.tile_kind.clone(),
        payload_bits: cfg.payload_bits,
        tile_period: cfg.tile_period,
        subsystem_latency: cfg.subsystem_latency,
        heavy_workload: false,
        bug_after: u64::MAX / 2,
    };

    let mut modules = vec![xbar];
    let mut top = ModuleBuilder::new("XbarSoc");
    let serviced = top.output("serviced", 32);
    let traps = top.output("traps", 32);
    top.inst("xbar", "Xbar");
    modules.push(tile_module(
        "Tile",
        &cfg.tile_kind,
        &ring_cfg,
        f,
        cfg.trace_bits,
    ));
    for i in 0..cfg.tiles {
        let inst = format!("tile{i}");
        top.inst(&inst, "Tile");
        let tv = top.inst_port(&inst, "tx_valid");
        top.connect_inst("xbar", &format!("node{i}_tx_valid"), &tv);
        let tb = top.inst_port(&inst, "tx_bits");
        top.connect_inst("xbar", &format!("node{i}_tx_bits"), &tb);
        let tr = top.inst_port("xbar", &format!("node{i}_tx_ready"));
        top.connect_inst(&inst, "tx_ready", &tr);
        let rv = top.inst_port("xbar", &format!("node{i}_rx_valid"));
        top.connect_inst(&inst, "rx_valid", &rv);
        let rb = top.inst_port("xbar", &format!("node{i}_rx_bits"));
        top.connect_inst(&inst, "rx_bits", &rb);
        if cfg.trace_bits > 0 {
            let tr = top.inst_port(&inst, "trace_out");
            top.connect_inst("xbar", &format!("node{i}_trace"), &tr);
        }
    }
    let sub_id = cfg.tiles;
    modules.push(subsystem_module("SocSubsystem", &ring_cfg, sub_id, f));
    top.inst("subsys", "SocSubsystem");
    let tv = top.inst_port("subsys", "tx_valid");
    top.connect_inst("xbar", &format!("node{sub_id}_tx_valid"), &tv);
    let tb = top.inst_port("subsys", "tx_bits");
    top.connect_inst("xbar", &format!("node{sub_id}_tx_bits"), &tb);
    let tr = top.inst_port("xbar", &format!("node{sub_id}_tx_ready"));
    top.connect_inst("subsys", "tx_ready", &tr);
    let rv = top.inst_port("xbar", &format!("node{sub_id}_rx_valid"));
    top.connect_inst("subsys", "rx_valid", &rv);
    let rb = top.inst_port("xbar", &format!("node{sub_id}_rx_bits"));
    top.connect_inst("subsys", "rx_bits", &rb);
    let s = top.inst_port("subsys", "serviced");
    top.connect_sig(&serviced, &s);
    let t = top.inst_port("subsys", "traps");
    top.connect_sig(&traps, &t);

    modules.insert(0, top.finish());
    RingSoc {
        circuit: Circuit::from_modules("XbarSoc", modules, "XbarSoc"),
        router_paths: vec![],
        flit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ripper::{noc_select, Selection};

    #[test]
    fn ring_soc_validates() {
        let soc = ring_soc(&RingSocConfig::default());
        validate(&soc.circuit).unwrap();
        assert_eq!(soc.router_paths.len(), 5); // 4 tiles + subsystem
    }

    #[test]
    fn noc_selection_absorbs_tiles() {
        let soc = ring_soc(&RingSocConfig {
            tiles: 4,
            ..Default::default()
        });
        let sel = noc_select(&soc.circuit, &soc.router_paths, &[0, 1]).unwrap();
        assert!(sel.contains(&"tile0".to_string()));
        assert!(sel.contains(&"tile1".to_string()));
        assert!(sel.contains(&"noc.cdc0".to_string()));
        assert!(sel.contains(&"noc.proto.pc1".to_string()));
        assert!(sel.contains(&"noc.proto.phys.r0".to_string()));
        // Foreign nodes untouched.
        assert!(!sel.iter().any(|p| p.contains("tile2")));
        assert!(!sel.iter().any(|p| p.contains("subsys")));
        let _ = Selection::NocRouters {
            routers: soc.router_paths.clone(),
            indices: vec![0, 1],
        };
    }

    #[test]
    fn xbar_soc_validates() {
        let soc = xbar_soc(&XbarSocConfig::default());
        validate(&soc.circuit).unwrap();
    }

    #[test]
    fn tile_behavior_keys_are_self_describing() {
        let soc = ring_soc(&RingSocConfig {
            tiles: 2,
            heavy_workload: true,
            bug_after: 777,
            ..Default::default()
        });
        let t0 = soc.circuit.module("Tile").unwrap();
        let key = &t0.extern_info.as_ref().unwrap().behavior;
        assert!(key.starts_with("boom_tile?"));
        assert!(key.contains("heavy=1"));
        assert!(key.contains("bug_after=777"));
        assert!(key.contains("subsystem=2"));
    }
}
