//! The Table II validation SoCs.
//!
//! Three target designs, each a master (core or accelerator) wired to a
//! fixed-latency scratchpad over a ready-valid interface:
//!
//! * **Rocket tile (Linux boot)** — [`rocket_soc`]: the RocketLite core
//!   running the boot program for a configurable number of iterations;
//! * **Sha3Accel (encryption)** — [`sha3_soc`]: short, memory-bound;
//! * **Gemmini (convolution)** — [`gemmini_soc`]: long, compute-bound.
//!
//! Partitioning the master out of the SoC (exact vs. fast mode) and
//! comparing run-to-`done` cycle counts against monolithic interpretation
//! reproduces the paper's validation table: exact-mode error is zero by
//! construction; fast-mode error is largest for Sha3 and smallest for
//! Gemmini.

use crate::accel::{accel_mem_layout, make_gemmini_module, make_sha3_module};
use crate::mem::make_memory_module;
use crate::minicore::{boot_program, core_mem_layout, make_core_module, Instr};
use fireaxe_ir::build::ModuleBuilder;
use fireaxe_ir::{Bits, Circuit, Interpreter, Module};

/// Wires a memory-master module (ports `mreq_*`/`mresp_*`/`done`, plus
/// optionally `go`) to a scratchpad of the given latency; the composite
/// exposes `go` (if the master has it) and `done`.
pub fn master_with_scratchpad(master: Module, mem_latency: u32) -> Circuit {
    let layout = accel_mem_layout();
    let master_name = master.name.clone();
    let has_go = master.port("go").is_some();
    let mem = make_memory_module("Scratchpad", layout.data_bits, 64, mem_latency);

    let mut top = ModuleBuilder::new("ValidationSoc");
    let done = top.output("done", 1);
    top.inst("master", &master_name);
    top.inst("mem", "Scratchpad");
    if has_go {
        let go = top.input("go", 1);
        top.connect_inst("master", "go", &go);
    }
    let av = top.inst_port("master", "mreq_valid");
    top.connect_inst("mem", "req_valid", &av);
    let ab = top.inst_port("master", "mreq_bits");
    top.connect_inst("mem", "req_bits", &ab);
    let mr = top.inst_port("mem", "req_ready");
    top.connect_inst("master", "mreq_ready", &mr);
    let rv = top.inst_port("mem", "resp_valid");
    top.connect_inst("master", "mresp_valid", &rv);
    let rb = top.inst_port("mem", "resp_bits");
    top.connect_inst("master", "mresp_bits", &rb);
    let ar = top.inst_port("master", "mresp_ready");
    top.connect_inst("mem", "resp_ready", &ar);
    let ad = top.inst_port("master", "done");
    top.connect_sig(&done, &ad);
    Circuit::from_modules(
        "ValidationSoc",
        vec![top.finish(), master, mem],
        "ValidationSoc",
    )
}

/// The Sha3 validation SoC (paper: "Sha3Accel (Encryption)").
pub fn sha3_soc(mem_latency: u32) -> Circuit {
    master_with_scratchpad(make_sha3_module("Sha3Accel"), mem_latency)
}

/// The Gemmini validation SoC (paper: "Gemmini (Convolution)").
pub fn gemmini_soc(mem_latency: u32) -> Circuit {
    master_with_scratchpad(make_gemmini_module("Gemmini"), mem_latency)
}

/// The Rocket-tile validation SoC (paper: "Rocket tile (Linux boot)",
/// iteration count scaled down from the 3.84 B-cycle original).
pub fn rocket_soc(boot_iterations: u32, mem_latency: u32) -> Circuit {
    let program: Vec<Instr> = boot_program(4);
    debug_assert_eq!(core_mem_layout().width(), accel_mem_layout().width());
    master_with_scratchpad(
        make_core_module("RocketTile", &program, boot_iterations),
        mem_latency,
    )
}

/// Runs a validation SoC monolithically until `done`, returning the cycle
/// count.
///
/// # Errors
///
/// Returns an error string when the design fails to elaborate or does not
/// finish within `max_cycles`.
pub fn run_monolithic_to_done(circuit: &Circuit, max_cycles: u64) -> Result<u64, String> {
    let mut sim = Interpreter::new(circuit).map_err(|e| e.to_string())?;
    if circuit.top_module().port("go").is_some() {
        sim.poke("go", Bits::from_u64(1, 1));
    }
    for cycle in 0..max_cycles {
        sim.eval().map_err(|e| e.to_string())?;
        if sim.peek("done").to_u64() == 1 {
            return Ok(cycle);
        }
        sim.tick();
    }
    Err(format!("design did not finish within {max_cycles} cycles"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_socs_elaborate_and_finish() {
        let sha = run_monolithic_to_done(&sha3_soc(8), 10_000).unwrap();
        let gem = run_monolithic_to_done(&gemmini_soc(8), 50_000).unwrap();
        let rocket = run_monolithic_to_done(&rocket_soc(100, 8), 500_000).unwrap();
        // Relative scale matches the paper: sha3 << gemmini << rocket.
        assert!(sha < gem);
        assert!(gem < rocket);
    }

    #[test]
    fn rocket_iterations_scale_runtime() {
        let a = run_monolithic_to_done(&rocket_soc(50, 4), 500_000).unwrap();
        let b = run_monolithic_to_done(&rocket_soc(100, 4), 500_000).unwrap();
        assert!(b > a + (b - a) / 3); // roughly linear growth
    }
}
