//! # fireaxe-soc — target design generators
//!
//! Everything FireAxe simulates has to exist as a target design; this
//! crate generates them in the FireAxe IR:
//!
//! * [`mem`], [`accel`], [`minicore`], [`validation`] — the Table II
//!   validation SoCs as real interpreted RTL (fixed-latency scratchpad,
//!   Sha3-like and Gemmini-like accelerators, the RocketLite core);
//! * [`boom`] — BOOM configurations (Table I), the fitted area model, and
//!   the §V-B split-core circuit (frontend/backend across two FPGAs);
//! * [`noc`] — the Constellation-like three-layer ring NoC (Fig. 4) as
//!   interpreted RTL with registered router boundaries;
//! * [`socs`] — composed SoCs: the §V-A ring SoC (tiles + NoC +
//!   subsystem) and the §VI-A crossbar sweep SoC;
//! * [`behaviors`] — deterministic cycle-level models bound to the extern
//!   modules (tiles, BOOM pipeline halves, subsystem, crossbar), keyed by
//!   self-describing behavior strings.

#![warn(missing_docs)]

pub mod accel;
pub mod behaviors;
pub mod boom;
pub mod mem;
pub mod minicore;
pub mod noc;
pub mod socs;
pub mod validation;

pub use behaviors::{make_behavior, BehaviorKey, FlitLayout};
pub use boom::BoomConfig;
pub use noc::{generate_ring_noc, NocConfig};
pub use socs::{ring_soc, xbar_soc, RingSoc, RingSocConfig, TileKind, XbarSocConfig};
