//! BOOM out-of-order core models (paper Table I, §V-B).
//!
//! The real BOOM is hundreds of thousands of lines of Chisel; FireAxe
//! partitions it *structurally*, so what the compiler needs is the
//! module/port/combinational skeleton plus resource weights — which is
//! exactly what [`core_circuit`] generates: Frontend / Backend / LSU / L1D
//! as extern behavioral modules whose port widths scale with the
//! configuration (the GC40 frontend/backend boundary carries >7000 bits,
//! matching §V-B) and whose [`fireaxe_ir::ResourceHints`] are calibrated
//! to the paper's reported U250 utilizations (backend+LSU 63%, frontend+
//! memory 18%).

use fireaxe_ir::build::ModuleBuilder;
use fireaxe_ir::{Circuit, CombPath, ExternInfo, Module, Port, ResourceHints};

/// Microarchitectural parameters (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct BoomConfig {
    /// Configuration name.
    pub name: String,
    /// Issue width.
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Integer physical registers.
    pub int_phys_regs: u32,
    /// Floating-point physical registers.
    pub fp_phys_regs: u32,
    /// Load-queue entries.
    pub ldq_entries: u32,
    /// Store-queue entries.
    pub stq_entries: u32,
    /// Fetch-buffer entries.
    pub fetch_buf_entries: u32,
    /// L1 instruction cache size in kB.
    pub l1i_kb: u32,
    /// L1 data cache size in kB.
    pub l1d_kb: u32,
    /// Synthesized core+L1 area in mm² (16 nm), when known from the paper.
    pub measured_area_mm2: Option<f64>,
}

impl BoomConfig {
    /// Large BOOM (Table I column 1): 3-wide, 96-entry ROB, 0.79 mm².
    pub fn large() -> Self {
        BoomConfig {
            name: "Large BOOM".into(),
            issue_width: 3,
            rob_entries: 96,
            int_phys_regs: 100,
            fp_phys_regs: 96,
            ldq_entries: 24,
            stq_entries: 24,
            fetch_buf_entries: 24,
            l1i_kb: 32,
            l1d_kb: 32,
            measured_area_mm2: Some(0.79),
        }
    }

    /// GC40 BOOM (Table I column 2): Golden-Cove parameters downsized by
    /// 40%, 1.56 mm² — too large to build monolithically on a U250.
    pub fn gc40() -> Self {
        BoomConfig {
            name: "GC40 BOOM".into(),
            issue_width: 6,
            rob_entries: 216,
            int_phys_regs: 115,
            fp_phys_regs: 132,
            ldq_entries: 76,
            stq_entries: 45,
            fetch_buf_entries: 54,
            l1i_kb: 32,
            l1d_kb: 32,
            measured_area_mm2: Some(1.56),
        }
    }

    /// Golden Cove Xeon (Table I column 3), for reference comparisons.
    pub fn golden_cove_xeon() -> Self {
        BoomConfig {
            name: "GC Xeon".into(),
            issue_width: 6,
            rob_entries: 512,
            int_phys_regs: 280,
            fp_phys_regs: 332,
            ldq_entries: 192,
            stq_entries: 114,
            fetch_buf_entries: 144,
            l1i_kb: 32,
            l1d_kb: 48,
            measured_area_mm2: Some(9.13),
        }
    }

    /// A mid-size 5-wide configuration (the §V-D GC-study cores: "four
    /// 5-wide OoO BOOM cores, each 25% of U250 LUTs").
    pub fn mega() -> Self {
        BoomConfig {
            name: "Mega BOOM".into(),
            issue_width: 5,
            rob_entries: 128,
            int_phys_regs: 128,
            fp_phys_regs: 128,
            ldq_entries: 32,
            stq_entries: 32,
            fetch_buf_entries: 40,
            l1i_kb: 32,
            l1d_kb: 32,
            measured_area_mm2: None,
        }
    }

    /// Structural area estimate in mm² (16 nm), fitted on the two BOOM
    /// points of Table I (`0.375·issue·ROB/1000 + 2.545·Σstructures/1000`).
    ///
    /// The Xeon's measured 9.13 mm² is ~2.4× this structural estimate —
    /// the gap the paper attributes to everything the parameter table
    /// doesn't capture (SIMD width, µop cache, ISA overheads), i.e. the
    /// "significant room for microarchitectural innovation".
    pub fn estimated_area_mm2(&self) -> f64 {
        let structures = self.int_phys_regs
            + self.fp_phys_regs
            + self.ldq_entries
            + self.stq_entries
            + self.fetch_buf_entries;
        0.375 * f64::from(self.issue_width * self.rob_entries) / 1000.0
            + 2.545 * f64::from(structures) / 1000.0
    }

    /// Area used for resource scaling: measured when known, else
    /// estimated.
    pub fn area_mm2(&self) -> f64 {
        self.measured_area_mm2
            .unwrap_or_else(|| self.estimated_area_mm2())
    }

    /// Total FPGA LUTs for the core+L1s, calibrated so GC40 maps to the
    /// paper's 63% + 18% of a U250 (≈ 804 kLUT/mm²).
    pub fn total_luts(&self) -> u64 {
        (self.area_mm2() * 804_000.0) as u64
    }

    /// Width in bits of the frontend/backend partition interface —
    /// ~1380 bits per issue slot, putting GC40 above the 7000 bits
    /// reported in §V-B.
    pub fn split_interface_bits(&self) -> u64 {
        u64::from(self.issue_width) * 1380
    }
}

/// Per-issue-slot widths of the split-core bundles (sums to ~1200).
const FETCH_PACKET_PER_SLOT: u32 = 560;
const REDIRECT_PER_SLOT: u32 = 200;
const LSU_REQ_PER_SLOT: u32 = 260;
const LSU_RESP_PER_SLOT: u32 = 160;
const COMMIT_PER_SLOT: u32 = 200;

fn extern_module(
    name: &str,
    behavior: String,
    ports: Vec<Port>,
    comb_paths: Vec<CombPath>,
    luts: u64,
) -> Module {
    let mut m = Module::new(name);
    m.ports = ports;
    m.extern_info = Some(ExternInfo {
        behavior,
        comb_paths,
        resources: ResourceHints {
            luts,
            regs: luts / 2,
            brams: luts / 12_000,
            dsps: luts / 50_000,
        },
    });
    m
}

/// Builds the split-core circuit for §V-B: `Frontend` (fetch + branch
/// prediction + fetch buffer + L1I) and `MemSys` (L1D + memory) on one
/// side, `Backend` (rename, PRF, execution units) and `Lsu` on the other.
///
/// Extracting `["backend", "lsu"]` reproduces the paper's two-FPGA split:
/// backend-side ≈63% of a U250's LUTs, frontend-side ≈18%, boundary
/// >7000 bits for GC40.
///
/// The exposed top-level ports are `commits` (retired-instruction
/// counter) and `booted` (asserted once the boot workload completes).
pub fn core_circuit(config: &BoomConfig) -> Circuit {
    let w = config.issue_width;
    let total = config.total_luts();
    // LUT split calibrated to §V-B: backend 60%, LSU 17.8%, frontend 14%,
    // L1D/memory 8.2% of the core total.
    let luts_backend = (total as f64 * 0.60) as u64;
    let luts_lsu = (total as f64 * 0.178) as u64;
    let luts_frontend = (total as f64 * 0.14) as u64;
    let luts_memsys = total - luts_backend - luts_lsu - luts_frontend;

    let behavior = |role: &str| {
        format!(
            "boom_{role}?issue={}&rob={}&fetchbuf={}",
            config.issue_width, config.rob_entries, config.fetch_buf_entries
        )
    };

    let frontend = extern_module(
        "Frontend",
        behavior("frontend"),
        vec![
            Port::output("fetch_packet_valid", 1),
            Port::output("fetch_packet_bits", w * FETCH_PACKET_PER_SLOT),
            Port::input("fetch_packet_ready", 1),
            Port::input("redirect_valid", 1),
            Port::input("redirect_bits", w * REDIRECT_PER_SLOT),
        ],
        vec![],
        luts_frontend,
    );
    let backend = extern_module(
        "Backend",
        behavior("backend"),
        vec![
            Port::input("fetch_packet_valid", 1),
            Port::input("fetch_packet_bits", w * FETCH_PACKET_PER_SLOT),
            Port::output("fetch_packet_ready", 1),
            Port::output("redirect_valid", 1),
            Port::output("redirect_bits", w * REDIRECT_PER_SLOT),
            Port::output("lsu_issue_valid", 1),
            Port::output("lsu_issue_bits", w * COMMIT_PER_SLOT),
            Port::input("lsu_done_valid", 1),
            Port::input("lsu_done_bits", w * COMMIT_PER_SLOT),
            Port::output("commits", 32),
            Port::output("booted", 1),
        ],
        // The backend's ready is combinationally derived from its valid
        // input (the "many cross-module signals" the paper mentions) —
        // a chain exact-mode can still schedule in two crossings.
        vec![CombPath {
            input: "fetch_packet_valid".into(),
            output: "fetch_packet_ready".into(),
        }],
        luts_backend,
    );
    let lsu = extern_module(
        "Lsu",
        behavior("lsu"),
        vec![
            Port::input("lsu_issue_valid", 1),
            Port::input("lsu_issue_bits", w * COMMIT_PER_SLOT),
            Port::output("lsu_done_valid", 1),
            Port::output("lsu_done_bits", w * COMMIT_PER_SLOT),
            Port::output("dmem_req_valid", 1),
            Port::output("dmem_req_bits", w * LSU_REQ_PER_SLOT),
            Port::input("dmem_resp_valid", 1),
            Port::input("dmem_resp_bits", w * LSU_RESP_PER_SLOT),
        ],
        vec![],
        luts_lsu,
    );
    let memsys = extern_module(
        "MemSys",
        behavior("memsys"),
        vec![
            Port::input("dmem_req_valid", 1),
            Port::input("dmem_req_bits", w * LSU_REQ_PER_SLOT),
            Port::output("dmem_resp_valid", 1),
            Port::output("dmem_resp_bits", w * LSU_RESP_PER_SLOT),
        ],
        vec![],
        luts_memsys,
    );

    let mut top = ModuleBuilder::new("BoomCore");
    let commits = top.output("commits", 32);
    let booted = top.output("booted", 1);
    top.inst("frontend", "Frontend");
    top.inst("backend", "Backend");
    top.inst("lsu", "Lsu");
    top.inst("memsys", "MemSys");
    for (sig, from, to) in [
        ("fetch_packet_valid", "frontend", "backend"),
        ("fetch_packet_bits", "frontend", "backend"),
        ("fetch_packet_ready", "backend", "frontend"),
        ("redirect_valid", "backend", "frontend"),
        ("redirect_bits", "backend", "frontend"),
        ("lsu_issue_valid", "backend", "lsu"),
        ("lsu_issue_bits", "backend", "lsu"),
        ("lsu_done_valid", "lsu", "backend"),
        ("lsu_done_bits", "lsu", "backend"),
        ("dmem_req_valid", "lsu", "memsys"),
        ("dmem_req_bits", "lsu", "memsys"),
        ("dmem_resp_valid", "memsys", "lsu"),
        ("dmem_resp_bits", "memsys", "lsu"),
    ] {
        let src = top.inst_port(from, sig);
        top.connect_inst(to, sig, &src);
    }
    let c = top.inst_port("backend", "commits");
    top.connect_sig(&commits, &c);
    let b = top.inst_port("backend", "booted");
    top.connect_sig(&booted, &b);

    Circuit::from_modules(
        "BoomCore",
        vec![top.finish(), frontend, backend, lsu, memsys],
        "BoomCore",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_fpga::{fit, FpgaSpec};
    use fireaxe_ir::typecheck::validate;

    #[test]
    fn table1_presets_match_paper() {
        let l = BoomConfig::large();
        let g = BoomConfig::gc40();
        let x = BoomConfig::golden_cove_xeon();
        assert_eq!(l.issue_width, 3);
        assert_eq!(g.rob_entries, 216);
        assert_eq!(x.ldq_entries, 192);
        assert_eq!(l.measured_area_mm2, Some(0.79));
        assert_eq!(g.measured_area_mm2, Some(1.56));
        assert_eq!(x.measured_area_mm2, Some(9.13));
    }

    #[test]
    fn area_fit_recovers_boom_points() {
        let l = BoomConfig::large();
        let g = BoomConfig::gc40();
        assert!((l.estimated_area_mm2() - 0.79).abs() < 0.05);
        assert!((g.estimated_area_mm2() - 1.56).abs() < 0.05);
        // The Xeon measured area is far above the structural estimate.
        let x = BoomConfig::golden_cove_xeon();
        assert!(x.measured_area_mm2.unwrap() / x.estimated_area_mm2() > 2.0);
    }

    #[test]
    fn gc40_boundary_exceeds_7000_bits() {
        assert!(BoomConfig::gc40().split_interface_bits() > 7000);
        assert!(BoomConfig::large().split_interface_bits() < 4500);
    }

    #[test]
    fn gc40_fails_monolithic_build_but_split_fits() {
        let c = core_circuit(&BoomConfig::gc40());
        validate(&c).unwrap();
        let u250 = FpgaSpec::alveo_u250();
        let report = fit(&c, &u250);
        // Fits raw capacity but fails routing (the paper's congestion
        // failure).
        assert!(
            !report.routable,
            "GC40 should fail the monolithic build: {report}"
        );
        // Per-side estimates land near the paper's 63% / 18%.
        let total = BoomConfig::gc40().total_luts() as f64;
        let backend_side = total * (0.60 + 0.178);
        let frontend_side = total * (0.14 + 0.082);
        let be_util = backend_side / u250.luts as f64;
        let fe_util = frontend_side / u250.luts as f64;
        assert!((0.55..=0.70).contains(&be_util), "backend util {be_util}");
        assert!((0.12..=0.25).contains(&fe_util), "frontend util {fe_util}");
    }

    #[test]
    fn large_boom_fits_monolithically() {
        let c = core_circuit(&BoomConfig::large());
        let report = fit(&c, &FpgaSpec::alveo_u250());
        assert!(report.routable, "{report}");
    }
}
