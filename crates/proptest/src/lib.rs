//! Minimal property-testing harness with a proptest-compatible surface.
//!
//! This workspace builds fully offline, so the real `proptest` crate is
//! unavailable; this crate implements the subset of its API the FireAxe
//! test suites use — [`Strategy`], `any`, ranges, tuples, `prop_map`,
//! [`collection::vec`], the [`proptest!`] macro, and the `prop_assert*`
//! macros — over a small deterministic PRNG. There is no shrinking: when
//! a case fails, the harness panics with the fully rendered inputs so the
//! case can be checked in as an explicit regression test.
//!
//! Determinism: every test derives its seed from its module path and test
//! name (override globally with the `PROPTEST_SEED` environment variable),
//! so failures reproduce across runs and machines.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// Supports the optional `#![proptest_config(...)]` inner attribute used
/// to set the number of cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let rendered = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            rendered
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts two values are not equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..1000) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn mapped_tuples_compose(v in (0u8..10, 0u8..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 18);
        }

        #[test]
        fn vec_len_obeys_size_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn exact_vec_len(v in crate::collection::vec(any::<u64>(), 5)) {
            prop_assert_eq!(v.len(), 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("same-name");
        let mut b = TestRng::for_test("same-name");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
