//! Test configuration, deterministic RNG, and case-failure plumbing.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (carried by `prop_assert*` early returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator.
///
/// Each test gets a stream derived from its name (so distinct tests see
/// distinct data) and the optional `PROPTEST_SEED` environment variable
/// (so a failing run can be varied or pinned externally).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a stream for the named test.
    pub fn for_test(name: &str) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5eed_f1ee_dead_beef);
        // FNV-1a over the test name, mixed with the environment seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ env_seed,
        }
    }

    /// Seeds a stream directly (for harness-internal use).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small bounds used in tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_seed(42);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
