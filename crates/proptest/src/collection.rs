//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Element-count specification for [`vec`]: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeRange {
    start: usize,
    end: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..20 {
            assert_eq!(vec(any::<u8>(), 5).generate(&mut rng).len(), 5);
        }
    }

    #[test]
    fn ranged_size_varies() {
        let mut rng = TestRng::from_seed(10);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..100 {
            lens.insert(vec(any::<u8>(), 1..6).generate(&mut rng).len());
        }
        assert!(lens.len() > 1);
        assert!(lens.iter().all(|&l| (1..6).contains(&l)));
    }
}
