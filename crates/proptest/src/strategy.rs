//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no shrinking tree: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy mapped through a function (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mildly edge-biased: 1-in-8 draws picks an extreme,
                    // which finds masking/overflow bugs much faster than
                    // uniform sampling alone.
                    match rng.next_u64() & 7 {
                        0 => match rng.next_u64() & 3 {
                            0 => 0,
                            1 => 1,
                            2 => <$t>::MAX,
                            _ => <$t>::MAX - 1,
                        },
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! strategy_for_range {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*
    };
}

strategy_for_range!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

strategy_for_tuple!(A: 0);
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::from_seed(7);
        assert_eq!(Just(41u32).generate(&mut rng), 41);
    }

    #[test]
    fn range_strategy_covers_span() {
        let mut rng = TestRng::from_seed(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert((2u8..6).generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn any_hits_edges_eventually() {
        let mut rng = TestRng::from_seed(11);
        let mut saw_extreme = false;
        for _ in 0..200 {
            let v = u64::arbitrary(&mut rng);
            saw_extreme |= v == 0 || v == u64::MAX;
        }
        assert!(saw_extreme);
    }
}
