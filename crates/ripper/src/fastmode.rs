//! Fast-mode boundary transformations (paper Fig. 3c).
//!
//! Fast-mode injects one cycle of latency at the partition boundary (the
//! seed token), which breaks ready-valid backpressure: the source observes
//! `ready` a cycle late and can overrun or re-send. FireRipper therefore
//! rewrites the target boundary:
//!
//! * **sink side** — a skid buffer is inserted behind the incoming
//!   `valid/bits` so beats sent against a stale-high `ready` are never
//!   lost. The buffer advertises `ready` conservatively (two slots of
//!   slack) and accepts unconditionally while it has space.
//! * **source side** — the outgoing `valid` is gated to `valid & ready`
//!   so a beat is only visible to the peer in the cycle it is actually
//!   transferred, preventing duplicate delivery.
//!
//! These are genuine IR rewrites: the cycle-count error reported in
//! Table II *emerges* from them rather than being modeled.

use crate::error::{Result, RipperError};
use crate::hier::{fresh_name, rewrite_stmt_refs};
use fireaxe_ir::build::{ModuleBuilder, Sig};
use fireaxe_ir::{BinOp, Circuit, Direction, Expr, Module, Ref, Stmt, Width};
use std::collections::BTreeSet;

/// A detected ready-valid bundle among a partition's boundary ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvBundle {
    /// Common prefix (`B` for ports `B_valid`/`B_ready`/`B_bits`).
    pub prefix: String,
    /// Whether this partition is the sending (`source`) side.
    pub is_source: bool,
    /// Width of the `bits` port (0 when absent).
    pub bits_width: u32,
}

/// Finds ready-valid bundles among `boundary_ports` (name, direction) of a
/// module. A bundle requires `X_valid` and `X_ready` in opposite
/// directions; `X_bits` is optional and must flow with `valid`.
pub fn detect_rv_bundles(module: &Module, boundary_ports: &BTreeSet<String>) -> Vec<RvBundle> {
    let mut bundles = Vec::new();
    let dir = |name: &str| module.port(name).map(|p| p.direction);
    let width = |name: &str| module.port(name).map(|p| p.width.get()).unwrap_or(0);
    let mut prefixes: BTreeSet<String> = BTreeSet::new();
    for p in boundary_ports {
        if let Some(pre) = p.strip_suffix("_valid") {
            prefixes.insert(pre.to_string());
        }
    }
    for pre in prefixes {
        let valid = format!("{pre}_valid");
        let ready = format!("{pre}_ready");
        let bits = format!("{pre}_bits");
        if !boundary_ports.contains(&ready) {
            continue;
        }
        let (Some(dv), Some(dr)) = (dir(&valid), dir(&ready)) else {
            continue;
        };
        if dv == dr {
            continue;
        }
        let has_bits = boundary_ports.contains(&bits) && dir(&bits) == Some(dv);
        bundles.push(RvBundle {
            prefix: pre,
            is_source: dv == Direction::Output,
            bits_width: if has_bits { width(&bits) } else { 0 },
        });
    }
    bundles
}

/// Builds the 4-entry skid-buffer module used on ready-valid sink sides.
///
/// `enq_ready` (the signal exported to the boundary) is advertised while
/// fewer than 3 entries are held, leaving slack for the beat that may
/// already be in flight against a stale `ready`; the buffer physically
/// accepts up to 4.
pub fn make_skid_module(name: &str, width: u32) -> Module {
    let w = width.max(1);
    let mut mb = ModuleBuilder::new(name);
    let enq_valid = mb.input("enq_valid", 1);
    let enq_bits = mb.input("enq_bits", w);
    let deq_ready = mb.input("deq_ready", 1);
    let enq_ready = mb.output("enq_ready", 1);
    let deq_valid = mb.output("deq_valid", 1);
    let deq_bits = mb.output("deq_bits", w);

    let count = mb.reg("count", 3, 0);
    let wr = mb.reg("wr", 2, 0);
    let rd = mb.reg("rd", 2, 0);
    let slots: Vec<Sig> = (0..4).map(|i| mb.reg(format!("slot{i}"), w, 0)).collect();

    let have_any = mb.node("have_any", &count.geq(&Sig::lit(1, 3)));
    let can_store = mb.node("can_store", &count.lt(&Sig::lit(4, 3)));
    let advertise = mb.node("advertise", &count.lt(&Sig::lit(3, 3)));
    mb.connect_sig(&enq_ready, &advertise);

    // Cut-through: an empty buffer forwards the incoming beat
    // combinationally, so the skid adds no latency on the fast path.
    let bypass = mb.node("bypass", &have_any.not().and(&enq_valid));
    mb.connect_sig(&deq_valid, &have_any.or(&enq_valid));
    let rd0 = mb.node("rd0", &rd.bits(0, 0));
    let rd1 = mb.node("rd1", &rd.bits(1, 1));
    let lo = rd0.mux(&slots[1], &slots[0]);
    let hi = rd0.mux(&slots[3], &slots[2]);
    let stored = mb.node("stored_bits", &rd1.mux(&hi, &lo));
    mb.connect_sig(&deq_bits, &bypass.mux(&enq_bits, &stored));

    // A beat is stored when it arrives and cannot bypass straight out.
    let bypass_out = mb.node("bypass_out", &bypass.and(&deq_ready));
    let do_store = mb.node(
        "do_store",
        &enq_valid.and(&bypass_out.not()).and(&can_store),
    );
    let do_deq_stored = mb.node("do_deq_stored", &have_any.and(&deq_ready));

    for (i, slot) in slots.iter().enumerate() {
        let sel = wr.eq(&Sig::lit(i as u64, 2)).and(&do_store);
        mb.connect_sig(slot, &sel.mux(&enq_bits, slot));
    }
    mb.connect_sig(&wr, &do_store.mux(&wr.add(&Sig::lit(1, 2)), &wr));
    mb.connect_sig(&rd, &do_deq_stored.mux(&rd.add(&Sig::lit(1, 2)), &rd));
    let up = count.add(&do_store.resize(3));
    mb.connect_sig(&count, &up.sub(&do_deq_stored.resize(3)).resize(3));
    mb.finish()
}

/// Applies fast-mode rewrites to one partition circuit, given the set of
/// its boundary ports. Returns the transformed bundles.
///
/// # Errors
///
/// Returns [`RipperError::Malformed`] if expected drivers are missing.
pub fn apply_fast_mode(
    circuit: &mut Circuit,
    boundary_ports: &BTreeSet<String>,
) -> Result<Vec<RvBundle>> {
    let top_name = circuit.top.clone();
    let bundles = {
        let top = circuit.module(&top_name).expect("top exists");
        detect_rv_bundles(top, boundary_ports)
    };
    for b in &bundles {
        if b.is_source {
            gate_source_valid(circuit, &top_name, &b.prefix)?;
        } else {
            insert_skid_buffer(circuit, &top_name, b)?;
        }
    }
    Ok(bundles)
}

/// Source side: rewrite `P_valid <= E` into `P_valid <= and(E, P_ready)`.
fn gate_source_valid(circuit: &mut Circuit, top_name: &str, prefix: &str) -> Result<()> {
    let top = circuit.module_mut(top_name).expect("top exists");
    let valid = format!("{prefix}_valid");
    let ready = format!("{prefix}_ready");
    for stmt in &mut top.body {
        if let Stmt::Connect { lhs, rhs } = stmt {
            if lhs.is_local() && lhs.name == valid {
                let orig = rhs.clone();
                *rhs = Expr::Binary(
                    BinOp::And,
                    Box::new(orig),
                    Box::new(Expr::reference(ready.clone())),
                );
                return Ok(());
            }
        }
    }
    Err(RipperError::Malformed {
        message: format!("no driver found for ready-valid source `{valid}` in `{top_name}`"),
    })
}

/// Sink side: insert a skid buffer between the boundary and the original
/// consumer.
fn insert_skid_buffer(circuit: &mut Circuit, top_name: &str, b: &RvBundle) -> Result<()> {
    let valid = format!("{}_valid", b.prefix);
    let ready = format!("{}_ready", b.prefix);
    let bits = format!("{}_bits", b.prefix);
    let skid_mod_name = format!("SkidBuffer{}", b.bits_width.max(1));
    if circuit.module(&skid_mod_name).is_none() {
        circuit.add_module(make_skid_module(&skid_mod_name, b.bits_width));
    }

    let top = circuit.module_mut(top_name).expect("top exists");
    let skid_inst = fresh_name(top, &format!("skid_{}", b.prefix));

    // 1. Re-route the original `ready` driver into the skid's deq side and
    //    export the skid's conservative enq_ready instead.
    let mut orig_ready_driver: Option<Expr> = None;
    for stmt in &mut top.body {
        if let Stmt::Connect { lhs, rhs } = stmt {
            if lhs.is_local() && lhs.name == ready {
                orig_ready_driver = Some(std::mem::replace(
                    rhs,
                    Expr::Ref(Ref::instance_port(skid_inst.clone(), "enq_ready")),
                ));
                break;
            }
        }
    }
    let orig_ready_driver = orig_ready_driver.ok_or_else(|| RipperError::Malformed {
        message: format!("no driver found for ready-valid sink `{ready}` in `{top_name}`"),
    })?;

    // 2. Redirect all consumers of the incoming valid/bits to the skid's
    //    deq side.
    let rewrite = |r: &mut Ref| {
        if r.is_local() && r.name == valid {
            *r = Ref::instance_port(skid_inst.clone(), "deq_valid");
        } else if b.bits_width > 0 && r.is_local() && r.name == bits {
            *r = Ref::instance_port(skid_inst.clone(), "deq_bits");
        }
    };
    for stmt in &mut top.body {
        rewrite_stmt_refs(stmt, &rewrite);
    }

    // 3. Wire the skid's enq side to the boundary.
    top.body.push(Stmt::Inst {
        name: skid_inst.clone(),
        module: skid_mod_name,
    });
    top.body.push(Stmt::Connect {
        lhs: Ref::instance_port(skid_inst.clone(), "enq_valid"),
        rhs: Expr::reference(valid),
    });
    top.body.push(Stmt::Connect {
        lhs: Ref::instance_port(skid_inst.clone(), "enq_bits"),
        rhs: if b.bits_width > 0 {
            Expr::reference(bits)
        } else {
            Expr::Lit(fireaxe_ir::Bits::zero(Width::new(1)))
        },
    });
    top.body.push(Stmt::Connect {
        lhs: Ref::instance_port(skid_inst, "deq_ready"),
        rhs: orig_ready_driver,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ir::{Bits, Interpreter};

    #[test]
    fn skid_module_validates_and_queues() {
        let m = make_skid_module("Skid8", 8);
        let c = Circuit::from_modules("Skid8", vec![m], "Skid8");
        validate(&c).unwrap();
        let mut sim = Interpreter::new(&c).unwrap();
        // Push three beats without draining.
        for v in [10u64, 20, 30] {
            sim.poke("enq_valid", Bits::from_u64(1, 1));
            sim.poke("enq_bits", Bits::from_u64(v, 8));
            sim.poke("deq_ready", Bits::from_u64(0, 1));
            sim.step().unwrap();
        }
        sim.poke("enq_valid", Bits::from_u64(0, 1));
        sim.eval().unwrap();
        // Conservative ready deasserts at 3 entries even though a 4th fits.
        assert_eq!(sim.peek("enq_ready").to_u64(), 0);
        assert_eq!(sim.peek("deq_valid").to_u64(), 1);
        assert_eq!(sim.peek("deq_bits").to_u64(), 10);
        // Drain in order.
        let mut seen = Vec::new();
        for _ in 0..3 {
            sim.poke("deq_ready", Bits::from_u64(1, 1));
            sim.eval().unwrap();
            seen.push(sim.peek("deq_bits").to_u64());
            sim.step().unwrap();
        }
        assert_eq!(seen, vec![10, 20, 30]);
        sim.eval().unwrap();
        assert_eq!(sim.peek("deq_valid").to_u64(), 0);
    }

    #[test]
    fn skid_accepts_one_beat_past_advertised_ready() {
        let m = make_skid_module("Skid8", 8);
        let c = Circuit::from_modules("Skid8", vec![m], "Skid8");
        let mut sim = Interpreter::new(&c).unwrap();
        // Fill to 4 entries: the 4th arrives after ready deasserted
        // (stale-ready overrun) and must still be captured.
        for v in [1u64, 2, 3, 4] {
            sim.poke("enq_valid", Bits::from_u64(1, 1));
            sim.poke("enq_bits", Bits::from_u64(v, 8));
            sim.poke("deq_ready", Bits::from_u64(0, 1));
            sim.step().unwrap();
        }
        sim.poke("enq_valid", Bits::from_u64(0, 1));
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.poke("deq_ready", Bits::from_u64(1, 1));
            sim.eval().unwrap();
            seen.push(sim.peek("deq_bits").to_u64());
            sim.step().unwrap();
        }
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    fn rv_module(source: bool) -> Module {
        // A module that either produces (source) or consumes (sink) a
        // ready-valid stream named `req` at its boundary.
        let mut mb = ModuleBuilder::new(if source { "Src" } else { "Snk" });
        if source {
            let ready = mb.input("req_ready", 1);
            let valid = mb.output("req_valid", 1);
            let bits = mb.output("req_bits", 8);
            let data = mb.reg("data", 8, 5);
            let pending = mb.reg("pending", 1, 1);
            mb.connect_sig(&valid, &pending);
            mb.connect_sig(&bits, &data);
            let fire = pending.and(&ready);
            mb.connect_sig(&pending, &fire.mux(&Sig::lit(0, 1), &pending));
            let _ = data;
        } else {
            let valid = mb.input("req_valid", 1);
            let bits = mb.input("req_bits", 8);
            let ready = mb.output("req_ready", 1);
            let busy = mb.reg("busy", 1, 0);
            mb.connect_sig(&ready, &busy.not());
            let fire = valid.and(&busy.not());
            mb.connect_sig(&busy, &fire.mux(&Sig::lit(1, 1), &busy));
            let acc = mb.reg("acc", 8, 0);
            mb.connect_sig(&acc, &fire.mux(&bits, &acc));
        }
        mb.finish()
    }

    #[test]
    fn detects_bundles_in_both_directions() {
        let src = rv_module(true);
        let ports: BTreeSet<String> = src.ports.iter().map(|p| p.name.clone()).collect();
        let bundles = detect_rv_bundles(&src, &ports);
        assert_eq!(bundles.len(), 1);
        assert!(bundles[0].is_source);
        assert_eq!(bundles[0].bits_width, 8);

        let snk = rv_module(false);
        let ports: BTreeSet<String> = snk.ports.iter().map(|p| p.name.clone()).collect();
        let bundles = detect_rv_bundles(&snk, &ports);
        assert_eq!(bundles.len(), 1);
        assert!(!bundles[0].is_source);
    }

    #[test]
    fn ignores_non_boundary_and_mismatched_ports() {
        let src = rv_module(true);
        // Not in the boundary set -> not detected.
        let bundles = detect_rv_bundles(&src, &BTreeSet::new());
        assert!(bundles.is_empty());
        // valid without ready -> not detected.
        let ports: BTreeSet<String> = ["req_valid".to_string()].into_iter().collect();
        assert!(detect_rv_bundles(&src, &ports).is_empty());
    }

    #[test]
    fn source_gating_rewrites_valid() {
        let src = rv_module(true);
        let mut c = Circuit::from_modules("Src", vec![src], "Src");
        let ports: BTreeSet<String> = c
            .top_module()
            .ports
            .iter()
            .map(|p| p.name.clone())
            .collect();
        apply_fast_mode(&mut c, &ports).unwrap();
        validate(&c).unwrap();
        let mut sim = Interpreter::new(&c).unwrap();
        // With ready low, gated valid stays low (pre-transform it was 1).
        sim.poke("req_ready", Bits::from_u64(0, 1));
        sim.eval().unwrap();
        assert_eq!(sim.peek("req_valid").to_u64(), 0);
        sim.poke("req_ready", Bits::from_u64(1, 1));
        sim.eval().unwrap();
        assert_eq!(sim.peek("req_valid").to_u64(), 1);
    }

    #[test]
    fn sink_skid_preserves_transfers() {
        let snk = rv_module(false);
        let mut c = Circuit::from_modules("Snk", vec![snk], "Snk");
        let ports: BTreeSet<String> = c
            .top_module()
            .ports
            .iter()
            .map(|p| p.name.clone())
            .collect();
        apply_fast_mode(&mut c, &ports).unwrap();
        validate(&c).unwrap();
        let mut sim = Interpreter::new(&c).unwrap();
        // Send a beat; it should land in `acc` (through the skid) even
        // though the boundary ready is now conservative.
        sim.poke("req_valid", Bits::from_u64(1, 1));
        sim.poke("req_bits", Bits::from_u64(0x7E, 8));
        sim.step().unwrap();
        sim.poke("req_valid", Bits::from_u64(0, 1));
        for _ in 0..3 {
            sim.step().unwrap();
        }
        sim.eval().unwrap();
        assert_eq!(sim.peek("acc").to_u64(), 0x7E);
    }
}
