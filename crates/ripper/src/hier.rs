//! Hierarchy surgery: the Reparent / Group / Extract / Remove passes.
//!
//! These implement Fig. 5 of the FireAxe paper. [`reparent_to_top`] pulls a
//! selected instance up the module hierarchy one level at a time, punching
//! I/O ports through each intermediate module so connectivity is
//! preserved. [`group_instances`] wraps a set of top-level instances in a
//! fresh wrapper module. [`split_partitions`] then extracts each wrapper
//! into its own circuit and removes the wrappers from the remainder,
//! recording every cut wire so channel construction can pair the two
//! sides.

use crate::error::{Result, RipperError};
use fireaxe_ir::{Circuit, Direction, Expr, Module, Ref, Stmt, Width};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Produces a name not already used by ports or definitions in `module`.
pub fn fresh_name(module: &Module, base: &str) -> String {
    let taken = |n: &str| {
        module.port(n).is_some() || module.body.iter().any(|s| s.defined_name() == Some(n))
    };
    if !taken(base) {
        return base.to_string();
    }
    for i in 0.. {
        let cand = format!("{base}_{i}");
        if !taken(&cand) {
            return cand;
        }
    }
    unreachable!()
}

/// Produces a module name not already used in the circuit.
pub fn fresh_module_name(circuit: &Circuit, base: &str) -> String {
    if circuit.module(base).is_none() {
        return base.to_string();
    }
    for i in 0.. {
        let cand = format!("{base}_{i}");
        if circuit.module(&cand).is_none() {
            return cand;
        }
    }
    unreachable!()
}

/// Resolves an instance path (`"a.b.c"`) to its module name.
pub fn resolve_path(circuit: &Circuit, path: &str) -> Result<String> {
    let mut cur = circuit.top.clone();
    for seg in path.split('.') {
        let m = circuit
            .module(&cur)
            .ok_or_else(|| RipperError::NoSuchInstance {
                path: path.to_string(),
            })?;
        cur = m
            .instances()
            .find(|(n, _)| *n == seg)
            .map(|(_, c)| c.to_string())
            .ok_or_else(|| RipperError::NoSuchInstance {
                path: path.to_string(),
            })?;
    }
    Ok(cur)
}

/// Clones modules along `path` as needed so that every module on the path
/// is instantiated exactly once in the circuit. Hierarchy surgery mutates
/// module definitions, so shared modules must be specialized first.
pub fn specialize_path(circuit: &mut Circuit, path: &[String]) -> Result<()> {
    let mut cur = circuit.top.clone();
    for seg in path {
        let parent = circuit
            .module(&cur)
            .ok_or_else(|| RipperError::NoSuchInstance {
                path: path.join("."),
            })?;
        let child = parent
            .instances()
            .find(|(n, _)| n == seg)
            .map(|(_, c)| c.to_string())
            .ok_or_else(|| RipperError::NoSuchInstance {
                path: path.join("."),
            })?;
        let count = circuit.instance_counts().get(&child).copied().unwrap_or(0);
        if count > 1 {
            let clone_name = fresh_module_name(circuit, &format!("{child}_u"));
            let mut cloned = circuit.module(&child).expect("child exists").clone();
            cloned.name = clone_name.clone();
            circuit.add_module(cloned);
            // Repoint only this instance.
            let parent_mut = circuit.module_mut(&cur).expect("parent exists");
            for s in &mut parent_mut.body {
                if let Stmt::Inst { name, module } = s {
                    if name == seg && *module == child {
                        *module = clone_name.clone();
                    }
                }
            }
            cur = clone_name;
        } else {
            cur = child;
        }
    }
    Ok(())
}

/// Removes instance `inst` from module `parent_name`, punching its ports
/// through as new parent ports. Returns `(child_module, child_port ->
/// new_parent_port)`.
///
/// The parent must be uniquely instantiated (see [`specialize_path`]).
///
/// # Errors
///
/// Returns [`RipperError::NoSuchInstance`] if the instance is absent.
pub fn punch_out_instance(
    circuit: &mut Circuit,
    parent_name: &str,
    inst: &str,
) -> Result<(String, BTreeMap<String, String>)> {
    let parent = circuit
        .module(parent_name)
        .ok_or_else(|| RipperError::Malformed {
            message: format!("module `{parent_name}` not found"),
        })?;
    let child_module_name = parent
        .instances()
        .find(|(n, _)| *n == inst)
        .map(|(_, m)| m.to_string())
        .ok_or_else(|| RipperError::NoSuchInstance {
            path: format!("{parent_name}/{inst}"),
        })?;
    let child = circuit
        .module(&child_module_name)
        .ok_or_else(|| RipperError::Malformed {
            message: format!("module `{child_module_name}` not found"),
        })?
        .clone();

    // Plan new parent ports for every child port.
    let parent_ro = circuit.module(parent_name).expect("checked").clone();
    let mut port_map: BTreeMap<String, String> = BTreeMap::new();
    let mut new_ports: Vec<(String, Direction, Width)> = Vec::new();
    {
        // Track names as we allocate to avoid intra-batch collisions.
        let mut probe = parent_ro.clone();
        for p in &child.ports {
            let np = fresh_name(&probe, &format!("{inst}_{}", p.name));
            probe.ports.push(fireaxe_ir::Port::new(
                np.clone(),
                Direction::Input,
                Width::new(0),
            ));
            // Child input becomes a parent *output* (the parent now exports
            // the value it used to drive into the child), and vice versa.
            let dir = match p.direction {
                Direction::Input => Direction::Output,
                Direction::Output => Direction::Input,
            };
            new_ports.push((np.clone(), dir, p.width));
            port_map.insert(p.name.clone(), np);
        }
    }

    let parent = circuit.module_mut(parent_name).expect("checked");
    for (name, dir, width) in &new_ports {
        parent
            .ports
            .push(fireaxe_ir::Port::new(name.clone(), *dir, *width));
    }

    // Rewrite the body: drop the Inst, convert input-connects, rewrite
    // output references.
    let out_ports: BTreeSet<String> = child
        .ports_in(Direction::Output)
        .map(|p| p.name.clone())
        .collect();
    let mut new_body = Vec::with_capacity(parent.body.len());
    for mut stmt in std::mem::take(&mut parent.body) {
        match &mut stmt {
            Stmt::Inst { name, .. } if name == inst => continue,
            Stmt::Connect { lhs, rhs: _ } if lhs.instance.as_deref() == Some(inst) => {
                // `inst.p <= E` becomes `inst_p <= E` on the new output port.
                let np = port_map[&lhs.name].clone();
                *lhs = Ref::local(np);
            }
            _ => {}
        }
        new_body.push(stmt);
    }
    // Rewrite all reads of `inst.<out>` to the new local input ports.
    let rewrite = |r: &mut Ref| {
        if r.instance.as_deref() == Some(inst) && out_ports.contains(&r.name) {
            let np = port_map[&r.name].clone();
            *r = Ref::local(np);
        }
    };
    for stmt in &mut new_body {
        rewrite_stmt_refs(stmt, &rewrite);
    }
    parent.body = new_body;
    Ok((child_module_name, port_map))
}

/// Applies `f` to every [`Ref`] read in the statement (not connect
/// targets, which are rewritten by callers when needed).
pub fn rewrite_stmt_refs(stmt: &mut Stmt, f: &impl Fn(&mut Ref)) {
    match stmt {
        Stmt::Node { expr, .. } => expr.rewrite_refs(&mut |r| f(r)),
        Stmt::MemRead { addr, .. } => addr.rewrite_refs(&mut |r| f(r)),
        Stmt::MemWrite { addr, data, en, .. } => {
            addr.rewrite_refs(&mut |r| f(r));
            data.rewrite_refs(&mut |r| f(r));
            en.rewrite_refs(&mut |r| f(r));
        }
        Stmt::Connect { rhs, .. } => rhs.rewrite_refs(&mut |r| f(r)),
        _ => {}
    }
}

/// Reparents the instance at `path` to the top module, punching ports
/// through every intermediate level (paper Fig. 5a, "Reparent"). Returns
/// the instance's new top-level name.
///
/// # Errors
///
/// Returns [`RipperError::NoSuchInstance`] for bad paths.
pub fn reparent_to_top(circuit: &mut Circuit, path: &str) -> Result<String> {
    let mut segs: Vec<String> = path.split('.').map(str::to_string).collect();
    if segs.is_empty() {
        return Err(RipperError::NoSuchInstance {
            path: path.to_string(),
        });
    }
    resolve_path(circuit, path)?; // existence check
                                  // Only the modules we punch through (everything above the selected
                                  // instance) get mutated, so only they need to be uniquely
                                  // instantiated; the selected module itself is moved, not modified.
    specialize_path(circuit, &segs[..segs.len() - 1])?;

    while segs.len() > 1 {
        // gp_module --(p_inst)--> p_module --(inst)--> child
        let gp_module = module_at(circuit, &segs[..segs.len() - 2])?;
        let p_inst = segs[segs.len() - 2].clone();
        let p_module = module_at(circuit, &segs[..segs.len() - 1])?;
        let inst = segs[segs.len() - 1].clone();

        let (child_module, port_map) = punch_out_instance(circuit, &p_module, &inst)?;

        // Wire the relocated instance inside the grandparent.
        let child_ports = circuit
            .module(&child_module)
            .expect("child exists")
            .ports
            .clone();
        let gp = circuit.module_mut(&gp_module).expect("gp exists");
        let new_inst = fresh_name(gp, &format!("{p_inst}__{inst}"));
        gp.body.push(Stmt::Inst {
            name: new_inst.clone(),
            module: child_module,
        });
        for cp in &child_ports {
            let np = &port_map[&cp.name];
            match cp.direction {
                Direction::Input => gp.body.push(Stmt::Connect {
                    lhs: Ref::instance_port(new_inst.clone(), cp.name.clone()),
                    rhs: Expr::Ref(Ref::instance_port(p_inst.clone(), np.clone())),
                }),
                Direction::Output => gp.body.push(Stmt::Connect {
                    lhs: Ref::instance_port(p_inst.clone(), np.clone()),
                    rhs: Expr::Ref(Ref::instance_port(new_inst.clone(), cp.name.clone())),
                }),
            }
        }
        segs.pop();
        let last = segs.len() - 1;
        segs[last] = new_inst;
    }
    Ok(segs.pop().expect("nonempty"))
}

fn module_at(circuit: &Circuit, segs: &[String]) -> Result<String> {
    let mut cur = circuit.top.clone();
    for seg in segs {
        let m = circuit.module(&cur).ok_or_else(|| RipperError::Malformed {
            message: format!("module `{cur}` missing"),
        })?;
        cur = m
            .instances()
            .find(|(n, _)| n == seg)
            .map(|(_, c)| c.to_string())
            .ok_or_else(|| RipperError::NoSuchInstance {
                path: segs.join("."),
            })?;
    }
    Ok(cur)
}

/// Wraps the given top-level instances in a new wrapper module (paper
/// Fig. 5a, "Grouping"). Returns the wrapper's instance name in the top
/// module; the wrapper module is named `wrapper_name` (uniquified).
///
/// # Errors
///
/// Returns [`RipperError::NoSuchInstance`] if an instance is not a direct
/// child of the top module.
pub fn group_instances(
    circuit: &mut Circuit,
    wrapper_name: &str,
    insts: &[String],
) -> Result<String> {
    let selected: BTreeSet<&str> = insts.iter().map(String::as_str).collect();
    let top_name = circuit.top.clone();
    let top = circuit.module(&top_name).expect("top exists").clone();

    // Check selection and capture child module names/ports.
    let mut child_modules: HashMap<String, String> = HashMap::new();
    for inst in insts {
        let m = top
            .instances()
            .find(|(n, _)| n == inst)
            .map(|(_, c)| c.to_string())
            .ok_or_else(|| RipperError::NoSuchInstance { path: inst.clone() })?;
        child_modules.insert(inst.clone(), m);
    }
    let port_of = |circuit: &Circuit, inst: &str, port: &str| -> Result<Width> {
        let m = circuit
            .module(&child_modules[inst])
            .ok_or_else(|| RipperError::Malformed {
                message: format!("module of `{inst}` missing"),
            })?;
        Ok(m.port(port)
            .ok_or_else(|| RipperError::Malformed {
                message: format!("port `{inst}.{port}` missing"),
            })?
            .width)
    };

    let wrapper_mod_name = fresh_module_name(circuit, wrapper_name);
    let mut wrapper = Module::new(wrapper_mod_name.clone());
    let mut new_top_body: Vec<Stmt> = Vec::new();
    let winst = fresh_name(&top, &format!("{wrapper_name}_inst"));

    // Pass 1: move instances and internal connects; punch wrapper inputs.
    for stmt in top.body.iter().cloned() {
        match &stmt {
            Stmt::Inst { name, .. } if selected.contains(name.as_str()) => {
                wrapper.body.push(stmt);
            }
            Stmt::Connect { lhs, rhs }
                if lhs
                    .instance
                    .as_deref()
                    .is_some_and(|i| selected.contains(i)) =>
            {
                let inst = lhs.instance.clone().expect("instance connect");
                // Internal if every referenced instance is selected and no
                // top-local signals are referenced.
                let mut refs = Vec::new();
                rhs.collect_refs(&mut refs);
                let internal = refs
                    .iter()
                    .all(|r| r.instance.as_deref().is_some_and(|i| selected.contains(i)));
                if internal {
                    wrapper.body.push(stmt);
                } else {
                    let w = port_of(circuit, &inst, &lhs.name)?;
                    let np = fresh_name(&wrapper, &format!("{inst}_{}", lhs.name));
                    wrapper.ports.push(fireaxe_ir::Port::input(np.clone(), w));
                    wrapper.body.push(Stmt::Connect {
                        lhs: lhs.clone(),
                        rhs: Expr::reference(np.clone()),
                    });
                    new_top_body.push(Stmt::Connect {
                        lhs: Ref::instance_port(winst.clone(), np),
                        rhs: rhs.clone(),
                    });
                }
            }
            _ => new_top_body.push(stmt),
        }
    }

    // Pass 2: punch wrapper outputs for selected-instance reads that
    // remain in the top body.
    let mut out_ports: BTreeMap<(String, String), String> = BTreeMap::new();
    {
        // Collect reads first.
        let mut reads: BTreeSet<(String, String)> = BTreeSet::new();
        for stmt in &new_top_body {
            let mut collect = |e: &Expr| {
                let mut refs = Vec::new();
                e.collect_refs(&mut refs);
                for r in refs {
                    if let Some(i) = &r.instance {
                        if selected.contains(i.as_str()) {
                            reads.insert((i.clone(), r.name.clone()));
                        }
                    }
                }
            };
            match stmt {
                Stmt::Node { expr, .. } => collect(expr),
                Stmt::Connect { rhs, .. } => collect(rhs),
                Stmt::MemRead { addr, .. } => collect(addr),
                Stmt::MemWrite { addr, data, en, .. } => {
                    collect(addr);
                    collect(data);
                    collect(en);
                }
                _ => {}
            }
        }
        for (inst, port) in reads {
            let w = port_of(circuit, &inst, &port)?;
            let np = fresh_name(&wrapper, &format!("{inst}_{port}"));
            wrapper.ports.push(fireaxe_ir::Port::output(np.clone(), w));
            wrapper.body.push(Stmt::Connect {
                lhs: Ref::local(np.clone()),
                rhs: Expr::Ref(Ref::instance_port(inst.clone(), port.clone())),
            });
            out_ports.insert((inst, port), np);
        }
    }
    let rewrite = |r: &mut Ref| {
        if let Some(i) = &r.instance {
            if let Some(np) = out_ports.get(&(i.clone(), r.name.clone())) {
                *r = Ref::instance_port(winst.clone(), np.clone());
            }
        }
    };
    for stmt in &mut new_top_body {
        rewrite_stmt_refs(stmt, &rewrite);
    }

    new_top_body.push(Stmt::Inst {
        name: winst.clone(),
        module: wrapper_mod_name,
    });
    circuit.add_module(wrapper);
    circuit.module_mut(&top_name).expect("top exists").body = new_top_body;
    Ok(winst)
}

/// Which partition a cut-wire endpoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PartRef {
    /// An extracted wrapper: `(group index, thread index)`.
    Wrapper {
        /// Partition group index.
        group: usize,
        /// FAME-5 thread index within the group (0 unless threaded).
        thread: usize,
    },
    /// The remainder partition (the un-extracted rest of the design).
    Remainder,
}

/// One wire crossing a partition boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutWire {
    /// Driving side: partition and its top-level output port name.
    pub from: (PartRef, String),
    /// Receiving side: partition and its top-level input port name.
    pub to: (PartRef, String),
    /// Wire width.
    pub width: Width,
}

/// Result of [`split_partitions`].
#[derive(Debug)]
pub struct SplitDesign {
    /// One circuit per wrapper, indexed like the input `wrappers` list.
    pub wrapper_circuits: Vec<Circuit>,
    /// The remainder circuit (wrapper instances removed, cut ports
    /// punched).
    pub remainder: Circuit,
    /// Every boundary wire.
    pub cut_wires: Vec<CutWire>,
}

/// Extracts each wrapper instance into its own circuit and removes them
/// from the remainder (paper Fig. 5, "Extract" + module removal),
/// recording the cut wires.
///
/// `wrappers` maps each wrapper's top-level instance name to its
/// [`PartRef`].
///
/// # Errors
///
/// Returns [`RipperError::UnsupportedFanout`] when one wrapper output
/// feeds both another wrapper and remainder logic.
pub fn split_partitions(circuit: &Circuit, wrappers: &[(String, PartRef)]) -> Result<SplitDesign> {
    let top_name = circuit.top.clone();
    let top = circuit.module(&top_name).expect("top exists");
    let winst_of: HashMap<&str, PartRef> = wrappers.iter().map(|(n, p)| (n.as_str(), *p)).collect();
    let wrapper_module: HashMap<&str, &str> = top
        .instances()
        .filter(|(n, _)| winst_of.contains_key(n))
        .collect();

    // Extract wrapper circuits.
    let mut wrapper_circuits = Vec::new();
    for (winst, _) in wrappers {
        let wmod =
            *wrapper_module
                .get(winst.as_str())
                .ok_or_else(|| RipperError::NoSuchInstance {
                    path: winst.clone(),
                })?;
        let mut c = circuit.clone();
        c.top = wmod.to_string();
        c.name = wmod.to_string();
        c.prune_unreachable();
        wrapper_circuits.push(c);
    }

    let port_width = |winst: &str, port: &str| -> Width {
        circuit
            .module(wrapper_module[winst])
            .and_then(|m| m.port(port))
            .map(|p| p.width)
            .unwrap_or_default()
    };

    // Build the remainder, collecting cut wires.
    let mut cut_wires: Vec<CutWire> = Vec::new();
    let mut rem_top = top.clone();
    let mut new_body: Vec<Stmt> = Vec::new();
    // Wrapper outputs consumed by a direct wrapper-to-wrapper link.
    let mut linked_outputs: BTreeSet<(String, String)> = BTreeSet::new();

    for stmt in std::mem::take(&mut rem_top.body) {
        match &stmt {
            Stmt::Inst { name, .. } if winst_of.contains_key(name.as_str()) => continue,
            Stmt::Connect { lhs, rhs }
                if lhs
                    .instance
                    .as_deref()
                    .is_some_and(|i| winst_of.contains_key(i)) =>
            {
                let winst = lhs.instance.clone().expect("wrapper connect");
                let to = (winst_of[winst.as_str()], lhs.name.clone());
                let width = port_width(&winst, &lhs.name);
                if let Expr::Ref(r) = rhs {
                    if let Some(src_inst) = &r.instance {
                        if winst_of.contains_key(src_inst.as_str()) {
                            // Direct wrapper-to-wrapper link.
                            linked_outputs.insert((src_inst.clone(), r.name.clone()));
                            cut_wires.push(CutWire {
                                from: (winst_of[src_inst.as_str()], r.name.clone()),
                                to,
                                width,
                            });
                            continue;
                        }
                    }
                }
                // Driven by remainder logic: punch a remainder output port.
                let np = fresh_name(&rem_top, &format!("{winst}_{}", lhs.name));
                rem_top
                    .ports
                    .push(fireaxe_ir::Port::output(np.clone(), width));
                new_body.push(Stmt::Connect {
                    lhs: Ref::local(np.clone()),
                    rhs: rhs.clone(),
                });
                cut_wires.push(CutWire {
                    from: (PartRef::Remainder, np),
                    to,
                    width,
                });
            }
            _ => new_body.push(stmt),
        }
    }

    // Punch remainder input ports for every wrapper output (so tokens are
    // always consumed), rewriting reads.
    let mut in_ports: BTreeMap<(String, String), String> = BTreeMap::new();
    for (winst, part) in wrappers {
        let wmod = circuit
            .module(wrapper_module[winst.as_str()])
            .expect("exists");
        for p in wmod.ports_in(Direction::Output) {
            let linked = linked_outputs.contains(&(winst.clone(), p.name.clone()));
            // Is it read by remainder logic?
            let read = new_body
                .iter()
                .any(|s| stmt_reads_inst_port(s, winst, &p.name));
            if linked && read {
                return Err(RipperError::UnsupportedFanout {
                    port: format!("{winst}.{}", p.name),
                });
            }
            if linked {
                continue;
            }
            let np = fresh_name(&rem_top, &format!("{winst}_{}", p.name));
            rem_top
                .ports
                .push(fireaxe_ir::Port::input(np.clone(), p.width));
            in_ports.insert((winst.clone(), p.name.clone()), np.clone());
            cut_wires.push(CutWire {
                from: (*part, p.name.clone()),
                to: (PartRef::Remainder, np),
                width: p.width,
            });
        }
    }
    let rewrite = |r: &mut Ref| {
        if let Some(i) = &r.instance {
            if let Some(np) = in_ports.get(&(i.clone(), r.name.clone())) {
                *r = Ref::local(np.clone());
            }
        }
    };
    for stmt in &mut new_body {
        rewrite_stmt_refs(stmt, &rewrite);
    }
    rem_top.body = new_body;

    let mut remainder = circuit.clone();
    remainder.add_module(rem_top);
    remainder.prune_unreachable();
    Ok(SplitDesign {
        wrapper_circuits,
        remainder,
        cut_wires,
    })
}

fn stmt_reads_inst_port(stmt: &Stmt, inst: &str, port: &str) -> bool {
    let check = |e: &Expr| {
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        refs.iter()
            .any(|r| r.instance.as_deref() == Some(inst) && r.name == port)
    };
    match stmt {
        Stmt::Node { expr, .. } => check(expr),
        Stmt::Connect { rhs, .. } => check(rhs),
        Stmt::MemRead { addr, .. } => check(addr),
        Stmt::MemWrite { addr, data, en, .. } => check(addr) || check(data) || check(en),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::build::{ModuleBuilder, Sig};
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ir::{Bits, Interpreter};

    /// Top -> Mid -> Leaf(adder), plus a sibling Leaf at top.
    fn nested() -> Circuit {
        let mut leaf = ModuleBuilder::new("Leaf");
        let a = leaf.input("a", 8);
        let y = leaf.output("y", 8);
        leaf.connect_sig(&y, &a.add(&Sig::lit(1, 8)));
        let leaf = leaf.finish();

        let mut mid = ModuleBuilder::new("Mid");
        let a = mid.input("a", 8);
        let y = mid.output("y", 8);
        mid.inst("inner", "Leaf");
        mid.connect_inst("inner", "a", &a);
        let iy = mid.inst_port("inner", "y");
        mid.connect_sig(&y, &iy.add(&Sig::lit(10, 8)));
        let mid = mid.finish();

        let mut top = ModuleBuilder::new("Top");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("m", "Mid");
        top.inst("extra", "Leaf");
        top.connect_inst("m", "a", &i);
        let my = top.inst_port("m", "y");
        top.connect_inst("extra", "a", &my);
        let ey = top.inst_port("extra", "y");
        top.connect_sig(&o, &ey);
        Circuit::from_modules("Top", vec![top.finish(), mid, leaf], "Top")
    }

    fn out_for(c: &Circuit, i: u64) -> u64 {
        let mut sim = Interpreter::new(c).unwrap();
        sim.poke("i", Bits::from_u64(i, 8));
        sim.eval().unwrap();
        sim.peek("o").to_u64()
    }

    #[test]
    fn reparent_preserves_behavior() {
        let mut c = nested();
        let before = out_for(&c, 5); // ((5+1)+10)+1 = 17
        assert_eq!(before, 17);
        let new_inst = reparent_to_top(&mut c, "m.inner").unwrap();
        validate(&c).unwrap();
        assert_eq!(out_for(&c, 5), before);
        // The instance now lives at the top.
        let top = c.top_module();
        assert!(top.instances().any(|(n, _)| n == new_inst));
        // Mid no longer contains it.
        let mid_name = resolve_path(&c, "m").unwrap();
        assert_eq!(c.module(&mid_name).unwrap().instances().count(), 0);
    }

    #[test]
    fn specialize_clones_shared_modules() {
        // Two Mids sharing the Leaf module: reparenting through one must
        // not disturb the other.
        let mut c = nested();
        {
            let top = c.module_mut("Top").unwrap();
            top.body.push(Stmt::Inst {
                name: "m2".into(),
                module: "Mid".into(),
            });
            top.body.push(Stmt::Connect {
                lhs: Ref::instance_port("m2", "a"),
                rhs: Expr::reference("i"),
            });
        }
        let before = out_for(&c, 3);
        reparent_to_top(&mut c, "m.inner").unwrap();
        validate(&c).unwrap();
        assert_eq!(out_for(&c, 3), before);
        // m2 still instantiates an unmodified Mid with its inner Leaf.
        let m2_mod = resolve_path(&c, "m2").unwrap();
        assert_eq!(c.module(&m2_mod).unwrap().instances().count(), 1);
    }

    #[test]
    fn group_wraps_and_preserves_behavior() {
        let mut c = nested();
        let before = out_for(&c, 7);
        let winst = group_instances(&mut c, "PartA", &["extra".to_string()]).unwrap();
        validate(&c).unwrap();
        assert_eq!(out_for(&c, 7), before);
        let top = c.top_module();
        assert!(top.instances().any(|(n, _)| n == winst));
        assert!(!top.instances().any(|(n, _)| n == "extra"));
    }

    #[test]
    fn group_keeps_internal_connects_inside() {
        // Group both `m` and `extra`: the m.y -> extra.a connect should
        // move inside the wrapper.
        let mut c = nested();
        let before = out_for(&c, 2);
        let winst =
            group_instances(&mut c, "Both", &["m".to_string(), "extra".to_string()]).unwrap();
        validate(&c).unwrap();
        assert_eq!(out_for(&c, 2), before);
        let wmod = resolve_path(&c, &winst).unwrap();
        let w = c.module(&wmod).unwrap();
        assert_eq!(w.instances().count(), 2);
        // One input (i feed) + one output (o feed) punched.
        assert_eq!(w.ports.len(), 2);
    }

    #[test]
    fn split_produces_working_partitions() {
        let mut c = nested();
        let winst = group_instances(&mut c, "PartA", &["extra".to_string()]).unwrap();
        let part = PartRef::Wrapper {
            group: 0,
            thread: 0,
        };
        let split = split_partitions(&c, &[(winst, part)]).unwrap();
        validate(&split.remainder).unwrap();
        validate(&split.wrapper_circuits[0]).unwrap();
        // Cut wires: one into the wrapper (extra.a) and one out (extra.y).
        assert_eq!(split.cut_wires.len(), 2);
        let into: Vec<_> = split.cut_wires.iter().filter(|w| w.to.0 == part).collect();
        assert_eq!(into.len(), 1);
        assert_eq!(into[0].width.get(), 8);
    }

    #[test]
    fn split_detects_direct_links() {
        // Group m and extra separately; m.y -> extra.a becomes a direct
        // wrapper-to-wrapper link.
        let mut c = nested();
        let w1 = group_instances(&mut c, "P1", &["m".to_string()]).unwrap();
        let w2 = group_instances(&mut c, "P2", &["extra".to_string()]).unwrap();
        let p1 = PartRef::Wrapper {
            group: 0,
            thread: 0,
        };
        let p2 = PartRef::Wrapper {
            group: 1,
            thread: 0,
        };
        let split = split_partitions(&c, &[(w1, p1), (w2, p2)]).unwrap();
        let direct: Vec<_> = split
            .cut_wires
            .iter()
            .filter(|w| w.from.0 == p1 && w.to.0 == p2)
            .collect();
        assert_eq!(direct.len(), 1, "expected m.y -> extra.a direct link");
        validate(&split.remainder).unwrap();
    }

    #[test]
    fn reparent_through_three_levels() {
        // Top -> Outer -> Mid -> Leaf, extracting the innermost leaf.
        let mut leaf = ModuleBuilder::new("Leaf3");
        let a = leaf.input("a", 8);
        let y = leaf.output("y", 8);
        leaf.connect_sig(&y, &a.add(&Sig::lit(5, 8)));
        let leaf = leaf.finish();

        let mut mid = ModuleBuilder::new("Mid3");
        let a = mid.input("a", 8);
        let y = mid.output("y", 8);
        mid.inst("l", "Leaf3");
        mid.connect_inst("l", "a", &a);
        let ly = mid.inst_port("l", "y");
        mid.connect_sig(&y, &ly);
        let mid = mid.finish();

        let mut outer = ModuleBuilder::new("Outer3");
        let a = outer.input("a", 8);
        let y = outer.output("y", 8);
        outer.inst("m", "Mid3");
        outer.connect_inst("m", "a", &a);
        let my = outer.inst_port("m", "y");
        outer.connect_sig(&y, &my.add(&Sig::lit(1, 8)));
        let outer = outer.finish();

        let mut top = ModuleBuilder::new("Top3");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("u", "Outer3");
        top.connect_inst("u", "a", &i);
        let uy = top.inst_port("u", "y");
        top.connect_sig(&o, &uy);
        let mut c = Circuit::from_modules("Top3", vec![top.finish(), outer, mid, leaf], "Top3");

        let before = {
            let mut sim = Interpreter::new(&c).unwrap();
            sim.poke("i", Bits::from_u64(10, 8));
            sim.eval().unwrap();
            sim.peek("o").to_u64()
        };
        assert_eq!(before, 16); // (10+5)+1
        let inst = reparent_to_top(&mut c, "u.m.l").unwrap();
        validate(&c).unwrap();
        assert!(c.top_module().instances().any(|(n, _)| n == inst));
        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("i", Bits::from_u64(10, 8));
        sim.eval().unwrap();
        assert_eq!(sim.peek("o").to_u64(), before);
    }

    #[test]
    fn group_handles_literal_driven_inputs() {
        // A selected instance whose input is tied to a constant: the
        // literal-driven connect moves inside the wrapper.
        let mut c = nested();
        {
            let top = c.module_mut("Top").unwrap();
            top.body.push(Stmt::Inst {
                name: "tied".into(),
                module: "Leaf".into(),
            });
            top.body.push(Stmt::Connect {
                lhs: Ref::instance_port("tied", "a"),
                rhs: Expr::lit(9, 8),
            });
        }
        let winst = group_instances(&mut c, "G", &["tied".to_string()]).unwrap();
        validate(&c).unwrap();
        let wmod = resolve_path(&c, &winst).unwrap();
        let w = c.module(&wmod).unwrap();
        // No input port needed: the constant lives inside the wrapper.
        assert!(w.ports.iter().all(|p| p.direction != Direction::Input));
    }

    #[test]
    fn bad_path_errors() {
        let mut c = nested();
        assert!(matches!(
            reparent_to_top(&mut c, "m.nonexistent"),
            Err(RipperError::NoSuchInstance { .. })
        ));
        assert!(matches!(
            group_instances(&mut c, "W", &["ghost".to_string()]),
            Err(RipperError::NoSuchInstance { .. })
        ));
    }
}
