//! LI-BDN channel construction across partition boundaries.
//!
//! Implements the heart of §III-A: in **exact-mode**, each partition's
//! boundary ports are split into *source* channels (no combinational
//! dependency on boundary inputs — they can emit the seed token that
//! breaks the Fig. 2a deadlock) and *sink* channels (combinationally
//! coupled — they must wait for the peer's source token), giving two link
//! crossings per target cycle. Combinational chains needing more than two
//! crossings abort compilation with the offending port chain. In
//! **fast-mode**, ports are concatenated into one channel per direction
//! and every link is seeded with an initial token, giving one crossing per
//! cycle at the cost of one cycle of injected boundary latency.

use crate::error::{Result, RipperError};
use crate::hier::{CutWire, PartRef};
use crate::spec::{ChannelPolicy, PartitionMode};
use fireaxe_ir::{Circuit, CombAnalysis, Direction, Width};
use fireaxe_libdn::{ChannelSpec, LiBdnSpec, OutputChannelSpec};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Source/sink classification of a boundary port (of the partition that
/// drives it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortClass {
    /// No combinational dependency on any boundary input.
    Source,
    /// Combinationally dependent on at least one boundary input.
    Sink,
}

impl PortClass {
    fn tag(self) -> &'static str {
        match self {
            PortClass::Source => "src",
            PortClass::Sink => "snk",
        }
    }
}

/// One simulation node: a partition thread with its boundary circuit.
#[derive(Debug)]
pub struct NodeDesc<'a> {
    /// Which partition/thread this node is.
    pub part: PartRef,
    /// Display name.
    pub name: String,
    /// The node's circuit; its top module is the boundary module.
    pub circuit: &'a Circuit,
}

/// A token link between two nodes' channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkSpec {
    /// Sending node index (into the node list handed to
    /// [`build_channels`]).
    pub from_node: usize,
    /// Output channel index on the sender.
    pub from_chan: usize,
    /// Receiving node index.
    pub to_node: usize,
    /// Input channel index on the receiver.
    pub to_chan: usize,
    /// Payload width in bits.
    pub width: u64,
    /// Fast-mode links are seeded with one initial token.
    pub seeded: bool,
}

/// Result of channel construction for all nodes.
#[derive(Debug)]
pub struct ChannelPlan {
    /// One LI-BDN spec per node, same order as the input nodes.
    pub specs: Vec<LiBdnSpec>,
    /// Inter-node token links.
    pub links: Vec<LinkSpec>,
    /// Per node: indices of input channels fed by the environment (one
    /// token per target cycle from a bridge).
    pub env_inputs: Vec<Vec<usize>>,
    /// Per node: indices of output channels consumed by the environment.
    pub env_outputs: Vec<Vec<usize>>,
}

/// Builds LI-BDN channel specs and link pairings for every node.
///
/// # Errors
///
/// Returns [`RipperError::CombChainTooLong`] when exact-mode separated
/// channels cannot satisfy the ≤2-crossing rule, and propagates
/// combinational-analysis failures.
pub fn build_channels(
    nodes: &[NodeDesc<'_>],
    cut_wires: &[CutWire],
    mode: PartitionMode,
    policy: ChannelPolicy,
) -> Result<ChannelPlan> {
    let node_idx: HashMap<PartRef, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.part, i)).collect();

    // 1. Per-node combinational classification of boundary outputs.
    let mut analyses = Vec::with_capacity(nodes.len());
    for n in nodes {
        let analysis = CombAnalysis::run(n.circuit)?;
        analyses.push(analysis);
    }
    let class_of = |ni: usize, port: &str| -> PortClass {
        let top = &nodes[ni].circuit.top;
        let deps = analyses[ni]
            .module(top)
            .and_then(|m| m.output_deps.get(port));
        match deps {
            Some(d) if !d.is_empty() => PortClass::Sink,
            _ => PortClass::Source,
        }
    };

    // 2. Group cut wires into channel-sized bundles.
    // Key: (from_node, to_node, class). Fast mode folds class to Source.
    let mut bundles: BTreeMap<(usize, usize, PortClass), Vec<&CutWire>> = BTreeMap::new();
    for w in cut_wires {
        let fi = node_idx[&w.from.0];
        let ti = node_idx[&w.to.0];
        let class = match (mode, policy) {
            (PartitionMode::Fast, _) | (_, ChannelPolicy::Monolithic) => PortClass::Source,
            (PartitionMode::Exact, ChannelPolicy::Separated) => class_of(fi, &w.from.1),
        };
        bundles.entry((fi, ti, class)).or_default().push(w);
    }
    for ws in bundles.values_mut() {
        ws.sort_by(|a, b| a.from.1.cmp(&b.from.1));
    }

    // 3. Create channels.
    struct NodeChans {
        inputs: Vec<ChannelSpec>,
        outputs: Vec<(ChannelSpec, Vec<String>)>, // (spec, boundary ports)
        in_class: Vec<PortClass>,
        in_port_to_chan: HashMap<String, usize>,
        in_driver: HashMap<String, (usize, String)>, // input port -> (peer node, peer port)
        env_in: Vec<usize>,
        env_out: Vec<usize>,
    }
    let mut chans: Vec<NodeChans> = nodes
        .iter()
        .map(|_| NodeChans {
            inputs: Vec::new(),
            outputs: Vec::new(),
            in_class: Vec::new(),
            in_port_to_chan: HashMap::new(),
            in_driver: HashMap::new(),
            env_in: Vec::new(),
            env_out: Vec::new(),
        })
        .collect();
    let mut links = Vec::new();

    for ((fi, ti, class), ws) in &bundles {
        let tx_ports: Vec<(String, Width)> =
            ws.iter().map(|w| (w.from.1.clone(), w.width)).collect();
        let rx_ports: Vec<(String, Width)> = ws.iter().map(|w| (w.to.1.clone(), w.width)).collect();
        let width: u64 = tx_ports.iter().map(|(_, w)| u64::from(w.get())).sum();
        let tx_name = format!("tx_{}_{}", nodes[*ti].name, class.tag());
        let rx_name = format!("rx_{}_{}", nodes[*fi].name, class.tag());
        let from_chan = chans[*fi].outputs.len();
        chans[*fi].outputs.push((
            ChannelSpec::new(tx_name, tx_ports),
            ws.iter().map(|w| w.from.1.clone()).collect(),
        ));
        let to_chan = chans[*ti].inputs.len();
        chans[*ti].inputs.push(ChannelSpec::new(rx_name, rx_ports));
        chans[*ti].in_class.push(*class);
        for w in ws.iter() {
            chans[*ti].in_port_to_chan.insert(w.to.1.clone(), to_chan);
            chans[*ti]
                .in_driver
                .insert(w.to.1.clone(), (*fi, w.from.1.clone()));
        }
        links.push(LinkSpec {
            from_node: *fi,
            from_chan,
            to_node: *ti,
            to_chan,
            width,
            seeded: mode == PartitionMode::Fast,
        });
    }

    // 4. Environment channels for top ports not covered by cut wires.
    for (ni, n) in nodes.iter().enumerate() {
        let top = n.circuit.top_module();
        let covered_in: BTreeSet<&String> =
            chans[ni].in_port_to_chan.keys().collect::<BTreeSet<_>>();
        let covered_out: BTreeSet<String> = chans[ni]
            .outputs
            .iter()
            .flat_map(|(_, ports)| ports.iter().cloned())
            .collect();
        let env_in_ports: Vec<(String, Width)> = top
            .ports_in(Direction::Input)
            .filter(|p| !covered_in.contains(&p.name))
            .map(|p| (p.name.clone(), p.width))
            .collect();
        if !env_in_ports.is_empty() {
            let idx = chans[ni].inputs.len();
            for (p, _) in &env_in_ports {
                chans[ni].in_port_to_chan.insert(p.clone(), idx);
            }
            chans[ni]
                .inputs
                .push(ChannelSpec::new("env_in", env_in_ports));
            chans[ni].in_class.push(PortClass::Source);
            chans[ni].env_in.push(idx);
        }
        let mut env_out: BTreeMap<PortClass, Vec<(String, Width)>> = BTreeMap::new();
        for p in top.ports_in(Direction::Output) {
            if covered_out.contains(&p.name) {
                continue;
            }
            let class = match mode {
                PartitionMode::Fast => PortClass::Source,
                PartitionMode::Exact => class_of(ni, &p.name),
            };
            env_out
                .entry(class)
                .or_default()
                .push((p.name.clone(), p.width));
        }
        for (class, ports) in env_out {
            let idx = chans[ni].outputs.len();
            let names = ports.iter().map(|(p, _)| p.clone()).collect();
            chans[ni].outputs.push((
                ChannelSpec::new(format!("env_out_{}", class.tag()), ports),
                names,
            ));
            chans[ni].env_out.push(idx);
        }
    }

    // 5. Compute output-channel dependencies and check chain lengths.
    let mut specs = Vec::with_capacity(nodes.len());
    for (ni, n) in nodes.iter().enumerate() {
        let top_name = &n.circuit.top;
        let info = analyses[ni]
            .module(top_name)
            .ok_or_else(|| RipperError::Malformed {
                message: format!("no analysis for `{top_name}`"),
            })?;
        let nc = &chans[ni];
        let mut outputs = Vec::with_capacity(nc.outputs.len());
        for (oi, (spec, ports)) in nc.outputs.iter().enumerate() {
            // Environment channels are served by host-side bridges with
            // zero link crossings, so the chain-length rule (which counts
            // inter-FPGA crossings) does not constrain them.
            let is_env = nc.env_out.contains(&oi);
            let deps: Vec<usize> = match mode {
                PartitionMode::Fast => (0..nc.inputs.len()).collect(),
                PartitionMode::Exact => {
                    let mut dep_set: BTreeSet<usize> = BTreeSet::new();
                    for port in ports {
                        if let Some(port_deps) = info.output_deps.get(port) {
                            for d in port_deps {
                                if let Some(&ci) = nc.in_port_to_chan.get(d) {
                                    dep_set.insert(ci);
                                    // Chain-length check: a sink output
                                    // depending on a sink-driven input
                                    // needs 3+ crossings.
                                    if policy == ChannelPolicy::Separated
                                        && !is_env
                                        && nc.in_class[ci] == PortClass::Sink
                                    {
                                        let (peer, peer_port) = &nc.in_driver[d];
                                        let chain = vec![
                                            format!("{}.{}", nodes[*peer].name, peer_port),
                                            format!("{}.{}", n.name, d),
                                            format!("{}.{}", n.name, port),
                                        ];
                                        return Err(RipperError::CombChainTooLong { chain });
                                    }
                                }
                            }
                        }
                    }
                    dep_set.into_iter().collect()
                }
            };
            outputs.push(OutputChannelSpec {
                channel: spec.clone(),
                deps,
            });
        }
        specs.push(LiBdnSpec {
            name: n.name.clone(),
            inputs: nc.inputs.clone(),
            outputs,
        });
    }

    Ok(ChannelPlan {
        specs,
        links,
        env_inputs: chans.iter().map(|c| c.env_in.clone()).collect(),
        env_outputs: chans.iter().map(|c| c.env_out.clone()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::build::ModuleBuilder;
    use fireaxe_ir::Circuit;

    /// Fig. 2 style pair: each side has a register-driven (source) output
    /// and an adder (sink) output depending on its input.
    fn fig2_side(name: &str, init: u64) -> Circuit {
        let mut mb = ModuleBuilder::new(name);
        let sink_in = mb.input("sink_in", 8);
        let src_in = mb.input("src_in", 8);
        let sink_out = mb.output("sink_out", 8);
        let src_out = mb.output("src_out", 8);
        let x = mb.reg("x", 8, init);
        mb.connect_sig(&sink_out, &sink_in.add(&x));
        mb.connect_sig(&src_out, &x);
        mb.connect_sig(&x, &src_in);
        Circuit::from_modules(name, vec![mb.finish()], name)
    }

    fn pair_wires() -> Vec<CutWire> {
        let a = PartRef::Wrapper {
            group: 0,
            thread: 0,
        };
        let b = PartRef::Remainder;
        let w = |from: (PartRef, &str), to: (PartRef, &str)| CutWire {
            from: (from.0, from.1.to_string()),
            to: (to.0, to.1.to_string()),
            width: Width::new(8),
        };
        vec![
            // A.src_out drives B.sink_in; B.src_out drives A.sink_in
            w((a, "src_out"), (b, "sink_in")),
            w((b, "src_out"), (a, "sink_in")),
            // A.sink_out drives B.src_in; B.sink_out drives A.src_in
            w((a, "sink_out"), (b, "src_in")),
            w((b, "sink_out"), (a, "src_in")),
        ]
    }

    #[test]
    fn exact_mode_separates_source_and_sink() {
        let ca = fig2_side("A", 1);
        let cb = fig2_side("B", 2);
        let nodes = vec![
            NodeDesc {
                part: PartRef::Wrapper {
                    group: 0,
                    thread: 0,
                },
                name: "A".into(),
                circuit: &ca,
            },
            NodeDesc {
                part: PartRef::Remainder,
                name: "B".into(),
                circuit: &cb,
            },
        ];
        let plan = build_channels(
            &nodes,
            &pair_wires(),
            PartitionMode::Exact,
            ChannelPolicy::Separated,
        )
        .unwrap();
        // Each side: 2 output channels (src + snk), 2 input channels.
        assert_eq!(plan.specs[0].outputs.len(), 2);
        assert_eq!(plan.specs[0].inputs.len(), 2);
        // Source channel has no deps; sink channel depends on the
        // source-class input channel only.
        let src = plan.specs[0]
            .outputs
            .iter()
            .find(|o| o.channel.name.ends_with("_src"))
            .unwrap();
        assert!(src.deps.is_empty());
        let snk = plan.specs[0]
            .outputs
            .iter()
            .find(|o| o.channel.name.ends_with("_snk"))
            .unwrap();
        assert_eq!(snk.deps.len(), 1);
        assert_eq!(plan.links.len(), 4);
        assert!(plan.links.iter().all(|l| !l.seeded));
    }

    #[test]
    fn fast_mode_concatenates_and_seeds() {
        let ca = fig2_side("A", 1);
        let cb = fig2_side("B", 2);
        let nodes = vec![
            NodeDesc {
                part: PartRef::Wrapper {
                    group: 0,
                    thread: 0,
                },
                name: "A".into(),
                circuit: &ca,
            },
            NodeDesc {
                part: PartRef::Remainder,
                name: "B".into(),
                circuit: &cb,
            },
        ];
        let plan = build_channels(
            &nodes,
            &pair_wires(),
            PartitionMode::Fast,
            ChannelPolicy::Separated,
        )
        .unwrap();
        // One channel per direction per side.
        assert_eq!(plan.specs[0].outputs.len(), 1);
        assert_eq!(plan.specs[0].inputs.len(), 1);
        assert_eq!(plan.specs[0].outputs[0].channel.width().get(), 16);
        assert_eq!(plan.links.len(), 2);
        assert!(plan.links.iter().all(|l| l.seeded));
        // Output depends on the (seeded) input channel.
        assert_eq!(plan.specs[0].outputs[0].deps, vec![0]);
    }

    #[test]
    fn chain_too_long_rejected() {
        // Side A: sink_out depends on sink_in; wire it so that A.sink_in
        // is driven by B's *sink* output -> chain of 3 crossings.
        let ca = fig2_side("A", 1);
        let cb = fig2_side("B", 2);
        let a = PartRef::Wrapper {
            group: 0,
            thread: 0,
        };
        let b = PartRef::Remainder;
        let w = |from: (PartRef, &str), to: (PartRef, &str)| CutWire {
            from: (from.0, from.1.to_string()),
            to: (to.0, to.1.to_string()),
            width: Width::new(8),
        };
        let wires = vec![
            w((b, "sink_out"), (a, "sink_in")), // sink feeds sink: too long
            w((a, "src_out"), (b, "sink_in")),
            w((a, "sink_out"), (b, "src_in")),
            w((b, "src_out"), (a, "src_in")),
        ];
        let nodes = vec![
            NodeDesc {
                part: a,
                name: "A".into(),
                circuit: &ca,
            },
            NodeDesc {
                part: b,
                name: "B".into(),
                circuit: &cb,
            },
        ];
        let err = build_channels(
            &nodes,
            &wires,
            PartitionMode::Exact,
            ChannelPolicy::Separated,
        )
        .unwrap_err();
        match err {
            RipperError::CombChainTooLong { chain } => {
                assert_eq!(chain.len(), 3);
                assert!(chain[0].contains("sink_out"));
                assert!(chain[2].contains("sink_out"));
            }
            other => panic!("expected chain error, got {other}"),
        }
    }

    #[test]
    fn env_ports_get_channels() {
        // A single node with uncut ports: everything becomes env channels.
        let c = fig2_side("Solo", 0);
        let nodes = vec![NodeDesc {
            part: PartRef::Remainder,
            name: "Solo".into(),
            circuit: &c,
        }];
        let plan =
            build_channels(&nodes, &[], PartitionMode::Exact, ChannelPolicy::Separated).unwrap();
        assert_eq!(plan.env_inputs[0].len(), 1);
        assert_eq!(plan.env_outputs[0].len(), 2); // src + snk env outputs
        let spec = &plan.specs[0];
        assert_eq!(spec.inputs[plan.env_inputs[0][0]].ports.len(), 2);
        // The sink env output depends on the env input channel.
        let snk = spec
            .outputs
            .iter()
            .find(|o| o.channel.name == "env_out_snk")
            .unwrap();
        assert_eq!(snk.deps, vec![0]);
    }

    #[test]
    fn monolithic_policy_merges_channels() {
        let ca = fig2_side("A", 1);
        let cb = fig2_side("B", 2);
        let nodes = vec![
            NodeDesc {
                part: PartRef::Wrapper {
                    group: 0,
                    thread: 0,
                },
                name: "A".into(),
                circuit: &ca,
            },
            NodeDesc {
                part: PartRef::Remainder,
                name: "B".into(),
                circuit: &cb,
            },
        ];
        let plan = build_channels(
            &nodes,
            &pair_wires(),
            PartitionMode::Exact,
            ChannelPolicy::Monolithic,
        )
        .unwrap();
        // One merged channel per direction; its deps point at the single
        // input channel -> runtime deadlock, as in paper Fig. 2a.
        assert_eq!(plan.specs[0].outputs.len(), 1);
        assert_eq!(plan.specs[0].outputs[0].deps, vec![0]);
    }
}
