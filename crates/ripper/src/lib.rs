//! # fireaxe-ripper — the FireRipper partitioning compiler
//!
//! Reimplements §III of the FireAxe paper: push-button, user-guided
//! partitioning of a monolithic circuit onto multiple (simulated) FPGAs.
//!
//! * [`spec`] — what the user provides: mode (exact/fast), channel policy,
//!   and module selection (explicit paths or NoC router indices);
//! * [`hier`] — the Reparent / Group / Extract / Remove hierarchy passes
//!   (Fig. 5);
//! * [`noc`] — NoC-partition-mode selection growth (Fig. 4);
//! * [`channels`] — source/sink channel splitting with the ≤2-crossing
//!   combinational-chain check (Fig. 2), and fast-mode concatenation with
//!   seed tokens (Fig. 3);
//! * [`fastmode`] — skid-buffer insertion and `valid & ready` gating
//!   (Fig. 3c);
//! * [`compiler`] — the driver producing [`PartitionedDesign`] artifacts
//!   plus the quick interface/performance feedback report.
//!
//! ## Example
//!
//! ```
//! use fireaxe_ir::build::{ModuleBuilder, Sig};
//! use fireaxe_ir::Circuit;
//! use fireaxe_ripper::{compile, PartitionGroup, PartitionSpec};
//!
//! # fn main() -> Result<(), fireaxe_ripper::RipperError> {
//! // A tile behind a register boundary, plus SoC-side logic.
//! let mut tile = ModuleBuilder::new("Tile");
//! let req = tile.input("req", 8);
//! let rsp = tile.output("rsp", 8);
//! let st = tile.reg("st", 8, 0);
//! tile.connect_sig(&st, &req);
//! tile.connect_sig(&rsp, &st);
//! let mut top = ModuleBuilder::new("Soc");
//! let i = top.input("i", 8);
//! let o = top.output("o", 8);
//! top.inst("tile0", "Tile");
//! top.connect_inst("tile0", "req", &i);
//! let r = top.inst_port("tile0", "rsp");
//! top.connect_sig(&o, &r);
//! let circuit = Circuit::from_modules("Soc", vec![top.finish(), tile.finish()], "Soc");
//!
//! let spec = PartitionSpec::exact(vec![PartitionGroup::instances(
//!     "tile",
//!     vec!["tile0".into()],
//! )]);
//! let design = compile(&circuit, &spec)?;
//! assert_eq!(design.partitions.len(), 2); // tile + rest
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod auto;
pub mod channels;
pub mod compiler;
pub mod error;
pub mod fastmode;
pub mod hier;
pub mod noc;
pub mod passthrough;
pub mod spec;

pub use auto::{suggest_partitions, AutoPartitionConfig, PartitionSuggestion};
pub use channels::{ChannelPlan, LinkSpec, NodeDesc, PortClass};
pub use compiler::{
    compile, compile_with_options, CompileOptions, PartitionArtifact, PartitionReport,
    PartitionedDesign, ThreadArtifact,
};
pub use error::{Result, RipperError};
pub use hier::{CutWire, PartRef};
pub use noc::noc_select;
pub use spec::{ChannelPolicy, PartitionGroup, PartitionMode, PartitionSpec, Selection};
