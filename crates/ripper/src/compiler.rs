//! The FireRipper driver: spec + circuit → partitioned design.
//!
//! Runs the full pass pipeline of §III: selection resolution (explicit or
//! NoC-router growth) → reparenting → grouping (one wrapper per partition,
//! or one per duplicate instance under FAME-5) → extraction/removal →
//! fast-mode boundary rewrites → LI-BDN channel construction with
//! chain-length checking — and emits the artifacts the simulation engine
//! consumes, together with the quick user feedback the paper describes
//! (boundary widths, crossings per cycle).

use crate::channels::{build_channels, ChannelPlan, LinkSpec, NodeDesc};
use crate::error::{Result, RipperError};
use crate::fastmode::apply_fast_mode;
use crate::hier::{group_instances, reparent_to_top, split_partitions, PartRef};
use crate::noc::noc_select;
use crate::spec::{PartitionMode, PartitionSpec, Selection};
use fireaxe_ir::{Circuit, Direction};
use fireaxe_libdn::LiBdnSpec;
use std::collections::{BTreeMap, BTreeSet};

/// One simulation thread: a circuit plus its LI-BDN channel structure.
#[derive(Debug, Clone)]
pub struct ThreadArtifact {
    /// Display name (`<group>` or `<group>_t<i>` or `rest`).
    pub name: String,
    /// The thread's circuit; its top module is the boundary module.
    pub circuit: Circuit,
    /// Channel structure.
    pub libdn: LiBdnSpec,
    /// Indices of input channels fed by the environment.
    pub env_inputs: Vec<usize>,
    /// Indices of output channels drained by the environment.
    pub env_outputs: Vec<usize>,
}

/// One partition (one FPGA's worth of design).
#[derive(Debug, Clone)]
pub struct PartitionArtifact {
    /// Group name (or `rest` for the remainder).
    pub name: String,
    /// Threads: one normally, N under FAME-5.
    pub threads: Vec<ThreadArtifact>,
    /// Whether the threads are FAME-5 multiplexed on one host.
    pub fame5: bool,
}

/// Quick feedback FireRipper gives the user about the partition (paper:
/// "providing hardware designers quick feedback about the partition
/// interface and expected simulation performance").
#[derive(Debug, Clone, Default)]
pub struct PartitionReport {
    /// Per-link `(description, width in bits)`.
    pub link_widths: Vec<(String, u64)>,
    /// Link crossings needed to advance one target cycle (2 exact / 1
    /// fast).
    pub crossings_per_cycle: u32,
    /// Human-readable notes (applied rewrites, FAME-5 grouping, ...).
    pub notes: Vec<String>,
}

impl PartitionReport {
    /// The widest link, which bounds (de)serialization cost.
    pub fn max_link_width(&self) -> u64 {
        self.link_widths.iter().map(|(_, w)| *w).max().unwrap_or(0)
    }

    /// Total boundary width across all links.
    pub fn total_boundary_width(&self) -> u64 {
        self.link_widths.iter().map(|(_, w)| *w).sum()
    }
}

/// The compiler's output: everything needed to build a multi-FPGA
/// simulation.
#[derive(Debug, Clone)]
pub struct PartitionedDesign {
    /// Partitions; extracted groups first, remainder last.
    pub partitions: Vec<PartitionArtifact>,
    /// Token links between nodes (flat thread indices; see
    /// [`PartitionedDesign::node_index`]).
    pub links: Vec<LinkSpec>,
    /// Partitioning mode used.
    pub mode: PartitionMode,
    /// User feedback.
    pub report: PartitionReport,
}

impl PartitionedDesign {
    /// Flat node index of `(partition, thread)`, matching link endpoints.
    pub fn node_index(&self, partition: usize, thread: usize) -> usize {
        let mut idx = 0;
        for p in &self.partitions[..partition] {
            idx += p.threads.len();
        }
        idx + thread
    }

    /// Total number of simulation nodes (threads across all partitions).
    pub fn node_count(&self) -> usize {
        self.partitions.iter().map(|p| p.threads.len()).sum()
    }

    /// Iterates `(flat index, partition index, thread index, artifact)`.
    pub fn nodes(&self) -> impl Iterator<Item = (usize, usize, usize, &ThreadArtifact)> {
        self.partitions
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| p.threads.iter().enumerate().map(move |(ti, t)| (pi, ti, t)))
            .enumerate()
            .map(|(flat, (pi, ti, t))| (flat, pi, ti, t))
    }
}

/// Tunable compiler behavior, mostly for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Collapse pure passthrough shells after reparenting so
    /// intra-partition wiring stays inside wrappers (default on; turning
    /// it off routes those wires through the remainder, widening
    /// boundaries and lengthening combinational chains).
    pub resolve_passthroughs: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            resolve_passthroughs: true,
        }
    }
}

/// Runs FireRipper with default options.
///
/// # Errors
///
/// See [`compile_with_options`].
pub fn compile(circuit: &Circuit, spec: &PartitionSpec) -> Result<PartitionedDesign> {
    compile_with_options(circuit, spec, CompileOptions::default())
}

/// Runs FireRipper.
///
/// # Errors
///
/// Propagates IR validation failures, selection errors
/// ([`RipperError::NoSuchInstance`], [`RipperError::OverlappingGroups`]),
/// exact-mode chain violations ([`RipperError::CombChainTooLong`]), and
/// FAME-5 qualification failures ([`RipperError::BadFame5Group`]).
pub fn compile_with_options(
    circuit: &Circuit,
    spec: &PartitionSpec,
    options: CompileOptions,
) -> Result<PartitionedDesign> {
    fireaxe_ir::typecheck::validate(circuit)?;
    let mut work = circuit.clone();

    // 1. Resolve selections.
    let mut group_paths: Vec<Vec<String>> = Vec::with_capacity(spec.groups.len());
    for g in &spec.groups {
        let paths = match &g.selection {
            Selection::Instances(p) => p.clone(),
            Selection::NocRouters { routers, indices } => noc_select(&work, routers, indices)?,
        };
        if paths.is_empty() {
            return Err(RipperError::Malformed {
                message: format!("group `{}` selects no instances", g.name),
            });
        }
        group_paths.push(paths);
    }

    // 2. Overlap check (exact duplicates or nesting).
    {
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        let all: Vec<&String> = group_paths.iter().flatten().collect();
        for p in &all {
            if !seen.insert(p) {
                return Err(RipperError::OverlappingGroups { path: (*p).clone() });
            }
        }
        for a in &all {
            for b in &all {
                if a != b && b.starts_with(&format!("{a}.")) {
                    return Err(RipperError::OverlappingGroups { path: (*b).clone() });
                }
            }
        }
    }

    // 3. Reparent everything to the top.
    let mut group_insts: Vec<Vec<String>> = Vec::with_capacity(group_paths.len());
    for paths in &group_paths {
        let mut insts = Vec::with_capacity(paths.len());
        for p in paths {
            insts.push(reparent_to_top(&mut work, p)?);
        }
        group_insts.push(insts);
    }

    // 3b. Collapse pure passthrough shells left by reparenting so
    // intra-partition connections stay inside the wrapper instead of
    // bouncing through the remainder.
    if options.resolve_passthroughs {
        crate::passthrough::resolve_shell_passthroughs(&mut work);
        crate::passthrough::prune_dead_shell_ports(&mut work);
    }

    // 4. Grouping: one wrapper per group, or one per instance for FAME-5.
    let mut notes = Vec::new();
    let mut wrappers: Vec<(String, PartRef)> = Vec::new();
    let mut thread_names: BTreeMap<PartRef, String> = BTreeMap::new();
    for (gi, (g, insts)) in spec.groups.iter().zip(&group_insts).enumerate() {
        if g.fame5 {
            check_fame5_group(&work, &g.name, insts)?;
            for (ti, inst) in insts.iter().enumerate() {
                let winst = group_instances(
                    &mut work,
                    &format!("{}_t{ti}", g.name),
                    std::slice::from_ref(inst),
                )?;
                let part = PartRef::Wrapper {
                    group: gi,
                    thread: ti,
                };
                thread_names.insert(part, format!("{}_t{ti}", g.name));
                wrappers.push((winst, part));
            }
            notes.push(format!(
                "group `{}`: FAME-5 multi-threading over {} duplicate instances",
                g.name,
                insts.len()
            ));
        } else {
            let winst = group_instances(&mut work, &g.name, insts)?;
            let part = PartRef::Wrapper {
                group: gi,
                thread: 0,
            };
            thread_names.insert(part, g.name.clone());
            wrappers.push((winst, part));
        }
    }

    // 5. Extract + remove.
    let mut split = split_partitions(&work, &wrappers)?;

    // FAME-5 independence: threads of one group must not link directly.
    for w in &split.cut_wires {
        if let (
            PartRef::Wrapper {
                group: ga,
                thread: ta,
            },
            PartRef::Wrapper {
                group: gb,
                thread: tb,
            },
        ) = (w.from.0, w.to.0)
        {
            if ga == gb && ta != tb && spec.groups[ga].fame5 {
                return Err(RipperError::BadFame5Group {
                    group: spec.groups[ga].name.clone(),
                    reason: format!(
                        "threads {ta} and {tb} are directly connected (`{}` -> `{}`)",
                        w.from.1, w.to.1
                    ),
                });
            }
        }
    }

    // 6. Fast-mode boundary rewrites.
    if spec.mode == PartitionMode::Fast {
        let mut boundary_of: BTreeMap<PartRef, BTreeSet<String>> = BTreeMap::new();
        for w in &split.cut_wires {
            boundary_of
                .entry(w.from.0)
                .or_default()
                .insert(w.from.1.clone());
            boundary_of
                .entry(w.to.0)
                .or_default()
                .insert(w.to.1.clone());
        }
        for (wi, (_, part)) in wrappers.iter().enumerate() {
            if let Some(ports) = boundary_of.get(part) {
                let bundles = apply_fast_mode(&mut split.wrapper_circuits[wi], ports)?;
                for b in bundles {
                    notes.push(format!(
                        "fast-mode: {} `{}_*` on `{}`",
                        if b.is_source {
                            "valid&ready gating of"
                        } else {
                            "skid buffer behind"
                        },
                        b.prefix,
                        thread_names[part],
                    ));
                }
            }
        }
        if let Some(ports) = boundary_of.get(&PartRef::Remainder) {
            let bundles = apply_fast_mode(&mut split.remainder, ports)?;
            for b in bundles {
                notes.push(format!(
                    "fast-mode: {} `{}_*` on `rest`",
                    if b.is_source {
                        "valid&ready gating of"
                    } else {
                        "skid buffer behind"
                    },
                    b.prefix,
                ));
            }
        }
    }

    // 7. Channel construction. Node order: wrappers in declaration order,
    // remainder last.
    let mut node_descs: Vec<NodeDesc<'_>> = Vec::new();
    for (wi, (_, part)) in wrappers.iter().enumerate() {
        node_descs.push(NodeDesc {
            part: *part,
            name: thread_names[part].clone(),
            circuit: &split.wrapper_circuits[wi],
        });
    }
    node_descs.push(NodeDesc {
        part: PartRef::Remainder,
        name: "rest".to_string(),
        circuit: &split.remainder,
    });
    let ChannelPlan {
        specs,
        links,
        env_inputs,
        env_outputs,
    } = build_channels(
        &node_descs,
        &split.cut_wires,
        spec.mode,
        spec.channel_policy,
    )?;

    // 8. Assemble artifacts.
    let node_names: Vec<String> = node_descs.iter().map(|n| n.name.clone()).collect();
    drop(node_descs);
    let mut threads: Vec<Option<ThreadArtifact>> = specs
        .into_iter()
        .zip(node_names.iter())
        .zip(env_inputs)
        .zip(env_outputs)
        .map(|(((libdn, name), ei), eo)| {
            Some(ThreadArtifact {
                name: name.clone(),
                circuit: Circuit::new("placeholder"),
                libdn,
                env_inputs: ei,
                env_outputs: eo,
            })
        })
        .collect();
    for (wi, _) in wrappers.iter().enumerate() {
        if let Some(t) = threads[wi].as_mut() {
            t.circuit = split.wrapper_circuits[wi].clone();
        }
    }
    if let Some(t) = threads.last_mut().and_then(Option::as_mut) {
        t.circuit = split.remainder.clone();
    }

    let mut partitions: Vec<PartitionArtifact> = Vec::new();
    let mut cursor = 0usize;
    for (gi, g) in spec.groups.iter().enumerate() {
        let n_threads = if g.fame5 { group_insts[gi].len() } else { 1 };
        let mut ts = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            ts.push(threads[cursor].take().expect("thread artifact"));
            cursor += 1;
        }
        partitions.push(PartitionArtifact {
            name: g.name.clone(),
            threads: ts,
            fame5: g.fame5,
        });
    }
    partitions.push(PartitionArtifact {
        name: "rest".to_string(),
        threads: vec![threads[cursor].take().expect("remainder artifact")],
        fame5: false,
    });

    // 9. Validate every emitted circuit.
    for p in &partitions {
        for t in &p.threads {
            fireaxe_ir::typecheck::validate(&t.circuit)?;
        }
    }

    let link_widths = links
        .iter()
        .map(|l| {
            (
                format!(
                    "{} ch{} -> {} ch{}",
                    node_names[l.from_node], l.from_chan, node_names[l.to_node], l.to_chan
                ),
                l.width,
            )
        })
        .collect();
    let report = PartitionReport {
        link_widths,
        crossings_per_cycle: match spec.mode {
            PartitionMode::Exact => 2,
            PartitionMode::Fast => 1,
        },
        notes,
    };

    Ok(PartitionedDesign {
        partitions,
        links,
        mode: spec.mode,
        report,
    })
}

fn check_fame5_group(circuit: &Circuit, group: &str, insts: &[String]) -> Result<()> {
    let top = circuit.top_module();
    let mut modules: BTreeSet<&str> = BTreeSet::new();
    for inst in insts {
        let m = top
            .instances()
            .find(|(n, _)| n == inst)
            .map(|(_, m)| m)
            .ok_or_else(|| RipperError::NoSuchInstance { path: inst.clone() })?;
        modules.insert(m);
    }
    if modules.len() != 1 {
        return Err(RipperError::BadFame5Group {
            group: group.to_string(),
            reason: format!(
                "members instantiate {} distinct modules ({:?}); FAME-5 requires duplicates",
                modules.len(),
                modules
            ),
        });
    }
    Ok(())
}

/// Checks that a partition's boundary module has output ports on its
/// boundary (sanity helper used by tests and examples).
pub fn boundary_summary(design: &PartitionedDesign) -> Vec<(String, u64, u64)> {
    design
        .nodes()
        .map(|(_, _, _, t)| {
            let inputs: u64 = t
                .circuit
                .top_module()
                .ports_in(Direction::Input)
                .map(|p| u64::from(p.width.get()))
                .sum();
            let outputs: u64 = t
                .circuit
                .top_module()
                .ports_in(Direction::Output)
                .map(|p| u64::from(p.width.get()))
                .sum();
            (t.name.clone(), inputs, outputs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelPolicy, PartitionGroup};
    use fireaxe_ir::build::{ModuleBuilder, Sig};

    /// An SoC-ish design: two identical "tiles" hanging off a shared
    /// "bus", with register-decoupled boundaries.
    fn two_tile_soc() -> Circuit {
        let mut tile = ModuleBuilder::new("Tile");
        let req = tile.input("req", 8);
        let rsp = tile.output("rsp", 8);
        let state = tile.reg("state", 8, 0);
        tile.connect_sig(&state, &req.add(&Sig::lit(1, 8)));
        tile.connect_sig(&rsp, &state);
        let tile = tile.finish();

        let mut top = ModuleBuilder::new("Soc");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("tile0", "Tile");
        top.inst("tile1", "Tile");
        let hub = top.reg("hub", 8, 0);
        top.connect_inst("tile0", "req", &hub);
        top.connect_inst("tile1", "req", &hub);
        let r0 = top.inst_port("tile0", "rsp");
        let r1 = top.inst_port("tile1", "rsp");
        top.connect_sig(&hub, &r0.xor(&r1).xor(&i));
        top.connect_sig(&o, &hub);
        Circuit::from_modules("Soc", vec![top.finish(), tile], "Soc")
    }

    #[test]
    fn exact_compile_two_partitions() {
        let c = two_tile_soc();
        let spec = PartitionSpec::exact(vec![PartitionGroup::instances(
            "tiles",
            vec!["tile0".into(), "tile1".into()],
        )]);
        let d = compile(&c, &spec).unwrap();
        assert_eq!(d.partitions.len(), 2);
        assert_eq!(d.node_count(), 2);
        assert_eq!(d.report.crossings_per_cycle, 2);
        assert!(!d.links.is_empty());
        // Boundary: 2 tiles x (8 in + 8 out).
        assert_eq!(d.report.total_boundary_width(), 32);
    }

    #[test]
    fn fame5_splits_threads() {
        let c = two_tile_soc();
        let spec = PartitionSpec::exact(vec![PartitionGroup::instances(
            "tiles",
            vec!["tile0".into(), "tile1".into()],
        )
        .with_fame5()]);
        let d = compile(&c, &spec).unwrap();
        assert_eq!(d.partitions[0].threads.len(), 2);
        assert!(d.partitions[0].fame5);
        assert_eq!(d.node_count(), 3);
        assert_eq!(d.node_index(1, 0), 2);
    }

    #[test]
    fn fame5_rejects_mixed_modules() {
        let mut c = two_tile_soc();
        // Add a structurally different module and select it together with
        // a tile.
        let mut other = ModuleBuilder::new("Other");
        let a = other.input("req", 8);
        let y = other.output("rsp", 8);
        let r = other.reg("r", 8, 0);
        other.connect_sig(&r, &a);
        other.connect_sig(&y, &r);
        c.add_module(other.finish());
        {
            let top = c.module_mut("Soc").unwrap();
            top.body.push(fireaxe_ir::Stmt::Inst {
                name: "oth".into(),
                module: "Other".into(),
            });
            top.body.push(fireaxe_ir::Stmt::Connect {
                lhs: fireaxe_ir::Ref::instance_port("oth", "req"),
                rhs: fireaxe_ir::Expr::reference("i"),
            });
        }
        let spec = PartitionSpec::exact(vec![PartitionGroup {
            name: "mixed".into(),
            selection: Selection::Instances(vec!["tile0".into(), "oth".into()]),
            fame5: true,
        }]);
        assert!(matches!(
            compile(&c, &spec),
            Err(RipperError::BadFame5Group { .. })
        ));
    }

    #[test]
    fn overlapping_groups_rejected() {
        let c = two_tile_soc();
        let spec = PartitionSpec::exact(vec![
            PartitionGroup::instances("a", vec!["tile0".into()]),
            PartitionGroup::instances("b", vec!["tile0".into()]),
        ]);
        assert!(matches!(
            compile(&c, &spec),
            Err(RipperError::OverlappingGroups { .. })
        ));
    }

    #[test]
    fn fast_mode_reports_single_crossing() {
        let c = two_tile_soc();
        let spec = PartitionSpec::fast(vec![PartitionGroup::instances(
            "tiles",
            vec!["tile0".into(), "tile1".into()],
        )]);
        let d = compile(&c, &spec).unwrap();
        assert_eq!(d.report.crossings_per_cycle, 1);
        assert!(d.links.iter().all(|l| l.seeded));
    }

    #[test]
    fn monolithic_policy_threads_through() {
        let c = two_tile_soc();
        let spec = PartitionSpec {
            mode: PartitionMode::Exact,
            channel_policy: ChannelPolicy::Monolithic,
            groups: vec![PartitionGroup::instances("t", vec!["tile0".into()])],
        };
        let d = compile(&c, &spec).unwrap();
        // One merged channel per direction per link pair.
        assert_eq!(d.links.len(), 2);
    }
}
