//! Partition specifications: what the user hands FireRipper.
//!
//! A [`PartitionSpec`] names the partitioning mode (paper §III-A), the
//! channel policy (used to demonstrate the Fig. 2a deadlock), and one
//! [`PartitionGroup`] per extracted FPGA. The design's remainder (the
//! "rest of the SoC") implicitly becomes one more partition.

/// Partitioning mode (paper §III-A): the speed/fidelity trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionMode {
    /// Cycle-exact with respect to the unmodified target RTL. Requires
    /// combinational dependency chains of length ≤ 2 across the boundary;
    /// costs two inter-FPGA crossings per target cycle.
    #[default]
    Exact,
    /// Cycle-approximate: boundaries must be latency-insensitive; seed
    /// tokens plus skid-buffer/valid-gating boundary rewrites yield one
    /// crossing per target cycle (≈2× faster).
    Fast,
}

impl std::fmt::Display for PartitionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionMode::Exact => write!(f, "exact-mode"),
            PartitionMode::Fast => write!(f, "fast-mode"),
        }
    }
}

/// How boundary ports are aggregated into LI-BDN channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelPolicy {
    /// Separate source/sink channels (paper Fig. 2b): deadlock-free.
    #[default]
    Separated,
    /// One channel per direction (paper Fig. 2a): deadlocks whenever the
    /// boundary carries combinational logic. Kept for reproducing the
    /// paper's deadlock discussion; never use in production.
    Monolithic,
}

/// How a group's modules are selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Explicit instance paths (instance names from the top, joined with
    /// `.`): the default fine-grained method.
    Instances(Vec<String>),
    /// NoC-partition-mode (paper §III-B / Fig. 4): the user names router
    /// node indices; FireRipper grows the set by absorbing modules that
    /// are exclusively connected to it (protocol converters, CDCs, tiles).
    NocRouters {
        /// Instance paths of **all** router nodes, in index order.
        routers: Vec<String>,
        /// Indices of the routers to extract into this partition.
        indices: Vec<usize>,
    },
}

/// One extracted partition (one FPGA's worth of target design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionGroup {
    /// Name used for the wrapper module and reports.
    pub name: String,
    /// Module selection.
    pub selection: Selection,
    /// Apply FAME-5 multi-threading to the group's duplicate modules
    /// (paper §VI-B). Requires the group to consist of N independent
    /// instances of one module.
    pub fame5: bool,
}

impl PartitionGroup {
    /// An explicit-instance group without FAME-5.
    pub fn instances(name: impl Into<String>, paths: Vec<String>) -> Self {
        PartitionGroup {
            name: name.into(),
            selection: Selection::Instances(paths),
            fame5: false,
        }
    }

    /// Enables FAME-5 threading on this group.
    pub fn with_fame5(mut self) -> Self {
        self.fame5 = true;
        self
    }
}

/// The complete user input to FireRipper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Partitioning mode.
    pub mode: PartitionMode,
    /// Channel aggregation policy.
    pub channel_policy: ChannelPolicy,
    /// Extracted groups; the remainder is implicit.
    pub groups: Vec<PartitionGroup>,
}

impl PartitionSpec {
    /// Exact-mode spec with separated channels.
    pub fn exact(groups: Vec<PartitionGroup>) -> Self {
        PartitionSpec {
            mode: PartitionMode::Exact,
            channel_policy: ChannelPolicy::Separated,
            groups,
        }
    }

    /// Fast-mode spec.
    pub fn fast(groups: Vec<PartitionGroup>) -> Self {
        PartitionSpec {
            mode: PartitionMode::Fast,
            channel_policy: ChannelPolicy::Separated,
            groups,
        }
    }

    /// Total number of partitions including the remainder.
    pub fn partition_count(&self) -> usize {
        self.groups.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let spec = PartitionSpec::fast(vec![PartitionGroup::instances(
            "tiles",
            vec!["tile0".into(), "tile1".into()],
        )
        .with_fame5()]);
        assert_eq!(spec.mode, PartitionMode::Fast);
        assert_eq!(spec.partition_count(), 2);
        assert!(spec.groups[0].fame5);
    }

    #[test]
    fn mode_display() {
        assert_eq!(PartitionMode::Exact.to_string(), "exact-mode");
        assert_eq!(PartitionMode::Fast.to_string(), "fast-mode");
    }
}
