//! Automated partitioning (paper §VIII-B).
//!
//! The paper's future-work section asks for a flow needing less user
//! guidance: "FireRipper would need to be able to make rough per-FPGA
//! resource consumption estimates based on the RTL-level circuit
//! representation to provide users quick feedback about whether the
//! partition will fit", plus automatic search for partition boundaries.
//!
//! [`suggest_partitions`] implements that: it estimates each top-level
//! instance's resource footprint, decides which instances must leave the
//! remainder FPGA, and first-fit-decreasing bin-packs them into as few
//! extra FPGAs as possible, grouping instances of the same module
//! together so the result stays FAME-5-friendly.

use crate::error::{Result, RipperError};
use crate::spec::PartitionGroup;
use fireaxe_fpga::{estimate, FpgaSpec, ResourceEstimate, ROUTABLE_UTILIZATION};
use fireaxe_ir::Circuit;

/// Configuration for the automatic partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoPartitionConfig {
    /// Target FPGA.
    pub fpga: FpgaSpec,
    /// Fraction of the FPGA's LUTs a partition may use (defaults to the
    /// routability threshold).
    pub utilization_target: f64,
    /// Upper bound on extracted groups (i.e. extra FPGAs); the remainder
    /// adds one more.
    pub max_groups: usize,
    /// Instances below this LUT count stay in the remainder (glue logic
    /// is not worth a link crossing).
    pub min_extract_luts: u64,
}

impl AutoPartitionConfig {
    /// Sensible defaults for a given FPGA.
    pub fn for_fpga(fpga: FpgaSpec) -> Self {
        AutoPartitionConfig {
            fpga,
            utilization_target: ROUTABLE_UTILIZATION,
            max_groups: 16,
            min_extract_luts: 50_000,
        }
    }
}

/// One suggested placement, with the compiler's resource feedback.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSuggestion {
    /// Groups to pass to [`crate::compile`] (empty means everything fits
    /// on one FPGA).
    pub groups: Vec<PartitionGroup>,
    /// Projected LUT utilization per extracted group, same order.
    pub group_utilization: Vec<f64>,
    /// Projected LUT utilization of the remainder.
    pub remainder_utilization: f64,
}

/// Suggests a partitioning of `circuit` onto copies of `cfg.fpga`.
///
/// # Errors
///
/// Returns [`RipperError::Malformed`] when a single instance exceeds the
/// per-FPGA budget (no instance-granularity placement can work — the user
/// must select a finer boundary, as with the GC40 core split) or when the
/// design cannot fit within `max_groups` FPGAs.
pub fn suggest_partitions(
    circuit: &Circuit,
    cfg: &AutoPartitionConfig,
) -> Result<PartitionSuggestion> {
    let budget = (cfg.fpga.luts as f64 * cfg.utilization_target) as u64;
    let total = estimate(circuit);
    let remainder_util = |luts: u64| luts as f64 / cfg.fpga.luts as f64;
    if total.luts <= budget {
        return Ok(PartitionSuggestion {
            groups: Vec::new(),
            group_utilization: Vec::new(),
            remainder_utilization: remainder_util(total.luts),
        });
    }

    // Per top-level-instance subtree estimates.
    let top = circuit.top_module();
    let mut items: Vec<(String, u64, String)> = Vec::new(); // (inst, luts, module)
    for (inst, module) in top.instances() {
        let mut sub = circuit.clone();
        sub.top = module.to_string();
        sub.prune_unreachable();
        let e: ResourceEstimate = estimate(&sub);
        items.push((inst.to_string(), e.luts, module.to_string()));
    }

    // Keep small glue at home; extract big movable instances,
    // largest first.
    let mut movable: Vec<&(String, u64, String)> = items
        .iter()
        .filter(|(_, luts, _)| *luts >= cfg.min_extract_luts)
        .collect();
    movable.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let glue: u64 = items
        .iter()
        .filter(|(_, luts, _)| *luts < cfg.min_extract_luts)
        .map(|(_, l, _)| *l)
        .sum();

    for (inst, luts, _) in &movable {
        if *luts > budget {
            return Err(RipperError::Malformed {
                message: format!(
                    "instance `{inst}` alone needs {luts} LUTs (> {budget} budget); \
                     select a finer boundary inside it (as with the GC40 core split)"
                ),
            });
        }
    }

    // First-fit decreasing, preferring bins that already hold the same
    // module (keeps groups FAME-5-compatible where possible). The
    // remainder is bin 0 and starts holding the glue.
    struct Bin {
        luts: u64,
        insts: Vec<String>,
        module: Option<String>,
    }
    let mut remainder_luts = glue;
    let mut bins: Vec<Bin> = Vec::new();
    for (inst, luts, module) in movable {
        // Prefer keeping it in the remainder while there is room.
        if remainder_luts + luts <= budget {
            remainder_luts += luts;
            continue;
        }
        let target = bins
            .iter_mut()
            .filter(|b| b.luts + luts <= budget)
            .min_by_key(|b| {
                (
                    b.module.as_deref() != Some(module.as_str()),
                    budget - b.luts,
                )
            });
        match target {
            Some(b) => {
                b.luts += luts;
                b.insts.push(inst.clone());
                if b.module.as_deref() != Some(module.as_str()) {
                    b.module = None;
                }
            }
            None => bins.push(Bin {
                luts: *luts,
                insts: vec![inst.clone()],
                module: Some(module.clone()),
            }),
        }
    }
    if bins.len() > cfg.max_groups {
        return Err(RipperError::Malformed {
            message: format!(
                "design needs {} extra FPGAs but max_groups is {}",
                bins.len(),
                cfg.max_groups
            ),
        });
    }

    let group_utilization = bins
        .iter()
        .map(|b| b.luts as f64 / cfg.fpga.luts as f64)
        .collect();
    let groups = bins
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            let g = PartitionGroup::instances(format!("auto{i}"), b.insts);
            // Homogeneous groups of >1 instance can be FAME-5 threaded.
            if b.module.is_some() && g.selection_len() > 1 {
                g.with_fame5()
            } else {
                g
            }
        })
        .collect();
    Ok(PartitionSuggestion {
        groups,
        group_utilization,
        remainder_utilization: remainder_util(remainder_luts),
    })
}

impl PartitionGroup {
    /// Number of explicitly selected instances (0 for NoC selections).
    pub fn selection_len(&self) -> usize {
        match &self.selection {
            crate::spec::Selection::Instances(v) => v.len(),
            crate::spec::Selection::NocRouters { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::build::ModuleBuilder;
    use fireaxe_ir::{ExternInfo, Module, Port, ResourceHints};

    fn big_tile(name: &str, luts: u64) -> Module {
        let mut m = Module::new(name);
        m.ports = vec![Port::input("req", 8), Port::output("rsp", 8)];
        m.extern_info = Some(ExternInfo {
            behavior: "boom_tile?id_from_path=1".into(),
            comb_paths: vec![],
            resources: ResourceHints {
                luts,
                regs: luts / 2,
                brams: 10,
                dsps: 0,
            },
        });
        m
    }

    fn soc(tile_luts: u64, tiles: usize) -> Circuit {
        let tile = big_tile("Tile", tile_luts);
        let mut top = ModuleBuilder::new("Soc");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        let hub = top.reg("hub", 8, 0);
        let mut acc = i.clone();
        for t in 0..tiles {
            let inst = format!("tile{t}");
            top.inst(&inst, "Tile");
            top.connect_inst(&inst, "req", &hub);
            let r = top.inst_port(&inst, "rsp");
            acc = acc.xor(&r);
        }
        top.connect_sig(&hub, &acc);
        top.connect_sig(&o, &hub);
        Circuit::from_modules("Soc", vec![top.finish(), tile], "Soc")
    }

    fn cfg() -> AutoPartitionConfig {
        AutoPartitionConfig::for_fpga(FpgaSpec::alveo_u250())
    }

    #[test]
    fn small_design_needs_no_partitioning() {
        let s = suggest_partitions(&soc(100_000, 2), &cfg()).unwrap();
        assert!(s.groups.is_empty());
        assert!(s.remainder_utilization < 0.3);
    }

    #[test]
    fn oversized_design_gets_split() {
        // 6 tiles x 600k = 3.6M LUTs on a 1.55M-LUT FPGA: needs ~3 FPGAs.
        let s = suggest_partitions(&soc(600_000, 6), &cfg()).unwrap();
        assert!(!s.groups.is_empty());
        assert!(s.remainder_utilization <= ROUTABLE_UTILIZATION + 1e-9);
        for u in &s.group_utilization {
            assert!(*u <= ROUTABLE_UTILIZATION + 1e-9, "group util {u}");
        }
        // Homogeneous groups are marked FAME-5-able.
        assert!(s.groups.iter().any(|g| g.fame5 || g.selection_len() == 1));
        // And the suggestion actually compiles.
        let design = crate::compile(
            &soc(600_000, 6),
            &crate::PartitionSpec::fast(s.groups.clone()),
        )
        .unwrap();
        assert_eq!(design.partitions.len(), s.groups.len() + 1);
    }

    #[test]
    fn monolithic_monster_is_rejected() {
        let err = suggest_partitions(&soc(2_000_000, 2), &cfg()).unwrap_err();
        assert!(matches!(err, RipperError::Malformed { .. }));
        assert!(err.to_string().contains("finer boundary"));
    }

    #[test]
    fn group_budget_cap_enforced() {
        let mut c = cfg();
        c.max_groups = 1;
        assert!(suggest_partitions(&soc(600_000, 8), &c).is_err());
    }
}
