//! FireRipper compiler errors.

use std::fmt;

/// Errors raised while partitioning a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RipperError {
    /// An instance path in the partition spec does not exist.
    NoSuchInstance {
        /// The path as given (instance names joined with `.`).
        path: String,
    },
    /// The combinational dependency chain across the partition boundary is
    /// longer than exact-mode supports (paper §III-A1: FireRipper
    /// "terminates compilation while providing the user with the chain of
    /// combinational ports that caused the termination").
    CombChainTooLong {
        /// The offending chain of boundary ports, in signal-flow order.
        chain: Vec<String>,
    },
    /// A wrapper output feeds both another partition and the remainder;
    /// token fan-out across links is not supported.
    UnsupportedFanout {
        /// The wrapper output port.
        port: String,
    },
    /// FAME-5 was requested for a group whose members are not independent
    /// duplicates of one module.
    BadFame5Group {
        /// Group name.
        group: String,
        /// Why the group does not qualify.
        reason: String,
    },
    /// The same instance was selected by two partition groups.
    OverlappingGroups {
        /// The doubly-selected instance path.
        path: String,
    },
    /// An underlying IR operation failed.
    Ir(fireaxe_ir::IrError),
    /// Any other partitioning inconsistency.
    Malformed {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for RipperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RipperError::NoSuchInstance { path } => {
                write!(f, "no instance at path `{path}`")
            }
            RipperError::CombChainTooLong { chain } => write!(
                f,
                "combinational dependency chain across the partition boundary is too long \
                 (exact-mode supports chains of length <= 2): {}",
                chain.join(" -> ")
            ),
            RipperError::UnsupportedFanout { port } => write!(
                f,
                "wrapper output `{port}` fans out to both another partition and the remainder"
            ),
            RipperError::BadFame5Group { group, reason } => {
                write!(f, "group `{group}` cannot be FAME-5 threaded: {reason}")
            }
            RipperError::OverlappingGroups { path } => {
                write!(
                    f,
                    "instance `{path}` selected by more than one partition group"
                )
            }
            RipperError::Ir(e) => write!(f, "IR error: {e}"),
            RipperError::Malformed { message } => write!(f, "partitioning failed: {message}"),
        }
    }
}

impl std::error::Error for RipperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RipperError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fireaxe_ir::IrError> for RipperError {
    fn from(e: fireaxe_ir::IrError) -> Self {
        RipperError::Ir(e)
    }
}

/// Convenient alias.
pub type Result<T> = std::result::Result<T, RipperError>;
