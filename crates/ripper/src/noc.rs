//! NoC-partition-mode module selection (paper §III-B, Fig. 4).
//!
//! NoC router boundaries are credit-based (latency-insensitive) and free
//! of input→output combinational coupling, which makes them ideal cut
//! points. Instead of listing every module, the user names router-node
//! indices; FireRipper grows the selection by absorbing modules that are
//! connected to the selected set but to no *foreign* router — exactly the
//! paper's recursive wrapper construction (protocol converters, CDCs, and
//! the tiles hanging off the selected routers all get pulled in), then
//! collapses the result to maximal subtree roots for extraction.

use crate::error::{Result, RipperError};
use fireaxe_ir::{Circuit, Expr, Ref, Stmt};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Union-find over net endpoints.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Graph node: a leaf instance (no children) or a module's local logic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum GraphNode {
    Leaf(String),
    Logic(String),
}

/// Flattened connectivity: leaf instances and per-module logic, with
/// adjacency through nets (chains of pure-reference connects).
struct ConnGraph {
    adjacency: BTreeMap<GraphNode, BTreeSet<GraphNode>>,
    leaves: BTreeSet<String>,
}

fn build_graph(circuit: &Circuit) -> ConnGraph {
    // Endpoint interning.
    let mut ep_ids: HashMap<(String, String), usize> = HashMap::new();
    let mut ep_list: Vec<(String, String)> = Vec::new();
    // Deferred logic attachments: (logic node path, endpoint id).
    let mut logic_edges: Vec<(String, usize)> = Vec::new();
    let mut alias_edges: Vec<(usize, usize)> = Vec::new();
    let mut leaves: BTreeSet<String> = BTreeSet::new();

    fn intern(
        ep_ids: &mut HashMap<(String, String), usize>,
        ep_list: &mut Vec<(String, String)>,
        path: String,
        sig: String,
    ) -> usize {
        *ep_ids
            .entry((path.clone(), sig.clone()))
            .or_insert_with(|| {
                ep_list.push((path, sig));
                ep_list.len() - 1
            })
    }

    fn join(path: &str, seg: &str) -> String {
        if path.is_empty() {
            seg.to_string()
        } else {
            format!("{path}.{seg}")
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        circuit: &Circuit,
        path: &str,
        module_name: &str,
        ep_ids: &mut HashMap<(String, String), usize>,
        ep_list: &mut Vec<(String, String)>,
        alias_edges: &mut Vec<(usize, usize)>,
        logic_edges: &mut Vec<(String, usize)>,
        leaves: &mut BTreeSet<String>,
    ) {
        let Some(module) = circuit.module(module_name) else {
            return;
        };
        let is_leaf = module.is_extern() || module.instances().next().is_none();
        if is_leaf && !path.is_empty() {
            leaves.insert(path.to_string());
            return;
        }
        let ep_of = |r: &Ref,
                     ep_ids: &mut HashMap<(String, String), usize>,
                     ep_list: &mut Vec<(String, String)>| {
            match &r.instance {
                Some(i) => intern(ep_ids, ep_list, join(path, i), r.name.clone()),
                None => intern(ep_ids, ep_list, path.to_string(), r.name.clone()),
            }
        };
        for stmt in &module.body {
            match stmt {
                Stmt::Inst { name, module: m } => {
                    walk(
                        circuit,
                        &join(path, name),
                        m,
                        ep_ids,
                        ep_list,
                        alias_edges,
                        logic_edges,
                        leaves,
                    );
                }
                Stmt::Connect { lhs, rhs } => {
                    let l = ep_of(lhs, ep_ids, ep_list);
                    match rhs {
                        Expr::Ref(r) => {
                            let rr = ep_of(r, ep_ids, ep_list);
                            alias_edges.push((l, rr));
                        }
                        other => {
                            logic_edges.push((path.to_string(), l));
                            let mut refs = Vec::new();
                            other.collect_refs(&mut refs);
                            for r in refs {
                                let rr = ep_of(r, ep_ids, ep_list);
                                logic_edges.push((path.to_string(), rr));
                            }
                        }
                    }
                }
                Stmt::Node { name, expr } => {
                    let l = intern(ep_ids, ep_list, path.to_string(), name.clone());
                    logic_edges.push((path.to_string(), l));
                    let mut refs = Vec::new();
                    expr.collect_refs(&mut refs);
                    for r in refs {
                        let rr = ep_of(r, ep_ids, ep_list);
                        logic_edges.push((path.to_string(), rr));
                    }
                }
                _ => {}
            }
        }
    }

    walk(
        circuit,
        "",
        &circuit.top,
        &mut ep_ids,
        &mut ep_list,
        &mut alias_edges,
        &mut logic_edges,
        &mut leaves,
    );

    let mut uf = UnionFind::new(ep_list.len());
    for (a, b) in alias_edges {
        uf.union(a, b);
    }

    // Attach graph nodes to nets.
    let mut net_members: BTreeMap<usize, BTreeSet<GraphNode>> = BTreeMap::new();
    for (id, (path, _sig)) in ep_list.iter().enumerate() {
        if leaves.contains(path) {
            net_members
                .entry(uf.find(id))
                .or_default()
                .insert(GraphNode::Leaf(path.clone()));
        }
    }
    for (logic_path, ep) in logic_edges {
        net_members
            .entry(uf.find(ep))
            .or_default()
            .insert(GraphNode::Logic(logic_path));
    }

    let mut adjacency: BTreeMap<GraphNode, BTreeSet<GraphNode>> = BTreeMap::new();
    for members in net_members.values() {
        for a in members {
            for b in members {
                if a != b {
                    adjacency.entry(a.clone()).or_default().insert(b.clone());
                }
            }
        }
    }
    ConnGraph { adjacency, leaves }
}

/// Grows a NoC-router selection into the full set of instance paths to
/// extract (paper Fig. 4 steps 1–4).
///
/// `routers` lists the instance paths of every router node in index
/// order; `indices` picks the routers to extract. The returned paths are
/// maximal subtree roots suitable for [`crate::hier::reparent_to_top`].
///
/// # Errors
///
/// Returns [`RipperError::NoSuchInstance`] for out-of-range indices or
/// router paths that do not resolve to leaf instances.
pub fn noc_select(circuit: &Circuit, routers: &[String], indices: &[usize]) -> Result<Vec<String>> {
    for &i in indices {
        if i >= routers.len() {
            return Err(RipperError::NoSuchInstance {
                path: format!("router index {i} (only {} routers)", routers.len()),
            });
        }
    }
    let graph = build_graph(circuit);
    let all_routers: BTreeSet<&String> = routers.iter().collect();
    let selected_routers: BTreeSet<String> = indices.iter().map(|&i| routers[i].clone()).collect();
    for r in &selected_routers {
        if !graph.leaves.contains(r) {
            return Err(RipperError::NoSuchInstance { path: r.clone() });
        }
    }
    let foreign: BTreeSet<GraphNode> = routers
        .iter()
        .filter(|r| !selected_routers.contains(*r))
        .map(|r| GraphNode::Leaf(r.clone()))
        .collect();

    // Fixpoint absorption: nodes adjacent to the selection but to no
    // foreign router get pulled in.
    let mut selected: BTreeSet<GraphNode> = selected_routers
        .iter()
        .map(|r| GraphNode::Leaf(r.clone()))
        .collect();
    loop {
        let mut grew = false;
        let frontier: Vec<GraphNode> = graph
            .adjacency
            .iter()
            .filter(|(n, adj)| {
                !selected.contains(*n)
                    && !all_routers.contains(&node_path(n))
                    && adj.iter().any(|m| selected.contains(m))
                    && adj.iter().all(|m| !foreign.contains(m))
            })
            .map(|(n, _)| n.clone())
            .collect();
        for n in frontier {
            selected.insert(n);
            grew = true;
        }
        if !grew {
            break;
        }
    }

    // Collapse to maximal subtree roots.
    let leaf_paths: BTreeSet<String> = selected
        .iter()
        .filter_map(|n| match n {
            GraphNode::Leaf(p) => Some(p.clone()),
            GraphNode::Logic(_) => None,
        })
        .collect();
    Ok(collapse_subtrees(circuit, &graph.leaves, &leaf_paths))
}

fn node_path(n: &GraphNode) -> String {
    match n {
        GraphNode::Leaf(p) | GraphNode::Logic(p) => p.clone(),
    }
}

/// Finds the set of maximal instance subtrees all of whose leaves are
/// selected.
fn collapse_subtrees(
    circuit: &Circuit,
    all_leaves: &BTreeSet<String>,
    selected_leaves: &BTreeSet<String>,
) -> Vec<String> {
    fn leaves_under<'a>(all: &'a BTreeSet<String>, prefix: &str) -> Vec<&'a String> {
        all.iter()
            .filter(|l| *l == prefix || l.starts_with(&format!("{prefix}.")))
            .collect()
    }
    let mut out = Vec::new();
    fn descend(
        circuit: &Circuit,
        module: &str,
        path: &str,
        all: &BTreeSet<String>,
        sel: &BTreeSet<String>,
        out: &mut Vec<String>,
    ) {
        let Some(m) = circuit.module(module) else {
            return;
        };
        for (inst, child) in m.instances() {
            let child_path = if path.is_empty() {
                inst.to_string()
            } else {
                format!("{path}.{inst}")
            };
            let under = leaves_under(all, &child_path);
            if under.is_empty() {
                continue;
            }
            if under.iter().all(|l| sel.contains(*l)) {
                out.push(child_path);
            } else if under.iter().any(|l| sel.contains(*l)) {
                descend(circuit, child, &child_path, all, sel, out);
            }
        }
    }
    descend(
        circuit,
        &circuit.top,
        "",
        all_leaves,
        selected_leaves,
        &mut out,
    );
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::build::ModuleBuilder;
    use fireaxe_ir::Circuit;

    /// A toy 4-router ring: router_i <-> pc_i <-> tile_i, routers chained.
    /// Mirrors the Fig. 4 structure at a single hierarchy level plus tile
    /// subtrees.
    fn ring_soc() -> Circuit {
        let mut router = ModuleBuilder::new("Router");
        for p in ["left_in", "right_in", "local_in"] {
            router.input(p, 8);
        }
        let lo = router.output("left_out", 8);
        let ro = router.output("right_out", 8);
        let loc = router.output("local_out", 8);
        let r = router.reg("buf", 8, 0);
        router.connect_sig(&lo, &r);
        router.connect_sig(&ro, &r);
        router.connect_sig(&loc, &r);
        let li = fireaxe_ir::build::Sig::from_expr(fireaxe_ir::Expr::reference("left_in"));
        router.connect_sig(&r, &li);
        let router = router.finish();

        let mut pc = ModuleBuilder::new("ProtoConv");
        let a = pc.input("from_router", 8);
        let b = pc.input("from_tile", 8);
        let x = pc.output("to_router", 8);
        let y = pc.output("to_tile", 8);
        let r1 = pc.reg("r1", 8, 0);
        let r2 = pc.reg("r2", 8, 0);
        pc.connect_sig(&r1, &a);
        pc.connect_sig(&r2, &b);
        pc.connect_sig(&y, &r1);
        pc.connect_sig(&x, &r2);
        let pc = pc.finish();

        let mut core = ModuleBuilder::new("Core");
        let ci = core.input("bus_in", 8);
        let co = core.output("bus_out", 8);
        let cr = core.reg("state", 8, 0);
        core.connect_sig(&cr, &ci);
        core.connect_sig(&co, &cr);
        let core = core.finish();

        let mut tile = ModuleBuilder::new("Tile");
        let ti = tile.input("in", 8);
        let to = tile.output("out", 8);
        tile.inst("core", "Core");
        tile.connect_inst("core", "bus_in", &ti);
        let c_out = tile.inst_port("core", "bus_out");
        tile.connect_sig(&to, &c_out);
        let tile = tile.finish();

        let mut top = ModuleBuilder::new("Soc");
        let n = 4usize;
        for i in 0..n {
            top.inst(format!("router{i}"), "Router");
            top.inst(format!("pc{i}"), "ProtoConv");
            top.inst(format!("tile{i}"), "Tile");
        }
        for i in 0..n {
            let next = (i + 1) % n;
            let prev = (i + n - 1) % n;
            let r_right = top.inst_port(&format!("router{i}"), "right_out");
            top.connect_inst(&format!("router{next}"), "left_in", &r_right);
            let r_left = top.inst_port(&format!("router{i}"), "left_out");
            top.connect_inst(&format!("router{prev}"), "right_in", &r_left);
            // router <-> pc
            let pc_to_r = top.inst_port(&format!("pc{i}"), "to_router");
            top.connect_inst(&format!("router{i}"), "local_in", &pc_to_r);
            let r_local = top.inst_port(&format!("router{i}"), "local_out");
            top.connect_inst(&format!("pc{i}"), "from_router", &r_local);
            // pc <-> tile
            let t_out = top.inst_port(&format!("tile{i}"), "out");
            top.connect_inst(&format!("pc{i}"), "from_tile", &t_out);
            let pc_to_t = top.inst_port(&format!("pc{i}"), "to_tile");
            top.connect_inst(&format!("tile{i}"), "in", &pc_to_t);
        }
        // An SoC-level observer tied to router0's tile (stays behind).
        let obs = top.output("obs", 8);
        let t0 = top.inst_port("pc0", "to_tile");
        top.connect_sig(&obs, &t0);
        Circuit::from_modules("Soc", vec![top.finish(), router, pc, tile, core], "Soc")
    }

    fn routers() -> Vec<String> {
        (0..4).map(|i| format!("router{i}")).collect()
    }

    #[test]
    fn grows_selection_through_pc_and_tile() {
        let c = ring_soc();
        let sel = noc_select(&c, &routers(), &[1, 2]).unwrap();
        // Routers 1,2 plus their protocol converters and whole tiles.
        assert!(sel.contains(&"router1".to_string()));
        assert!(sel.contains(&"router2".to_string()));
        assert!(sel.contains(&"pc1".to_string()));
        assert!(sel.contains(&"pc2".to_string()));
        // Tiles collapse to subtree roots, not their inner cores.
        assert!(sel.contains(&"tile1".to_string()));
        assert!(sel.contains(&"tile2".to_string()));
        assert!(!sel.iter().any(|p| p.contains("core")));
        // Nothing from foreign routers' neighborhoods.
        assert!(!sel.contains(&"pc0".to_string()));
        assert!(!sel.contains(&"tile3".to_string()));
        assert_eq!(sel.len(), 6);
    }

    #[test]
    fn observer_blocks_absorption() {
        // pc0 feeds the top-level observer logic; selecting router 0 pulls
        // in pc0/tile0 but the observer connection is to a top port, which
        // does not block absorption (it is not a foreign router).
        let c = ring_soc();
        let sel = noc_select(&c, &routers(), &[0]).unwrap();
        assert!(sel.contains(&"router0".to_string()));
        assert!(sel.contains(&"pc0".to_string()));
        assert!(sel.contains(&"tile0".to_string()));
    }

    #[test]
    fn bad_index_rejected() {
        let c = ring_soc();
        assert!(matches!(
            noc_select(&c, &routers(), &[9]),
            Err(RipperError::NoSuchInstance { .. })
        ));
    }

    #[test]
    fn empty_selection_yields_routers_only() {
        let c = ring_soc();
        let sel = noc_select(&c, &routers(), &[]).unwrap();
        assert!(sel.is_empty());
    }
}
