//! Shell-passthrough resolution.
//!
//! Reparenting (Fig. 5a) punches I/O ports through every intermediate
//! module, leaving those modules as *shells* of pure wire passthroughs —
//! possibly several levels deep. A signal between two extracted instances
//! would then bounce through the remainder partition, turning a
//! one-crossing wire into a three-crossing combinational chain and
//! wasting link bandwidth.
//!
//! [`resolve_shell_passthroughs`] traces every top-level instance-port
//! read through pure reference chains — down through shell output ports,
//! across shell-internal wiring, and back up through shell input ports —
//! and rewrites the reference to the ultimate top-level driver. Grouping
//! then keeps intra-partition connections inside the wrapper, which is
//! what FireRipper gets for free by wrapping before extraction.

use fireaxe_ir::{Circuit, Direction, Expr, Module, Ref, Stmt};

/// Traces `start` (a read of `inst.port` in the top module) through pure
/// reference chains to a top-level signal, if one exists.
fn trace_to_top(circuit: &Circuit, start: &Ref) -> Option<Ref> {
    let top = circuit.top_module();
    // Stack of (module, instance-name-in-parent) below the current
    // context; empty means the context is the top module.
    let mut stack: Vec<(&Module, String)> = Vec::new();
    let mut ctx: &Module = top;
    let mut cur: Ref = start.clone();
    // Best top-level-valid resolution seen so far; deeper tracing may
    // still improve on it (multi-level shells), and if it dead-ends we
    // fall back to this.
    let mut best: Option<Ref> = None;

    let find_pure_driver = |m: &Module, target: &Ref| -> Option<Ref> {
        for s in &m.body {
            match s {
                Stmt::Connect {
                    lhs,
                    rhs: Expr::Ref(r),
                } if lhs == target => return Some(r.clone()),
                Stmt::Node {
                    name,
                    expr: Expr::Ref(r),
                } if target.is_local() && *name == target.name => return Some(r.clone()),
                _ => {}
            }
        }
        None
    };

    for _ in 0..256 {
        // Record any top-level-valid waypoint.
        if stack.is_empty() && &cur != start {
            let valid = match &cur.instance {
                None => true, // top-local signal
                Some(i) => ctx
                    .instances()
                    .find(|(n, _)| n == i)
                    .and_then(|(_, m)| circuit.module(m))
                    .and_then(|m| m.port(&cur.name))
                    .is_some_and(|p| p.direction == Direction::Output),
            };
            if valid {
                best = Some(cur.clone());
            }
        }

        let next = match cur.instance.clone() {
            Some(inst) => {
                let Some(child) = ctx
                    .instances()
                    .find(|(n, _)| *n == inst)
                    .and_then(|(_, m)| circuit.module(m))
                else {
                    break;
                };
                let Some(port) = child.port(&cur.name) else {
                    break;
                };
                match port.direction {
                    Direction::Output => {
                        // Descend into the child and follow its driver.
                        match find_pure_driver(child, &Ref::local(cur.name.clone())) {
                            Some(inner) => {
                                stack.push((ctx, inst));
                                ctx = child;
                                Some(inner)
                            }
                            None => None,
                        }
                    }
                    Direction::Input => find_pure_driver(ctx, &cur),
                }
            }
            None => {
                let is_top = stack.is_empty();
                let is_input = ctx
                    .port(&cur.name)
                    .is_some_and(|p| p.direction == Direction::Input);
                if !is_top && is_input {
                    // Ascend: the driver is the parent's connect to this
                    // instance input.
                    let (parent, inst) = stack.pop().expect("nonempty");
                    let target = Ref::instance_port(inst, cur.name.clone());
                    ctx = parent;
                    find_pure_driver(ctx, &target)
                } else if is_top && ctx.port(&cur.name).is_some() {
                    // A top-level port: terminal.
                    None
                } else {
                    // A local wire/node: follow one pure hop.
                    find_pure_driver(ctx, &cur)
                }
            }
        };
        match next {
            Some(n) => cur = n,
            None => break,
        }
    }
    best
}

/// Rewrites top-level reads that resolve through pure shell passthroughs
/// to their ultimate drivers. Returns the number of rewritten references.
pub fn resolve_shell_passthroughs(circuit: &mut Circuit) -> usize {
    let top_name = circuit.top.clone();
    // Collect rewrites against an immutable snapshot, then apply.
    let mut rewrites: Vec<(Ref, Ref)> = Vec::new();
    {
        let top = circuit.module(&top_name).expect("top exists");
        let mut candidates: Vec<Ref> = Vec::new();
        for s in &top.body {
            let mut collect = |e: &Expr| {
                let mut refs = Vec::new();
                e.collect_refs(&mut refs);
                for r in refs {
                    if r.instance.is_some() {
                        candidates.push(r.clone());
                    }
                }
            };
            match s {
                Stmt::Node { expr, .. } => collect(expr),
                Stmt::Connect { rhs, .. } => collect(rhs),
                Stmt::MemRead { addr, .. } => collect(addr),
                Stmt::MemWrite { addr, data, en, .. } => {
                    collect(addr);
                    collect(data);
                    collect(en);
                }
                _ => {}
            }
        }
        candidates.sort_by_key(|r| (r.instance.clone(), r.name.clone()));
        candidates.dedup();
        for r in candidates {
            if let Some(resolved) = trace_to_top(circuit, &r) {
                rewrites.push((r, resolved));
            }
        }
    }
    if rewrites.is_empty() {
        return 0;
    }
    let map: std::collections::HashMap<Ref, Ref> = rewrites.into_iter().collect();
    let mut count = 0usize;
    let top = circuit.module_mut(&top_name).expect("top exists");
    for s in &mut top.body {
        let mut f = |r: &mut Ref| {
            if let Some(n) = map.get(r) {
                *r = n.clone();
                count += 1;
            }
        };
        match s {
            Stmt::Node { expr, .. } => expr.rewrite_refs(&mut f),
            Stmt::Connect { rhs, .. } => rhs.rewrite_refs(&mut f),
            Stmt::MemRead { addr, .. } => addr.rewrite_refs(&mut f),
            Stmt::MemWrite { addr, data, en, .. } => {
                addr.rewrite_refs(&mut f);
                data.rewrite_refs(&mut f);
                en.rewrite_refs(&mut f);
            }
            _ => {}
        }
    }
    count
}

/// Removes shell ports orphaned by [`resolve_shell_passthroughs`]:
/// output ports whose value is no longer read by the (unique) parent and
/// whose internal driver is a pure passthrough, and input ports nothing
/// inside the module reads anymore. Works at every hierarchy level; only
/// uniquely-instantiated, non-extern modules are touched (shells always
/// are, after path specialization). Iterates to fixpoint; returns the
/// number of ports removed.
pub fn prune_dead_shell_ports(circuit: &mut Circuit) -> usize {
    fn reads_in(m: &Module) -> std::collections::HashSet<Ref> {
        let mut read = std::collections::HashSet::new();
        for s in &m.body {
            let mut collect = |e: &Expr| {
                let mut refs = Vec::new();
                e.collect_refs(&mut refs);
                for r in refs {
                    read.insert(r.clone());
                }
            };
            match s {
                Stmt::Node { expr, .. } => collect(expr),
                Stmt::Connect { rhs, .. } => collect(rhs),
                Stmt::MemRead { addr, .. } => collect(addr),
                Stmt::MemWrite { addr, data, en, .. } => {
                    collect(addr);
                    collect(data);
                    collect(en);
                }
                _ => {}
            }
        }
        read
    }

    let mut removed = 0usize;
    for _ in 0..64 {
        let counts = circuit.instance_counts();
        // Unique parent of each module: (parent module, instance name).
        let mut parent: std::collections::HashMap<String, (String, String)> = Default::default();
        for m in &circuit.modules {
            for (inst, child) in m.instances() {
                parent.insert(child.to_string(), (m.name.clone(), inst.to_string()));
            }
        }

        // Plan removals: (module, port, parent module, instance).
        let mut plans: Vec<(String, String, String, String)> = Vec::new();
        for m in &circuit.modules {
            if m.is_extern() || m.name == circuit.top {
                continue;
            }
            if counts.get(&m.name).copied().unwrap_or(0) != 1 {
                continue;
            }
            let Some((p_name, inst)) = parent.get(&m.name) else {
                continue;
            };
            let Some(p_mod) = circuit.module(p_name) else {
                continue;
            };
            let parent_reads = reads_in(p_mod);
            let own_reads = reads_in(m);
            for p in &m.ports {
                match p.direction {
                    Direction::Output => {
                        let is_read = parent_reads
                            .contains(&Ref::instance_port(inst.clone(), p.name.clone()));
                        let pure = m.body.iter().any(|s| {
                            matches!(s, Stmt::Connect { lhs, rhs: Expr::Ref(_) }
                                if lhs.is_local() && lhs.name == p.name)
                        });
                        if !is_read && pure {
                            plans.push((
                                m.name.clone(),
                                p.name.clone(),
                                p_name.clone(),
                                inst.clone(),
                            ));
                        }
                    }
                    Direction::Input => {
                        if !own_reads.contains(&Ref::local(p.name.clone())) {
                            plans.push((
                                m.name.clone(),
                                p.name.clone(),
                                p_name.clone(),
                                inst.clone(),
                            ));
                        }
                    }
                }
            }
        }
        if plans.is_empty() {
            break;
        }
        removed += plans.len();
        for (mod_name, port, p_name, inst) in &plans {
            if let Some(m) = circuit.module_mut(mod_name) {
                m.ports.retain(|p| &p.name != port);
                m.body.retain(|s| {
                    !matches!(s, Stmt::Connect { lhs, .. }
                        if lhs.is_local() && &lhs.name == port)
                });
            }
            if let Some(p_mod) = circuit.module_mut(p_name) {
                p_mod.body.retain(|s| {
                    !matches!(s, Stmt::Connect { lhs, .. }
                        if lhs.instance.as_deref() == Some(inst.as_str())
                        && &lhs.name == port)
                });
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::reparent_to_top;
    use fireaxe_ir::build::{ModuleBuilder, Sig};
    use fireaxe_ir::typecheck::validate;
    use fireaxe_ir::{Bits, Interpreter};

    /// Top -> Shell -> {A, B} where A.y feeds B.a inside the shell.
    fn shelled(depth2: bool) -> Circuit {
        let mut leaf = ModuleBuilder::new("Inc");
        let a = leaf.input("a", 8);
        let y = leaf.output("y", 8);
        leaf.connect_sig(&y, &a.add(&Sig::lit(1, 8)));
        let leaf = leaf.finish();

        let mut shell = ModuleBuilder::new("Shell");
        let i = shell.input("i", 8);
        let o = shell.output("o", 8);
        shell.inst("a", "Inc");
        shell.inst("b", "Inc");
        shell.connect_inst("a", "a", &i);
        let ay = shell.inst_port("a", "y");
        shell.connect_inst("b", "a", &ay);
        let by = shell.inst_port("b", "y");
        shell.connect_sig(&o, &by);
        let shell = shell.finish();

        if depth2 {
            let mut mid = ModuleBuilder::new("Mid");
            let i = mid.input("i", 8);
            let o = mid.output("o", 8);
            mid.inst("s", "Shell");
            mid.connect_inst("s", "i", &i);
            let so = mid.inst_port("s", "o");
            mid.connect_sig(&o, &so);
            let mid = mid.finish();

            let mut top = ModuleBuilder::new("Top");
            let i = top.input("i", 8);
            let o = top.output("o", 8);
            top.inst("m", "Mid");
            top.connect_inst("m", "i", &i);
            let mo = top.inst_port("m", "o");
            top.connect_sig(&o, &mo);
            Circuit::from_modules("Top", vec![top.finish(), mid, shell, leaf], "Top")
        } else {
            let mut top = ModuleBuilder::new("Top");
            let i = top.input("i", 8);
            let o = top.output("o", 8);
            top.inst("s", "Shell");
            top.connect_inst("s", "i", &i);
            let so = top.inst_port("s", "o");
            top.connect_sig(&o, &so);
            Circuit::from_modules("Top", vec![top.finish(), shell, leaf], "Top")
        }
    }

    fn check_direct(c: &Circuit, a_inst: &str, b_inst: &str) {
        let top = c.top_module();
        let direct = top.body.iter().any(|s| {
            matches!(s, Stmt::Connect { lhs, rhs: Expr::Ref(r) }
                if lhs.instance.as_deref() == Some(b_inst)
                && r.instance.as_deref() == Some(a_inst))
        });
        assert!(direct, "b.a should be driven directly by a.y");
    }

    #[test]
    fn resolves_through_single_shell() {
        let mut c = shelled(false);
        let a_inst = reparent_to_top(&mut c, "s.a").unwrap();
        let b_inst = reparent_to_top(&mut c, "s.b").unwrap();
        let rewritten = resolve_shell_passthroughs(&mut c);
        assert!(rewritten > 0, "expected passthrough rewrites");
        validate(&c).unwrap();
        check_direct(&c, &a_inst, &b_inst);
        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("i", Bits::from_u64(5, 8));
        sim.eval().unwrap();
        assert_eq!(sim.peek("o").to_u64(), 7);
    }

    #[test]
    fn resolves_through_two_level_shells() {
        let mut c = shelled(true);
        let a_inst = reparent_to_top(&mut c, "m.s.a").unwrap();
        let b_inst = reparent_to_top(&mut c, "m.s.b").unwrap();
        let rewritten = resolve_shell_passthroughs(&mut c);
        assert!(rewritten > 0);
        validate(&c).unwrap();
        check_direct(&c, &a_inst, &b_inst);
        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("i", Bits::from_u64(40, 8));
        sim.eval().unwrap();
        assert_eq!(sim.peek("o").to_u64(), 42);
    }

    #[test]
    fn noop_without_shells() {
        let mut c = shelled(false);
        assert_eq!(resolve_shell_passthroughs(&mut c), 0);
    }

    #[test]
    fn prune_is_identity_on_clean_designs() {
        let mut c = shelled(true);
        let before = c.clone();
        assert_eq!(prune_dead_shell_ports(&mut c), 0);
        assert_eq!(c, before);
    }

    #[test]
    fn prune_removes_orphaned_shell_ports() {
        let mut c = shelled(false);
        reparent_to_top(&mut c, "s.a").unwrap();
        reparent_to_top(&mut c, "s.b").unwrap();
        resolve_shell_passthroughs(&mut c);
        let removed = prune_dead_shell_ports(&mut c);
        assert!(removed > 0, "orphaned shell ports should be pruned");
        validate(&c).unwrap();
        // Behavior still intact after surgery + pruning.
        let mut sim = Interpreter::new(&c).unwrap();
        sim.poke("i", Bits::from_u64(1, 8));
        sim.eval().unwrap();
        assert_eq!(sim.peek("o").to_u64(), 3);
    }
}
