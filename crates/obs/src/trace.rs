//! Lock-free per-thread ring-buffer event tracer.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Every recording macro checks one
//!    relaxed atomic load before evaluating any argument; the disabled
//!    path performs no allocation, takes no lock, and touches no
//!    thread-local. The `interp_bench` counting-allocator gate enforces
//!    this.
//! 2. **No heap allocation on the hot path when enabled.** Each thread
//!    owns a fixed-capacity ring of plain-old-data events (names are
//!    `&'static str`), allocated once on first use. When the ring is
//!    full the oldest event is overwritten and a drop counter bumps.
//! 3. **No locks on the hot path.** The only synchronization is the
//!    enable flag and the epoch; the global sink mutex is taken only at
//!    flush time (explicit [`flush_thread`], thread exit, or
//!    [`take_events`]).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Events each thread-local ring can hold before overwriting the oldest.
pub const RING_CAPACITY: usize = 1 << 14;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Start of a named span (Chrome `ph:B`).
    SpanBegin,
    /// End of the innermost span with the same name (Chrome `ph:E`).
    SpanEnd,
    /// A point event (Chrome `ph:i`).
    Instant,
    /// A named counter sample carrying a value (Chrome `ph:C`).
    Counter,
}

/// One recorded event. Plain old data: recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Static event name.
    pub name: &'static str,
    /// Event kind.
    pub kind: EventKind,
    /// Host time, nanoseconds since the tracer epoch (first enable).
    pub host_ns: u64,
    /// Virtual time, picoseconds (0 when the recorder has no virtual
    /// clock, e.g. the threaded backend).
    pub virt_ps: u64,
    /// Counter value ([`EventKind::Counter`] only; 0 otherwise).
    pub value: f64,
    /// Small dense id of the recording thread.
    pub tid: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Globally enables or disables tracing. The epoch is pinned at the
/// first enable so `host_ns` stamps are comparable across threads.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled. The macros check this before
/// evaluating any argument; it compiles to one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Events overwritten because a thread ring was full.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

#[inline]
fn now_ns() -> u64 {
    match EPOCH.get() {
        Some(e) => e.elapsed().as_nanos() as u64,
        None => 0,
    }
}

/// Host time in nanoseconds since the tracer epoch — `0` until tracing
/// is first enabled. Used to stamp metric samples with the same clock
/// the trace events carry.
pub fn host_ns() -> u64 {
    now_ns()
}

/// Fixed-capacity overwrite-oldest ring of events.
struct Ring {
    buf: Vec<TraceEvent>,
    start: usize,
    len: usize,
    tid: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            buf: Vec::with_capacity(RING_CAPACITY),
            start: 0,
            len: 0,
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        }
    }

    #[inline]
    fn push(&mut self, mut ev: TraceEvent) {
        ev.tid = self.tid;
        if self.len < RING_CAPACITY {
            let pos = (self.start + self.len) % RING_CAPACITY;
            if pos == self.buf.len() {
                self.buf.push(ev); // within pre-reserved capacity
            } else {
                self.buf[pos] = ev;
            }
            self.len += 1;
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % RING_CAPACITY;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        for i in 0..self.len {
            out.push(self.buf[(self.start + i) % RING_CAPACITY]);
        }
        self.start = 0;
        self.len = 0;
    }
}

/// Wrapper whose `Drop` flushes the ring into the global sink, so
/// worker threads that exit (e.g. scoped backend threads) never lose
/// their tail of events.
struct RingCell(RefCell<Ring>);

impl Drop for RingCell {
    fn drop(&mut self) {
        let mut ring = self.0.borrow_mut();
        if ring.len > 0 {
            let mut out = sink()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ring.drain_into(&mut out);
        }
    }
}

thread_local! {
    static RING: RingCell = RingCell(RefCell::new(Ring::new()));
}

#[inline]
fn record(ev: TraceEvent) {
    // Reentrancy-safe: try_with fails only during thread teardown.
    let _ = RING.try_with(|cell| {
        if let Ok(mut ring) = cell.0.try_borrow_mut() {
            ring.push(ev);
        }
    });
}

/// Records an instant event. Prefer the [`obs_instant!`] macro, which
/// short-circuits when tracing is disabled.
pub fn instant(name: &'static str, virt_ps: u64) {
    record(TraceEvent {
        name,
        kind: EventKind::Instant,
        host_ns: now_ns(),
        virt_ps,
        value: 0.0,
        tid: 0,
    });
}

/// Records a counter sample. Prefer the [`obs_counter!`] macro.
pub fn counter(name: &'static str, virt_ps: u64, value: f64) {
    record(TraceEvent {
        name,
        kind: EventKind::Counter,
        host_ns: now_ns(),
        virt_ps,
        value,
        tid: 0,
    });
}

/// Opens a span; the returned guard records the end on drop. Prefer the
/// [`obs_span!`] macro.
pub fn span(name: &'static str, virt_ps: u64) -> SpanGuard {
    record(TraceEvent {
        name,
        kind: EventKind::SpanBegin,
        host_ns: now_ns(),
        virt_ps,
        value: 0.0,
        tid: 0,
    });
    SpanGuard { name }
}

/// RAII guard recording a [`EventKind::SpanEnd`] when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        record(TraceEvent {
            name: self.name,
            kind: EventKind::SpanEnd,
            host_ns: now_ns(),
            virt_ps: 0,
            value: 0.0,
            tid: 0,
        });
    }
}

/// Flushes the calling thread's ring into the global sink.
pub fn flush_thread() {
    let _ = RING.try_with(|cell| {
        let mut ring = cell.0.borrow_mut();
        if ring.len > 0 {
            let mut out = sink()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ring.drain_into(&mut out);
        }
    });
}

/// Flushes the calling thread and drains every event collected so far,
/// sorted by host timestamp (ties keep arrival order). Threads that
/// already exited flushed on teardown; live threads other than the
/// caller must call [`flush_thread`] themselves before this.
pub fn take_events() -> Vec<TraceEvent> {
    flush_thread();
    let mut out: Vec<TraceEvent> = {
        let mut sink = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *sink)
    };
    out.sort_by_key(|e| e.host_ns);
    out
}

/// Opens a span when tracing is enabled; evaluates to an
/// `Option<SpanGuard>` to bind (`let _g = obs_span!("name");`). An
/// optional second argument stamps the begin event with virtual time.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        if $crate::trace::enabled() {
            Some($crate::trace::span($name, 0))
        } else {
            None
        }
    };
    ($name:expr, $virt:expr) => {
        if $crate::trace::enabled() {
            Some($crate::trace::span($name, $virt))
        } else {
            None
        }
    };
}

/// Records an instant event when tracing is enabled; arguments are not
/// evaluated otherwise.
#[macro_export]
macro_rules! obs_instant {
    ($name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::instant($name, 0);
        }
    };
    ($name:expr, $virt:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::instant($name, $virt);
        }
    };
}

/// Records a counter sample when tracing is enabled; arguments are not
/// evaluated otherwise.
#[macro_export]
macro_rules! obs_counter {
    ($name:expr, $virt:expr, $value:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::counter($name, $virt, $value as f64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is global; tests that toggle it serialize on this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_macros_do_not_evaluate_args() {
        let _l = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(false);
        let mut evaluated = false;
        obs_counter!("x", 0, {
            evaluated = true;
            1.0
        });
        assert!(!evaluated, "disabled macro must not evaluate its value");
    }

    #[test]
    fn events_round_trip_through_ring_and_sink() {
        let _l = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let _ = take_events(); // clear prior state
        {
            let _g = obs_span!("outer", 42);
            obs_instant!("tick", 7);
            obs_counter!("fmr", 7, 1.5);
        }
        set_enabled(false);
        let events = take_events();
        let names: Vec<(&str, EventKind)> = events.iter().map(|e| (e.name, e.kind)).collect();
        assert!(names.contains(&("outer", EventKind::SpanBegin)));
        assert!(names.contains(&("outer", EventKind::SpanEnd)));
        assert!(names.contains(&("tick", EventKind::Instant)));
        let c = events
            .iter()
            .find(|e| e.kind == EventKind::Counter)
            .expect("counter recorded");
        assert_eq!(c.value, 1.5);
        assert_eq!(c.virt_ps, 7);
        // Begin precedes end in host time order.
        let b = names
            .iter()
            .position(|&(n, k)| n == "outer" && k == EventKind::SpanBegin);
        let e = names
            .iter()
            .position(|&(n, k)| n == "outer" && k == EventKind::SpanEnd);
        assert!(b < e);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = Ring::new();
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(TraceEvent {
                name: "e",
                kind: EventKind::Instant,
                host_ns: i as u64,
                virt_ps: 0,
                value: 0.0,
                tid: 0,
            });
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        assert_eq!(out.first().unwrap().host_ns, 10);
        assert_eq!(out.last().unwrap().host_ns, (RING_CAPACITY + 10 - 1) as u64);
    }

    #[test]
    fn cross_thread_events_are_collected_on_thread_exit() {
        let _l = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        let _ = take_events();
        std::thread::scope(|s| {
            s.spawn(|| {
                obs_instant!("worker-event");
            });
        });
        set_enabled(false);
        let events = take_events();
        assert!(events.iter().any(|e| e.name == "worker-event"));
    }
}
