//! # fireaxe-obs — observability for FireAxe-rs
//!
//! The measurement layer the rest of the stack is profiled with:
//!
//! * [`trace`] — a lock-free per-thread ring-buffer event tracer with
//!   zero-cost-when-disabled [`obs_span!`]/[`obs_counter!`]/
//!   [`obs_instant!`] macros. When tracing is off the macros compile to
//!   a single relaxed atomic load; when on, events land in a
//!   pre-allocated thread-local ring without locks or heap allocation
//!   on the hot path.
//! * [`metrics`] — time-resolved metric series: per-node FMR, token
//!   traffic, stall attribution, settle-loop statistics and per-link
//!   reliability activity, sampled every N target cycles, exportable as
//!   JSON or CSV.
//! * [`chrome`] — Chrome `trace_event` JSON export of recorded trace
//!   events, loadable in Perfetto / `chrome://tracing`.
//! * [`vcd`] — a VCD waveform dumper over model time, fed from
//!   `Interpreter::signal_paths`/`peek` via the simulation engine.
//!
//! Events carry both a host-time stamp (nanoseconds since the tracer
//! epoch) and a virtual-time stamp (picoseconds, 0 when the recording
//! backend has no virtual clock), so traces from the DES and threaded
//! backends are directly comparable.

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod trace;
pub mod vcd;

pub use chrome::{to_chrome_json, to_chrome_json_merged, OwnedTraceEvent};
pub use metrics::{Fnv1a, LinkSample, LinkSeries, MetricsSeries, NodeSample, NodeSeries};
pub use trace::{EventKind, SpanGuard, TraceEvent};
pub use vcd::{VcdSignal, VcdWriter};
