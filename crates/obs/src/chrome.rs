//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON-object flavor of the [trace event format] that
//! Perfetto and `chrome://tracing` load directly: spans become `B`/`E`
//! duration events, instants become `i`, counters become `C` with their
//! value in `args`. Every event carries its virtual-time stamp in
//! `args.virt_ps`, so the DES backend's virtual clock survives into the
//! viewer even though the track timeline runs on host time.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{EventKind, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders `events` (host-time ordered; see
/// [`crate::trace::take_events`]) as a Chrome trace JSON document.
///
/// Timestamps are microseconds (`ts`) with nanosecond precision kept in
/// the fraction. All events share `pid` 1; `tid` is the recording
/// thread's dense tracer id.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\"traceEvents\":[");
    s.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"fireaxe\"}}",
    );
    for e in events {
        let ph = match e.kind {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        };
        s.push(',');
        s.push_str("{\"name\":\"");
        escape(e.name, &mut s);
        s.push_str("\",\"ph\":\"");
        s.push_str(ph);
        s.push_str("\",\"ts\":");
        // Microseconds with the nanosecond fraction preserved.
        s.push_str(&format!("{}.{:03}", e.host_ns / 1_000, e.host_ns % 1_000));
        s.push_str(",\"pid\":1,\"tid\":");
        s.push_str(&e.tid.to_string());
        if e.kind == EventKind::Instant {
            s.push_str(",\"s\":\"t\"");
        }
        s.push_str(",\"args\":{\"virt_ps\":");
        s.push_str(&e.virt_ps.to_string());
        if e.kind == EventKind::Counter {
            s.push_str(",\"value\":");
            let v = if e.value.is_finite() { e.value } else { 0.0 };
            s.push_str(&format!("{v}"));
        }
        s.push_str("}}");
    }
    s.push_str("]}\n");
    s
}

/// A trace event with an owned name: what cross-process trace merging
/// ships over the wire (a [`TraceEvent`]'s `&'static str` name only
/// exists in the recording process).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedTraceEvent {
    /// Event name.
    pub name: String,
    /// Event kind.
    pub kind: EventKind,
    /// Host-time stamp, nanoseconds since the recording tracer's epoch.
    pub host_ns: u64,
    /// Virtual-time stamp, picoseconds (0 without a virtual clock).
    pub virt_ps: u64,
    /// Counter value (counters only).
    pub value: f64,
    /// Recording thread's dense tracer id within its process.
    pub tid: u64,
}

impl From<&TraceEvent> for OwnedTraceEvent {
    fn from(e: &TraceEvent) -> Self {
        OwnedTraceEvent {
            name: e.name.to_string(),
            kind: e.kind,
            host_ns: e.host_ns,
            virt_ps: e.virt_ps,
            value: e.value,
            tid: e.tid,
        }
    }
}

/// Renders per-process event sets as one merged Chrome trace document.
///
/// Each `(process label, events)` part becomes its own `pid` (1-based,
/// in part order) with a `process_name` metadata record, so a
/// distributed run's coordinator and workers land as separate process
/// tracks in Perfetto while sharing one timeline. Host clocks are
/// per-process epochs; tracks are individually self-consistent.
pub fn to_chrome_json_merged(parts: &[(String, Vec<OwnedTraceEvent>)]) -> String {
    let total: usize = parts.iter().map(|(_, evs)| evs.len()).sum();
    let mut s = String::with_capacity(128 + total * 96);
    s.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (pid0, (label, events)) in parts.iter().enumerate() {
        let pid = pid0 + 1;
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\""
        ));
        escape(label, &mut s);
        s.push_str("\"}}");
        for e in events {
            let ph = match e.kind {
                EventKind::SpanBegin => "B",
                EventKind::SpanEnd => "E",
                EventKind::Instant => "i",
                EventKind::Counter => "C",
            };
            s.push(',');
            s.push_str("{\"name\":\"");
            escape(&e.name, &mut s);
            s.push_str("\",\"ph\":\"");
            s.push_str(ph);
            s.push_str(&format!(
                "\",\"ts\":{}.{:03},\"pid\":{pid},\"tid\":{}",
                e.host_ns / 1_000,
                e.host_ns % 1_000,
                e.tid
            ));
            if e.kind == EventKind::Instant {
                s.push_str(",\"s\":\"t\"");
            }
            s.push_str(",\"args\":{\"virt_ps\":");
            s.push_str(&e.virt_ps.to_string());
            if e.kind == EventKind::Counter {
                let v = if e.value.is_finite() { e.value } else { 0.0 };
                s.push_str(&format!(",\"value\":{v}"));
            }
            s.push_str("}}");
        }
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: EventKind, host_ns: u64) -> TraceEvent {
        TraceEvent {
            name,
            kind,
            host_ns,
            virt_ps: 5,
            value: 2.5,
            tid: 3,
        }
    }

    #[test]
    fn renders_all_phases() {
        let events = [
            ev("s", EventKind::SpanBegin, 1000),
            ev("i", EventKind::Instant, 1500),
            ev("c", EventKind::Counter, 2000),
            ev("s", EventKind::SpanEnd, 3210),
        ];
        let json = to_chrome_json(&events);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":3.210"));
        assert!(json.contains("\"value\":2.5"));
        assert!(json.contains("\"virt_ps\":5"));
    }

    #[test]
    fn escapes_names() {
        let events = [ev("a\"b\\c", EventKind::Instant, 0)];
        let json = to_chrome_json(&events);
        assert!(json.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn merged_export_separates_processes() {
        let parts = vec![
            (
                "coordinator".to_string(),
                vec![OwnedTraceEvent::from(&ev("relay", EventKind::Instant, 10))],
            ),
            (
                "worker0".to_string(),
                vec![OwnedTraceEvent::from(&ev(
                    "service",
                    EventKind::Counter,
                    20,
                ))],
            ),
        ];
        let json = to_chrome_json_merged(&parts);
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"name\":\"worker0\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"name\":\"relay\""));
        assert!(json.contains("\"name\":\"service\""));
        // Parses with the bundled JSON parser downstream; here a basic
        // structural check is enough.
        assert!(json.ends_with("]}\n"));
    }
}
