//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON-object flavor of the [trace event format] that
//! Perfetto and `chrome://tracing` load directly: spans become `B`/`E`
//! duration events, instants become `i`, counters become `C` with their
//! value in `args`. Every event carries its virtual-time stamp in
//! `args.virt_ps`, so the DES backend's virtual clock survives into the
//! viewer even though the track timeline runs on host time.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{EventKind, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders `events` (host-time ordered; see
/// [`crate::trace::take_events`]) as a Chrome trace JSON document.
///
/// Timestamps are microseconds (`ts`) with nanosecond precision kept in
/// the fraction. All events share `pid` 1; `tid` is the recording
/// thread's dense tracer id.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\"traceEvents\":[");
    s.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"fireaxe\"}}",
    );
    for e in events {
        let ph = match e.kind {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        };
        s.push(',');
        s.push_str("{\"name\":\"");
        escape(e.name, &mut s);
        s.push_str("\",\"ph\":\"");
        s.push_str(ph);
        s.push_str("\",\"ts\":");
        // Microseconds with the nanosecond fraction preserved.
        s.push_str(&format!("{}.{:03}", e.host_ns / 1_000, e.host_ns % 1_000));
        s.push_str(",\"pid\":1,\"tid\":");
        s.push_str(&e.tid.to_string());
        if e.kind == EventKind::Instant {
            s.push_str(",\"s\":\"t\"");
        }
        s.push_str(",\"args\":{\"virt_ps\":");
        s.push_str(&e.virt_ps.to_string());
        if e.kind == EventKind::Counter {
            s.push_str(",\"value\":");
            let v = if e.value.is_finite() { e.value } else { 0.0 };
            s.push_str(&format!("{v}"));
        }
        s.push_str("}}");
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: EventKind, host_ns: u64) -> TraceEvent {
        TraceEvent {
            name,
            kind,
            host_ns,
            virt_ps: 5,
            value: 2.5,
            tid: 3,
        }
    }

    #[test]
    fn renders_all_phases() {
        let events = [
            ev("s", EventKind::SpanBegin, 1000),
            ev("i", EventKind::Instant, 1500),
            ev("c", EventKind::Counter, 2000),
            ev("s", EventKind::SpanEnd, 3210),
        ];
        let json = to_chrome_json(&events);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":3.210"));
        assert!(json.contains("\"value\":2.5"));
        assert!(json.contains("\"virt_ps\":5"));
    }

    #[test]
    fn escapes_names() {
        let events = [ev("a\"b\\c", EventKind::Instant, 0)];
        let json = to_chrome_json(&events);
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
