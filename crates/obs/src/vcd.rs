//! VCD (Value Change Dump) waveform export over model time.
//!
//! The writer collects `(time, signal, value)` changes in any order —
//! the simulation engine records each node's watched signals as that
//! node's target clock advances, and nodes advance independently — and
//! renders a deterministic, byte-stable VCD document at the end:
//! changes are stably sorted by `(time, signal index)` and consecutive
//! identical values per signal are elided. One VCD time unit is one
//! target cycle (`$timescale 1 ns`).

use fireaxe_ir::Bits;

/// One watched signal: a scope (typically the node name), the signal's
/// hierarchical path inside the scope, and its width in bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdSignal {
    /// Enclosing scope, e.g. the partition-thread (node) name.
    pub scope: String,
    /// Signal path within the scope.
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

/// Collects value changes and renders a VCD document.
#[derive(Debug)]
pub struct VcdWriter {
    signals: Vec<VcdSignal>,
    changes: Vec<(u64, u32, Bits)>,
}

/// Short VCD identifier code for signal index `i` (base-94 over the
/// printable ASCII range `!`..`~`).
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Formats a value change for `sig` at identifier `id`.
fn fmt_change(value: &Bits, width: u32, id: &str, out: &mut String) {
    if width == 1 {
        out.push(if value.bit(0) { '1' } else { '0' });
        out.push_str(id);
    } else {
        out.push('b');
        let mut leading = true;
        for i in (0..width).rev() {
            let b = value.bit(i);
            if leading && !b && i != 0 {
                continue;
            }
            leading = false;
            out.push(if b { '1' } else { '0' });
        }
        out.push(' ');
        out.push_str(id);
    }
    out.push('\n');
}

impl VcdWriter {
    /// Starts a dump over the given signal set. Signal order fixes the
    /// identifier codes and the header layout, so a stable signal list
    /// yields byte-identical output for identical change sets.
    pub fn new(signals: Vec<VcdSignal>) -> Self {
        VcdWriter {
            signals,
            changes: Vec::new(),
        }
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Records that signal `sig` (index into the constructor's list)
    /// held `value` from time `time` on. Calls may arrive in any order
    /// across signals; per signal, times must be distinct (the last
    /// record wins is *not* guaranteed — duplicates are kept and elided
    /// only if equal).
    pub fn change(&mut self, time: u64, sig: u32, value: Bits) {
        debug_assert!((sig as usize) < self.signals.len(), "signal index in range");
        self.changes.push((time, sig, value));
    }

    /// Renders the complete VCD document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256 + self.changes.len() * 12);
        out.push_str("$comment fireaxe-obs $end\n");
        out.push_str("$timescale 1 ns $end\n");
        // Scoped declarations, in signal order; a new `$scope` opens
        // whenever the scope name changes.
        let mut open: Option<&str> = None;
        for (i, s) in self.signals.iter().enumerate() {
            if open != Some(s.scope.as_str()) {
                if open.is_some() {
                    out.push_str("$upscope $end\n");
                }
                out.push_str("$scope module ");
                out.push_str(&s.scope);
                out.push_str(" $end\n");
                open = Some(s.scope.as_str());
            }
            out.push_str(&format!(
                "$var wire {} {} {} $end\n",
                s.width,
                id_code(i),
                s.name
            ));
        }
        if open.is_some() {
            out.push_str("$upscope $end\n");
        }
        out.push_str("$enddefinitions $end\n");
        out.push_str("$dumpvars\n");
        for (i, s) in self.signals.iter().enumerate() {
            if s.width == 1 {
                out.push('x');
                out.push_str(&id_code(i));
            } else {
                out.push_str("bx ");
                out.push_str(&id_code(i));
            }
            out.push('\n');
        }
        out.push_str("$end\n");

        let mut ordered = self.changes.clone();
        ordered.sort_by_key(|&(t, s, _)| (t, s));
        let mut last: Vec<Option<&Bits>> = vec![None; self.signals.len()];
        let mut cur_time: Option<u64> = None;
        for (t, s, v) in &ordered {
            let si = *s as usize;
            if last[si] == Some(v) {
                continue;
            }
            if cur_time != Some(*t) {
                out.push_str(&format!("#{t}\n"));
                cur_time = Some(*t);
            }
            fmt_change(v, self.signals[si].width, &id_code(si), &mut out);
            last[si] = Some(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_distinct_and_printable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200 {
            let id = id_code(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn render_is_order_independent_and_elides_repeats() {
        let sigs = vec![
            VcdSignal {
                scope: "tile".into(),
                name: "acc".into(),
                width: 8,
            },
            VcdSignal {
                scope: "rest".into(),
                name: "valid".into(),
                width: 1,
            },
        ];
        let mut a = VcdWriter::new(sigs.clone());
        a.change(0, 0, Bits::from_u64(5, 8));
        a.change(1, 0, Bits::from_u64(5, 8)); // elided
        a.change(2, 0, Bits::from_u64(6, 8));
        a.change(0, 1, Bits::from_u64(1, 1));
        let mut b = VcdWriter::new(sigs);
        // Same changes, interleaved differently.
        b.change(0, 1, Bits::from_u64(1, 1));
        b.change(2, 0, Bits::from_u64(6, 8));
        b.change(0, 0, Bits::from_u64(5, 8));
        b.change(1, 0, Bits::from_u64(5, 8));
        let ra = a.render();
        assert_eq!(ra, b.render());
        assert!(ra.contains("$scope module tile $end"));
        assert!(ra.contains("$var wire 8 ! acc $end"));
        assert!(ra.contains("b101 !"));
        assert!(ra.contains("b110 !"));
        assert!(ra.contains("1\""));
        // The elided repeat leaves no #1 timestamp.
        assert!(!ra.contains("#1\n"));
    }
}
