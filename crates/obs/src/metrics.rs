//! Time-resolved metric series.
//!
//! The simulation engine samples every node each `sample_interval`
//! target cycles (see `SimBuilder::observe` in `fireaxe-sim`) and, on
//! the DES backend, every link at the same global cadence. The result
//! is a [`MetricsSeries`]: one sample row per `(node, cycle)` and
//! `(link, cycle)`, exportable as JSON or CSV for plotting FMR, stall
//! attribution, settle-loop behavior and reliability activity over
//! model time.
//!
//! Samples carry both host-dependent columns (host cycles, stalls —
//! these legitimately differ between backends and runs) and
//! deterministic target-state columns (`cycle`, `state_digest`) that
//! must be identical across backends for the same workload; the trace
//! parity tests compare the latter.

/// One per-node sample at a target-cycle boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeSample {
    /// Target cycle at which the sample was taken.
    pub cycle: u64,
    /// Host time, nanoseconds since the tracer epoch (0 when tracing
    /// never enabled).
    pub host_ns: u64,
    /// Virtual time, picoseconds (0 under the threaded backend).
    pub time_ps: u64,
    /// Host cycles consumed so far.
    pub host_cycles: u64,
    /// Tokens pushed into the node's input queues so far.
    pub tokens_enqueued: u64,
    /// Tokens popped from the node's output queues so far.
    pub tokens_dequeued: u64,
    /// Host cycles stalled waiting for an input token so far.
    pub input_stall_host_cycles: u64,
    /// Host cycles stalled with inputs available but no progress
    /// (output backpressure or fireFSM wait) so far.
    pub output_stall_host_cycles: u64,
    /// Tokens currently queued across the node's input channels
    /// (LI-BDN queues plus staging).
    pub queue_occupancy: u64,
    /// Cumulative combinational settle passes of the node's target.
    pub settle_passes: u64,
    /// Cumulative definitions executed by settle passes.
    pub defs_run: u64,
    /// Cumulative definitions skipped by the dirty-set scheduler.
    pub defs_skipped: u64,
    /// FNV-1a digest of the node's output-port values at this cycle —
    /// deterministic target state, identical across backends.
    pub state_digest: u64,
}

impl NodeSample {
    /// FPGA-to-Model cycle Ratio at this sample (cumulative).
    pub fn fmr(&self) -> f64 {
        if self.cycle == 0 {
            return f64::INFINITY;
        }
        self.host_cycles as f64 / self.cycle as f64
    }

    /// Fraction of definitions the dirty-set scheduler skipped, in
    /// `[0, 1]` (0 when nothing ran yet).
    pub fn dirty_skip_rate(&self) -> f64 {
        let total = self.defs_run + self.defs_skipped;
        if total == 0 {
            return 0.0;
        }
        self.defs_skipped as f64 / total as f64
    }
}

/// All samples of one node, in cycle order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeSeries {
    /// Node (partition thread) name.
    pub node: String,
    /// Samples in ascending cycle order.
    pub samples: Vec<NodeSample>,
}

/// One per-link sample at a global target-cycle boundary (DES backend
/// only; the threaded backend reports end-of-run totals instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkSample {
    /// Global target cycle (minimum across nodes) at sample time.
    pub cycle: u64,
    /// Virtual time, picoseconds.
    pub time_ps: u64,
    /// Fresh tokens committed to the wire so far.
    pub tokens: u64,
    /// Physical frame transmissions (including retransmits) so far.
    pub sent_frames: u64,
    /// Retransmissions so far.
    pub retransmits: u64,
    /// Frames rejected for CRC mismatch so far.
    pub crc_failures: u64,
    /// Duplicate frames dropped by the receiver so far.
    pub duplicates_dropped: u64,
    /// Cumulative send-to-delivery latency, picoseconds (an ACK-latency
    /// proxy: the cumulative time tokens spent on the wire).
    pub delivery_delay_ps: u64,
    /// Tokens still queued for delivery on the wire right now.
    pub in_flight: u64,
}

/// All samples of one link, in cycle order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSeries {
    /// Link index (see `PartitionedDesign::links`).
    pub link: usize,
    /// Samples in ascending cycle order.
    pub samples: Vec<LinkSample>,
}

/// A complete sampled run: per-node and per-link time series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSeries {
    /// Sampling cadence in target cycles.
    pub sample_interval: u64,
    /// One series per node.
    pub nodes: Vec<NodeSeries>,
    /// One series per link (empty under the threaded backend).
    pub links: Vec<LinkSeries>,
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl MetricsSeries {
    /// Renders the series as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"sample_interval\": {},\n",
            self.sample_interval
        ));
        s.push_str("  \"nodes\": [\n");
        for (ni, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"node\": \"{}\", \"samples\": [\n",
                n.node.replace('"', "\\\"")
            ));
            for (si, p) in n.samples.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"cycle\": {}, \"host_ns\": {}, \"time_ps\": {}, \
                     \"host_cycles\": {}, \"fmr\": ",
                    p.cycle, p.host_ns, p.time_ps, p.host_cycles
                ));
                push_f64(&mut s, p.fmr());
                s.push_str(&format!(
                    ", \"tokens_enqueued\": {}, \"tokens_dequeued\": {}, \
                     \"input_stall_host_cycles\": {}, \"output_stall_host_cycles\": {}, \
                     \"queue_occupancy\": {}, \"settle_passes\": {}, \"defs_run\": {}, \
                     \"defs_skipped\": {}, \"dirty_skip_rate\": ",
                    p.tokens_enqueued,
                    p.tokens_dequeued,
                    p.input_stall_host_cycles,
                    p.output_stall_host_cycles,
                    p.queue_occupancy,
                    p.settle_passes,
                    p.defs_run,
                    p.defs_skipped,
                ));
                push_f64(&mut s, p.dirty_skip_rate());
                s.push_str(&format!(", \"state_digest\": {}}}", p.state_digest));
                s.push_str(if si + 1 < n.samples.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("    ]}");
            s.push_str(if ni + 1 < self.nodes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"links\": [\n");
        for (li, l) in self.links.iter().enumerate() {
            s.push_str(&format!("    {{\"link\": {}, \"samples\": [\n", l.link));
            for (si, p) in l.samples.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"cycle\": {}, \"time_ps\": {}, \"tokens\": {}, \
                     \"sent_frames\": {}, \"retransmits\": {}, \"crc_failures\": {}, \
                     \"duplicates_dropped\": {}, \"delivery_delay_ps\": {}, \
                     \"in_flight\": {}}}",
                    p.cycle,
                    p.time_ps,
                    p.tokens,
                    p.sent_frames,
                    p.retransmits,
                    p.crc_failures,
                    p.duplicates_dropped,
                    p.delivery_delay_ps,
                    p.in_flight,
                ));
                s.push_str(if si + 1 < l.samples.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("    ]}");
            s.push_str(if li + 1 < self.links.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Folds another process's series into this one.
    ///
    /// Node series are matched by node name (a distributed run's workers
    /// each sample only the nodes they own, so names are disjoint in
    /// practice; on a match the sample rows concatenate), link series by
    /// link index. Samples are re-sorted by cycle so merged series stay
    /// in ascending cycle order regardless of arrival order. The sample
    /// interval is taken from whichever side first has one set.
    pub fn merge(&mut self, other: MetricsSeries) {
        if self.sample_interval == 0 {
            self.sample_interval = other.sample_interval;
        }
        for n in other.nodes {
            match self.nodes.iter_mut().find(|m| m.node == n.node) {
                Some(mine) => mine.samples.extend(n.samples),
                None => self.nodes.push(n),
            }
        }
        for l in other.links {
            match self.links.iter_mut().find(|m| m.link == l.link) {
                Some(mine) => mine.samples.extend(l.samples),
                None => self.links.push(l),
            }
        }
        for n in &mut self.nodes {
            n.samples.sort_by_key(|p| p.cycle);
        }
        self.nodes.sort_by(|a, b| a.node.cmp(&b.node));
        for l in &mut self.links {
            l.samples.sort_by_key(|p| p.cycle);
        }
        self.links.sort_by_key(|l| l.link);
    }

    /// Renders the series as CSV: one table with a `kind` column
    /// (`node`/`link`), suitable for spreadsheet import.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "kind,name,cycle,host_ns,time_ps,host_cycles,fmr,tokens_enqueued,\
             tokens_dequeued,input_stall_host_cycles,output_stall_host_cycles,\
             queue_occupancy,settle_passes,defs_run,defs_skipped,dirty_skip_rate,\
             state_digest,tokens,sent_frames,retransmits,crc_failures,\
             duplicates_dropped,delivery_delay_ps,in_flight\n",
        );
        for n in &self.nodes {
            for p in &n.samples {
                s.push_str(&format!(
                    "node,{},{},{},{},{},{:.4},{},{},{},{},{},{},{},{},{:.4},{},,,,,,,\n",
                    n.node,
                    p.cycle,
                    p.host_ns,
                    p.time_ps,
                    p.host_cycles,
                    p.fmr(),
                    p.tokens_enqueued,
                    p.tokens_dequeued,
                    p.input_stall_host_cycles,
                    p.output_stall_host_cycles,
                    p.queue_occupancy,
                    p.settle_passes,
                    p.defs_run,
                    p.defs_skipped,
                    p.dirty_skip_rate(),
                    p.state_digest,
                ));
            }
        }
        for l in &self.links {
            for p in &l.samples {
                s.push_str(&format!(
                    "link,link{},{},,{},,,,,,,,,,,,{},{},{},{},{},{},{}\n",
                    l.link,
                    p.cycle,
                    p.time_ps,
                    p.tokens,
                    p.sent_frames,
                    p.retransmits,
                    p.crc_failures,
                    p.duplicates_dropped,
                    p.delivery_delay_ps,
                    p.in_flight,
                ));
            }
        }
        s
    }
}

/// Incremental FNV-1a-64 hasher for target-state digests: cheap,
/// dependency-free, and stable across platforms and backends.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Folds one word into the digest.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> MetricsSeries {
        MetricsSeries {
            sample_interval: 10,
            nodes: vec![NodeSeries {
                node: "tile".into(),
                samples: vec![NodeSample {
                    cycle: 10,
                    host_cycles: 25,
                    defs_run: 30,
                    defs_skipped: 10,
                    state_digest: 42,
                    ..Default::default()
                }],
            }],
            links: vec![LinkSeries {
                link: 0,
                samples: vec![LinkSample {
                    cycle: 10,
                    tokens: 20,
                    sent_frames: 22,
                    retransmits: 2,
                    ..Default::default()
                }],
            }],
        }
    }

    #[test]
    fn fmr_and_skip_rate() {
        let p = &series().nodes[0].samples[0];
        assert_eq!(p.fmr(), 2.5);
        assert_eq!(p.dirty_skip_rate(), 0.25);
        assert_eq!(NodeSample::default().fmr(), f64::INFINITY);
        assert_eq!(NodeSample::default().dirty_skip_rate(), 0.0);
    }

    #[test]
    fn json_and_csv_contain_the_data() {
        let m = series();
        let json = m.to_json();
        assert!(json.contains("\"sample_interval\": 10"));
        assert!(json.contains("\"node\": \"tile\""));
        assert!(json.contains("\"state_digest\": 42"));
        assert!(json.contains("\"retransmits\": 2"));
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("node,tile,10"));
        assert!(csv.lines().nth(2).unwrap().starts_with("link,link0,10"));
    }

    #[test]
    fn merge_aligns_by_name_and_sorts_by_cycle() {
        let mut a = series();
        let mut other = series();
        other.nodes[0].samples[0].cycle = 5;
        other.links[0].samples[0].cycle = 5;
        other.nodes.push(NodeSeries {
            node: "router".into(),
            samples: vec![NodeSample {
                cycle: 10,
                ..Default::default()
            }],
        });
        other.links.push(LinkSeries {
            link: 3,
            samples: vec![],
        });
        a.merge(other);
        assert_eq!(a.sample_interval, 10);
        assert_eq!(a.nodes.len(), 2);
        assert_eq!(a.nodes[0].node, "router");
        let tile = &a.nodes[1];
        assert_eq!(tile.node, "tile");
        assert_eq!(
            tile.samples.iter().map(|p| p.cycle).collect::<Vec<_>>(),
            vec![5, 10]
        );
        assert_eq!(a.links.len(), 2);
        assert_eq!(a.links[0].samples[0].cycle, 5);
        assert_eq!(a.links[1].link, 3);

        let mut empty = MetricsSeries::default();
        empty.merge(series());
        assert_eq!(empty.sample_interval, 10);
    }

    #[test]
    fn fnv_digest_is_order_sensitive_and_stable() {
        let mut a = Fnv1a::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv1a::default();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }
}
