//! # fireaxe-fpga — FPGA host models
//!
//! Models the capacity side of FireAxe: what fits on one FPGA and when a
//! bitstream build is expected to fail. This is what motivates
//! partitioning in the first place — the paper's GC40 BOOM configuration
//! cannot be built monolithically on a Xilinx Alveo U250 "due to
//! congestion" (§V-B) and must be split across two FPGAs.
//!
//! * [`FpgaSpec`] — board descriptions (Alveo U250, AWS VU9P);
//! * [`estimate()`]/[`fit()`] — per-op resource estimation over the IR and
//!   fit/congestion checks, honoring [`fireaxe_ir::ResourceHints`] on
//!   extern behavioral modules.

#![warn(missing_docs)]

pub mod estimate;
pub mod spec;

pub use estimate::{
    estimate, fit, fit_estimate, FitReport, ResourceEstimate, ROUTABLE_UTILIZATION,
};
pub use spec::FpgaSpec;
