//! FPGA platform descriptions.

use std::fmt;

/// Static description of an FPGA usable as a simulation host.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaSpec {
    /// Board/part name.
    pub name: String,
    /// LUTs usable by the target design (shell overhead already
    /// subtracted).
    pub luts: u64,
    /// Flip-flops usable by the target design.
    pub regs: u64,
    /// 36 kb block-RAM tiles.
    pub brams: u64,
    /// DSP slices.
    pub dsps: u64,
    /// QSFP cages available for direct-attach cables (constrains
    /// on-premises topologies to rings/trees; paper §VIII-C).
    pub qsfp_cages: u32,
    /// Typical achievable bitstream frequencies in MHz (low, high).
    pub bitstream_mhz_range: (f64, f64),
}

impl FpgaSpec {
    /// Xilinx Alveo U250 (on-premises). The paper notes local U250s offer
    /// ~50% more usable LUTs than cloud VU9Ps because the cloud shell is
    /// fixed.
    pub fn alveo_u250() -> Self {
        FpgaSpec {
            name: "Xilinx Alveo U250".into(),
            luts: 1_550_000,
            regs: 3_100_000,
            brams: 2_500,
            dsps: 12_000,
            qsfp_cages: 2,
            bitstream_mhz_range: (10.0, 90.0),
        }
    }

    /// AWS EC2 F1 VU9P (cloud), with the fixed shell's resources removed.
    pub fn aws_vu9p() -> Self {
        FpgaSpec {
            name: "AWS F1 VU9P".into(),
            luts: 1_030_000,
            regs: 2_070_000,
            brams: 1_680,
            dsps: 5_600,
            qsfp_cages: 0,
            bitstream_mhz_range: (10.0, 90.0),
        }
    }
}

impl fmt::Display for FpgaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}k LUTs, {} BRAMs, {} QSFP cages)",
            self.name,
            self.luts / 1000,
            self.brams,
            self.qsfp_cages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u250_has_more_luts_than_cloud() {
        let u250 = FpgaSpec::alveo_u250();
        let vu9p = FpgaSpec::aws_vu9p();
        // Paper §VIII-A: local U250s offer ~50% more LUTs than cloud VU9P.
        let ratio = u250.luts as f64 / vu9p.luts as f64;
        assert!((1.4..=1.6).contains(&ratio), "ratio {ratio}");
        assert_eq!(u250.qsfp_cages, 2);
        assert_eq!(vu9p.qsfp_cages, 0);
    }
}
