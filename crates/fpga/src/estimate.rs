//! FPGA resource estimation over the circuit IR.
//!
//! FireRipper gives users "quick feedback about whether the partition will
//! fit on an FPGA" (paper §VIII-B). This module walks a circuit and
//! produces per-design LUT/FF/BRAM/DSP estimates: structural modules are
//! costed per primitive operation, extern behavioral modules contribute
//! their declared [`fireaxe_ir::ResourceHints`], and instance counts
//! multiply through the hierarchy.

use crate::spec::FpgaSpec;
use fireaxe_ir::{BinOp, Circuit, Expr, Module, Stmt, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Estimated FPGA resource consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub regs: u64,
    /// 36 kb BRAM tiles.
    pub brams: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl ResourceEstimate {
    /// Component-wise sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts + other.luts,
            regs: self.regs + other.regs,
            brams: self.brams + other.brams,
            dsps: self.dsps + other.dsps,
        }
    }

    /// Estimate after FAME-5 multi-threading `threads` duplicate
    /// instances (paper §VI-B): combinational logic (`comb_fraction` of
    /// the LUTs) is shared once, while sequential state is replicated per
    /// thread. This is how the paper fits six BOOM tiles on one U250.
    pub fn fame5_adjusted(self, threads: u64, comb_fraction: f64) -> ResourceEstimate {
        if threads <= 1 {
            return self;
        }
        // `self` covers all `threads` copies; one instance's worth:
        let luts_one = self.luts / threads;
        let comb = (luts_one as f64 * comb_fraction) as u64;
        let seq_luts_one = luts_one - comb;
        // Replicated sequential state largely moves into BRAMs; ~30% of
        // its LUT footprint remains as per-thread muxing/bookkeeping.
        let seq_luts = (seq_luts_one as f64 * 0.3) as u64 * threads;
        let scheduler = luts_one / 50;
        ResourceEstimate {
            luts: comb + seq_luts + scheduler,
            regs: self.regs, // architectural state is still replicated
            // State banks spill into BRAM (the paper: multi-threading
            // "increas[es] the utilization of relatively lesser-used
            // BRAMs").
            brams: self.brams + self.regs / (36 * 1024),
            dsps: self.dsps / threads,
        }
    }

    /// Component-wise scaling.
    pub fn scale(self, n: u64) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts * n,
            regs: self.regs * n,
            brams: self.brams * n,
            dsps: self.dsps * n,
        }
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} BRAMs, {} DSPs",
            self.luts, self.regs, self.brams, self.dsps
        )
    }
}

/// Routing-congestion threshold: designs above this LUT utilization fail
/// the bitstream build (the paper's monolithic GC40 BOOM "fails due to
/// congestion").
pub const ROUTABLE_UTILIZATION: f64 = 0.80;

/// Fit-check outcome for one design on one FPGA.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// The estimate used.
    pub estimate: ResourceEstimate,
    /// LUT utilization fraction.
    pub lut_utilization: f64,
    /// BRAM utilization fraction.
    pub bram_utilization: f64,
    /// All resources within capacity.
    pub fits: bool,
    /// Within capacity *and* below the congestion threshold, i.e. the
    /// bitstream build is expected to succeed.
    pub routable: bool,
}

impl fmt::Display for FitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}% LUT, {:.1}% BRAM: {}",
            self.lut_utilization * 100.0,
            self.bram_utilization * 100.0,
            if self.routable {
                "routable"
            } else if self.fits {
                "fits but congested"
            } else {
                "does not fit"
            }
        )
    }
}

fn expr_cost(e: &Expr, est: &mut ResourceEstimate) {
    match e {
        Expr::Lit(_) | Expr::Ref(_) => {}
        Expr::Unary(op, a) => {
            let w = u64::from(width_guess(a));
            est.luts += match op {
                UnOp::Not => w.div_ceil(2),
                UnOp::OrReduce | UnOp::AndReduce | UnOp::XorReduce => w.div_ceil(4),
            };
            expr_cost(a, est);
        }
        Expr::Binary(op, a, b) => {
            let w = u64::from(width_guess(a).max(width_guess(b)));
            match op {
                BinOp::Add | BinOp::Sub => est.luts += w,
                BinOp::Mul => {
                    if w > 8 {
                        est.dsps += (w / 16).max(1);
                    } else {
                        est.luts += w * w / 2;
                    }
                }
                BinOp::Div | BinOp::Rem => est.luts += 2 * w * w.max(1),
                BinOp::And | BinOp::Or | BinOp::Xor => est.luts += w.div_ceil(2),
                BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Leq | BinOp::Gt | BinOp::Geq => {
                    est.luts += w.div_ceil(2)
                }
            }
            expr_cost(a, est);
            expr_cost(b, est);
        }
        Expr::Mux(c, a, b) => {
            let w = u64::from(width_guess(a).max(width_guess(b)));
            est.luts += w.div_ceil(2);
            expr_cost(c, est);
            expr_cost(a, est);
            expr_cost(b, est);
        }
        Expr::Cat(parts) => {
            for p in parts {
                expr_cost(p, est);
            }
        }
        Expr::Extract(a, _, _) | Expr::Resize(a, _) | Expr::Shl(a, _) | Expr::Shr(a, _) => {
            expr_cost(a, est)
        }
    }
}

/// Cheap width guess for costing (exact inference needs module context;
/// the estimator only needs magnitudes).
fn width_guess(e: &Expr) -> u32 {
    match e {
        Expr::Lit(b) => b.width().get(),
        Expr::Ref(_) => 8,
        Expr::Unary(_, a) => width_guess(a),
        Expr::Binary(_, a, b) => width_guess(a).max(width_guess(b)),
        Expr::Mux(_, a, b) => width_guess(a).max(width_guess(b)),
        Expr::Cat(parts) => parts.iter().map(width_guess).sum(),
        Expr::Extract(_, hi, lo) => hi - lo + 1,
        Expr::Resize(_, w) => w.get(),
        Expr::Shl(a, _) | Expr::Shr(a, _) => width_guess(a),
    }
}

fn module_cost(module: &Module) -> ResourceEstimate {
    if let Some(info) = &module.extern_info {
        return ResourceEstimate {
            luts: info.resources.luts,
            regs: info.resources.regs,
            brams: info.resources.brams,
            dsps: info.resources.dsps,
        };
    }
    let mut est = ResourceEstimate::default();
    for s in &module.body {
        match s {
            Stmt::Reg { width, .. } => est.regs += u64::from(width.get()),
            Stmt::Mem { width, depth, .. } => {
                let bits = u64::from(width.get()) * u64::from(*depth);
                est.brams += bits.div_ceil(36 * 1024);
            }
            Stmt::Node { expr, .. } => expr_cost(expr, &mut est),
            Stmt::MemRead { addr, .. } => expr_cost(addr, &mut est),
            Stmt::MemWrite { addr, data, en, .. } => {
                expr_cost(addr, &mut est);
                expr_cost(data, &mut est);
                expr_cost(en, &mut est);
            }
            Stmt::Connect { rhs, .. } => expr_cost(rhs, &mut est),
            Stmt::Wire { .. } | Stmt::Inst { .. } => {}
        }
    }
    est
}

/// Estimates the resources of the whole design (everything reachable from
/// the top, instance multiplicity included).
pub fn estimate(circuit: &Circuit) -> ResourceEstimate {
    let counts = circuit.instance_counts();
    let per_module: HashMap<&str, ResourceEstimate> = circuit
        .modules
        .iter()
        .map(|m| (m.name.as_str(), module_cost(m)))
        .collect();
    let mut total = ResourceEstimate::default();
    for (name, n) in &counts {
        if let Some(c) = per_module.get(name.as_str()) {
            total = total.add(c.scale(*n));
        }
    }
    total
}

/// Checks whether a design fits (and routes) on an FPGA.
pub fn fit(circuit: &Circuit, fpga: &FpgaSpec) -> FitReport {
    fit_estimate(estimate(circuit), fpga)
}

/// Fit check from a precomputed estimate.
pub fn fit_estimate(estimate: ResourceEstimate, fpga: &FpgaSpec) -> FitReport {
    let lut_utilization = estimate.luts as f64 / fpga.luts as f64;
    let bram_utilization = estimate.brams as f64 / fpga.brams as f64;
    let fits = estimate.luts <= fpga.luts
        && estimate.regs <= fpga.regs
        && estimate.brams <= fpga.brams
        && estimate.dsps <= fpga.dsps;
    let routable =
        fits && lut_utilization <= ROUTABLE_UTILIZATION && bram_utilization <= ROUTABLE_UTILIZATION;
    FitReport {
        estimate,
        lut_utilization,
        bram_utilization,
        fits,
        routable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireaxe_ir::build::{ModuleBuilder, Sig};
    use fireaxe_ir::{ExternInfo, Module, Port, ResourceHints};

    fn small() -> Circuit {
        let mut mb = ModuleBuilder::new("M");
        let a = mb.input("a", 8);
        let y = mb.output("y", 8);
        let r = mb.reg("r", 8, 0);
        mb.connect_sig(&r, &a.add(&Sig::lit(1, 8)));
        mb.connect_sig(&y, &r);
        Circuit::from_modules("M", vec![mb.finish()], "M")
    }

    #[test]
    fn counts_registers_and_adders() {
        let est = estimate(&small());
        assert_eq!(est.regs, 8);
        assert!(est.luts >= 8); // 8-bit adder
    }

    #[test]
    fn extern_hints_dominate() {
        let mut e = Module::new("Big");
        e.ports.push(Port::input("x", 1));
        e.ports.push(Port::output("y", 1));
        e.extern_info = Some(ExternInfo {
            behavior: "b".into(),
            comb_paths: vec![],
            resources: ResourceHints {
                luts: 900_000,
                regs: 100,
                brams: 10,
                dsps: 0,
            },
        });
        let c = Circuit::from_modules("Big", vec![e], "Big");
        let est = estimate(&c);
        assert_eq!(est.luts, 900_000);
    }

    #[test]
    fn instance_multiplicity_scales() {
        let mut c = small();
        let mut top = ModuleBuilder::new("Top");
        let i = top.input("i", 8);
        let o = top.output("o", 8);
        top.inst("u0", "M");
        top.inst("u1", "M");
        top.connect_inst("u0", "a", &i);
        let u0y = top.inst_port("u0", "y");
        top.connect_inst("u1", "a", &u0y);
        let u1y = top.inst_port("u1", "y");
        top.connect_sig(&o, &u1y);
        c.add_module(top.finish());
        c.top = "Top".into();
        c.name = "Top".into();
        let est = estimate(&c);
        assert_eq!(est.regs, 16); // two copies
    }

    #[test]
    fn memory_uses_brams() {
        let mut mb = ModuleBuilder::new("MemMod");
        let addr = mb.input("addr", 12);
        let data = mb.output("data", 64);
        let m = mb.mem("m", 64, 4096); // 256 kb = 8 BRAMs
        let rd = mb.mem_read("rd", &m, &addr);
        mb.connect_sig(&data, &rd);
        let c = Circuit::from_modules("MemMod", vec![mb.finish()], "MemMod");
        let est = estimate(&c);
        assert_eq!(est.brams, 8);
    }

    #[test]
    fn fame5_saves_luts() {
        let tile = ResourceEstimate {
            luts: 600_000,
            regs: 300_000,
            brams: 50,
            dsps: 12,
        };
        let six = tile.scale(6);
        let threaded = six.fame5_adjusted(6, 0.7);
        // Six threaded tiles use far fewer LUTs than six copies...
        assert!(threaded.luts < six.luts / 2);
        // ...and fit a U250 where the unthreaded version cannot.
        let u250 = FpgaSpec::alveo_u250();
        assert!(!fit_estimate(six, &u250).fits);
        assert!(fit_estimate(threaded, &u250).routable);
        // threads = 1 is the identity.
        assert_eq!(tile.fame5_adjusted(1, 0.7), tile);
    }

    #[test]
    fn fit_and_congestion_thresholds() {
        let fpga = FpgaSpec::alveo_u250();
        let small = ResourceEstimate {
            luts: 100_000,
            ..Default::default()
        };
        assert!(fit_estimate(small, &fpga).routable);
        let congested = ResourceEstimate {
            luts: (fpga.luts as f64 * 0.9) as u64,
            ..Default::default()
        };
        let r = fit_estimate(congested, &fpga);
        assert!(r.fits && !r.routable);
        let too_big = ResourceEstimate {
            luts: fpga.luts + 1,
            ..Default::default()
        };
        assert!(!fit_estimate(too_big, &fpga).fits);
    }
}
