//! A fault-injecting socket relay for tests.
//!
//! The in-process backends inject faults inside the transport model;
//! on real sockets that would miss the half of the stack being tested
//! (framing, the reader threads, retransmission pacing). [`FaultProxy`]
//! instead sits between the coordinator and one worker and damages the
//! actual byte stream — but only *data* messages (`Token`/`Ack`), so
//! control flow (handshake, topology, run/finish/report) always
//! survives and every injected fault is one the go-back-N protocol is
//! designed to absorb: drops, duplicates, payload corruption. A plan
//! can also sever the connection outright to simulate a killed peer.
//!
//! Plans are deterministic: drop/corrupt/duplicate actions key off the
//! per-direction `Token`-message index — never the raw data index. The
//! Token/Ack interleaving in a stream is timing-dependent, and a fault
//! landing on an Ack can be absorbed invisibly (cumulative acks cover
//! a dropped ack; a duplicated ack is idempotent), which would make the
//! recovery-counter assertions in the tests flaky. Keyed to tokens,
//! every planned fault is one the protocol must visibly recover from.

use crate::stream::{NetListener, NetStream};
use std::io::{self, Read, Write};
use std::time::Duration;

const TAG_TOKEN: u8 = 6;
const TAG_ACK: u8 = 7;
const TAG_TOKEN_BATCH: u8 = 16;
/// Byte offset of the first token payload word inside a `Token`
/// message: tag(1) + link(4) + seq(8) + crc(4) + delay(4) + width(4).
const TOKEN_PAYLOAD_OFFSET: usize = 25;
/// Same offset inside a `TokenBatch`'s first frame: tag(1) + link(4) +
/// count(4) + seq(8) + crc(4) + delay(4) + width(4).
const BATCH_PAYLOAD_OFFSET: usize = 29;

/// Deterministic fault schedule for one relay direction, keyed by the
/// 1-based index of token-carrying messages (`Token` or `TokenBatch`)
/// in that direction (except `cut_after`, which counts all data
/// messages).
#[derive(Debug, Clone, Default)]
pub struct ProxyPlan {
    /// Token messages to swallow entirely (forces a retransmit).
    pub drop: Vec<u64>,
    /// Token messages to deliver twice (forces a duplicate drop).
    pub duplicate: Vec<u64>,
    /// Token messages whose first payload byte gets flipped (the CRC
    /// catches it at the receiver and forces a retransmit).
    pub corrupt: Vec<u64>,
    /// Sever both directions after this many data messages
    /// (`Token`/`Ack`) forwarded.
    pub cut_after: Option<u64>,
    /// `(token index, milliseconds)`: hold the stream for that long
    /// *before* forwarding the indexed token message. The wire stays
    /// intact — everything behind the token (including heartbeats) is
    /// simply late, which is exactly the slow-but-alive shape the
    /// liveness machinery must not misread as a dead peer.
    pub stall: Vec<(u64, u64)>,
}

impl ProxyPlan {
    /// A transparent relay.
    pub fn clean() -> Self {
        ProxyPlan::default()
    }
}

/// A running one-connection fault proxy.
#[derive(Debug)]
pub struct FaultProxy {
    /// Address to hand the coordinator in place of the worker's.
    pub addr: String,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy listening on `listen_addr` (e.g. `127.0.0.1:0`
    /// or `unix:/tmp/p.sock`) that relays one connection to `target`.
    /// `to_target` governs bytes flowing toward `target` (coordinator →
    /// worker when the coordinator dials the proxy); `to_client` the
    /// reverse.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        listen_addr: &str,
        target: &str,
        to_target: ProxyPlan,
        to_client: ProxyPlan,
    ) -> io::Result<Self> {
        let listener = NetListener::bind(listen_addr)?;
        let addr = listener.local_addr_string();
        let target = target.to_string();
        let accept_thread = std::thread::spawn(move || {
            let Ok(client) = listener.accept() else {
                return;
            };
            let Ok(upstream) = NetStream::connect(&target, Duration::from_secs(10)) else {
                client.shutdown();
                return;
            };
            let (Ok(c2), Ok(u2)) = (client.try_clone(), upstream.try_clone()) else {
                client.shutdown();
                upstream.shutdown();
                return;
            };
            let t1 = std::thread::spawn(move || pump(client, upstream, to_target));
            let t2 = std::thread::spawn(move || pump(u2, c2, to_client));
            let _ = t1.join();
            let _ = t2.join();
        });
        Ok(FaultProxy {
            addr,
            accept_thread: Some(accept_thread),
        })
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        // Pumps exit when either endpoint closes; the accept thread is
        // detached if still waiting (its listener dies with it only on
        // process exit, which is fine for tests).
        if let Some(t) = self.accept_thread.take() {
            if t.is_finished() {
                let _ = t.join();
            }
        }
    }
}

/// Relays framed messages `from` → `to`, applying `plan` to data
/// messages, until EOF, error, or the plan's cut point.
fn pump(mut from: NetStream, mut to: NetStream, plan: ProxyPlan) {
    let mut data_idx = 0u64;
    let mut token_idx = 0u64;
    loop {
        let mut len_buf = [0u8; 4];
        if read_exact_or_eof(&mut from, &mut len_buf).is_err() {
            break;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > crate::codec::MAX_MSG_LEN as usize {
            break;
        }
        let mut payload = vec![0u8; len];
        if from.read_exact(&mut payload).is_err() {
            break;
        }
        let is_data = payload
            .first()
            .is_some_and(|&t| t == TAG_TOKEN || t == TAG_ACK || t == TAG_TOKEN_BATCH);
        let mut copies = 1u32;
        if is_data {
            data_idx += 1;
            let is_token = payload[0] == TAG_TOKEN || payload[0] == TAG_TOKEN_BATCH;
            if is_token {
                token_idx += 1;
            }
            if let Some(cut) = plan.cut_after {
                if data_idx > cut {
                    from.shutdown();
                    to.shutdown();
                    break;
                }
            }
            if is_token {
                if let Some(&(_, ms)) = plan.stall.iter().find(|(i, _)| *i == token_idx) {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                if plan.drop.contains(&token_idx) {
                    continue;
                }
                if plan.corrupt.contains(&token_idx) {
                    let off = if payload[0] == TAG_TOKEN {
                        TOKEN_PAYLOAD_OFFSET
                    } else {
                        BATCH_PAYLOAD_OFFSET
                    };
                    if payload.len() > off {
                        payload[off] ^= 0x01;
                    }
                }
                if plan.duplicate.contains(&token_idx) {
                    copies = 2;
                }
            }
        }
        for _ in 0..copies {
            if to.write_all(&len_buf).is_err() || to.write_all(&payload).is_err() {
                return;
            }
        }
        if to.flush().is_err() {
            return;
        }
    }
    // Propagate the EOF so both sides observe the closure.
    from.shutdown();
    to.shutdown();
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    r.read_exact(buf)
}
