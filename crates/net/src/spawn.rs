//! Worker subprocess management for self-hosted clusters.
//!
//! A spawned worker binds its listener (typically on an ephemeral
//! port), prints a line containing `listening on <addr>` to stdout, and
//! then serves. [`SpawnedWorker::launch`] reads stdout to discover the
//! address, so callers never race the bind or guess ports. The
//! advertisement is matched anywhere in a line (logging frameworks
//! prefix timestamps, and unrelated log lines may interleave), and
//! stdout noise need not be UTF-8. Workers are killed *and reaped* on
//! drop and on every launch failure path: a failed coordinator run can
//! neither leak processes nor accumulate zombies.

use std::io::{self, BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// The stdout marker a worker process must print once listening.
pub const LISTENING_PREFIX: &str = "listening on ";

/// A worker subprocess, killed (and reaped) on drop.
#[derive(Debug)]
pub struct SpawnedWorker {
    /// The address the worker is listening on, as printed by the child.
    pub addr: String,
    /// `None` once [`SpawnedWorker::wait`] has reaped the child, which
    /// disarms the drop-side kill — signalling an already-reaped pid
    /// would race pid reuse.
    child: Option<Child>,
}

/// Kills and reaps `child`, then returns `err` — every early exit from
/// [`SpawnedWorker::launch`] must go through here or the child leaks.
fn abandon(mut child: Child, err: io::Error) -> io::Error {
    let _ = child.kill();
    let _ = child.wait();
    err
}

impl SpawnedWorker {
    /// Spawns `cmd` (stdout piped) and scans its stdout for the first
    /// line carrying the [`LISTENING_PREFIX`] advertisement; the
    /// address is the first whitespace-delimited token after the
    /// marker, so trailing log decoration is tolerated.
    ///
    /// # Errors
    ///
    /// Spawn failures, stdout read failures, or the child exiting /
    /// closing stdout before advertising an address. On every error the
    /// child has already been killed and reaped.
    pub fn launch(mut cmd: Command) -> io::Result<Self> {
        cmd.stdout(Stdio::piped());
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut reader = BufReader::new(stdout);
        let mut buf = Vec::new();
        loop {
            buf.clear();
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => {
                    return Err(abandon(
                        child,
                        io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "worker exited before printing its listen address",
                        ),
                    ));
                }
                Ok(_) => {}
                Err(e) => return Err(abandon(child, e)),
            }
            let line = String::from_utf8_lossy(&buf);
            let Some(rest) = line.split(LISTENING_PREFIX).nth(1) else {
                continue;
            };
            let Some(addr) = rest.split_whitespace().next() else {
                continue; // marker with no address: keep scanning
            };
            let addr = addr.to_string();
            // Keep draining the pipe so the child never blocks on a
            // full stdout buffer.
            std::thread::spawn(move || {
                let mut sink = Vec::new();
                while matches!(reader.read_until(b'\n', &mut sink), Ok(n) if n > 0) {
                    sink.clear();
                }
            });
            return Ok(SpawnedWorker {
                addr,
                child: Some(child),
            });
        }
    }

    /// Waits for the worker to exit cleanly (after a coordinator
    /// shutdown), returning whether it exited with success. Reaps the
    /// child and disarms the drop-side kill.
    ///
    /// # Errors
    ///
    /// Propagates wait failures (the child is killed and reaped
    /// best-effort first).
    pub fn wait(mut self) -> io::Result<bool> {
        let mut child = self.child.take().expect("child present until wait or drop");
        match child.wait() {
            Ok(status) => Ok(status.success()),
            Err(e) => Err(abandon(child, e)),
        }
    }
}

impl Drop for SpawnedWorker {
    fn drop(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn launch_finds_the_advertisement_inside_an_interleaved_log_line() {
        let w = SpawnedWorker::launch(sh("echo '[boot] loading design'; \
             echo 'ts=42 listening on 127.0.0.1:5555 (tcp, worker 1)'; \
             sleep 30"))
        .expect("launch");
        assert_eq!(w.addr, "127.0.0.1:5555");
        // Drop kills and reaps the sleeping child.
    }

    #[test]
    fn launch_survives_non_utf8_noise_on_stdout() {
        let w = SpawnedWorker::launch(sh("printf '\\377\\376 binary junk\\n'; \
             echo 'listening on unix:/tmp/fx.sock'; \
             sleep 30"))
        .expect("launch must skip undecodable lines, not fail on them");
        assert_eq!(w.addr, "unix:/tmp/fx.sock");
    }

    #[test]
    fn wait_reaps_a_clean_exit_and_reports_status() {
        let w = SpawnedWorker::launch(sh("echo 'listening on 127.0.0.1:1'; exit 0")).expect("ok");
        assert!(w.wait().expect("wait"), "clean exit reported as failure");
        let w = SpawnedWorker::launch(sh("echo 'listening on 127.0.0.1:1'; exit 3")).expect("ok");
        assert!(!w.wait().expect("wait"), "failure exit reported as success");
    }

    /// Regression: a child that emits undecodable noise and closes
    /// stdout without ever advertising must be killed *and reaped* by
    /// the failing launch — the old line iterator surfaced the UTF-8
    /// decode error straight through `?` with the child still running,
    /// leaking it.
    #[test]
    #[cfg(target_os = "linux")]
    fn failed_launch_kills_and_reaps_the_child() {
        let marker = format!("fxspawn_leak_probe_{}", std::process::id());
        let err = SpawnedWorker::launch(sh(&format!(
            "printf '\\377\\376 junk\\n'; exec >&-; sleep 30; : {marker}"
        )))
        .expect_err("no advertisement must fail the launch");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // The shell (whose argv carries the marker) must be gone: not
        // running, and not a zombie either (reaped processes have no
        // /proc entry at all).
        let leaked = std::fs::read_dir("/proc").expect("/proc").any(|e| {
            let Ok(e) = e else { return false };
            let mut p = e.path();
            p.push("cmdline");
            std::fs::read(&p).is_ok_and(|c| String::from_utf8_lossy(&c).contains(&marker))
        });
        assert!(!leaked, "failed launch leaked the worker child process");
    }
}
