//! Worker subprocess management for self-hosted clusters.
//!
//! A spawned worker binds its listener (typically on an ephemeral
//! port), prints exactly one line `listening on <addr>` to stdout, and
//! then serves. [`SpawnedWorker::launch`] reads that line to discover
//! the address, so callers never race the bind or guess ports. Workers
//! are killed on drop: a failed coordinator run cannot leak processes.

use std::io::{self, BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// The stdout line prefix a worker process must print once listening.
pub const LISTENING_PREFIX: &str = "listening on ";

/// A worker subprocess, killed (and reaped) on drop.
#[derive(Debug)]
pub struct SpawnedWorker {
    /// The address the worker is listening on, as printed by the child.
    pub addr: String,
    child: Child,
}

impl SpawnedWorker {
    /// Spawns `cmd` (stdout piped) and waits for its
    /// [`LISTENING_PREFIX`] line.
    ///
    /// # Errors
    ///
    /// Spawn failures, or the child exiting / closing stdout before
    /// advertising an address.
    pub fn launch(mut cmd: Command) -> io::Result<Self> {
        cmd.stdout(Stdio::piped());
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        for line in &mut lines {
            let line = line?;
            if let Some(addr) = line.strip_prefix(LISTENING_PREFIX) {
                let addr = addr.trim().to_string();
                // Keep draining the pipe so the child never blocks on a
                // full stdout buffer.
                std::thread::spawn(move || for _ in lines {});
                return Ok(SpawnedWorker { addr, child });
            }
        }
        let _ = child.kill();
        let _ = child.wait();
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "worker exited before printing its listen address",
        ))
    }

    /// Waits for the worker to exit cleanly (after a coordinator
    /// shutdown), returning whether it exited with success.
    ///
    /// # Errors
    ///
    /// Propagates wait failures.
    pub fn wait(mut self) -> io::Result<bool> {
        let status = self.child.wait()?;
        // Disarm the drop-side kill: the child is already reaped.
        Ok(status.success())
    }
}

impl Drop for SpawnedWorker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
