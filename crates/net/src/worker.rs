//! The worker process: owns one partition, speaks the wire protocol.
//!
//! A worker accepts exactly one coordinator connection, handshakes,
//! receives the topology (circuit IR + partition spec + settings),
//! deterministically reruns FireRipper and `SimBuilder` locally — so
//! every process agrees on node/link indices and fast-mode seed
//! staging without shipping elaborated state — then services only the
//! nodes of its own partition. Cross-worker link endpoints become
//! socket traffic: outputs are sealed into go-back-N frames and sent as
//! [`Msg::Token`]s (gated by credits), inbound frames are classified by
//! the reliability receiver and staged into the consuming node's LI-BDN
//! queue, exactly where the in-process backends deliver.
//!
//! The service loop mirrors the threaded backend's: drain the socket,
//! step owned nodes to quiescence, move link outputs, drain environment
//! bridges, return flow-control credits, and only when nothing moved,
//! tick retransmission timers and block briefly on the socket. Nodes
//! stop at exactly the budget, so the shared observation point in
//! `ingest_and_step` samples identical `(cycle, state_digest)` rows and
//! VCD changes as the DES golden model.
//!
//! # Latency hiding
//!
//! Two mechanisms keep the wire off the critical path (the paper's
//! inter-FPGA latency amortization, §V):
//!
//! * **Cycle batching** — outbound fresh tokens accumulate per link and
//!   ship as one [`Msg::TokenBatch`] per `batch_cycles` target cycles
//!   (quiescence always flushes a partial batch, so liveness never
//!   depends on filling one). The receiver stages the whole batch and
//!   acknowledges once, cumulatively.
//! * **Write coalescing** — outbound messages queue into one local
//!   buffer and ship with a single `write`+`flush` per service-loop
//!   pass (a completed token batch still flushes immediately). The
//!   kernel socket buffer provides the compute/communication overlap:
//!   a write returns as soon as the bytes are queued, and the worker
//!   keeps stepping while the coordinator relays them (double
//!   buffering: a link's next batch fills while the previous one is
//!   still in flight unacknowledged). A dedicated writer thread was
//!   measured slower here — on a loaded host every thread hand-off on
//!   the token path is a context switch, and the per-cycle critical
//!   path of a tightly-coupled partitioning is exactly that path.
//! * **Inline socket reads** — the same argument on the inbound side:
//!   the service loop drains the socket itself ([`RxWire`]; nonblocking
//!   while active, one short blocking poll when quiescent) instead of
//!   delegating to a reader thread. A relayed token then wakes the
//!   worker's service loop directly, cutting one context switch from
//!   every hop of the cut's token ring. Deadlock freedom previously
//!   rested on the always-draining reader thread; it now rests on
//!   [`WireBuf::flush`] draining inbound whenever the send buffer is
//!   full, so no two peers can sit blocked writing to each other.
//!
//! Runahead is bounded twice: LI-BDN queues are deepened to the
//! `slack_cycles` lookahead window, and every fresh frame still spends
//! a flow-control credit — a partition can never run more than
//! [`crate::flow::INITIAL_CREDITS`] cycles ahead of its slowest
//! inbound link.

use crate::codec::{
    decode_msg, design_digest, encode_msg, read_msg, write_msg, LinkReport, Msg, NodeReport,
    WireReport, WireSettings, FATAL_LINK_DOWN, FATAL_SIM, MAX_MSG_LEN, PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
};
use crate::flow::{RxLink, TxLink};
use crate::stream::{NetListener, NetStream};
use fireaxe_obs::{trace, OwnedTraceEvent};
use fireaxe_ripper::{LinkSpec, PartitionedDesign};
use fireaxe_sim::{Backend, DistributedSim, NetAccess, Result, SimBuilder, SimError};
use fireaxe_transport::reliable::{Frame, RxVerdict};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Hook for binding process-local, non-serializable simulation inputs
/// (behavior registries, bridges) onto the builder. Every process of a
/// cluster — and any DES reference run being compared against — must
/// apply the same setup for bit-exact parity.
pub type SimSetup = dyn for<'a> Fn(SimBuilder<'a>) -> SimBuilder<'a> + Sync;

/// Idle poll granularity: how long a quiescent worker blocks on the
/// socket before ticking retransmission timers again.
const IDLE_POLL: Duration = Duration::from_micros(200);

enum Event {
    Msg(Msg),
    Closed,
}

fn cfg_err(message: String) -> SimError {
    SimError::Config { message }
}

/// One outbound cross-worker link: protocol/flow state plus the batch
/// currently being filled (its predecessor may still be on the wire —
/// that is the double buffer).
struct OutLink {
    link: usize,
    txl: TxLink,
    pending: Vec<Frame>,
}

/// Appends one length-prefixed message to `buf`.
fn frame_into(buf: &mut Vec<u8>, msg: &Msg) {
    let payload = encode_msg(msg);
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&payload);
}

/// The service loop's outbound wire buffer: messages queue locally
/// (infallibly) and ship in one `write`+`flush` wherever the loop
/// chooses to flush, so a pass that produces a burst of acks, credits
/// and tokens costs one syscall instead of one per message.
struct WireBuf {
    buf: Vec<u8>,
}

impl WireBuf {
    fn new() -> Self {
        WireBuf {
            buf: Vec::with_capacity(16 << 10),
        }
    }

    fn queue(&mut self, msg: &Msg) {
        frame_into(&mut self.buf, msg);
    }

    /// Ships the queued bytes. While the socket's send buffer is full
    /// (nonblocking mode only), keeps draining the inbound side: the
    /// peer that must consume our bytes may itself be blocked writing
    /// to us, and draining breaks that cycle — the deadlock-freedom
    /// guarantee the dedicated reader thread used to provide.
    fn flush(
        &mut self,
        stream: &mut NetStream,
        rx: &mut RxWire,
        events: &mut VecDeque<Event>,
    ) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut off = 0;
        let mut stalls = 0u32;
        while off < self.buf.len() {
            match stream.write(&self.buf[off..]) {
                Ok(0) => {
                    self.buf.clear();
                    return Err(std::io::ErrorKind::WriteZero.into());
                }
                Ok(n) => {
                    off += n;
                    stalls = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    rx.drain(events);
                    stalls += 1;
                    // Yield first (the consumer likely just needs the
                    // core), back off to real sleeps if the buffer stays
                    // full — e.g. behind a long wire stall.
                    if stalls > 64 {
                        std::thread::sleep(Duration::from_micros(100));
                    } else {
                        std::thread::yield_now();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.buf.clear();
                    return Err(e);
                }
            }
        }
        self.buf.clear();
        stream.flush()
    }
}

/// The service loop's inbound wire: the socket drained directly by the
/// loop, with complete frames decoded out of an accumulation buffer.
/// See the module docs for why there is deliberately no reader thread.
///
/// The underlying descriptor is switched to nonblocking on
/// construction; since clones share it, the *write* half inherits that
/// too, which [`WireBuf::flush`] handles. EOF and unrecoverable read or
/// decode errors surface as one final [`Event::Closed`].
struct RxWire {
    stream: NetStream,
    buf: Vec<u8>,
    /// Parse cursor; consumed bytes are compacted away after each drain.
    start: usize,
    closed: bool,
}

impl RxWire {
    fn new(stream: NetStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(RxWire {
            stream,
            buf: Vec::with_capacity(64 << 10),
            start: 0,
            closed: false,
        })
    }

    /// Pulls every byte currently available and decodes complete frames
    /// into `events`. Never blocks.
    fn drain(&mut self, events: &mut VecDeque<Event>) {
        if self.closed {
            return;
        }
        let mut chunk = [0u8; 64 << 10];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(events);
                    return;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(events);
                    return;
                }
            }
        }
        self.decode(events);
    }

    /// Blocks until the socket has bytes or `timeout` elapses, then
    /// drains. Only called when the service loop is quiescent.
    fn wait(&mut self, timeout: Duration, events: &mut VecDeque<Event>) {
        if self.closed || !events.is_empty() {
            return;
        }
        let armed = self.stream.set_nonblocking(false).is_ok()
            && self.stream.set_read_timeout(Some(timeout)).is_ok();
        if !armed {
            // Degenerate fallback: sleep out the poll interval; the
            // drain below still collects whatever arrived meanwhile.
            std::thread::sleep(timeout);
            self.drain(events);
            return;
        }
        let mut chunk = [0u8; 64 << 10];
        let outcome = self.stream.read(&mut chunk);
        let _ = self.stream.set_nonblocking(true);
        match outcome {
            Ok(0) => {
                self.close(events);
                return;
            }
            Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => {
                self.close(events);
                return;
            }
        }
        self.drain(events);
    }

    /// Decodes every complete frame sitting in the buffer.
    fn decode(&mut self, events: &mut VecDeque<Event>) {
        while self.buf.len() - self.start >= 4 {
            let len_bytes: [u8; 4] = self.buf[self.start..self.start + 4]
                .try_into()
                .expect("slice is 4 bytes");
            let len = u32::from_be_bytes(len_bytes) as usize;
            if len as u32 > MAX_MSG_LEN {
                self.close(events);
                return;
            }
            let end = self.start + 4 + len;
            if self.buf.len() < end {
                break;
            }
            match decode_msg(&self.buf[self.start + 4..end]) {
                Ok(msg) => events.push_back(Event::Msg(msg)),
                Err(_) => {
                    self.close(events);
                    return;
                }
            }
            self.start = end;
        }
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn close(&mut self, events: &mut VecDeque<Event>) {
        self.closed = true;
        events.push_back(Event::Closed);
    }
}

/// Wraps outbound frames for one link into the smallest equivalent
/// message: a bare [`Msg::Token`] for a single frame (identical to the
/// unbatched wire format), a [`Msg::TokenBatch`] otherwise.
fn token_msg(link: usize, mut frames: Vec<Frame>) -> Msg {
    if frames.len() == 1 {
        Msg::Token {
            link: link as u32,
            frame: frames.pop().expect("len checked"),
        }
    } else {
        Msg::TokenBatch {
            link: link as u32,
            frames,
        }
    }
}

/// Wall-clock cadence for keepalive [`Msg::Progress`] heartbeats: a
/// quarter of the silence budget, so a slow-but-alive peer always lands
/// several heartbeats inside every `io_timeout` window.
pub(crate) fn heartbeat_interval(io_timeout: Duration) -> Duration {
    (io_timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(1_000))
}

/// Builds the deterministic local simulation every process of a cluster
/// constructs from the shipped topology: same builder-call order, same
/// settings, same setup hook — so node/link indices, channel staging,
/// and the design digest agree across the coordinator and all workers.
pub(crate) fn build_sim(
    design: &PartitionedDesign,
    settings: &WireSettings,
    setup: &SimSetup,
) -> Result<DistributedSim> {
    let mut builder = SimBuilder::new(design)
        .backend(Backend::Net)
        .transport(settings.default_transport)
        .clock_mhz(settings.clock_mhz)
        .channel_capacity(settings.channel_capacity as usize)
        .deadlock_horizon(settings.deadlock_horizon)
        .observe(fireaxe_sim::ObsSpec {
            sample_interval: settings.sample_interval,
            vcd: settings.vcd,
            signals: settings.signals.clone(),
        });
    for (l, m) in &settings.link_transports {
        builder = builder.link_transport(*l as usize, *m);
    }
    for (p, mhz) in &settings.partition_clocks {
        builder = builder.partition_clock_mhz(*p as usize, *mhz);
    }
    setup(builder).build()
}

/// Serves one coordinator session on `listener`: handshake, build,
/// run, report, shutdown.
///
/// # Errors
///
/// Handshake violations ([`SimError::ProtocolMismatch`]), peer loss
/// ([`SimError::PeerDisconnected`]), silence ([`SimError::NetTimeout`]),
/// and any simulation failure, which is also reported to the
/// coordinator as a [`Msg::Fatal`] before returning.
pub fn serve(listener: &NetListener, setup: &SimSetup) -> Result<()> {
    let mut stream = listener
        .accept()
        .map_err(|e| cfg_err(format!("worker accept failed: {e}")))?;
    let peer = stream.peer_string();

    // --- Handshake -----------------------------------------------------
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| cfg_err(format!("worker socket setup failed: {e}")))?;
    let hello = read_msg(&mut stream)
        .map_err(|e| cfg_err(format!("worker handshake read failed: {e}")))?
        .ok_or_else(|| SimError::PeerDisconnected {
            peer: peer.clone(),
            last_acked_cycle: 0,
            report: Default::default(),
        })?;
    let (magic, version, me) = match hello {
        Msg::Hello {
            magic,
            version,
            worker,
        } => (magic, version, worker as usize),
        other => return Err(cfg_err(format!("worker expected Hello, got {other:?}"))),
    };
    write_msg(
        &mut stream,
        &Msg::HelloAck {
            magic: PROTOCOL_MAGIC,
            version: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| cfg_err(format!("worker handshake write failed: {e}")))?;
    if magic != PROTOCOL_MAGIC || version != PROTOCOL_VERSION {
        return Err(SimError::ProtocolMismatch {
            peer,
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }

    // --- Topology → deterministic local build --------------------------
    let topology = match read_msg(&mut stream)
        .map_err(|e| cfg_err(format!("worker topology read failed: {e}")))?
    {
        Some(Msg::Topology(t)) => *t,
        Some(other) => return Err(cfg_err(format!("worker expected Topology, got {other:?}"))),
        None => {
            return Err(SimError::PeerDisconnected {
                peer,
                last_acked_cycle: 0,
                report: Default::default(),
            })
        }
    };
    let circuit = fireaxe_ir::parser::parse_circuit(&topology.circuit)
        .map_err(|e| cfg_err(format!("worker received unparseable circuit IR: {e}")))?;
    let design = fireaxe_ripper::compile(&circuit, &topology.spec)
        .map_err(|e| cfg_err(format!("worker partition compile failed: {e}")))?;
    let settings = topology.settings.clone();
    let mut sim = build_sim(&design, &settings, setup)?;
    trace::set_enabled(true);

    let mut access = sim.net_access();
    let nodes_meta: Vec<(String, usize)> = (0..access.node_count())
        .map(|n| (access.node_name(n).to_string(), access.node_partition(n)))
        .collect();
    let specs = access.link_specs();
    write_msg(
        &mut stream,
        &Msg::Ready {
            design_digest: design_digest(&nodes_meta, &specs),
        },
    )
    .map_err(|e| cfg_err(format!("worker ready write failed: {e}")))?;

    // --- Run ------------------------------------------------------------
    let budget =
        match read_msg(&mut stream).map_err(|e| cfg_err(format!("worker run read failed: {e}")))? {
            Some(Msg::Run { budget }) => budget,
            Some(Msg::Shutdown) | None => return Ok(()),
            Some(other) => return Err(cfg_err(format!("worker expected Run, got {other:?}"))),
        };
    stream
        .set_read_timeout(None)
        .map_err(|e| cfg_err(format!("worker socket setup failed: {e}")))?;

    let result = run_session(
        &mut stream,
        &peer,
        me,
        &mut access,
        &specs,
        &settings,
        budget,
    );
    if let Err(e) = &result {
        // The session may have left the descriptor nonblocking; the
        // Fatal report must not be lost to a transient WouldBlock.
        let _ = stream.set_nonblocking(false);
        let (code, link, attempts) = match e {
            SimError::LinkDown { link, attempts, .. } => (FATAL_LINK_DOWN, *link as u32, *attempts),
            _ => (FATAL_SIM, 0, 0),
        };
        let _ = write_msg(
            &mut stream,
            &Msg::Fatal {
                code,
                link,
                attempts,
                message: format!("worker {me}: {e}"),
            },
        );
        stream.shutdown();
    }
    result
}

/// The post-handshake service loop plus report/shutdown epilogue.
#[allow(clippy::too_many_lines)]
fn run_session(
    stream: &mut NetStream,
    peer: &str,
    me: usize,
    access: &mut NetAccess<'_>,
    specs: &[LinkSpec],
    settings: &WireSettings,
    budget: u64,
) -> Result<()> {
    let owner = |node: usize, access: &NetAccess| access.node_partition(node);
    let owned: Vec<usize> = (0..access.node_count())
        .filter(|&n| owner(n, access) == me)
        .collect();
    if owned.is_empty() {
        return Err(cfg_err(format!(
            "worker {me} owns no nodes in this partitioning"
        )));
    }
    let mut out_links: Vec<OutLink> = Vec::new();
    let mut in_links: Vec<(usize, RxLink)> = Vec::new();
    let mut local_links: Vec<usize> = Vec::new();
    for (l, s) in specs.iter().enumerate() {
        let from_mine = access.node_partition(s.from_node) == me;
        let to_mine = access.node_partition(s.to_node) == me;
        match (from_mine, to_mine) {
            (true, true) => local_links.push(l),
            (true, false) => out_links.push(OutLink {
                link: l,
                txl: TxLink::new(settings.retry),
                pending: Vec::new(),
            }),
            (false, true) => in_links.push((l, RxLink::new())),
            (false, false) => {}
        }
    }
    let mut timeout_escalations = vec![0u64; specs.len()];
    let batch = settings.effective_batch();
    let saved = access.deepen_capacities(settings.effective_slack());

    // Inbound wire: the service loop drains the socket itself (see the
    // module docs on why there is deliberately no reader thread on this
    // path). Constructing it flips the shared descriptor nonblocking.
    let reader = stream
        .try_clone()
        .map_err(|e| cfg_err(format!("worker socket clone failed: {e}")))?;
    let mut rx =
        RxWire::new(reader).map_err(|e| cfg_err(format!("worker socket setup failed: {e}")))?;
    let mut events: VecDeque<Event> = VecDeque::new();

    // All outbound traffic queues here and is written directly by the
    // service loop (see the module docs on why there is deliberately no
    // writer thread on this path).
    let mut wire = WireBuf::new();

    let io_timeout = Duration::from_millis(settings.io_timeout_ms.max(1));
    let hb_interval = heartbeat_interval(io_timeout);
    let mut last_activity = Instant::now();
    let mut last_heartbeat = Instant::now();
    let mut last_progress_sent = 0u64;
    let mut done_sent = false;
    let mut finishing = false;
    let mut shutdown = false;
    let lost = |me: usize| {
        cfg_err(format!(
            "worker {me} send to coordinator failed: connection lost"
        ))
    };

    let min_cycle = |access: &NetAccess, owned: &[usize]| {
        owned
            .iter()
            .map(|&n| access.node_target_cycle(n))
            .min()
            .unwrap_or(0)
    };

    let outcome: Result<()> = 'outer: loop {
        let mut progress = false;

        // 1. Drain inbound messages.
        rx.drain(&mut events);
        while let Some(ev) = events.pop_front() {
            match handle_event(
                ev,
                peer,
                access,
                &mut out_links,
                &mut in_links,
                &mut wire,
                &owned,
            )? {
                Control::Progress => progress = true,
                Control::Finish => finishing = true,
                Control::Shutdown => {
                    shutdown = true;
                    break 'outer Ok(());
                }
                Control::None => {}
            }
        }

        // 2. Step owned nodes and move link outputs to quiescence,
        //    accumulating outbound tokens into per-link batches. A batch
        //    ships as soon as it holds `batch` frames; partial batches
        //    ship at quiescence below, so no token is ever held while
        //    the loop has nothing else to do.
        loop {
            let mut pass = false;
            for &n in &owned {
                if let Err(e) = (|| -> Result<()> {
                    while access.ingest_and_step(n, budget)? {
                        pass = true;
                    }
                    Ok(())
                })() {
                    break 'outer Err(e);
                }
            }
            for &l in &local_links {
                while let Some(payload) = access.pop_link_output(l) {
                    access.stage_link_token(l, payload);
                    pass = true;
                }
            }
            for ol in &mut out_links {
                loop {
                    while ol.txl.can_send() && ol.pending.len() < batch {
                        match access.pop_link_output(ol.link) {
                            Some(payload) => {
                                ol.pending.push(ol.txl.send(payload));
                                pass = true;
                            }
                            None => break,
                        }
                    }
                    if ol.pending.len() < batch {
                        break;
                    }
                    // A completed batch is queued here and leaves at
                    // the end of this pass: sink workers compute on it
                    // while this loop keeps stepping.
                    let frames = std::mem::take(&mut ol.pending);
                    wire.queue(&token_msg(ol.link, frames));
                }
            }
            // One write carries every batch the pass completed: on a
            // core-starved host each socket write is a receiver wakeup,
            // so shipping per pass rather than per link is what keeps
            // the wakeup count flat in the link count.
            if wire.flush(stream, &mut rx, &mut events).is_err() {
                break 'outer Err(lost(me));
            }
            if !pass {
                break;
            }
            progress = true;
        }

        // 2b. Quiescent flush: ship every partial batch. From here on
        //     no token is held back in this thread.
        for ol in &mut out_links {
            if ol.pending.is_empty() {
                continue;
            }
            let frames = std::mem::take(&mut ol.pending);
            wire.queue(&token_msg(ol.link, frames));
        }
        if wire.flush(stream, &mut rx, &mut events).is_err() {
            break 'outer Err(lost(me));
        }

        // 3. Environment bridges.
        for &n in &owned {
            if access.drain_env_outputs(n) {
                progress = true;
            }
        }

        // 4. Return flow-control credits at the LI-BDN consumption point.
        for (l, rxl) in &mut in_links {
            let s = &specs[*l];
            let due = rxl.credit_due(access.chan_enqueued(s.to_node, s.to_chan));
            if due > 0 {
                wire.queue(&Msg::Credit {
                    link: *l as u32,
                    amount: due,
                });
            }
        }

        // 5. Progress for coordinator-side stall forensics (cycle
        //    cadence), plus a wall-clock keepalive heartbeat: a worker
        //    that is alive but target-stalled — waiting out a wire
        //    stall, or simply slow — must never fall silent for a whole
        //    io_timeout, or the coordinator declares it dead.
        let cycle = min_cycle(access, &owned);
        if cycle >= last_progress_sent + settings.progress_interval.max(1)
            || last_heartbeat.elapsed() >= hb_interval
        {
            last_progress_sent = cycle;
            last_heartbeat = Instant::now();
            wire.queue(&Msg::Progress { cycle });
        }

        // 6. Done: budget reached everywhere, nothing awaiting ACK
        //    (pending batches were flushed at 2b, and stay in the
        //    go-back-N window until acknowledged).
        if !done_sent
            && owned.iter().all(|&n| access.node_target_cycle(n) >= budget)
            && out_links.iter().all(|ol| ol.txl.tx.in_flight() == 0)
        {
            done_sent = true;
            wire.queue(&Msg::Done { cycle: budget });
        }

        // Everything queued this pass (acks, credits, progress, done)
        // leaves in one write.
        if wire.flush(stream, &mut rx, &mut events).is_err() {
            break 'outer Err(lost(me));
        }
        if finishing {
            break 'outer Ok(());
        }

        if progress {
            last_activity = Instant::now();
            continue;
        }

        // 7. Quiescent: settle deferred acks and retransmission timers,
        //    then block briefly. Acks delayed during the active streak
        //    ship now — peers gate `Done` on an empty retransmit
        //    window, so an owed ack must not outlive the lull.
        for (l, rxl) in &mut in_links {
            if let Some(ack) = rxl.take_deferred_ack() {
                wire.queue(&Msg::Ack {
                    link: *l as u32,
                    ack,
                });
            }
        }
        for ol in &mut out_links {
            debug_assert!(ol.pending.is_empty(), "quiescent with unflushed batch");
            match ol.txl.tx.on_tick() {
                Ok(frames) => {
                    if !frames.is_empty() {
                        timeout_escalations[ol.link] += 1;
                        wire.queue(&token_msg(ol.link, frames));
                    }
                }
                Err(attempts) => {
                    break 'outer Err(SimError::LinkDown {
                        link: ol.link,
                        attempts,
                        report: access.stall_report(),
                    });
                }
            }
        }
        if wire.flush(stream, &mut rx, &mut events).is_err() {
            break 'outer Err(lost(me));
        }
        rx.wait(IDLE_POLL, &mut events);
        if events.is_empty() {
            if last_activity.elapsed() >= io_timeout {
                break 'outer Err(SimError::NetTimeout {
                    peer: peer.to_string(),
                    timeout_ms: settings.io_timeout_ms,
                    last_acked_cycle: min_cycle(access, &owned),
                });
            }
        } else {
            // Handled by the drain at the top of the next pass.
            last_activity = Instant::now();
        }
    };

    access.restore_capacities(saved);
    // Back to plain blocking I/O for the epilogue (and, on the error
    // path, for `serve`'s Fatal report).
    let _ = stream.set_nonblocking(false);
    outcome?;

    // --- Report ---------------------------------------------------------
    // Fold protocol totals into the engine's link counters first, so the
    // report and any local inspection agree.
    for ol in &out_links {
        let c = access.link_counters_mut(ol.link);
        c.sent_frames += ol.txl.tx.sent_frames;
        c.retransmits += ol.txl.tx.retransmits;
        c.timeout_escalations += timeout_escalations[ol.link];
    }
    for (l, rxl) in &in_links {
        let c = access.link_counters_mut(*l);
        c.crc_failures += rxl.rx.corrupt_frames;
        c.duplicates_dropped += rxl.rx.duplicate_frames;
    }
    let mut report = WireReport {
        worker: me as u32,
        ..Default::default()
    };
    for &n in &owned {
        report.nodes.push(NodeReport {
            node: n as u32,
            counters: access.node_counters(n),
            samples: access.take_node_samples(n),
            vcd: access.take_node_vcd_changes(n),
        });
    }
    for ol in &out_links {
        report.links.push(LinkReport {
            link: ol.link as u32,
            tokens: access.link_tokens(ol.link),
            counters: access.link_counters_mut(ol.link).clone(),
        });
    }
    for (l, _) in &in_links {
        report.links.push(LinkReport {
            link: *l as u32,
            tokens: 0,
            counters: access.link_counters_mut(*l).clone(),
        });
    }
    for &l in &local_links {
        report.links.push(LinkReport {
            link: l as u32,
            tokens: access.link_tokens(l),
            counters: access.link_counters_mut(l).clone(),
        });
    }
    trace::flush_thread();
    report.traces = trace::take_events()
        .iter()
        .map(OwnedTraceEvent::from)
        .collect();
    wire.queue(&Msg::Report(Box::new(report)));
    wire.flush(stream, &mut rx, &mut events)
        .map_err(|e| cfg_err(format!("worker {me} report write failed: {e}")))?;

    // Wait for the shutdown (or the coordinator simply closing, or a
    // full silent io_timeout — whichever comes first).
    if !shutdown {
        'epilogue: loop {
            while let Some(ev) = events.pop_front() {
                if matches!(ev, Event::Msg(Msg::Shutdown) | Event::Closed) {
                    break 'epilogue;
                }
            }
            rx.wait(io_timeout, &mut events);
            if events.is_empty() {
                break;
            }
        }
    }
    stream.shutdown();
    Ok(())
}

enum Control {
    None,
    Progress,
    Finish,
    Shutdown,
}

fn handle_event(
    ev: Event,
    peer: &str,
    access: &mut NetAccess<'_>,
    out_links: &mut [OutLink],
    in_links: &mut [(usize, RxLink)],
    wire: &mut WireBuf,
    owned: &[usize],
) -> Result<Control> {
    let msg = match ev {
        Event::Msg(m) => m,
        Event::Closed => {
            return Err(SimError::PeerDisconnected {
                peer: peer.to_string(),
                last_acked_cycle: owned
                    .iter()
                    .map(|&n| access.node_target_cycle(n))
                    .min()
                    .unwrap_or(0),
                report: access.stall_report(),
            })
        }
    };
    match msg {
        Msg::Token { link, frame } => stage_frames(access, in_links, wire, link, &[frame]),
        Msg::TokenBatch { link, frames } => stage_frames(access, in_links, wire, link, &frames),
        Msg::CorruptToken { link } => {
            let l = link as usize;
            if let Some((_, rxl)) = in_links.iter_mut().find(|(i, _)| *i == l) {
                rxl.rx.corrupt_frames += 1;
            }
            Ok(Control::None)
        }
        Msg::Ack { link, ack } => {
            let l = link as usize;
            if let Some(ol) = out_links.iter_mut().find(|ol| ol.link == l) {
                ol.txl.tx.on_ack(ack);
            }
            Ok(Control::Progress)
        }
        Msg::Credit { link, amount } => {
            let l = link as usize;
            if let Some(ol) = out_links.iter_mut().find(|ol| ol.link == l) {
                ol.txl.on_credit(amount);
                debug_assert!(ol.txl.window_intact(), "link {l} credit window inflated");
            }
            Ok(Control::Progress)
        }
        Msg::Finish => Ok(Control::Finish),
        Msg::Shutdown => Ok(Control::Shutdown),
        // Late control messages (e.g. a duplicate Run) and coordinator
        // keepalive heartbeats are absorbed without effect.
        _ => Ok(Control::None),
    }
}

/// Classifies delivered token frames for one link (a single frame or a
/// whole batch), stages in-sequence payloads, and feeds at most one
/// cumulative ack covering everything processed into the link's
/// delayed-ack policy ([`RxLink::ack_policy`]) — per-frame or
/// per-message acks would give back the round trips and scheduler
/// wakeups that batching and write coalescing exist to save.
fn stage_frames(
    access: &mut NetAccess<'_>,
    in_links: &mut [(usize, RxLink)],
    wire: &mut WireBuf,
    link: u32,
    frames: &[Frame],
) -> Result<Control> {
    let l = link as usize;
    access.check_link(l)?;
    let Some((_, rxl)) = in_links.iter_mut().find(|(i, _)| *i == l) else {
        // A misrouted token is a protocol bug, not a fault.
        return Err(cfg_err(format!(
            "token for link {l} arrived at a worker that does not own its sink"
        )));
    };
    let mut latest_ack = None;
    let mut delivered = 0u32;
    let mut urgent = false;
    for frame in frames {
        match rxl.rx.on_frame(frame) {
            RxVerdict::Deliver { payload, ack } => {
                access.stage_link_token(l, payload);
                delivered += 1;
                latest_ack = Some(ack);
            }
            RxVerdict::DuplicateAck { ack } | RxVerdict::Gap { ack } => {
                latest_ack = Some(ack);
                urgent = true;
            }
            RxVerdict::Corrupt => {}
        }
    }
    if let Some(ack) = latest_ack {
        if let Some(ack) = rxl.ack_policy(ack, delivered, urgent) {
            wire.queue(&Msg::Ack { link, ack });
        }
    }
    Ok(if delivered > 0 {
        Control::Progress
    } else {
        Control::None
    })
}
